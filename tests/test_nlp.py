"""NLP user-modeling tests: n-grams, collocations, alignment (§5.4, §6)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.nlp.alignment import query_by_example, similarity, smith_waterman
from repro.nlp.collocations import (
    bigram_statistics,
    log_likelihood_ratio,
    pmi,
    top_collocations,
)
from repro.nlp.ngram import NGramModel, perplexity_by_order
from repro.core.sequences import SessionSequenceRecord


class TestNGramModel:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NGramModel(0)
        with pytest.raises(ValueError):
            NGramModel(2, smoothing="kneser_ney_9000")
        with pytest.raises(ValueError):
            NGramModel(2, interpolation_lambda=1.0)
        with pytest.raises(ValueError):
            NGramModel(2, add_k=0)

    def test_unfitted_model_rejects_queries(self):
        with pytest.raises(RuntimeError):
            NGramModel(2).probability("a", [])

    def test_probabilities_sum_to_one_add_k(self):
        model = NGramModel(2, smoothing="add_k").fit([["a", "b", "a"]])
        vocab = ["a", "b", "</s>", "<unk>"]
        total = sum(model.probability(w, ["a"]) for w in vocab)
        assert total == pytest.approx(1.0)

    def test_probabilities_sum_to_one_interpolated(self):
        model = NGramModel(2, smoothing="interpolated").fit(
            [["a", "b", "a", "c"]])
        vocab = ["a", "b", "c", "</s>", "<unk>"]
        total = sum(model.probability(w, ["a"]) for w in vocab)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_deterministic_sequence_learned(self):
        """A strictly alternating sequence is near-perfectly predicted by
        a bigram model but not by a unigram model."""
        train = [["a", "b"] * 20 for __ in range(10)]
        unigram = NGramModel(1).fit(train)
        bigram = NGramModel(2).fit(train)
        test = [["a", "b"] * 20]
        assert bigram.perplexity(test) < unigram.perplexity(test)

    def test_unseen_symbol_maps_to_unk(self):
        model = NGramModel(2).fit([["a", "b"]])
        p = model.probability("never_seen", ["a"])
        assert p > 0

    def test_cross_entropy_positive(self):
        model = NGramModel(2).fit([["a", "b", "a"]])
        assert model.cross_entropy([["a", "b"]]) > 0

    def test_cross_entropy_no_symbols(self):
        model = NGramModel(1).fit([["a"]])
        with pytest.raises(ValueError):
            model.cross_entropy([])

    def test_perplexity_is_two_to_entropy(self):
        model = NGramModel(2).fit([["a", "b", "a", "b"]])
        test = [["a", "b", "a"]]
        assert model.perplexity(test) == pytest.approx(
            2 ** model.cross_entropy(test))

    def test_vocab_size_counts_specials(self):
        model = NGramModel(1).fit([["a", "b"]])
        assert model.vocab_size == 4  # a, b, </s>, <unk>


class TestPerplexityByOrder:
    def test_temporal_signal_curve(self, dictionary, sequence_records):
        """§5.4: behaviour is 'strongly influenced by immediately preceding
        actions' -- the bigram model must beat the unigram decisively."""
        sequences = [r.event_names(dictionary) for r in sequence_records
                     if r.num_events >= 2]
        train, test = sequences[::2], sequences[1::2]
        curve = dict(perplexity_by_order(train, test, max_n=3))
        assert curve[2] < curve[1] / 2          # big drop at n=2
        assert curve[3] < curve[1]              # higher orders stay better
                                                # than no context

    def test_returns_requested_orders(self):
        train = [["a", "b"] * 5] * 4
        curve = perplexity_by_order(train, train, max_n=4)
        assert [n for n, __ in curve] == [1, 2, 3, 4]


class TestCollocations:
    def test_bigram_statistics(self):
        bigrams, unigrams, positions = bigram_statistics([["a", "b", "a"]])
        assert bigrams[("a", "b")] == 1
        assert bigrams[("b", "a")] == 1
        assert unigrams["a"] == 2
        assert positions == 2

    def test_planted_collocation_tops_pmi(self):
        """'hot dog' pattern: x is almost always followed by y, both rare."""
        import random

        rng = random.Random(0)
        sequences = []
        for __ in range(200):
            seq = [rng.choice("abcdef") for __ in range(20)]
            seq[7:7] = ["hot", "dog"]
            sequences.append(seq)
        ranked = pmi(sequences, min_count=5)
        assert (ranked[0].first, ranked[0].second) == ("hot", "dog")

    def test_planted_collocation_tops_llr(self):
        import random

        rng = random.Random(1)
        sequences = []
        for __ in range(200):
            seq = [rng.choice("abcdef") for __ in range(20)]
            seq[3:3] = ["hot", "dog"]
            sequences.append(seq)
        ranked = log_likelihood_ratio(sequences, min_count=5)
        assert (ranked[0].first, ranked[0].second) == ("hot", "dog")

    def test_min_count_threshold(self):
        sequences = [["x", "y"]]  # single occurrence
        assert pmi(sequences, min_count=2) == []

    def test_llr_scores_nonnegative(self):
        sequences = [list("ababab"), list("bcbcbc")]
        for collocation in log_likelihood_ratio(sequences, min_count=1):
            assert collocation.score >= -1e-9

    def test_empty_input(self):
        assert pmi([]) == []
        assert log_likelihood_ratio([]) == []

    def test_top_collocations_dispatch(self):
        sequences = [["a", "b"] * 10]
        assert top_collocations(sequences, method="pmi", min_count=1)
        assert top_collocations(sequences, method="llr", min_count=1)
        with pytest.raises(ValueError):
            top_collocations(sequences, method="word2vec")

    def test_search_collocation_on_workload(self, dictionary,
                                            sequence_records):
        """The generator plants query -> results-impression; LLR must
        surface it among the top pairs."""
        sequences = [r.event_names(dictionary) for r in sequence_records]
        ranked = log_likelihood_ratio(sequences, min_count=5)[:15]
        assert any(c.first.endswith(":query")
                   and c.second.endswith(":result:impression")
                   for c in ranked)


class TestAlignment:
    def test_identical_sequences_score_maximal(self):
        result = smith_waterman("abcd", "abcd")
        assert result.score == 8.0  # 4 matches * 2.0
        assert (result.a_start, result.a_end) == (0, 4)

    def test_local_alignment_finds_shared_substring(self):
        result = smith_waterman("xxabcyy", "zzabczz")
        assert result.score == 6.0
        assert result.a_start == 2 and result.a_end == 5

    def test_empty_sequences(self):
        assert smith_waterman("", "abc").score == 0.0
        assert similarity("", "abc") == 0.0

    def test_no_common_symbols(self):
        assert smith_waterman("aaa", "bbb").score == 0.0

    def test_similarity_normalized(self):
        assert similarity("abc", "abc") == pytest.approx(1.0)
        assert 0 <= similarity("abcdef", "abcxyz") <= 1.0

    def test_gap_tolerance(self):
        with_gap = smith_waterman("abcd", "abxcd")
        assert with_gap.score > smith_waterman("abcd", "wxyz").score

    def test_query_by_example(self, sequence_records):
        probe = max(sequence_records, key=lambda r: r.num_events)
        hits = query_by_example(probe, sequence_records, top_n=5)
        assert len(hits) == 5
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)
        assert all(h.record.user_id != probe.user_id for h in hits)

    def test_query_by_example_include_same_user(self, sequence_records):
        probe = sequence_records[0]
        hits = query_by_example(probe, sequence_records, top_n=3,
                                exclude_same_user=False)
        # the probe itself is the best match
        assert hits[0].record.session_id == probe.session_id

    @given(st.text(alphabet="abcd", max_size=12),
           st.text(alphabet="abcd", max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_alignment_symmetric_score(self, a, b):
        assert smith_waterman(a, b).score == smith_waterman(b, a).score
