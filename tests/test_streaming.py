"""Streaming mover tests: micro-batches, watermarks, seals, late data."""

import pytest

from repro.clock import (
    LogicalClock,
    MILLIS_PER_HOUR,
    MILLIS_PER_MINUTE,
)
from repro.faults.injector import (
    KIND_CRASH,
    KIND_UNAVAILABLE,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    set_default_injector,
)
from repro.hdfs.layout import (
    LOGS_ROOT,
    data_files,
    hour_for_millis,
    staging_path,
)
from repro.hdfs.namenode import HDFS
from repro.logmover.streaming import StreamingMover
from repro.obs import names as obs_names
from repro.obs.metrics import MetricsRegistry, set_default_registry
from repro.scribe.aggregator import decode_messages, encode_messages
from repro.scribe.message import encode_envelope

CATEGORY = "client_events"
HOUR0 = hour_for_millis(CATEGORY, 0)
HOUR1 = hour_for_millis(CATEGORY, MILLIS_PER_HOUR)

#: One minute of batch cadence and two of watermark delay keep the
#: arithmetic in every test readable: an hour seals at hour_end + 2min.
BATCH_MS = MILLIS_PER_MINUTE
DELAY_MS = 2 * MILLIS_PER_MINUTE


@pytest.fixture(autouse=True)
def _fresh_registry():
    old = set_default_registry(MetricsRegistry())
    yield
    set_default_registry(old)


@pytest.fixture(autouse=True)
def _clean_injector():
    yield
    set_default_injector(None)


def _stage(staging, datacenter, hour, part, frames, codec="zlib"):
    staging.create(f"{staging_path(datacenter, hour)}/{part}",
                   encode_messages(frames), codec=codec)


def _hour_messages(warehouse, hour):
    out = []
    for path in data_files(warehouse, hour.path(root=LOGS_ROOT)):
        out.extend(decode_messages(warehouse.open_bytes(path)))
    return sorted(out)


def _hour_files(warehouse, hour):
    return sorted(p.rsplit("/", 1)[-1]
                  for p in data_files(warehouse, hour.path(root=LOGS_ROOT)))


def _mover(staging_map, warehouse, clock, **kwargs):
    kwargs.setdefault("batch_interval_ms", BATCH_MS)
    kwargs.setdefault("watermark_delay_ms", DELAY_MS)
    return StreamingMover(staging_map, warehouse, clock, **kwargs)


class TestMicroBatches:
    def test_batch_queryable_before_hour_closes(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(5 * MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        _stage(staging, "dc", HOUR0, "p1",
               [encode_envelope("h1", 0, b"a"), encode_envelope("h1", 1, b"b")])
        result = mover.poll(CATEGORY)
        assert result.messages_landed == 2
        # Queryable now, mid-hour, as a batch file -- not sealed yet.
        assert _hour_messages(warehouse, HOUR0) == [b"a", b"b"]
        assert _hour_files(warehouse, HOUR0) == ["batch-00000"]
        assert not mover.sealed(HOUR0)
        # Staged inputs were consumed.
        assert staging.glob_files(staging_path("dc", HOUR0)) == []

    def test_batch_interval_gates_landing(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        _stage(staging, "dc", HOUR0, "p1", [b"a"])
        assert mover.poll(CATEGORY).messages_landed == 1
        _stage(staging, "dc", HOUR0, "p2", [b"b"])
        # Within the same interval nothing lands...
        assert mover.poll(CATEGORY).messages_landed == 0
        # ...unless forced...
        assert mover.poll(CATEGORY, force=True).messages_landed == 1
        _stage(staging, "dc", HOUR0, "p3", [b"c"])
        # ...or the interval has elapsed.
        clock.advance(BATCH_MS)
        assert mover.poll(CATEGORY).messages_landed == 1

    def test_committed_identities_dedup_within_and_across_batches(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        _stage(staging, "dc", HOUR0, "p1", [encode_envelope("h1", 0, b"a")])
        mover.poll(CATEGORY)
        # A late resend of a *committed* identity must be suppressed:
        # unlike an hourly re-move, the committed batch's inputs are
        # already deleted, so re-landing would duplicate the payload.
        _stage(staging, "dc", HOUR0, "p2", [encode_envelope("h1", 0, b"a"),
                                            encode_envelope("h1", 1, b"b")])
        batch = mover.poll(CATEGORY, force=True).batches[0]
        assert batch.messages_landed == 1
        assert batch.duplicates_skipped == 1
        assert _hour_messages(warehouse, HOUR0) == [b"a", b"b"]
        assert mover.landed_identities(HOUR0) == {("h1", 0), ("h1", 1)}

    def test_moves_one_cumulative_result_per_hour(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        _stage(staging, "dc", HOUR0, "p1", [b"a"])
        mover.poll(CATEGORY)
        _stage(staging, "dc", HOUR0, "p2", [b"b", b"c"])
        mover.poll(CATEGORY, force=True)
        assert len(mover.moves) == 1
        assert mover.moves[0].messages_moved == 3
        assert mover.moves[0].input_files == 2


class TestWatermarks:
    def test_watermark_trails_live_datacenters_by_delay(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(10 * MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        mover.poll(CATEGORY)
        assert mover.watermark(CATEGORY) == clock.now() - DELAY_MS

    def test_watermark_lag_gauge(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(10 * MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        mover.poll(CATEGORY)
        from repro.obs.metrics import get_default_registry
        assert get_default_registry().total(
            obs_names.STREAMING_WATERMARK_LAG) == DELAY_MS

    def test_unreachable_datacenter_freezes_watermark_and_blocks_seal(self):
        s1 = HDFS(name="staging-dc1")
        s2 = HDFS(name="staging-dc2")
        warehouse = HDFS()
        clock = LogicalClock()
        clock.advance(5 * MILLIS_PER_MINUTE)
        mover = _mover({"dc1": s1, "dc2": s2}, warehouse, clock)
        _stage(s1, "dc1", HOUR0, "p1", [b"a"])
        mover.poll(CATEGORY)
        frozen_at = mover.watermark(CATEGORY)
        # dc2's staging cluster goes dark until well past the hour.
        plan = FaultPlan()
        plan.add("hdfs.staging-dc2.write", KIND_UNAVAILABLE,
                 start_ms=6 * MILLIS_PER_MINUTE,
                 end_ms=MILLIS_PER_HOUR + 10 * MILLIS_PER_MINUTE)
        set_default_injector(FaultInjector(plan, clock=clock))
        clock.advance(MILLIS_PER_HOUR)  # now = hour 1 + 5min
        result = mover.poll(CATEGORY, force=True)
        # dc2 froze at its last live progress, so the hour cannot seal.
        assert result.watermark_ms == frozen_at
        assert result.sealed == []
        assert not mover.sealed(HOUR0)
        # Outage ends; the next poll advances the watermark and seals.
        clock.advance(6 * MILLIS_PER_MINUTE)
        result = mover.poll(CATEGORY, force=True)
        assert result.sealed == [HOUR0]

    def test_never_seen_datacenter_holds_watermark_at_zero(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        mover = StreamingMover({"dc": staging}, warehouse, clock,
                               producers={CATEGORY: ["dc", "dc-other"]})
        assert mover.watermark(CATEGORY) == 0


class TestSealing:
    def test_seal_merges_batches_into_part_files(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        _stage(staging, "dc", HOUR0, "p1", [encode_envelope("h1", 0, b"a")])
        mover.poll(CATEGORY)
        _stage(staging, "dc", HOUR0, "p2", [encode_envelope("h1", 1, b"b")])
        mover.poll(CATEGORY, force=True)
        assert _hour_files(warehouse, HOUR0) == ["batch-00000",
                                                 "batch-00001"]
        clock.advance(MILLIS_PER_HOUR + DELAY_MS)
        result = mover.poll(CATEGORY, force=True)
        assert result.sealed == [HOUR0]
        assert mover.sealed(HOUR0)
        assert _hour_files(warehouse, HOUR0) == ["part-00000"]
        assert _hour_messages(warehouse, HOUR0) == [b"a", b"b"]
        from repro.obs.metrics import get_default_registry
        registry = get_default_registry()
        assert registry.total(obs_names.STREAMING_HOURS_SEALED) == 1
        assert registry.total(obs_names.MOVER_HOURS_MOVED) == 1

    def test_hour_without_batches_never_seals(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        mover = _mover({"dc": staging}, warehouse, clock)
        clock.advance(2 * MILLIS_PER_HOUR)
        result = mover.poll(CATEGORY)
        assert result.sealed == []
        assert mover.hours_sealed() == []

    def test_run_until_sealed_drains_everything(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        _stage(staging, "dc", HOUR0, "p1", [b"a"])
        _stage(staging, "dc", HOUR1, "p1", [b"b"])
        mover.run_until_sealed(CATEGORY)
        assert mover.sealed(HOUR0) and mover.sealed(HOUR1)
        assert mover.unsealed_hours() == []
        assert _hour_messages(warehouse, HOUR0) == [b"a"]
        assert _hour_messages(warehouse, HOUR1) == [b"b"]

    def test_columnar_category_with_undecodable_payloads_skips_segment(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock,
                       columnar_categories=[CATEGORY])
        _stage(staging, "dc", HOUR0, "p1", [b"not-a-client-event"])
        mover.run_until_sealed(CATEGORY)
        # The raw hour sealed fine; the segment build was skipped.
        assert mover.sealed(HOUR0)
        assert _hour_messages(warehouse, HOUR0) == [b"not-a-client-event"]


class TestLateData:
    def _sealed_hour(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        _stage(staging, "dc", HOUR0, "p1", [encode_envelope("h1", 0, b"a")])
        mover.poll(CATEGORY)
        clock.advance(MILLIS_PER_HOUR + DELAY_MS)
        mover.poll(CATEGORY, force=True)
        assert mover.sealed(HOUR0)
        return staging, warehouse, clock, mover

    def test_late_arrival_reopens_sealed_hour(self):
        staging, warehouse, clock, mover = self._sealed_hour()
        # A WAL replay resends a committed identity plus a new one.
        _stage(staging, "dc", HOUR0, "late",
               [encode_envelope("h1", 0, b"a"), encode_envelope("h1", 1, b"b")])
        result = mover.poll(CATEGORY, force=True)
        batch = result.batches[0]
        assert batch.reopened
        assert batch.messages_landed == 1  # only the genuinely new entry
        assert batch.duplicates_skipped == 1
        assert mover.late_reopens() == 1
        from repro.obs.metrics import get_default_registry
        assert get_default_registry().total(
            obs_names.STREAMING_LATE_REOPENS) == 1
        # The same poll re-seals (the watermark is already past), and the
        # union lands exactly once.
        assert mover.sealed(HOUR0)
        assert _hour_messages(warehouse, HOUR0) == [b"a", b"b"]

    def test_pure_duplicate_late_arrival_does_not_reopen(self):
        staging, warehouse, clock, mover = self._sealed_hour()
        _stage(staging, "dc", HOUR0, "late", [encode_envelope("h1", 0, b"a")])
        result = mover.poll(CATEGORY, force=True)
        assert result.batches[0].messages_landed == 0
        assert result.batches[0].duplicates_skipped == 1
        assert not result.batches[0].reopened
        assert mover.late_reopens() == 0
        assert mover.sealed(HOUR0)
        assert _hour_messages(warehouse, HOUR0) == [b"a"]


class TestCrashConvergence:
    def _arm(self, site):
        plan = FaultPlan()
        plan.add(site, KIND_CRASH, max_fires=1)
        set_default_injector(FaultInjector(plan))

    def _poll_through_crash(self, mover):
        with pytest.raises(InjectedCrash):
            mover.poll(CATEGORY, force=True)
        return mover.poll(CATEGORY, force=True)

    def test_crash_before_batch_rename_converges(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        _stage(staging, "dc", HOUR0, "p1", [encode_envelope("h1", 0, b"a")])
        self._arm(f"logmover.{CATEGORY}.batch.pre_rename")
        self._poll_through_crash(mover)
        assert _hour_messages(warehouse, HOUR0) == [b"a"]
        assert staging.glob_files(staging_path("dc", HOUR0)) == []
        assert mover.moves[0].messages_moved == 1

    def test_crash_before_batch_cleanup_dedups_not_relands(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        _stage(staging, "dc", HOUR0, "p1", [encode_envelope("h1", 0, b"a")])
        self._arm(f"logmover.{CATEGORY}.batch.pre_cleanup")
        result = self._poll_through_crash(mover)
        # The batch published before the crash; the retry must clean up
        # the staged input without landing the payload twice.
        assert result.batches[0].messages_landed == 0
        assert result.batches[0].duplicates_skipped == 1
        assert _hour_messages(warehouse, HOUR0) == [b"a"]
        assert staging.glob_files(staging_path("dc", HOUR0)) == []
        assert mover.moves[0].messages_moved == 1

    def test_crash_before_seal_rename_converges(self):
        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        clock.advance(MILLIS_PER_MINUTE)
        mover = _mover({"dc": staging}, warehouse, clock)
        _stage(staging, "dc", HOUR0, "p1", [encode_envelope("h1", 0, b"a")])
        mover.poll(CATEGORY)
        clock.advance(MILLIS_PER_HOUR + DELAY_MS)
        self._arm(f"logmover.{CATEGORY}.seal.pre_rename")
        self._poll_through_crash(mover)
        assert mover.sealed(HOUR0)
        assert _hour_files(warehouse, HOUR0) == ["part-00000"]
        assert _hour_messages(warehouse, HOUR0) == [b"a"]


class TestOinkWiring:
    def test_pipeline_polls_at_batch_cadence_and_records_seals(self):
        from repro.core.builder import SessionSequenceBuilder
        from repro.oink.pipelines import register_standard_pipeline
        from repro.oink.scheduler import Oink

        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        mover = _mover({"dc": staging}, warehouse, clock,
                       batch_interval_ms=5 * MILLIS_PER_MINUTE)
        oink = Oink(clock)
        state = register_standard_pipeline(
            oink, mover, SessionSequenceBuilder(warehouse),
            category=CATEGORY)
        # An hourly consumer depending on the minute-cadence mover job:
        # its hour-H instance maps to the mover instance at H:00, so the
        # dependency resolves exactly as with the hourly mover.
        consumed = []
        oink.hourly("consumer", consumed.append, depends_on=["log_mover"])
        _stage(staging, "dc", HOUR0, "p1", [b"a"])
        oink.run_until(MILLIS_PER_HOUR + 10 * MILLIS_PER_MINUTE,
                       step_ms=5 * MILLIS_PER_MINUTE)
        # The mover job ran at micro-batch cadence, not hourly.
        assert len(oink.traces.successes("log_mover")) > 12
        assert state.polls
        assert HOUR0 in state.moved_hours
        assert mover.sealed(HOUR0)
        assert consumed == [0]
