"""Event-counting UDF and script tests (§5.2)."""

import pytest

from repro.analytics.counting import (
    CountClientEvents,
    SessionsWithEvent,
    count_events_raw,
    count_events_sequences,
)
from repro.core.dictionary import EventDictionary
from repro.core.sequences import SessionSequenceRecord
from repro.mapreduce.jobtracker import JobTracker

NAMES = ["web:home:timeline:stream:tweet:impression",
         "web:home:timeline:stream:tweet:click",
         "iphone:home:timeline:stream:tweet:impression"]


@pytest.fixture
def small_dictionary():
    return EventDictionary(NAMES)


def _record(dictionary, names, user_id=1):
    return SessionSequenceRecord(
        user_id=user_id, session_id="s", ip="1.1.1.1",
        session_sequence=dictionary.encode(names), duration=10)


class TestCountClientEvents:
    def test_counts_exact_event(self, small_dictionary):
        udf = CountClientEvents(NAMES[0], small_dictionary)
        record = _record(small_dictionary, [NAMES[0], NAMES[1], NAMES[0]])
        assert udf(record) == 2

    def test_counts_pattern_expansion(self, small_dictionary):
        """The $EVENTS parameter is a pattern expanded via the dictionary."""
        udf = CountClientEvents("*:impression", small_dictionary)
        record = _record(small_dictionary, NAMES)  # two impressions
        assert udf(record) == 2

    def test_zero_when_absent(self, small_dictionary):
        udf = CountClientEvents(NAMES[1], small_dictionary)
        assert udf(_record(small_dictionary, [NAMES[0]])) == 0

    def test_accepts_plain_string(self, small_dictionary):
        udf = CountClientEvents(NAMES[0], small_dictionary)
        assert udf(small_dictionary.encode([NAMES[0]] * 3)) == 3

    def test_rejects_other_types(self, small_dictionary):
        udf = CountClientEvents(NAMES[0], small_dictionary)
        with pytest.raises(TypeError):
            udf(42)


class TestSessionsWithEvent:
    def test_binary_output(self, small_dictionary):
        udf = SessionsWithEvent(NAMES[1], small_dictionary)
        has = _record(small_dictionary, [NAMES[0], NAMES[1]])
        lacks = _record(small_dictionary, [NAMES[0], NAMES[0]])
        assert udf(has) == 1
        assert udf(lacks) == 0


class TestScriptEquivalence:
    """The sequences-based script and the raw-log script must agree --
    session sequences answer the same query faster, not differently."""

    @pytest.mark.parametrize("pattern", [
        "*:profile_click",
        "web:home:*",
        "*:impression",
        "iphone:*",
    ])
    def test_sum_mode_agrees(self, warehouse, date, dictionary, pattern):
        n_seq = count_events_sequences(warehouse, date, pattern, dictionary)
        n_raw = count_events_raw(warehouse, date, pattern)
        assert n_seq == n_raw
        assert n_seq > 0  # the workload exercises all these patterns

    def test_sessions_mode_agrees(self, warehouse, date, dictionary):
        pattern = "*:query"
        n_seq = count_events_sequences(warehouse, date, pattern, dictionary,
                                       mode="sessions")
        n_raw = count_events_raw(warehouse, date, pattern, mode="sessions")
        assert n_seq == n_raw

    def test_sessions_mode_bounded_by_sessions(self, warehouse, date,
                                               dictionary, sequence_records):
        n = count_events_sequences(warehouse, date, "*:impression",
                                   dictionary, mode="sessions")
        assert 0 < n <= len(sequence_records)

    def test_unknown_mode_rejected(self, warehouse, date, dictionary):
        with pytest.raises(ValueError):
            count_events_sequences(warehouse, date, "*:x", dictionary,
                                   mode="bogus")
        with pytest.raises(ValueError):
            count_events_raw(warehouse, date, "*:x", mode="bogus")


class TestEfficiencyShape:
    def test_sequences_need_fewer_mappers_and_bytes(self, warehouse, date,
                                                    dictionary):
        """§4.2: sequences address both the brute-force-scan and group-by
        problems. Mapper count and bytes scanned must both drop."""
        t_seq, t_raw = JobTracker(), JobTracker()
        count_events_sequences(warehouse, date, "*:impression", dictionary,
                               tracker=t_seq)
        count_events_raw(warehouse, date, "*:impression", tracker=t_raw)
        seq_bytes = sum(r.input_bytes for r in t_seq.runs)
        raw_bytes = sum(r.input_bytes for r in t_raw.runs)
        assert t_seq.total_map_tasks() < t_raw.total_map_tasks()
        assert seq_bytes < raw_bytes / 5

    def test_sessions_variant_avoids_group_by_shuffle(self, warehouse, date,
                                                      dictionary):
        t_seq, t_raw = JobTracker(), JobTracker()
        count_events_sequences(warehouse, date, "*:query", dictionary,
                               tracker=t_seq, mode="sessions")
        count_events_raw(warehouse, date, "*:query", tracker=t_raw,
                         mode="sessions")
        seq_shuffle = sum(r.shuffle_records for r in t_seq.runs)
        raw_shuffle = sum(r.shuffle_records for r in t_raw.runs)
        # raw must shuffle every event into the session group-by
        assert raw_shuffle > seq_shuffle


class TestEmptyDay:
    def test_queries_on_missing_day_return_zero(self, warehouse,
                                                dictionary):
        missing = (2011, 12, 25)
        assert count_events_sequences(warehouse, missing,
                                      "*:impression", dictionary) == 0
        assert count_events_raw(warehouse, missing, "*:impression") == 0
        assert count_events_sequences(warehouse, missing, "*:query",
                                      dictionary, mode="sessions") == 0
        assert count_events_raw(warehouse, missing, "*:query",
                                mode="sessions") == 0


class TestDemographicSubsetting:
    """§5.2: "if the data scientist wishes to restrict consideration of
    the user population by various demographics criteria, a join with the
    users table followed by selection with the appropriate criteria would
    ensue." The Pig-join path must agree with the user_filter shortcut."""

    def test_join_with_users_table_matches_filter(self, warehouse, date,
                                                  dictionary,
                                                  sequence_records):
        from repro.analytics.ctr import ctr
        from repro.pig.loaders import InMemoryLoader, SessionSequencesLoader
        from repro.pig.relation import PigServer
        from repro.workload.generator import WorkloadGenerator

        generator = WorkloadGenerator(num_users=200, seed=42)
        users_table = [{"user_id": u.user_id, "country": u.country}
                       for u in generator.population]
        uk_users = {row["user_id"] for row in users_table
                    if row["country"] == "uk"}

        # Path 1: Pig join sequences with the users table, filter UK.
        pig = PigServer()
        sequences = pig.load(SessionSequencesLoader(warehouse, *date))
        users = pig.load(InMemoryLoader(users_table))
        uk_records = (sequences
                      .join(users, lambda r: r.user_id,
                            lambda u: u["user_id"])
                      .filter(lambda row: row["right"]["country"] == "uk")
                      .foreach(lambda row: row["left"])
                      .dump())

        # Path 2: the user_filter shortcut over the same records.
        shortcut = [r for r in sequence_records if r.user_id in uk_users]
        assert sorted(r.to_bytes() for r in uk_records) == \
            sorted(r.to_bytes() for r in shortcut)

        # And the downstream CTR agrees either way.
        joined_ctr = ctr("wtf", "*:user_card:impression",
                         "*:user_card:click", dictionary, uk_records)
        filtered_ctr = ctr("wtf", "*:user_card:impression",
                           "*:user_card:click", dictionary,
                           sequence_records,
                           user_filter=lambda r: r.user_id in uk_users)
        assert joined_ctr.impressions == filtered_ctr.impressions
        assert joined_ctr.actions == filtered_ctr.actions
