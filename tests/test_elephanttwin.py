"""Elephant Twin tests: index build, pushdown correctness, rebuild (§6)."""

import pytest

from repro.core.names import EventPattern
from repro.elephanttwin.index import (
    INDEX_FILE,
    BlockIndex,
    Indexer,
    event_name_terms,
)
from repro.elephanttwin.inputformat import (
    IndexedEventsLoader,
    IndexedInputFormat,
)
from repro.hdfs.namenode import HDFS
from repro.mapreduce.jobtracker import JobTracker
from repro.pig.loaders import ClientEventsLoader
from repro.pig.relation import PigServer

INDEX_DIR = "/indexes/client_events"


@pytest.fixture(scope="module")
def indexed(warehouse, date):
    loader = ClientEventsLoader(warehouse, *date)
    indexer = Indexer(warehouse, event_name_terms)
    index = indexer.build(loader.input_format(), INDEX_DIR)
    return loader, index


class TestBlockIndex:
    def test_postings_cover_all_events(self, indexed, builder, date):
        __, index = indexed
        histogram = builder.load_histogram(*date)
        assert set(index.terms()) == set(histogram)

    def test_splits_for_unknown_term_empty(self, indexed):
        __, index = indexed
        assert index.splits_for(["web:ghost::::nothing"]) == set()

    def test_splits_for_union(self, indexed):
        __, index = indexed
        terms = index.terms()[:2]
        union = index.splits_for(terms)
        assert union == (index.splits_for([terms[0]])
                         | index.splits_for([terms[1]]))

    def test_persistence_roundtrip(self, indexed, warehouse):
        __, index = indexed
        loaded = Indexer.load(warehouse, INDEX_DIR)
        assert loaded.total_splits == index.total_splits
        assert loaded.postings == index.postings

    def test_index_resides_alongside_data(self, warehouse):
        """Indexes live in their own files -- rebuilding never rewrites
        the data (the anti-Trojan-layout argument)."""
        assert warehouse.is_file(f"{INDEX_DIR}/{INDEX_FILE}")

    def test_rebuild_from_scratch(self, warehouse, date):
        loader = ClientEventsLoader(warehouse, *date)
        indexer = Indexer(warehouse, event_name_terms)
        data_bytes_before = warehouse.total_stored_bytes(
            f"/logs/client_events")
        rebuilt = indexer.rebuild(loader.input_format(), INDEX_DIR)
        assert rebuilt.total_splits > 0
        # data untouched by reindexing
        assert warehouse.total_stored_bytes("/logs/client_events") == \
            data_bytes_before


class TestPushdown:
    @pytest.mark.parametrize("pattern", [
        "*:follow",
        "web:signup:*",
        "*:query",
    ])
    def test_identical_results_fewer_splits(self, indexed, pattern):
        loader, index = indexed
        matcher = EventPattern(pattern)
        t_full, t_indexed = JobTracker(), JobTracker()

        full = (PigServer(t_full).load(loader)
                .filter(lambda e: matcher.matches(e.event_name)).dump())
        iloader = IndexedEventsLoader(loader, index, pattern)
        fast = (PigServer(t_indexed).load(iloader)
                .filter(lambda e: matcher.matches(e.event_name)).dump())

        assert sorted(e.to_bytes() for e in full) == \
            sorted(e.to_bytes() for e in fast)
        assert t_indexed.total_map_tasks() <= t_full.total_map_tasks()

    def test_highly_selective_query_skips_most_splits(self, indexed):
        """§6: Elephant Twin targets 'highly-selective queries'."""
        loader, index = indexed
        iloader = IndexedEventsLoader(loader, index, "*:signup:*:*:*:submit")
        fmt = iloader.input_format()
        selected = fmt.splits()
        assert fmt.skipped_splits > 0
        assert len(selected) + fmt.skipped_splits == index.total_splits

    def test_no_matching_terms_reads_nothing(self, indexed):
        loader, index = indexed
        iloader = IndexedEventsLoader(loader, index, "blackberry:*")
        assert iloader.matched_terms == []
        fmt = iloader.input_format()
        assert fmt.splits() == []
        assert fmt.skipped_splits == index.total_splits

    def test_matched_terms_expansion(self, indexed):
        loader, index = indexed
        iloader = IndexedEventsLoader(loader, index, "*:follow")
        assert iloader.matched_terms
        assert all(t.endswith(":follow") for t in iloader.matched_terms)

    def test_index_never_fabricates_matches(self, indexed):
        """Pruned plan without the exactness filter returns a superset --
        whole splits, never fewer records than the true matches."""
        loader, index = indexed
        pattern = "*:follow"
        matcher = EventPattern(pattern)
        iloader = IndexedEventsLoader(loader, index, pattern)
        unfiltered = PigServer().load(iloader).dump()
        true_matches = [e for e in unfiltered
                        if matcher.matches(e.event_name)]
        exact = (PigServer().load(loader)
                 .filter(lambda e: matcher.matches(e.event_name)).dump())
        assert len(true_matches) == len(exact)
        assert len(unfiltered) >= len(exact)


class TestCustomExtractor:
    def test_index_by_custom_terms(self):
        from repro.core.event import ClientEvent
        from repro.core.builder import write_day_events
        from repro.mapreduce.inputformats import FileInputFormat
        from repro.thriftlike.codegen import ThriftFileFormat

        fs = HDFS(block_size=256)
        events = [
            ClientEvent.make("web:home:timeline:stream:tweet:impression",
                             user_id=i % 3, session_id=f"s{i}",
                             ip="1.1.1.1", timestamp=i)
            for i in range(30)
        ]
        write_day_events(fs, events, 2012, 1, 1, events_per_file=10)
        fmt = ThriftFileFormat(ClientEvent)
        input_format = FileInputFormat(
            fs, fs.glob_files("/logs/client_events"), fmt.decode)
        indexer = Indexer(fs, lambda e: (f"user:{e.user_id}",))
        index = indexer.build(input_format, "/indexes/by_user")
        assert set(index.terms()) == {"user:0", "user:1", "user:2"}


class TestIndexingSequences:
    """Elephant Twin is generic (§6: "The infrastructure is general,
    although client event logs represent one of the first applications")
    -- here it indexes the session-sequence store by contained event."""

    def test_index_sequence_store(self, warehouse, date, dictionary):
        from repro.core.sequences import SessionSequenceRecord
        from repro.pig.loaders import SessionSequencesLoader

        loader = SessionSequencesLoader(warehouse, *date)

        def contained_events(record: SessionSequenceRecord):
            return set(record.event_names(dictionary))

        indexer = Indexer(warehouse, contained_events)
        index = indexer.build(loader.input_format(), "/indexes/sequences")
        rare = [t for t in index.terms() if t.endswith(":submit")]
        assert rare
        wanted = index.splits_for(rare[:1])
        assert 0 < len(wanted) <= index.total_splits

    def test_pushdown_over_sequences(self, warehouse, date, dictionary):
        import re

        from repro.mapreduce.jobtracker import JobTracker
        from repro.pig.loaders import SessionSequencesLoader
        from repro.pig.relation import PigServer

        loader = SessionSequencesLoader(warehouse, *date)
        indexer = Indexer(
            warehouse, lambda r: set(r.event_names(dictionary)))
        index = indexer.build(loader.input_format(), "/indexes/sequences")
        pattern = "web:signup:step_confirm:*"
        terms = dictionary.expand_pattern(pattern)
        regex = re.compile(dictionary.symbol_class(pattern))

        full = (PigServer(JobTracker()).load(loader)
                .filter(lambda r: bool(regex.search(r.session_sequence)))
                .dump())
        fmt = IndexedInputFormat(loader.input_format(), index, terms)

        class _Loader:
            def input_format(self):
                return fmt

        fast = (PigServer(JobTracker()).load(_Loader())
                .filter(lambda r: bool(regex.search(r.session_sequence)))
                .dump())
        assert sorted(r.to_bytes() for r in full) == \
            sorted(r.to_bytes() for r in fast)
