"""CTR/FTR, navigation, and dashboard tests (§4.1, §5.1)."""

import pytest

from repro.analytics.ctr import FeatureRates, ctr, ftr
from repro.analytics.dashboard import (
    BirdBrain,
    DEFAULT_DURATION_BUCKETS,
    bucket_label,
    summarize_day,
)
from repro.analytics.navigation import (
    feature_usage,
    followed_by,
    top_transitions,
    transition_counts,
)
from repro.core.dictionary import EventDictionary
from repro.core.sequences import SessionSequenceRecord

IMP = "web:home:suggestions:who_to_follow:user_card:impression"
CLICK = "web:home:suggestions:who_to_follow:user_card:click"
FOLLOW = "web:home:suggestions:who_to_follow:user_card:follow"
OTHER = "web:home:timeline:stream:tweet:impression"
NAMES = [IMP, CLICK, FOLLOW, OTHER]


@pytest.fixture
def d():
    return EventDictionary(NAMES)


def _record(d, names, user_id=1, duration=10):
    return SessionSequenceRecord(
        user_id=user_id, session_id=f"s{user_id}", ip="1.1.1.1",
        session_sequence=d.encode(names), duration=duration)


class TestRates:
    def test_ctr_counts_ordered_clicks(self, d):
        records = [_record(d, [IMP, IMP, CLICK]),
                   _record(d, [IMP], user_id=2),
                   _record(d, [CLICK], user_id=3)]  # click w/o impression
        report = ctr("wtf", IMP, CLICK, d, records)
        assert report.impressions == 3
        assert report.actions == 1  # orphan click not counted (ordered)
        assert report.rate == pytest.approx(1 / 3)
        assert report.sessions == 3

    def test_unordered_mode_counts_all_actions(self, d):
        records = [_record(d, [CLICK, IMP])]
        rates = FeatureRates("wtf", IMP, CLICK, d,
                             followed_within_session=False)
        assert rates.measure(records).actions == 1

    def test_ftr(self, d):
        records = [_record(d, [IMP, CLICK, FOLLOW]),
                   _record(d, [IMP], user_id=2)]
        report = ftr("wtf", IMP, FOLLOW, d, records)
        assert report.actions == 1
        assert report.impressions == 2

    def test_user_filter_subsets(self, d):
        records = [_record(d, [IMP, CLICK], user_id=1),
                   _record(d, [IMP], user_id=2)]
        report = ctr("wtf", IMP, CLICK, d, records,
                     user_filter=lambda r: r.user_id == 1)
        assert report.sessions == 1
        assert report.impressions == 1

    def test_zero_impressions_zero_rate(self, d):
        report = ctr("wtf", IMP, CLICK, d, [_record(d, [OTHER])])
        assert report.rate == 0.0

    def test_realistic_ctr_band(self, dictionary, sequence_records):
        """On the generated workload, who-to-follow CTR is a plausible
        single-digit percentage, and FTR <= CTR + follow noise."""
        report = ctr("wtf", "*:user_card:impression", "*:user_card:click",
                     dictionary, sequence_records)
        assert 0.01 < report.rate < 0.5
        assert report.impressions > 50


class TestNavigation:
    def test_transition_counts(self, d):
        records = [_record(d, [IMP, CLICK, IMP])]
        counts = transition_counts(records, d)
        assert counts[(IMP, CLICK)] == 1
        assert counts[(CLICK, IMP)] == 1

    def test_followed_by_anywhere(self, d):
        records = [_record(d, [IMP, OTHER, CLICK])]
        rate = followed_by(records, d, IMP, CLICK)
        assert rate.antecedents == 1
        assert rate.followed == 1
        assert rate.rate == 1.0

    def test_followed_by_immediately(self, d):
        records = [_record(d, [IMP, OTHER, CLICK])]
        rate = followed_by(records, d, IMP, CLICK, immediately=True)
        assert rate.followed == 0

    def test_feature_usage(self, d):
        records = [_record(d, [IMP]), _record(d, [OTHER], user_id=2)]
        using, total = feature_usage(records, d, "*:*:*:*:user_card:*")
        assert (using, total) == (1, 2)

    def test_top_transitions_on_workload(self, dictionary, sequence_records):
        top = top_transitions(sequence_records, dictionary, n=5)
        assert len(top) == 5
        counts = [count for __, count in top]
        assert counts == sorted(counts, reverse=True)
        # timeline impressions chain is the most common transition
        (a, b), __ = top[0]
        assert a.endswith(":impression") and b.endswith(":impression")


class TestBucketLabel:
    @pytest.mark.parametrize("duration,label", [
        (0, "0-30s"), (29, "0-30s"), (30, "30-60s"), (299, "60-300s"),
        (1800, "1800s+"), (10 ** 6, "1800s+"),
    ])
    def test_buckets(self, duration, label):
        assert bucket_label(duration, DEFAULT_DURATION_BUCKETS) == label


class TestDashboard:
    def test_summarize_day(self, date, dictionary, sequence_records):
        summary = summarize_day(date, sequence_records, dictionary)
        assert summary.sessions == len(sequence_records)
        assert summary.events == sum(r.num_events for r in sequence_records)
        assert 0 < summary.distinct_users <= summary.sessions
        assert sum(summary.sessions_by_client.values()) == summary.sessions
        assert sum(summary.duration_histogram.values()) == summary.sessions
        assert summary.mean_session_events > 1

    def test_birdbrain_time_series(self, date, dictionary, sequence_records):
        board = BirdBrain()
        day1 = summarize_day(date, sequence_records, dictionary)
        day2 = summarize_day((date[0], date[1], date[2] + 1),
                             sequence_records[: len(sequence_records) // 2],
                             dictionary)
        board.add_day(day1)
        board.add_day(day2)
        series = board.sessions_over_time()
        assert len(series) == 2
        assert series[0][1] == day1.sessions
        assert board.growth_rate() == pytest.approx(
            day2.sessions / day1.sessions - 1)

    def test_birdbrain_drilldowns(self, date, dictionary, sequence_records):
        board = BirdBrain()
        board.add_day(summarize_day(date, sequence_records, dictionary))
        by_client = board.sessions_by_client(date)
        assert set(by_client) <= {"web", "iphone", "android", "ipad",
                                  "unknown"}
        share = board.client_share_over_time("web")
        assert 0 < share[0][1] < 1

    def test_growth_rate_needs_two_days(self):
        assert BirdBrain().growth_rate() is None

    def test_summary_empty_day(self, date, dictionary):
        summary = summarize_day(date, [], dictionary)
        assert summary.sessions == 0
        assert summary.mean_session_events == 0.0
