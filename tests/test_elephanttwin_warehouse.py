"""Warehouse-integrated Elephant Twin: per-hour partitions, staleness.

Covers the stale-index bugfix (splits the index never saw are must-scan
work, not silently dropped), the MapReduce build job and its crash-safe
commit protocol, incremental maintenance, executor pushdown, and the
multi-field (event name + user id) query paths. Every test builds its
own mini warehouse -- the shared session fixtures are never mutated.
"""

import logging

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core.builder import write_day_events
from repro.core.event import CLIENT_EVENTS_CATEGORY, ClientEvent
from repro.core.names import EventPattern
from repro.elephanttwin.buildjob import (
    WarehouseIndex,
    build_day_indexes,
    build_hour_index,
    hour_dirs_of_day,
    index_status,
    load_hour_partition,
)
from repro.elephanttwin.index import BlockIndex
from repro.elephanttwin.inputformat import (
    IndexedEventsLoader,
    IndexedInputFormat,
)
from repro.elephanttwin.manifest import (
    STATUS_FRESH,
    STATUS_MISSING,
    STATUS_STALE,
    partition_status,
)
from repro.faults.injector import (
    KIND_CRASH,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    set_default_injector,
)
from repro.hdfs.layout import LogHour, hour_index_dir, millis_for_hour
from repro.hdfs.namenode import HDFS, FileStatus
from repro.mapreduce.inputformats import FileInputFormat
from repro.mapreduce.jobtracker import JobTracker
from repro.pig.loaders import ClientEventsLoader
from repro.pig.relation import PigServer
from repro.thriftlike.codegen import ThriftFileFormat

MDATE = (2012, 6, 15)
RARE = "web:signup:step_confirm:form:button:submit"
COMMON = "web:home:timeline:stream:tweet:impression"
RARE_PATTERN = "*:signup:*:*:*:*"

_FMT = ThriftFileFormat(ClientEvent)


def _event(name: str, user: int, ts: int) -> ClientEvent:
    return ClientEvent.make(name, user_id=user, session_id=f"s{user}",
                            ip="10.0.0.1", timestamp=ts)


def _hour(h: int) -> LogHour:
    return LogHour(CLIENT_EVENTS_CATEGORY, *MDATE, h)


def _mini_world(codec: str = "zlib", hours=(3, 4),
                events_per_hour: int = 40, block_size: int = 512) -> HDFS:
    """A tiny warehouse: a few hours of events, mostly COMMON, some RARE."""
    fs = HDFS(block_size=block_size)
    events = []
    for h in hours:
        base = millis_for_hour(_hour(h))
        for i in range(events_per_hour):
            name = RARE if i % 20 == 0 else COMMON
            events.append(_event(name, user=i % 5, ts=base + i * 500))
    write_day_events(fs, events, *MDATE, events_per_file=10, codec=codec)
    return fs


def _matching_rows(fmt, pattern: str):
    matcher = EventPattern(pattern)
    return sorted(
        record.to_bytes()
        for split in fmt.splits()
        for record in fmt.read_split(split)
        if matcher.matches(record.event_name))


class TestStaleIndexRegression:
    """The bugfix: unknown splits are must-scan, never dropped."""

    def test_late_file_rows_survive(self):
        fs = _mini_world()
        build_day_indexes(fs, *MDATE)
        loader = ClientEventsLoader(fs, *MDATE)
        full_before = _matching_rows(loader.input_format(), RARE_PATTERN)

        # An hour's worth of data lands *after* the build.
        base = millis_for_hour(_hour(5))
        late = [_event(RARE, user=9, ts=base + i) for i in range(5)]
        fs.create(f"{_hour(5).path()}/late-00000", _FMT.encode(late),
                  codec="zlib")

        fmt = loader.indexed_input_format(RARE_PATTERN)
        rows = _matching_rows(fmt, RARE_PATTERN)
        full = _matching_rows(ClientEventsLoader(fs, *MDATE).input_format(),
                              RARE_PATTERN)
        assert rows == full
        assert len(rows) == len(full_before) + 5
        assert fmt.unindexed_splits > 0
        assert fmt.skipped_splits > 0  # covered hours still prune

    def test_old_behaviour_would_have_dropped_rows(self):
        """The historical bug, reconstructed: consulting only postings
        (no coverage) drops every split the index never saw."""
        fs = _mini_world()
        build_day_indexes(fs, *MDATE)
        base = millis_for_hour(_hour(5))
        fs.create(f"{_hour(5).path()}/late-00000",
                  _FMT.encode([_event(RARE, user=9, ts=base)]),
                  codec="zlib")
        loader = ClientEventsLoader(fs, *MDATE)
        merged = WarehouseIndex.discover(
            fs, hour_dirs_of_day(fs, CLIENT_EVENTS_CATEGORY, *MDATE)
        ).field("event")
        buggy = BlockIndex(postings=merged.postings,
                           total_splits=merged.total_splits, covered={})
        # With an empty coverage map every split is must-scan: the new
        # format refuses to prune what it cannot prove empty.
        terms = [t for t in merged.terms()
                 if EventPattern(RARE_PATTERN).matches(t)]
        fmt = IndexedInputFormat(loader.input_format(), buggy, terms)
        assert fmt.splits() == loader.input_format().splits()
        assert fmt.unindexed_splits == len(loader.input_format().splits())

    def test_grown_file_invalidates_whole_path(self):
        """A file gaining blocks shifts every split's record range, so
        the whole path falls back to must-scan."""
        fs = _mini_world(codec="none", block_size=256)
        build_day_indexes(fs, *MDATE)
        loader = ClientEventsLoader(fs, *MDATE)
        target = loader.paths()[0]
        blocks_before = fs.status(target).block_count
        base = millis_for_hour(_hour(3))
        fs.append(target, _FMT.encode(
            [_event(RARE, user=8, ts=base + i) for i in range(30)]))
        assert fs.status(target).block_count > blocks_before

        fmt = loader.indexed_input_format(RARE_PATTERN)
        rows = _matching_rows(fmt, RARE_PATTERN)
        full = _matching_rows(loader.input_format(), RARE_PATTERN)
        assert rows == full
        assert fmt.unindexed_splits >= fs.status(target).block_count
        assert partition_status(fs, _hour(3).path()) == STATUS_STALE


class TestInputSplitClamp:
    """Trailing blocks must never report negative scan bytes."""

    class _StubFS:
        """Status lies about block count: 7 blocks for 10 bytes."""

        def status(self, path):
            return FileStatus(path=path, is_dir=False, length=10,
                              block_count=7)

        def open_bytes(self, path):
            return b""

    def test_lengths_clamped_and_sum_preserved(self):
        fmt = FileInputFormat(self._StubFS(), ["/f"], lambda data: [])
        splits = fmt.splits()
        assert len(splits) == 7
        assert all(split.length_bytes >= 0 for split in splits)
        assert sum(split.length_bytes for split in splits) == 10


class TestZeroMatchedTerms:
    """A pattern matching no indexed terms is loud and still complete."""

    def test_warns_and_scans_unindexed_data(self, caplog):
        fs = _mini_world()
        build_day_indexes(fs, *MDATE)
        new_name = "web:newfeature:page:panel:button:click"
        base = millis_for_hour(_hour(5))
        fs.create(f"{_hour(5).path()}/late-00000",
                  _FMT.encode([_event(new_name, user=3, ts=base + i)
                               for i in range(4)]),
                  codec="zlib")

        loader = ClientEventsLoader(fs, *MDATE)
        merged = WarehouseIndex.discover(
            fs, hour_dirs_of_day(fs, CLIENT_EVENTS_CATEGORY, *MDATE)
        ).field("event")
        iloader = IndexedEventsLoader(loader, merged, "web:newfeature:*")
        assert iloader.matched_terms == []
        with caplog.at_level(logging.WARNING,
                             logger="repro.elephanttwin.inputformat"):
            fmt = iloader.input_format()
        assert any("matched no indexed" in rec.message
                   for rec in caplog.records)
        rows = _matching_rows(fmt, "web:newfeature:*")
        assert len(rows) == 4  # the unindexed hour was scanned
        assert fmt.unindexed_splits > 0


class TestBlockIndexRoundTrip:
    """to_bytes/from_bytes is exact, including non-BMP code points."""

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        postings=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.sets(st.tuples(st.text(min_size=1, max_size=8),
                              st.integers(0, 9)), max_size=4),
            max_size=5),
        covered=st.dictionaries(st.text(min_size=1, max_size=8),
                                st.integers(0, 9), max_size=4),
        total=st.integers(0, 50),
    )
    @example(postings={"\U0001f426:tweet": {("/logs/\U0001d54b", 3)}},
             covered={"/logs/\U0001d54b": 4}, total=4)
    def test_roundtrip(self, postings, covered, total):
        index = BlockIndex(postings=postings, total_splits=total,
                           covered=covered)
        loaded = BlockIndex.from_bytes(index.to_bytes())
        assert loaded.postings == postings
        assert loaded.covered == covered
        assert loaded.total_splits == total

    def test_legacy_payload_has_empty_coverage(self):
        """Pre-coverage payloads deserialize stale-safe: prune nothing."""
        legacy = (b'{"postings": {"a": [["/f", 0]]}, "total_splits": 1}')
        index = BlockIndex.from_bytes(legacy)
        assert index.covered == {}
        assert not index.covers("/f", 0)


class TestCrashSafety:
    """A crashed build leaves no half-written, consultable partition."""

    SITES = ["pre_postings", "pre_manifest", "pre_commit", "pre_rename"]

    @pytest.mark.parametrize("site", SITES)
    def test_first_build_crash_leaves_nothing(self, site):
        fs = _mini_world(hours=(3,))
        directory = _hour(3).path()
        plan = FaultPlan()
        plan.add(f"elephanttwin.build.{site}", KIND_CRASH, max_fires=1)
        set_default_injector(FaultInjector(plan))
        try:
            with pytest.raises(InjectedCrash):
                build_hour_index(fs, directory)
        finally:
            set_default_injector(None)
        assert load_hour_partition(fs, directory) is None
        assert partition_status(fs, directory) == STATUS_MISSING
        # Re-running converges to a committed, fresh partition.
        partition = build_hour_index(fs, directory)
        assert partition is not None
        assert partition_status(fs, directory) == STATUS_FRESH

    def test_pre_commit_crash_keeps_old_partition(self):
        """Before the old partition is dropped, readers keep seeing it."""
        fs = _mini_world(hours=(3,))
        directory = _hour(3).path()
        first = build_hour_index(fs, directory)
        plan = FaultPlan()
        plan.add("elephanttwin.build.pre_commit", KIND_CRASH, max_fires=1)
        set_default_injector(FaultInjector(plan))
        try:
            with pytest.raises(InjectedCrash):
                build_hour_index(fs, directory)
        finally:
            set_default_injector(None)
        survivor = load_hour_partition(fs, directory)
        assert survivor is not None
        assert survivor.manifest.files == first.manifest.files

    def test_pre_rename_crash_degrades_to_must_scan(self):
        """Between drop and rename there is no partition -- queries scan
        everything rather than trusting the staged tmp files."""
        fs = _mini_world(hours=(3,))
        directory = _hour(3).path()
        build_hour_index(fs, directory)
        plan = FaultPlan()
        plan.add("elephanttwin.build.pre_rename", KIND_CRASH, max_fires=1)
        set_default_injector(FaultInjector(plan))
        try:
            with pytest.raises(InjectedCrash):
                build_hour_index(fs, directory)
        finally:
            set_default_injector(None)
        assert load_hour_partition(fs, directory) is None
        loader = ClientEventsLoader(fs, *MDATE)
        assert loader.indexed_input_format(RARE_PATTERN) is None
        # The staged tmp survives on disk but is invisible to readers.
        assert fs.glob_files(f"{directory}/_index.tmp")
        assert not fs.is_file(f"{hour_index_dir(directory)}/manifest.json")


class TestIncrementalMaintenance:
    def test_fresh_hours_are_skipped(self):
        fs = _mini_world(hours=(3, 4))
        first = build_day_indexes(fs, *MDATE)
        assert first.hours_built == 2
        again = build_day_indexes(fs, *MDATE)
        assert again.hours_built == 0
        assert len(again.skipped_fresh) == 2

    def test_only_changed_hour_rebuilds(self):
        fs = _mini_world(hours=(3, 4))
        build_day_indexes(fs, *MDATE)
        base = millis_for_hour(_hour(4))
        fs.create(f"{_hour(4).path()}/late-00000",
                  _FMT.encode([_event(RARE, user=7, ts=base)]),
                  codec="zlib")
        statuses = dict(index_status(fs, *MDATE))
        assert statuses[_hour(3).path()] == STATUS_FRESH
        assert statuses[_hour(4).path()] == STATUS_STALE
        rebuilt = build_day_indexes(fs, *MDATE)
        assert rebuilt.built == [_hour(4).path()]
        assert all(status == STATUS_FRESH
                   for __, status in index_status(fs, *MDATE))

    def test_force_rebuilds_everything(self):
        fs = _mini_world(hours=(3, 4))
        build_day_indexes(fs, *MDATE)
        forced = build_day_indexes(fs, *MDATE, force=True)
        assert forced.hours_built == 2

    def test_status_missing_before_any_build(self):
        fs = _mini_world(hours=(3,))
        assert index_status(fs, *MDATE) == [(_hour(3).path(),
                                             STATUS_MISSING)]


class TestExecutorPushdown:
    """load(...).filter_events(...) plans use the index automatically."""

    def test_same_rows_fewer_map_tasks(self):
        fs = _mini_world(hours=(3, 4, 5), events_per_hour=60)
        build_day_indexes(fs, *MDATE)
        t_full, t_fast = JobTracker(), JobTracker()
        matcher = EventPattern(RARE_PATTERN)
        full = (PigServer(t_full).load(ClientEventsLoader(fs, *MDATE))
                .filter(lambda e: matcher.matches(e.event_name)).dump())
        fast = (PigServer(t_fast).load(ClientEventsLoader(fs, *MDATE))
                .filter_events(RARE_PATTERN).dump())
        assert sorted(e.to_bytes() for e in full) == \
            sorted(e.to_bytes() for e in fast)
        assert t_fast.total_map_tasks() < t_full.total_map_tasks()

    def test_no_partitions_means_plain_scan(self):
        fs = _mini_world(hours=(3,))
        rows = (PigServer(JobTracker())
                .load(ClientEventsLoader(fs, *MDATE))
                .filter_events(RARE_PATTERN).dump())
        matcher = EventPattern(RARE_PATTERN)
        expected = [r for r in
                    PigServer().load(ClientEventsLoader(fs, *MDATE)).dump()
                    if matcher.matches(r.event_name)]
        assert len(rows) == len(expected) > 0

    def test_user_field_pushdown(self):
        from repro.analytics.counting import events_for_user

        fs = _mini_world(hours=(3, 4))
        build_day_indexes(fs, *MDATE)
        t_user = JobTracker()
        rows = events_for_user(fs, MDATE, 2, tracker=t_user)
        assert rows
        assert all(r.user_id == 2 for r in rows)
        expected = [r for r in
                    PigServer().load(ClientEventsLoader(fs, *MDATE)).dump()
                    if r.user_id == 2]
        assert sorted(r.to_bytes() for r in rows) == \
            sorted(r.to_bytes() for r in expected)

    def test_count_events_selective_matches_raw(self):
        from repro.analytics.counting import (
            count_events_raw,
            count_events_selective,
        )

        fs = _mini_world(hours=(3, 4))
        build_day_indexes(fs, *MDATE)
        selective = count_events_selective(fs, MDATE, RARE_PATTERN)
        raw = count_events_raw(fs, MDATE, RARE_PATTERN)
        assert selective == raw > 0


class TestBuildBackends:
    """The build is a real MR job: parallel backends give identical
    partitions."""

    def test_serial_threads_parity(self):
        serial_fs = _mini_world(hours=(3, 4))
        threads_fs = _mini_world(hours=(3, 4))
        directory = _hour(3).path()
        a = build_hour_index(serial_fs, directory, backend="serial")
        b = build_hour_index(threads_fs, directory, backend="threads",
                             max_workers=4)
        assert a.manifest.files == b.manifest.files
        assert a.fields.keys() == b.fields.keys()
        for name in a.fields:
            assert a.fields[name].postings == b.fields[name].postings

    def test_multi_field_partitions(self):
        fs = _mini_world(hours=(3,))
        partition = build_hour_index(fs, _hour(3).path())
        assert set(partition.fields) == {"event", "user"}
        assert set(partition.manifest.fields) == {"event", "user"}
        users = partition.fields["user"]
        assert set(users.terms()) == {"0", "1", "2", "3", "4"}


class TestPipelineIntegration:
    def test_oink_index_job_builds_partitions(self):
        """The daily ``index_build`` Oink job indexes what the mover
        published, leaving every partition fresh."""
        from repro.clock import LogicalClock
        from repro.core.builder import SessionSequenceBuilder
        from repro.hdfs.layout import staging_path
        from repro.logmover.mover import LogMover
        from repro.oink.pipelines import register_standard_pipeline
        from repro.oink.scheduler import Oink
        from repro.scribe.aggregator import encode_messages

        pdate = (2012, 1, 1)
        staging, warehouse = HDFS(), HDFS()
        for h in (3, 4):
            hour = LogHour(CLIENT_EVENTS_CATEGORY, *pdate, h)
            base = millis_for_hour(hour)
            messages = [
                _event(RARE if i % 10 == 0 else COMMON, user=i % 4,
                       ts=base + i * 1000).to_bytes()
                for i in range(30)
            ]
            staging.create(f"{staging_path('dc1', hour)}/part-00000",
                           encode_messages(messages), codec="zlib")
        clock = LogicalClock()
        oink = Oink(clock)
        mover = LogMover({"dc1": staging}, warehouse)
        state = register_standard_pipeline(
            oink, mover, SessionSequenceBuilder(warehouse),
            build_indexes=True)
        clock.advance_to(26 * 3600 * 1000)
        oink.run_pending()
        assert pdate in state.indexes
        assert state.indexes[pdate].hours_built == 2
        assert all(status == STATUS_FRESH
                   for __, status in index_status(warehouse, *pdate))


class TestCLI:
    def test_index_query_smoke(self, capsys):
        from repro.cli import main

        assert main(["index", "query", "--users", "30",
                     "--pattern", RARE_PATTERN]) == 0
        out = capsys.readouterr().out
        assert "unindexed plan agrees: True" in out

    def test_index_status_smoke(self, capsys):
        from repro.cli import main

        assert main(["index", "status", "--users", "30"]) == 0
        assert "missing" in capsys.readouterr().out
