"""Logical clock tests."""

import pytest

from repro.clock import (
    LogicalClock,
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    MILLIS_PER_MINUTE,
    MILLIS_PER_SECOND,
)


class TestConstants:
    def test_unit_relationships(self):
        assert MILLIS_PER_MINUTE == 60 * MILLIS_PER_SECOND
        assert MILLIS_PER_HOUR == 60 * MILLIS_PER_MINUTE
        assert MILLIS_PER_DAY == 24 * MILLIS_PER_HOUR


class TestLogicalClock:
    def test_starts_at_given_time(self):
        assert LogicalClock(500).now() == 500

    def test_default_start_is_zero(self):
        assert LogicalClock().now() == 0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock(-1)

    def test_advance(self):
        clock = LogicalClock()
        assert clock.advance(100) == 100
        assert clock.now() == 100

    def test_advance_zero_allowed(self):
        clock = LogicalClock(5)
        clock.advance(0)
        assert clock.now() == 5

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock().advance(-1)

    def test_advance_to(self):
        clock = LogicalClock(10)
        clock.advance_to(100)
        assert clock.now() == 100

    def test_advance_to_past_is_noop(self):
        clock = LogicalClock(100)
        clock.advance_to(50)
        assert clock.now() == 100
