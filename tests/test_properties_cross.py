"""Cross-cutting property tests: Pig vs reference semantics, MR
invariants, protocol robustness against garbage bytes."""

from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.engine import run_job
from repro.mapreduce.inputformats import InMemoryInputFormat
from repro.mapreduce.job import MapReduceJob
from repro.pig.relation import PigServer
from repro.thriftlike.protocol import reader_for
from repro.thriftlike.struct import ThriftStruct
from repro.thriftlike.types import FieldSpec, ProtocolError, TType, elem

rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5),     # key
              st.integers(min_value=-100, max_value=100)),  # value
    max_size=60)


class TestPigAgainstReference:
    """Every Pig plan must equal the obvious in-memory computation."""

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_group_by_sum(self, rows):
        pig = PigServer()
        out = (pig.from_rows(rows)
               .group_by(lambda r: r[0])
               .foreach(lambda g: (g["group"],
                                   sum(v for __, v in g["bag"])))
               .dump())
        reference = defaultdict(int)
        for key, value in rows:
            reference[key] += value
        assert dict(out) == dict(reference)

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_filter_foreach_pipeline(self, rows):
        pig = PigServer()
        out = (pig.from_rows(rows)
               .filter(lambda r: r[1] > 0)
               .foreach(lambda r: r[1] * 2)
               .dump())
        assert out == [v * 2 for __, v in rows if v > 0]

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_distinct(self, rows):
        pig = PigServer()
        out = pig.from_rows(rows).distinct().dump()
        assert sorted(out) == sorted(set(rows))

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_order_by(self, rows):
        pig = PigServer()
        out = pig.from_rows(rows).order_by(lambda r: (r[1], r[0])).dump()
        assert out == sorted(rows, key=lambda r: (r[1], r[0]))

    @given(rows_strategy, rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_join(self, left, right):
        pig = PigServer()
        out = (pig.from_rows(left)
               .join(pig.from_rows(right),
                     lambda r: r[0], lambda r: r[0])
               .dump())
        reference = [(l, r) for l in left for r in right if l[0] == r[0]]
        got = [(row["left"], row["right"]) for row in out]
        assert sorted(got) == sorted(reference)

    @given(rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_group_all_count(self, rows):
        pig = PigServer()
        out = (pig.from_rows(rows).group_all()
               .foreach(lambda g: len(g["bag"])).dump())
        # real Pig semantics: GROUP ALL over an empty relation yields no
        # rows (COUNT of nothing is no output, not 0)
        assert out == ([len(rows)] if rows else [])

    @given(rows_strategy, st.integers(min_value=0, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_limit(self, rows, n):
        pig = PigServer()
        assert pig.from_rows(rows).limit(n).dump() == rows[:n]


class TestMapReduceInvariants:
    @given(st.lists(st.text(alphabet="ab ", max_size=15), max_size=20),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_reducer_count_does_not_change_answer(self, docs, reducers):
        def mapper(record, ctx):
            for word in record.split():
                ctx.emit(word, 1)

        def reducer(key, values, ctx):
            ctx.emit(key, sum(values))

        job = MapReduceJob(name="wc",
                           input_format=InMemoryInputFormat(docs, 3),
                           mapper=mapper, reducer=reducer,
                           num_reducers=reducers)
        expected = Counter(w for doc in docs for w in doc.split())
        assert run_job(job).output_dict() == dict(expected)

    @given(st.lists(st.text(alphabet="ab ", max_size=15), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_combiner_equivalence(self, docs):
        """An algebraic combiner never changes the output."""

        def mapper(record, ctx):
            for word in record.split():
                ctx.emit(word, 1)

        def reduce_sum(key, values, ctx):
            ctx.emit(key, sum(values))

        plain = MapReduceJob(name="wc",
                             input_format=InMemoryInputFormat(docs, 2),
                             mapper=mapper, reducer=reduce_sum)
        combined = MapReduceJob(name="wc+c",
                                input_format=InMemoryInputFormat(docs, 2),
                                mapper=mapper, reducer=reduce_sum,
                                combiner=reduce_sum)
        assert run_job(plain).output_dict() == \
            run_job(combined).output_dict()

    @given(st.lists(st.integers(), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_splits_partition_records(self, records, per_split):
        fmt = InMemoryInputFormat(records, per_split)
        recovered = [r for s in fmt.splits() for r in fmt.read_split(s)]
        assert recovered == records


class _Fuzzable(ThriftStruct):
    FIELDS = (
        FieldSpec(1, "n", TType.I64),
        FieldSpec(2, "s", TType.STRING),
        FieldSpec(3, "xs", TType.LIST, value=elem(TType.I32)),
        FieldSpec(4, "m", TType.MAP, key=elem(TType.STRING),
                  value=elem(TType.I64)),
    )


class TestProtocolRobustness:
    """Garbage bytes must raise ProtocolError (or cleanly decode), never
    hang, loop, or raise unrelated exceptions."""

    @pytest.mark.parametrize("protocol", ["binary", "compact"])
    @given(data=st.binary(max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_fuzz_struct_decode(self, protocol, data):
        try:
            _Fuzzable.from_bytes(data, protocol)
        except (ProtocolError, UnicodeDecodeError, MemoryError,
                OverflowError):
            pass
        except Exception as exc:  # noqa: BLE001
            # struct validation errors are acceptable too
            from repro.thriftlike.types import ValidationError

            assert isinstance(exc, ValidationError), exc

    @pytest.mark.parametrize("protocol", ["binary", "compact"])
    @given(data=st.binary(max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_fuzz_skip(self, protocol, data):
        reader = reader_for(protocol, data)
        try:
            reader.skip(TType.STRUCT)
        except (ProtocolError, UnicodeDecodeError, MemoryError,
                OverflowError):
            pass

    @pytest.mark.parametrize("protocol", ["binary", "compact"])
    @given(payload=st.binary(max_size=100), flip=st.integers(0, 99),
           bit=st.integers(0, 7))
    @settings(max_examples=100, deadline=None)
    def test_bitflip_roundtrip_or_error(self, protocol, payload, flip, bit):
        """A single bit flip in a valid message either still decodes (the
        flip hit a value) or raises cleanly -- never corrupts silently
        into a crash elsewhere."""
        original = _Fuzzable(n=7, s="hello", xs=[1, 2], m={"k": 9})
        data = bytearray(original.to_bytes(protocol))
        index = flip % len(data)
        data[index] ^= 1 << bit
        try:
            decoded = _Fuzzable.from_bytes(bytes(data), protocol)
            # decoding succeeded; the object is a valid struct
            decoded.validate()
        except (ProtocolError, UnicodeDecodeError, MemoryError,
                OverflowError):
            pass
        except Exception as exc:  # noqa: BLE001
            from repro.thriftlike.types import ValidationError

            assert isinstance(exc, ValidationError), exc
