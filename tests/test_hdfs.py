"""HDFS tests: namespace, blocks, compression, atomic rename, outages."""

import pytest
from hypothesis import given, strategies as st

from repro.hdfs.codecs import CodecError, available_codecs, compress, decompress
from repro.hdfs.namenode import (
    FileExistsError_,
    FileNotFound,
    HDFS,
    HDFSError,
    HDFSUnavailableError,
    normalize,
)


class TestCodecs:
    @pytest.mark.parametrize("codec", available_codecs())
    def test_roundtrip(self, codec):
        data = b"hello world " * 100
        assert decompress(codec, compress(codec, data)) == data

    def test_zlib_compresses_repetitive_data(self):
        data = b"abc" * 1000
        assert len(compress("zlib", data)) < len(data) / 5

    def test_unknown_codec(self):
        with pytest.raises(CodecError):
            compress("lzma9000", b"x")
        with pytest.raises(CodecError):
            decompress("lzma9000", b"x")


class TestNormalize:
    def test_adds_leading_slash(self):
        assert normalize("a/b") == "/a/b"

    def test_collapses_dots(self):
        assert normalize("/a/./b/../c") == "/a/c"


class TestNamespace:
    def test_mkdirs_creates_parents(self):
        fs = HDFS()
        fs.mkdirs("/a/b/c")
        assert fs.is_dir("/a")
        assert fs.is_dir("/a/b")
        assert fs.is_dir("/a/b/c")

    def test_create_makes_parent_dirs(self):
        fs = HDFS()
        fs.create("/x/y/file", b"data")
        assert fs.is_dir("/x/y")
        assert fs.is_file("/x/y/file")

    def test_listdir(self):
        fs = HDFS()
        fs.create("/d/a", b"1")
        fs.create("/d/b", b"2")
        fs.mkdirs("/d/sub")
        assert fs.listdir("/d") == ["a", "b", "sub"]

    def test_listdir_missing_raises(self):
        with pytest.raises(FileNotFound):
            HDFS().listdir("/nope")

    def test_glob_files_sorted(self):
        fs = HDFS()
        for name in ("c", "a", "b"):
            fs.create(f"/g/{name}", b"x")
        assert fs.glob_files("/g") == ["/g/a", "/g/b", "/g/c"]

    def test_create_no_overwrite(self):
        fs = HDFS()
        fs.create("/f", b"1")
        with pytest.raises(FileExistsError_):
            fs.create("/f", b"2")
        fs.create("/f", b"2", overwrite=True)
        assert fs.open_bytes("/f") == b"2"

    def test_create_over_directory_fails(self):
        fs = HDFS()
        fs.mkdirs("/d")
        with pytest.raises(FileExistsError_):
            fs.create("/d", b"x")

    def test_status_file_and_dir(self):
        fs = HDFS(block_size=4)
        fs.create("/f", b"123456789")
        status = fs.status("/f")
        assert not status.is_dir
        assert status.length == 9
        assert status.block_count == 3
        assert fs.status("/").is_dir

    def test_delete_file(self):
        fs = HDFS()
        fs.create("/f", b"x")
        assert fs.delete("/f")
        assert not fs.exists("/f")
        assert not fs.delete("/f")

    def test_delete_nonempty_dir_requires_recursive(self):
        fs = HDFS()
        fs.create("/d/f", b"x")
        with pytest.raises(HDFSError):
            fs.delete("/d")
        fs.delete("/d", recursive=True)
        assert not fs.exists("/d/f")
        assert not fs.exists("/d")


class TestCompressionIO:
    def test_transparent_decompression(self):
        fs = HDFS()
        data = b"payload " * 500
        fs.create("/c", data, codec="zlib")
        assert fs.open_bytes("/c") == data
        assert fs.stored_bytes("/c") < len(data)
        assert fs.codec_of("/c") == "zlib"

    def test_append_uncompressed_only(self):
        fs = HDFS()
        fs.create("/plain", b"a")
        fs.append("/plain", b"b")
        assert fs.open_bytes("/plain") == b"ab"
        fs.create("/comp", b"a" * 100, codec="zlib")
        with pytest.raises(HDFSError):
            fs.append("/comp", b"b")

    def test_append_creates_missing_file(self):
        fs = HDFS()
        fs.append("/new", b"x")
        assert fs.open_bytes("/new") == b"x"


class TestBlocks:
    def test_block_count_drives_splits(self):
        fs = HDFS(block_size=10)
        fs.create("/f", b"x" * 35)
        blocks = fs.blocks("/f")
        assert len(blocks) == 4
        assert b"".join(blocks) == b"x" * 35

    def test_empty_file_has_one_block(self):
        fs = HDFS()
        fs.create("/f", b"")
        assert fs.status("/f").block_count == 1

    def test_total_accounting(self):
        fs = HDFS(block_size=10)
        fs.create("/d/a", b"x" * 25)
        fs.create("/d/b", b"y" * 5)
        assert fs.total_stored_bytes("/d") == 30
        assert fs.total_block_count("/d") == 4
        assert fs.file_count("/d") == 2


class TestRename:
    def test_rename_file(self):
        fs = HDFS()
        fs.create("/a/f", b"data")
        fs.rename("/a/f", "/b/g")
        assert fs.open_bytes("/b/g") == b"data"
        assert not fs.exists("/a/f")

    def test_rename_directory_tree_is_atomic_view(self):
        fs = HDFS()
        fs.create("/incoming/h/f1", b"1")
        fs.create("/incoming/h/f2", b"2")
        fs.rename("/incoming/h", "/logs/h")
        assert fs.glob_files("/logs/h") == ["/logs/h/f1", "/logs/h/f2"]
        assert not fs.exists("/incoming/h")

    def test_rename_to_existing_fails(self):
        fs = HDFS()
        fs.create("/a", b"1")
        fs.create("/b", b"2")
        with pytest.raises(FileExistsError_):
            fs.rename("/a", "/b")

    def test_rename_missing_source(self):
        with pytest.raises(FileNotFound):
            HDFS().rename("/none", "/dst")


class TestOutage:
    def test_writes_fail_during_outage(self):
        fs = HDFS()
        fs.set_available(False)
        with pytest.raises(HDFSUnavailableError):
            fs.create("/f", b"x")
        with pytest.raises(HDFSUnavailableError):
            fs.mkdirs("/d")
        fs.set_available(True)
        fs.create("/f", b"x")

    def test_reads_still_work_during_outage(self):
        # Our outage models the write path (what aggregators hit).
        fs = HDFS()
        fs.create("/f", b"x")
        fs.set_available(False)
        assert fs.open_bytes("/f") == b"x"


class TestProperties:
    @given(data=st.binary(max_size=2000),
           block_size=st.integers(min_value=1, max_value=64))
    def test_blocks_reassemble(self, data, block_size):
        fs = HDFS(block_size=block_size)
        fs.create("/f", data)
        assert b"".join(fs.blocks("/f")) == data

    @given(data=st.binary(max_size=2000))
    def test_compressed_roundtrip(self, data):
        fs = HDFS()
        fs.create("/f", data, codec="zlib")
        assert fs.open_bytes("/f") == data


class TestRenameGuards:
    def test_rename_into_self_rejected(self):
        fs = HDFS()
        fs.create("/a/f", b"x")
        with pytest.raises(HDFSError):
            fs.rename("/a", "/a/b")

    def test_rename_to_sibling_with_shared_prefix_ok(self):
        fs = HDFS()
        fs.create("/a/f", b"x")
        fs.rename("/a", "/ab")  # '/ab' is not inside '/a'
        assert fs.open_bytes("/ab/f") == b"x"
