"""Anonymization policy tests (§3.2)."""

import pytest

from repro.core.anonymize import Anonymizer
from repro.core.event import ClientEvent

NAME = "web:home:timeline:stream:tweet:impression"


def _event(user_id=7, session_id="cookie", ip="192.168.1.77"):
    return ClientEvent.make(NAME, user_id=user_id, session_id=session_id,
                            ip=ip, timestamp=0)


class TestAnonymizer:
    def test_requires_salt(self):
        with pytest.raises(ValueError):
            Anonymizer(b"")

    def test_user_id_deterministic_and_join_preserving(self):
        anon = Anonymizer(b"salt")
        assert anon.user_id(7) == anon.user_id(7)
        assert anon.user_id(7) != anon.user_id(8)

    def test_user_id_changes_with_salt(self):
        assert Anonymizer(b"a").user_id(7) != Anonymizer(b"b").user_id(7)

    def test_user_id_fits_i64(self):
        pseudo = Anonymizer(b"s").user_id(7)
        assert 0 <= pseudo < 2 ** 63

    def test_session_id_deterministic(self):
        anon = Anonymizer(b"salt")
        assert anon.session_id("c") == anon.session_id("c")
        assert anon.session_id("c") != anon.session_id("d")

    def test_ip_prefix_preserved(self):
        anon = Anonymizer(b"salt", keep_ip_prefix=True)
        assert anon.ip("192.168.1.77") == "192.168.1.0"

    def test_ip_full_pseudonym(self):
        anon = Anonymizer(b"salt", keep_ip_prefix=False)
        out = anon.ip("192.168.1.77")
        assert out != "192.168.1.77"
        assert out == anon.ip("192.168.1.77")

    def test_non_ipv4_always_pseudonymized(self):
        anon = Anonymizer(b"salt", keep_ip_prefix=True)
        assert anon.ip("::1") != "::1"

    def test_event_anonymization_preserves_everything_else(self):
        anon = Anonymizer(b"salt")
        event = _event()
        out = anon.event(event)
        assert out.user_id != event.user_id
        assert out.session_id != event.session_id
        assert out.ip == "192.168.1.0"
        assert out.event_name == event.event_name
        assert out.timestamp == event.timestamp

    def test_sessions_survive_anonymization(self):
        """The paper's motivation: consistent fields mean group-by still
        reconstructs sessions after anonymization."""
        from repro.core.sessionizer import Sessionizer

        anon = Anonymizer(b"salt")
        events = [_event(user_id=1, session_id="s1"),
                  _event(user_id=1, session_id="s1"),
                  _event(user_id=2, session_id="s2")]
        for i, e in enumerate(events):
            e.timestamp = i * 1000
        before = Sessionizer().sessionize(events)
        after = Sessionizer().sessionize(list(anon.events(events)))
        # pseudonyms reorder users, so compare the multiset of sizes
        assert sorted(len(s.events) for s in before) == \
            sorted(len(s.events) for s in after)
