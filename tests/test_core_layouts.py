"""Tests for the §4.2 alternative physical layouts (ablation baselines)."""

import pytest

from repro.core.layouts import (
    ColumnarLayout,
    SessionReorganizedLayout,
    reorganize_day,
)
from repro.core.builder import SessionSequenceBuilder
from repro.core.event import ClientEvent
from repro.core.sessionizer import Sessionizer


class TestSessionReorganizedLayout:
    @pytest.fixture(scope="class")
    def reorganized(self, warehouse, date):
        layout, directory = reorganize_day(warehouse, *date)
        return layout, directory

    def test_sessions_roundtrip(self, reorganized, warehouse, date):
        layout, __ = reorganized
        builder = SessionSequenceBuilder(warehouse)
        truth = Sessionizer().sessionize(
            list(builder.iter_day_events(*date)))
        fmt = layout.input_format(*date)
        recovered = [session for split in fmt.splits()
                     for session in fmt.read_split(split)]
        assert len(recovered) == len(truth)
        assert sum(len(s) for s in recovered) == \
            sum(len(s.events) for s in truth)

    def test_sessions_are_contiguous_events(self, reorganized, date):
        layout, __ = reorganized
        fmt = layout.input_format(*date)
        split = fmt.splits()[0]
        for session_events in fmt.read_split(split)[:20]:
            assert all(isinstance(e, ClientEvent) for e in session_events)
            keys = {(e.user_id, e.session_id) for e in session_events}
            assert len(keys) == 1
            times = [e.timestamp for e in session_events]
            assert times == sorted(times)

    def test_size_comparable_to_raw(self, reorganized, warehouse, date,
                                    build_result):
        """The rewrite keeps full Thrift payloads: storage stays within
        ~2x of the raw logs (vs ~50x smaller for sequences)."""
        __, directory = reorganized
        reorganized_bytes = warehouse.total_stored_bytes(directory)
        assert reorganized_bytes > build_result.raw_bytes * 0.5
        assert reorganized_bytes < build_result.raw_bytes * 2

    def test_rematerialize_is_idempotent(self, warehouse, date):
        layout1, dir1 = reorganize_day(warehouse, *date)
        files_first = warehouse.glob_files(dir1)
        layout2, dir2 = reorganize_day(warehouse, *date)
        assert warehouse.glob_files(dir2) == files_first


class TestColumnarLayout:
    @pytest.fixture(scope="class")
    def columnar(self, warehouse, date):
        layout = ColumnarLayout(warehouse)
        directory = layout.materialize(*date)
        return layout, directory

    def test_rows_match_raw_events(self, columnar, warehouse, date):
        layout, __ = columnar
        builder = SessionSequenceBuilder(warehouse)
        truth = sorted((e.user_id, e.session_id, e.event_name)
                       for e in builder.iter_day_events(*date))
        fmt = layout.input_format(*date)
        rows = sorted((r.user_id, r.session_id, r.event_name)
                      for split in fmt.splits()
                      for r in fmt.read_split(split))
        assert rows == truth

    def test_splits_mirror_raw_blocks(self, columnar, warehouse, date):
        """RCFile's defining limitation: map-task count tracks the raw
        data's blocks, not the (smaller) column bytes."""
        from repro.hdfs.layout import day_path

        layout, __ = columnar
        raw_blocks = warehouse.total_block_count(
            day_path("client_events", *date))
        fmt = layout.input_format(*date)
        assert len(fmt.splits()) == raw_blocks

    def test_column_bytes_much_smaller(self, columnar, warehouse, date,
                                       build_result):
        __, directory = columnar
        column_bytes = warehouse.total_stored_bytes(directory)
        assert column_bytes < build_result.raw_bytes / 5

    def test_split_byte_accounting_sums_to_store(self, columnar):
        layout, __ = columnar
        fmt = layout.input_format(2012, 3, 10)
        splits = fmt.splits()
        by_path = {}
        for split in splits:
            by_path.setdefault(split.path, 0)
            by_path[split.path] += split.length_bytes
        for path, total in by_path.items():
            assert total == layout._warehouse.stored_bytes(path)

    def test_records_partitioned_without_loss(self, columnar):
        layout, __ = columnar
        fmt = layout.input_format(2012, 3, 10)
        seen = sum(len(fmt.read_split(s)) for s in fmt.splits())
        full = sum(len(fmt._rows_of(p)) for p in fmt._paths)
        assert seen == full
