"""Oink tests: scheduling, dependencies, gates, retries, traces, rollups."""

import pytest

from repro.clock import LogicalClock, MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.oink.scheduler import (
    CycleError,
    Oink,
    OinkError,
    UnknownDependencyError,
)
from repro.oink.rollups import ROLLUP_LEVELS, RollupJob, rollup_keys
from repro.oink.traces import ExecutionTrace, TraceLog


class TestScheduling:
    def test_hourly_job_runs_once_per_elapsed_hour(self):
        clock = LogicalClock()
        oink = Oink(clock)
        runs = []
        oink.hourly("tick", runs.append)
        oink.run_until(3 * MILLIS_PER_HOUR)
        assert runs == [0, MILLIS_PER_HOUR, 2 * MILLIS_PER_HOUR]

    def test_period_not_due_until_window_elapsed(self):
        clock = LogicalClock()
        oink = Oink(clock)
        runs = []
        oink.hourly("tick", runs.append)
        clock.advance(MILLIS_PER_HOUR - 1)
        oink.run_pending()
        assert runs == []
        clock.advance(1)
        oink.run_pending()
        assert runs == [0]

    def test_daily_job(self):
        clock = LogicalClock()
        oink = Oink(clock)
        runs = []
        oink.daily("nightly", runs.append)
        oink.run_until(2 * MILLIS_PER_DAY, step_ms=MILLIS_PER_DAY)
        assert runs == [0, MILLIS_PER_DAY]

    def test_duplicate_name_rejected(self):
        oink = Oink(LogicalClock())
        oink.hourly("a", lambda p: None)
        with pytest.raises(OinkError):
            oink.hourly("a", lambda p: None)

    def test_nonpositive_interval_rejected(self):
        oink = Oink(LogicalClock())
        with pytest.raises(OinkError):
            oink.schedule("bad", lambda p: None, 0)


class TestDependencies:
    def test_b_runs_after_a(self):
        clock = LogicalClock()
        oink = Oink(clock)
        order = []
        oink.hourly("a", lambda p: order.append(("a", p)))
        oink.hourly("b", lambda p: order.append(("b", p)),
                    depends_on=["a"])
        oink.run_until(MILLIS_PER_HOUR)
        assert order == [("a", 0), ("b", 0)]

    def test_failed_dependency_blocks_dependent(self):
        clock = LogicalClock()
        oink = Oink(clock)
        ran = []

        def failing(period):
            raise RuntimeError("boom")

        oink.hourly("a", failing)
        oink.hourly("b", ran.append, depends_on=["a"])
        oink.run_until(MILLIS_PER_HOUR)
        assert ran == []
        assert oink.traces.failures("a")

    def test_unknown_dependency(self):
        oink = Oink(LogicalClock())
        with pytest.raises(UnknownDependencyError):
            oink.hourly("b", lambda p: None, depends_on=["ghost"])

    def test_hourly_chain_to_daily(self):
        """A daily job depending on an hourly one waits for the hourly
        instance covering its period start."""
        clock = LogicalClock()
        oink = Oink(clock)
        ran = []
        oink.hourly("mover", lambda p: None)
        oink.daily("sequences", ran.append, depends_on=["mover"])
        oink.run_until(MILLIS_PER_DAY)
        assert ran == [0]

    def test_cycle_detection(self):
        clock = LogicalClock()
        oink = Oink(clock)
        oink.hourly("a", lambda p: None)
        job_b = oink.hourly("b", lambda p: None, depends_on=["a"])
        # Forge a cycle (the public API prevents it; simulate corruption).
        object.__setattr__(oink._jobs["a"], "depends_on", ("b",))
        clock.advance(MILLIS_PER_HOUR)
        with pytest.raises(CycleError):
            oink.run_pending()


class TestGatesAndRetries:
    def test_gate_blocks_until_open(self):
        clock = LogicalClock()
        oink = Oink(clock)
        ran = []
        open_flag = []
        oink.hourly("gated", ran.append, gate=lambda p: bool(open_flag))
        oink.run_until(MILLIS_PER_HOUR)
        assert ran == []
        open_flag.append(True)
        oink.run_pending()
        assert ran == [0]

    def test_retries_bounded(self):
        clock = LogicalClock()
        oink = Oink(clock)
        attempts = []

        def flaky(period):
            attempts.append(period)
            raise RuntimeError("always fails")

        oink.hourly("flaky", flaky, max_retries=2)
        oink.run_until(MILLIS_PER_HOUR)
        oink.run_pending()
        oink.run_pending()
        oink.run_pending()  # beyond max_retries: no more attempts
        assert len(attempts) == 3  # 1 try + 2 retries

    def test_success_after_retry(self):
        clock = LogicalClock()
        oink = Oink(clock)
        state = {"tries": 0}

        def eventually(period):
            state["tries"] += 1
            if state["tries"] < 2:
                raise RuntimeError("first time fails")

        oink.hourly("eventually", eventually, max_retries=3)
        oink.run_until(MILLIS_PER_HOUR)
        oink.run_pending()
        assert oink.completed("eventually", 0)
        assert len(oink.traces.successes("eventually")) == 1


class TestTraces:
    def test_trace_fields(self):
        clock = LogicalClock()
        oink = Oink(clock)
        oink.hourly("t", lambda p: None)
        oink.run_until(MILLIS_PER_HOUR)
        trace = oink.traces.for_job("t")[0]
        assert trace.success is True
        assert trace.completed
        assert trace.duration_ms == 0  # logical clock does not advance in fn
        assert trace.period_start == 0

    def test_failure_records_error(self):
        clock = LogicalClock()
        oink = Oink(clock)

        def boom(period):
            raise ValueError("details here")

        oink.hourly("t", boom)
        oink.run_until(MILLIS_PER_HOUR)
        trace = oink.traces.failures("t")[0]
        assert "ValueError" in trace.error
        assert "details here" in trace.error

    def test_tracelog_queries(self):
        log = TraceLog()
        log.append(ExecutionTrace("a", 0, 0, 0, 1, True))
        log.append(ExecutionTrace("a", 1, 1, 1, 2, False, "err"))
        assert len(log) == 2
        assert len(log.successes("a")) == 1
        assert len(log.failures("a")) == 1
        assert log.succeeded("a", 0)
        assert not log.succeeded("a", 1)


class TestRollups:
    def test_rollup_keys_shapes(self):
        keys = dict(rollup_keys("web:home:timeline:stream:tweet:impression"))
        assert keys[5] == ("web", "home", "timeline", "stream", "tweet",
                           "impression")
        assert keys[4] == ("web", "home", "timeline", "stream", "*",
                           "impression")
        assert keys[1] == ("web", "*", "*", "*", "*", "impression")

    def test_rollup_job_counts(self, warehouse, date, workload):
        job = RollupJob(warehouse)
        result = job.run(*date, materialize=False)
        # Level-5 total must equal the day's event count (each event
        # contributes exactly one level-5 key).
        events_in_day = sum(result.tables[5].values())
        assert events_in_day > 0
        # Every level has the same total (each event fans to all levels).
        totals = {level: sum(result.tables[level].values())
                  for level in ROLLUP_LEVELS}
        assert len(set(totals.values())) == 1

    def test_rollup_aggregation_consistency(self, warehouse, date):
        """Level-1 counts are sums of level-5 counts with matching
        client+action."""
        result = RollupJob(warehouse).run(*date, materialize=False)
        level5, level1 = result.tables[5], result.tables[1]
        for (key, country, status), count in list(level1.items())[:20]:
            client, *_stars, action = key
            total = sum(
                c for (k, ctry, st), c in level5.items()
                if k[0] == client and k[5] == action
                and ctry == country and st == status
            )
            assert total == count

    def test_rollup_breakdowns(self, warehouse, date):
        result = RollupJob(warehouse).run(*date, materialize=False)
        some_key = next(iter(result.tables[1]))[0]
        total = result.count(1, some_key)
        by_status = (result.count(1, some_key, status="logged_in")
                     + result.count(1, some_key, status="logged_out"))
        assert total == by_status

    def test_rollup_materialize_and_load(self, date, workload):
        from repro.hdfs.namenode import HDFS
        from repro.workload.generator import load_warehouse_day

        fs = HDFS()
        load_warehouse_day(fs, workload)
        result = RollupJob(fs).run(*date)
        loaded = RollupJob.load(fs, *date)
        assert loaded.tables[5] == result.tables[5]
        assert loaded.tables[1] == result.tables[1]


class TestStandardPipeline:
    @pytest.fixture
    def pipeline_run(self):
        """Drive a full generated day through the Oink-scheduled
        production topology."""
        from repro.core.builder import SessionSequenceBuilder
        from repro.core.event import CLIENT_EVENTS_CATEGORY
        from repro.logmover.mover import LogMover
        from repro.oink.pipelines import register_standard_pipeline
        from repro.scribe.cluster import ScribeDeployment
        from repro.scribe.message import CategoryConfig, LogEntry
        from repro.workload.generator import WorkloadGenerator

        workload = WorkloadGenerator(num_users=80, seed=4).generate_day(
            2012, 1, 1)
        deployment = ScribeDeployment(["dc"], num_hosts=2,
                                      num_aggregators=2, seed=2,
                                      durable_aggregators=True)
        deployment.categories.register(
            CategoryConfig(CLIENT_EVENTS_CATEGORY, max_file_records=300))
        datacenter = deployment.datacenters["dc"]
        clock = deployment.clock
        oink = Oink(clock)
        mover = LogMover({"dc": datacenter.staging}, deployment.warehouse)
        builder = SessionSequenceBuilder(deployment.warehouse)
        state = register_standard_pipeline(
            oink, mover, builder,
            rollup_job=__import__("repro.oink.rollups",
                                  fromlist=["RollupJob"]).RollupJob(
                deployment.warehouse))

        for event in sorted(workload.events, key=lambda e: e.timestamp):
            clock.advance_to(event.timestamp)
            oink.run_pending()  # hourly movers fire as hours elapse
            datacenter.log_from(
                event.user_id,
                LogEntry(CLIENT_EVENTS_CATEGORY, event.to_bytes()),
                wrap=True)
            datacenter.flush()  # keep staging current for the mover
        clock.advance_to(MILLIS_PER_DAY + 2 * MILLIS_PER_HOUR)
        oink.run_pending()
        return oink, state, workload

    def test_dependency_chain_completed(self, pipeline_run):
        oink, state, __ = pipeline_run
        assert oink.traces.succeeded("session_sequences", 0)
        assert oink.traces.succeeded("rollups", 0)
        assert oink.traces.succeeded("catalog", 0)

    def test_hourly_mover_ran_per_hour(self, pipeline_run):
        oink, state, __ = pipeline_run
        mover_runs = oink.traces.successes("log_mover")
        assert len(mover_runs) >= 24
        assert state.hours_moved_for_day((2012, 1, 1)) > 12

    def test_artifacts_produced(self, pipeline_run):
        __, state, workload = pipeline_run
        build = state.builds[(2012, 1, 1)]
        assert build.sessions_built > 0
        rollups = state.rollups[(2012, 1, 1)]
        assert sum(rollups.tables[5].values()) == build.events_scanned
        catalog = state.catalogs[(2012, 1, 1)]
        assert len(catalog) == build.distinct_events

    def test_sequences_wait_for_mover(self):
        """With nothing moved, the daily build never fires."""
        from repro.core.builder import SessionSequenceBuilder
        from repro.hdfs.namenode import HDFS
        from repro.logmover.mover import LogMover
        from repro.oink.pipelines import register_standard_pipeline

        clock = LogicalClock()
        oink = Oink(clock)
        warehouse = HDFS()
        state = register_standard_pipeline(
            oink, LogMover({"dc": HDFS()}, warehouse),
            SessionSequenceBuilder(warehouse))
        clock.advance_to(2 * MILLIS_PER_DAY)
        oink.run_pending()
        assert state.builds == {}
        assert not oink.traces.for_job("session_sequences")


class TestInOrderExecution:
    """Within one job, periods run strictly in order: a blocked or
    failing period holds back its successors."""

    def test_gate_blocked_period_holds_back_later_periods(self):
        clock = LogicalClock()
        oink = Oink(clock)
        runs = []
        blocked = {0}
        oink.hourly("incremental", runs.append,
                    gate=lambda p: p // MILLIS_PER_HOUR not in blocked)
        clock.advance(3 * MILLIS_PER_HOUR)
        oink.run_pending()
        # Hours 1 and 2 must not execute ahead of gate-blocked hour 0.
        assert runs == []
        blocked.clear()
        oink.run_pending()
        assert runs == [0, MILLIS_PER_HOUR, 2 * MILLIS_PER_HOUR]

    def test_failed_period_blocks_successors_until_retries_exhausted(self):
        clock = LogicalClock()
        oink = Oink(clock)
        runs = []

        def flaky(period_start):
            runs.append(period_start)
            if period_start == 0:
                raise RuntimeError("boom")

        oink.hourly("flaky", flaky, max_retries=1)
        clock.advance(2 * MILLIS_PER_HOUR)
        oink.run_pending()
        assert runs == [0]  # hour 1 waits behind the failed hour 0
        oink.run_pending()
        assert runs == [0, 0]  # the retry, still blocking
        oink.run_pending()
        # Retries exhausted: hour 0 stops being due, hour 1 unblocks.
        assert runs == [0, 0, MILLIS_PER_HOUR]

    def test_dependency_blocked_period_holds_back_later_periods(self):
        clock = LogicalClock()
        oink = Oink(clock)
        upstream_done = []
        runs = []
        oink.hourly("upstream", upstream_done.append,
                    gate=lambda p: p >= MILLIS_PER_HOUR)
        oink.hourly("downstream", runs.append, depends_on=["upstream"])
        clock.advance(3 * MILLIS_PER_HOUR)
        oink.run_pending()
        # upstream hour 0 is gate-blocked, so downstream must run
        # nothing -- not even hours whose upstream instance succeeded.
        assert upstream_done == []
        assert runs == []


class TestCatchUp:
    def test_owed_periods_run_after_downtime(self):
        """Oink catches up on every period missed while it was down."""
        clock = LogicalClock()
        oink = Oink(clock)
        runs = []
        oink.daily("nightly", runs.append)
        clock.advance(3 * MILLIS_PER_DAY)  # scheduler 'down' for 3 days
        oink.run_pending()
        assert runs == [0, MILLIS_PER_DAY, 2 * MILLIS_PER_DAY]

    def test_catch_up_respects_dependencies(self):
        clock = LogicalClock()
        oink = Oink(clock)
        order = []
        oink.daily("a", lambda p: order.append(("a", p)))
        oink.daily("b", lambda p: order.append(("b", p)),
                   depends_on=["a"])
        clock.advance(2 * MILLIS_PER_DAY)
        oink.run_pending()
        assert order == [("a", 0), ("a", MILLIS_PER_DAY),
                         ("b", 0), ("b", MILLIS_PER_DAY)]
