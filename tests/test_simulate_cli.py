"""Tests for the multi-day simulation orchestrator and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.workload.simulate import WarehouseSimulation

ARGS_FAST = ["--users", "60", "--seed", "5"]


class TestWarehouseSimulation:
    @pytest.fixture(scope="class")
    def simulation(self):
        sim = WarehouseSimulation(num_users=80, seed=3,
                                  start=(2012, 4, 1),
                                  users_growth_per_day=40)
        sim.run_days(3)
        return sim

    def test_consecutive_dates(self, simulation):
        assert simulation.dates() == [(2012, 4, 1), (2012, 4, 2),
                                      (2012, 4, 3)]

    def test_month_boundary(self):
        sim = WarehouseSimulation(num_users=30, seed=1, start=(2012, 2, 28))
        sim.run_days(3)  # 2012 is a leap year
        assert sim.dates() == [(2012, 2, 28), (2012, 2, 29), (2012, 3, 1)]

    def test_growth_shows_in_dashboard(self, simulation):
        series = simulation.board.sessions_over_time()
        assert series[-1][1] > series[0][1]
        assert simulation.board.growth_rate() > 0

    def test_each_day_built(self, simulation):
        for date in simulation.dates():
            day = simulation.days[date]
            assert day.build.sessions_built == day.summary.sessions
            assert day.build.compression_factor > 10
            assert simulation.records(date)
            assert len(simulation.dictionary(date)) > 0

    def test_rollups_optional(self):
        sim = WarehouseSimulation(num_users=40, seed=2,
                                  compute_rollups=True)
        day = sim.run_days(1)[0]
        assert day.rollups is not None
        assert sum(day.rollups.tables[5].values()) > 0

    def test_through_scribe_matches_direct(self):
        """Delivery path must not change what lands in the warehouse."""
        direct = WarehouseSimulation(num_users=50, seed=9)
        direct.run_days(1)
        scribed = WarehouseSimulation(num_users=50, seed=9,
                                      through_scribe=True)
        scribed.run_days(1)
        date = direct.dates()[0]
        direct_day = direct.days[date]
        scribed_day = scribed.days[date]
        assert scribed_day.build.events_scanned == \
            direct_day.build.events_scanned
        assert scribed_day.summary.sessions == direct_day.summary.sessions

    def test_deterministic(self):
        a = WarehouseSimulation(num_users=40, seed=11)
        b = WarehouseSimulation(num_users=40, seed=11)
        day_a = a.run_days(1)[0]
        day_b = b.run_days(1)[0]
        assert day_a.summary.sessions == day_b.summary.sessions
        assert day_a.build.sequence_bytes == day_b.build.sequence_bytes


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_report(self, capsys):
        assert main(["report"] + ARGS_FAST) == 0
        out = capsys.readouterr().out
        assert "compression" in out
        assert "sessions" in out

    def test_count_sum(self, capsys):
        assert main(["count", "--pattern", "*:impression"] + ARGS_FAST) == 0
        out = capsys.readouterr().out
        assert "answers agree: True" in out

    def test_count_sessions_mode(self, capsys):
        assert main(["count", "--pattern", "*:query", "--sessions"]
                    + ARGS_FAST) == 0
        out = capsys.readouterr().out
        assert "sessions containing" in out
        assert "answers agree: True" in out

    def test_funnel(self, capsys):
        assert main(["funnel", "--client", "web", "--users", "200",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "(0," in out
        assert "abandonment:" in out

    def test_funnel_users_only(self, capsys):
        assert main(["funnel", "--users-only"] + ARGS_FAST) == 0
        assert "users" in capsys.readouterr().out

    def test_catalog_browse(self, capsys):
        assert main(["catalog", "--browse"] + ARGS_FAST) == 0
        out = capsys.readouterr().out
        assert "web" in out

    def test_catalog_browse_prefix(self, capsys):
        assert main(["catalog", "--browse", "web"] + ARGS_FAST) == 0
        assert "home" in capsys.readouterr().out

    def test_catalog_search(self, capsys):
        assert main(["catalog", "--search", "*:follow"] + ARGS_FAST) == 0
        out = capsys.readouterr().out
        assert "match" in out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "--days", "2", "--growth", "30"]
                    + ARGS_FAST) == 0
        out = capsys.readouterr().out
        assert out.count("2012-03-1") >= 2
        assert "growth" in out

    def test_bad_date_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "--date", "yesterday"])

    def test_deterministic_across_invocations(self, capsys):
        main(["count", "--pattern", "*:follow"] + ARGS_FAST)
        first = capsys.readouterr().out
        main(["count", "--pattern", "*:follow"] + ARGS_FAST)
        second = capsys.readouterr().out
        assert first == second


class TestCLITrend:
    def test_trend_counts(self, capsys):
        from repro.cli import main

        assert main(["trend", "--pattern", "*:impression", "--days", "2",
                     "--users", "50", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "count(*:impression)" in out
        assert "change over the window" in out

    def test_trend_sessions_mode(self, capsys):
        from repro.cli import main

        assert main(["trend", "--pattern", "*:query", "--sessions",
                     "--days", "2", "--users", "50", "--seed", "4"]) == 0
        assert "sessions_with" in capsys.readouterr().out


class TestIndexIntegration:
    def test_daily_index_built_and_usable(self):
        from repro.core.names import EventPattern
        from repro.elephanttwin.inputformat import IndexedEventsLoader
        from repro.pig.loaders import ClientEventsLoader
        from repro.pig.relation import PigServer

        sim = WarehouseSimulation(num_users=60, seed=8, build_index=True)
        sim.run_days(1)
        date = sim.dates()[0]
        index = sim.index(date)
        assert index.total_splits > 0

        pattern = "*:follow"
        matcher = EventPattern(pattern)
        base = ClientEventsLoader(sim.warehouse, *date)
        indexed = IndexedEventsLoader(base, index, pattern)
        full = (PigServer().load(base)
                .filter(lambda e: matcher.matches(e.event_name)).dump())
        fast = (PigServer().load(indexed)
                .filter(lambda e: matcher.matches(e.event_name)).dump())
        assert sorted(e.to_bytes() for e in full) == \
            sorted(e.to_bytes() for e in fast)

    def test_index_absent_without_flag(self):
        from repro.hdfs.namenode import FileNotFound

        sim = WarehouseSimulation(num_users=40, seed=8)
        sim.run_days(1)
        with pytest.raises(FileNotFound):
            sim.index(sim.dates()[0])


class TestCLIScript:
    def test_runs_pig_file(self, tmp_path, capsys):
        script = tmp_path / "count.pig"
        script.write_text("""
            define CountClientEvents CountClientEvents('$EVENTS');
            raw = load '/session_sequences/$DATE/'
                  using SessionSequencesLoader();
            generated = foreach raw generate CountClientEvents(symbols);
            grouped = group generated all;
            count = foreach grouped generate SUM(generated);
            dump count;
        """)
        assert main(["script", "--file", str(script),
                     "--param", "EVENTS=*:impression"] + ARGS_FAST) == 0
        out = capsys.readouterr().out
        assert "dump: 1 row(s)" in out

    def test_date_param_injected(self, tmp_path, capsys):
        script = tmp_path / "dates.pig"
        script.write_text("""
            raw = load '/session_sequences/$DATE/'
                  using SessionSequencesLoader();
            dump raw;
        """)
        assert main(["script", "--file", str(script)] + ARGS_FAST) == 0
        assert "row(s)" in capsys.readouterr().out

    def test_bad_param_rejected(self, tmp_path, capsys):
        script = tmp_path / "x.pig"
        script.write_text("dump nothing;")
        assert main(["script", "--file", str(script),
                     "--param", "broken"] + ARGS_FAST) == 2
