"""Session-sequence record and daily-builder tests (§4.2)."""

import pytest

from repro.clock import MILLIS_PER_MINUTE
from repro.core.builder import (
    SessionSequenceBuilder,
    catalog_day_path,
    write_day_events,
)
from repro.core.dictionary import EventDictionary
from repro.core.event import ClientEvent
from repro.core.sequences import SessionSequenceRecord
from repro.core.sessionizer import Session, Sessionizer
from repro.hdfs.namenode import HDFS

NAMES = ["web:home:timeline:stream:tweet:impression",
         "web:home:timeline:stream:tweet:click",
         "iphone:search::results:result:click"]


def _session(names, user_id=1, start=0, step=1000):
    events = [
        ClientEvent.make(name, user_id=user_id, session_id="sid",
                         ip="1.2.3.4", timestamp=start + i * step)
        for i, name in enumerate(names)
    ]
    return Session(user_id=user_id, session_id="sid", events=events)


class TestSessionSequenceRecord:
    def test_from_session_fields(self):
        dictionary = EventDictionary(NAMES)
        session = _session([NAMES[0], NAMES[1], NAMES[0]], start=5000,
                           step=30_000)
        record = SessionSequenceRecord.from_session(session, dictionary)
        assert record.user_id == 1
        assert record.session_id == "sid"
        assert record.ip == "1.2.3.4"
        assert record.num_events == 3
        assert record.duration == 60  # 2 steps of 30 s
        assert record.event_names(dictionary) == [NAMES[0], NAMES[1],
                                                  NAMES[0]]

    def test_relation_schema_matches_paper(self):
        """user_id: long, session_id: string, ip: string,
        session_sequence: string, duration: int."""
        names = [spec.name for spec in SessionSequenceRecord.FIELDS]
        assert names == ["user_id", "session_id", "ip", "session_sequence",
                         "duration"]

    def test_temporal_information_lost_except_duration(self):
        """§4.2: "session sequences do not preserve any temporal
        information about the events (other than relative ordering)"."""
        dictionary = EventDictionary(NAMES)
        fast = _session([NAMES[0], NAMES[1]], step=1000)
        slow = _session([NAMES[0], NAMES[1]], step=1000)
        # same inter-event spacing pattern encodes identically
        rec_fast = SessionSequenceRecord.from_session(fast, dictionary)
        rec_slow = SessionSequenceRecord.from_session(slow, dictionary)
        assert rec_fast.session_sequence == rec_slow.session_sequence

    def test_client_helper(self):
        dictionary = EventDictionary(NAMES)
        record = SessionSequenceRecord.from_session(_session([NAMES[2]]),
                                                    dictionary)
        assert record.client(dictionary) == "iphone"

    def test_client_of_empty_sequence(self):
        dictionary = EventDictionary(NAMES)
        record = SessionSequenceRecord(user_id=1, session_id="s", ip="i",
                                       session_sequence="", duration=0)
        assert record.client(dictionary) is None

    def test_thrift_roundtrip(self):
        dictionary = EventDictionary(NAMES)
        record = SessionSequenceRecord.from_session(
            _session([NAMES[0], NAMES[2]]), dictionary)
        assert SessionSequenceRecord.from_bytes(record.to_bytes()) == record

    def test_encoded_bytes(self):
        record = SessionSequenceRecord(user_id=1, session_id="s", ip="i",
                                       session_sequence="ȴ",
                                       duration=0)
        assert record.encoded_bytes == 1 + 2  # U+0001 is 1 byte, U+0234 is 2


class TestBuilder:
    def test_build_artifacts_all_materialized(self, warehouse, date,
                                              build_result):
        assert warehouse.is_file(build_result.histogram_path)
        assert warehouse.is_file(build_result.dictionary_path)
        assert warehouse.glob_files(build_result.sequences_dir)
        assert warehouse.is_file(
            f"{catalog_day_path(*date)}/samples.json")

    def test_event_conservation(self, builder, date, build_result):
        total = sum(r.num_events for r in builder.iter_sequences(*date))
        assert total == build_result.events_scanned

    def test_histogram_matches_events(self, builder, date, build_result):
        histogram = builder.load_histogram(*date)
        assert sum(histogram.values()) == build_result.events_scanned
        assert len(histogram) == build_result.distinct_events

    def test_dictionary_covers_all_events(self, builder, dictionary, date):
        histogram = builder.load_histogram(*date)
        for name in histogram:
            dictionary.code_for(name)  # must not raise

    def test_dictionary_frequency_ordered(self, builder, dictionary, date):
        histogram = builder.load_histogram(*date)
        ordered = list(dictionary)
        counts = [histogram[name] for name in ordered]
        assert counts == sorted(counts, reverse=True)

    def test_samples_limited_per_event(self, builder, date):
        samples = builder.load_samples(*date)
        assert samples
        assert all(1 <= len(v) <= 3 for v in samples.values())

    def test_sequences_decode_to_real_event_names(self, builder, dictionary,
                                                  date):
        for record in list(builder.iter_sequences(*date))[:50]:
            for name in record.event_names(dictionary):
                assert name.count(":") == 5

    def test_compression_factor_tens_of_x(self, build_result):
        """§4.2: "about fifty times smaller than the original logs"."""
        assert build_result.compression_factor > 10

    def test_sessions_respect_gap(self, builder, dictionary, date):
        records = list(builder.iter_sequences(*date))
        assert all(r.duration >= 0 for r in records)
        assert len(records) > 0

    def test_rerun_is_idempotent(self, workload, date):
        fs = HDFS()
        from repro.workload.generator import load_warehouse_day

        load_warehouse_day(fs, workload)
        builder = SessionSequenceBuilder(fs)
        first = builder.run(*date)
        second = builder.run(*date)
        assert first.events_scanned == second.events_scanned
        assert first.sessions_built == second.sessions_built
        records = list(builder.iter_sequences(*date))
        assert len(records) == second.sessions_built


class TestWriteDayEvents:
    def test_buckets_by_hour(self):
        fs = HDFS()
        events = [
            ClientEvent.make(NAMES[0], user_id=1, session_id="s",
                             ip="1.1.1.1", timestamp=h * 3600 * 1000)
            for h in (0, 1, 1, 2)
        ]
        write_day_events(fs, events, 2012, 1, 1)
        assert fs.glob_files("/logs/client_events/2012/01/01/00")
        assert fs.glob_files("/logs/client_events/2012/01/01/01")
        assert fs.glob_files("/logs/client_events/2012/01/01/02")

    def test_split_across_files(self):
        fs = HDFS()
        events = [
            ClientEvent.make(NAMES[0], user_id=1, session_id="s",
                             ip="1.1.1.1", timestamp=i)
            for i in range(10)
        ]
        write_day_events(fs, events, 2012, 1, 1, events_per_file=3)
        files = fs.glob_files("/logs/client_events/2012/01/01/00")
        assert len(files) == 4


class TestMapReduceBuild:
    """The paper's second pass is itself "a large group-by": running the
    build on the MR engine must give identical artifacts to the direct
    path, with the build's own footprint measurable."""

    @pytest.fixture(scope="class")
    def both_builds(self, workload, date):
        from repro.mapreduce.jobtracker import JobTracker
        from repro.workload.generator import load_warehouse_day

        direct_fs, mr_fs = HDFS(), HDFS()
        load_warehouse_day(direct_fs, workload)
        load_warehouse_day(mr_fs, workload)
        direct = SessionSequenceBuilder(direct_fs)
        mr = SessionSequenceBuilder(mr_fs)
        tracker = JobTracker()
        direct_result = direct.run(*date)
        mr_result = mr.run(*date, engine="mapreduce", tracker=tracker)
        return direct, direct_result, mr, mr_result, tracker

    def test_identical_record_sets(self, both_builds, date):
        direct, __, mr, __, __ = both_builds
        direct_records = sorted(r.to_bytes()
                                for r in direct.iter_sequences(*date))
        mr_records = sorted(r.to_bytes() for r in mr.iter_sequences(*date))
        assert direct_records == mr_records

    def test_identical_summary_numbers(self, both_builds):
        __, direct_result, __, mr_result, __ = both_builds
        assert mr_result.events_scanned == direct_result.events_scanned
        assert mr_result.sessions_built == direct_result.sessions_built
        assert mr_result.distinct_events == direct_result.distinct_events

    def test_identical_dictionaries(self, both_builds, date):
        direct, __, mr, __, __ = both_builds
        assert direct.load_dictionary(*date).to_bytes() == \
            mr.load_dictionary(*date).to_bytes()

    def test_build_footprint_measured(self, both_builds):
        """The group-by job shuffles every event -- the §4.1 cost the
        materialization pays once so queries never pay it again."""
        __, __, __, mr_result, tracker = both_builds
        session_job = next(r for r in tracker.runs
                           if r.job_name == "session_sequences")
        assert session_job.shuffle_records == mr_result.events_scanned
        assert session_job.map_tasks > 1

    def test_unknown_engine_rejected(self, warehouse, date):
        with pytest.raises(ValueError):
            SessionSequenceBuilder(warehouse).run(*date, engine="spark")
