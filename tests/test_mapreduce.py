"""MapReduce engine tests: splits, counters, combiner, cost model."""

import pytest

from repro.hdfs.namenode import HDFS
from repro.mapreduce.counters import (
    Counters,
    GROUP_IO,
    GROUP_TASK,
    INPUT_BYTES,
    INPUT_RECORDS,
    MAP_TASKS,
    REDUCE_TASKS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
)
from repro.mapreduce.engine import run_job, sizeof
from repro.mapreduce.inputformats import (
    FileInputFormat,
    InMemoryInputFormat,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.jobtracker import CostModel, JobTracker
from repro.thriftlike.codegen import frame, iter_frames


def _decode_lines(data: bytes):
    return list(iter_frames(data))


def _word_count_job(input_format, **kwargs):
    def mapper(record, ctx):
        for word in record.split():
            ctx.emit(word, 1)

    def reducer(key, values, ctx):
        ctx.emit(key, sum(values))

    return MapReduceJob(name="wordcount", input_format=input_format,
                        mapper=mapper, reducer=reducer, **kwargs)


class TestCounters:
    def test_increment_and_get(self):
        counters = Counters()
        counters.increment("g", "n", 3)
        counters.increment("g", "n")
        assert counters.get("g", "n") == 4
        assert counters.get("g", "missing") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("g", "n", 1)
        b.increment("g", "n", 2)
        b.increment("h", "m", 5)
        a.merge(b)
        assert a.get("g", "n") == 3
        assert a.get("h", "m") == 5

    def test_iteration_sorted(self):
        counters = Counters()
        counters.increment("b", "y", 1)
        counters.increment("a", "x", 1)
        assert [g for g, __, __ in counters] == ["a", "b"]


class TestSizeof:
    @pytest.mark.parametrize("value,expected", [
        (b"abc", 3), ("abc", 3), (7, 8), (1.5, 8), (True, 1), (None, 1),
    ])
    def test_scalars(self, value, expected):
        assert sizeof(value) == expected

    def test_containers(self):
        assert sizeof([1, 2]) == 4 + 16
        assert sizeof({"k": 1}) == 4 + 1 + 8

    def test_struct_uses_serialized_size(self):
        from repro.core.event import ClientEvent

        event = ClientEvent.make(
            "web:home:timeline:stream:tweet:impression", user_id=1,
            session_id="s", ip="1.2.3.4", timestamp=0)
        assert sizeof(event) == len(event.to_bytes())


class TestInputFormats:
    def test_one_split_per_block(self):
        fs = HDFS(block_size=8)
        lines = [b"line-%d" % i for i in range(10)]
        fs.create("/f", b"".join(frame(l) for l in lines))
        fmt = FileInputFormat(fs, ["/f"], _decode_lines)
        splits = fmt.splits()
        assert len(splits) == fs.status("/f").block_count
        recovered = [r for s in splits for r in fmt.read_split(s)]
        assert recovered == lines

    def test_compressed_file_single_block_when_small(self):
        fs = HDFS(block_size=1 << 20)
        fs.create("/f", frame(b"only"), codec="zlib")
        fmt = FileInputFormat(fs, ["/f"], _decode_lines)
        assert len(fmt.splits()) == 1

    def test_over_directory(self):
        fs = HDFS()
        fs.create("/d/a", frame(b"1"))
        fs.create("/d/b", frame(b"2"))
        fmt = FileInputFormat.over_directory(fs, "/d", _decode_lines)
        records = [r for s in fmt.splits() for r in fmt.read_split(s)]
        assert sorted(records) == [b"1", b"2"]

    def test_in_memory_splits(self):
        fmt = InMemoryInputFormat(list(range(25)), records_per_split=10)
        splits = fmt.splits()
        assert len(splits) == 3
        assert [len(fmt.read_split(s)) for s in splits] == [10, 10, 5]

    def test_in_memory_empty(self):
        fmt = InMemoryInputFormat([])
        splits = fmt.splits()
        assert len(splits) == 1
        assert fmt.read_split(splits[0]) == []

    def test_in_memory_invalid_split_size(self):
        with pytest.raises(ValueError):
            InMemoryInputFormat([], records_per_split=0)


class TestEngine:
    def test_word_count(self):
        fmt = InMemoryInputFormat(["a b a", "b c"], records_per_split=1)
        result = run_job(_word_count_job(fmt))
        assert result.output_dict() == {"a": 2, "b": 2, "c": 1}

    def test_map_only_job(self):
        fmt = InMemoryInputFormat([1, 2, 3], records_per_split=2)
        job = MapReduceJob(name="mo", input_format=fmt,
                           mapper=lambda r, ctx: ctx.emit(None, r * 10))
        result = run_job(job)
        assert [v for __, v in result.output] == [10, 20, 30]

    def test_counters_accounting(self):
        fmt = InMemoryInputFormat(["a b", "c"], records_per_split=1)
        result = run_job(_word_count_job(fmt, num_reducers=2))
        counters = result.counters
        assert counters.get(GROUP_TASK, MAP_TASKS) == 2
        assert counters.get(GROUP_TASK, REDUCE_TASKS) == 2
        assert counters.get(GROUP_IO, INPUT_RECORDS) == 2
        assert counters.get(GROUP_IO, SHUFFLE_RECORDS) == 3
        assert counters.get(GROUP_IO, SHUFFLE_BYTES) > 0

    def test_combiner_reduces_shuffle(self):
        records = ["a a a a a"] * 4

        def combiner(key, values, ctx):
            ctx.emit(key, sum(values))

        plain = run_job(_word_count_job(
            InMemoryInputFormat(records, records_per_split=1)))
        combined = run_job(_word_count_job(
            InMemoryInputFormat(records, records_per_split=1)))
        job = _word_count_job(InMemoryInputFormat(records,
                                                  records_per_split=1))
        job.combiner = combiner
        combined = run_job(job)
        assert combined.output_dict() == plain.output_dict() == {"a": 20}
        assert (combined.counters.get(GROUP_IO, SHUFFLE_RECORDS)
                < plain.counters.get(GROUP_IO, SHUFFLE_RECORDS))

    def test_bytes_scanned_from_blocks(self):
        fs = HDFS(block_size=16)
        data = b"".join(frame(b"w%d" % i) for i in range(50))
        fs.create("/f", data)
        fmt = FileInputFormat(fs, ["/f"], _decode_lines)
        job = MapReduceJob(name="scan", input_format=fmt,
                           mapper=lambda r, ctx: None)
        result = run_job(job)
        assert result.counters.get(GROUP_IO, INPUT_BYTES) == len(data)

    def test_tracker_records_runs(self):
        tracker = JobTracker()
        fmt = InMemoryInputFormat(["a"], records_per_split=1)
        run_job(_word_count_job(fmt), tracker)
        assert len(tracker.runs) == 1
        run = tracker.runs[0]
        assert run.job_name == "wordcount"
        assert run.map_tasks == 1
        assert tracker.last() is run

    def test_invalid_num_reducers(self):
        fmt = InMemoryInputFormat([1])
        with pytest.raises(ValueError):
            MapReduceJob(name="bad", input_format=fmt,
                         mapper=lambda r, c: None, num_reducers=0)


class TestCostModel:
    def test_more_mappers_cost_more(self):
        model = CostModel()
        few, many = Counters(), Counters()
        few.increment(GROUP_TASK, MAP_TASKS, 2)
        many.increment(GROUP_TASK, MAP_TASKS, 2000)
        assert model.simulated_ms(many) > model.simulated_ms(few)

    def test_scan_bytes_cost(self):
        model = CostModel()
        a, b = Counters(), Counters()
        for counters, volume in ((a, 10), (b, 10 ** 9)):
            counters.increment(GROUP_TASK, MAP_TASKS, 1)
            counters.increment(GROUP_IO, INPUT_BYTES, volume)
        assert model.simulated_ms(b) > model.simulated_ms(a)

    def test_shuffle_cost(self):
        model = CostModel()
        a, b = Counters(), Counters()
        for counters, volume in ((a, 0), (b, 10 ** 9)):
            counters.increment(GROUP_TASK, MAP_TASKS, 1)
            counters.increment(GROUP_IO, SHUFFLE_BYTES, volume)
        assert model.simulated_ms(b) > model.simulated_ms(a)

    def test_zero_tasks_zero_startup(self):
        assert CostModel().simulated_ms(Counters()) == 0.0


class TestTaskRetries:
    def _flaky_mapper(self, fail_times):
        state = {"failures": 0}

        def mapper(record, ctx):
            if state["failures"] < fail_times:
                state["failures"] += 1
                raise RuntimeError("transient task failure")
            ctx.emit(record, 1)

        return mapper

    def test_transient_failure_retried(self):
        from repro.mapreduce.engine import TaskFailedError

        job = MapReduceJob(
            name="flaky",
            input_format=InMemoryInputFormat(["a", "b"], 10),
            mapper=self._flaky_mapper(fail_times=1),
            reducer=lambda k, vs, ctx: ctx.emit(k, sum(vs)),
            max_task_attempts=3)
        result = run_job(job)
        assert result.output_dict() == {"a": 1, "b": 1}
        assert result.counters.get(GROUP_TASK, "map_task_failures") == 1
        # attempts counted as spawned tasks (the jobtracker sees retries)
        assert result.counters.get(GROUP_TASK, MAP_TASKS) == 2

    def test_persistent_failure_fails_job(self):
        from repro.mapreduce.engine import TaskFailedError

        def always_fails(record, ctx):
            raise RuntimeError("hard failure")

        job = MapReduceJob(
            name="doomed",
            input_format=InMemoryInputFormat(["a"], 10),
            mapper=always_fails, max_task_attempts=2)
        with pytest.raises(TaskFailedError):
            run_job(job)

    def test_failed_attempt_output_discarded(self):
        """Emissions from a failed attempt must not leak into output."""
        state = {"calls": 0}

        def emits_then_fails(record, ctx):
            ctx.emit(record, 1)
            state["calls"] += 1
            if state["calls"] == 1:
                raise RuntimeError("fails after emitting")

        job = MapReduceJob(
            name="leaky?",
            input_format=InMemoryInputFormat(["a"], 10),
            mapper=emits_then_fails,
            reducer=lambda k, vs, ctx: ctx.emit(k, sum(vs)),
            max_task_attempts=2)
        result = run_job(job)
        assert result.output_dict() == {"a": 1}  # not 2

    def test_invalid_max_attempts(self):
        with pytest.raises(ValueError):
            MapReduceJob(name="x",
                         input_format=InMemoryInputFormat([1]),
                         mapper=lambda r, c: None, max_task_attempts=0)
