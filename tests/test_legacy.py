"""Legacy-logging tests: formats, scraping, join-based reconstruction."""

import pytest

from repro.clock import MILLIS_PER_MINUTE
from repro.core.event import ClientEvent
from repro.core.sessionizer import Sessionizer
from repro.legacy.formats import (
    ApiThriftLogger,
    MobileTextLogger,
    ParseError,
    SearchTsvLogger,
    WebJsonLogger,
    route_logger,
)
from repro.legacy.joiner import (
    LegacySessionReconstructor,
    pairwise_f1,
)
from repro.legacy.scraper import scrape_json


def _event(name="web:home:timeline:stream:tweet:impression", user_id=7,
           session_id="cookie", timestamp=1_000_000,
           details=None):
    return ClientEvent.make(name, user_id=user_id, session_id=session_id,
                            ip="10.0.0.1", timestamp=timestamp,
                            details=details or {})


def _loggers(seed=0):
    return {
        "web_frontend": WebJsonLogger(),
        "search_events": SearchTsvLogger(),
        "mobile_client": MobileTextLogger(seed=seed),
        "api_events": ApiThriftLogger(),
    }


class TestWebJsonLogger:
    def test_roundtrip(self):
        logger = WebJsonLogger()
        entry = logger.encode(_event())
        assert entry.category == "web_frontend"
        record = logger.parse(entry.message)
        assert record.user_id == 7
        assert record.timestamp_ms == 1_000_000
        assert record.label == "impression"

    def test_nested_structure(self):
        import json

        logger = WebJsonLogger()
        payload = json.loads(logger.encode(_event()).message)
        assert "context" in payload
        assert "widget" in payload["context"]  # nested several layers deep

    def test_camel_case_field_names(self):
        import json

        payload = json.loads(WebJsonLogger().encode(
            _event(name="web:home:mentions:stream:avatar:profile_click")
        ).message)
        assert payload["eventType"] == "profileClick"  # the dreaded camel
        assert "userId" in payload

    def test_bad_message_raises(self):
        with pytest.raises(ParseError):
            WebJsonLogger().parse(b"not json at all")
        with pytest.raises(ParseError):
            WebJsonLogger().parse(b'{"missing": "fields"}')


class TestSearchTsvLogger:
    def test_roundtrip(self):
        logger = SearchTsvLogger()
        event = _event(name="web:search::search_box:input:query",
                       details={"raw_query": "breaking news"})
        record = logger.parse(logger.encode(event).message)
        assert record.user_id == 7
        assert record.timestamp_ms == 1_000_000

    def test_embedded_tab_escaped(self):
        logger = SearchTsvLogger()
        event = _event(name="web:search::search_box:input:query",
                       details={"raw_query": "tab\there"})
        record = logger.parse(logger.encode(event).message)
        assert record.user_id == 7  # field count survived the tab

    def test_wrong_field_count_raises(self):
        with pytest.raises(ParseError):
            SearchTsvLogger().parse(b"too\tfew")

    def test_bad_timestamp_raises(self):
        with pytest.raises(ParseError):
            SearchTsvLogger().parse(b"not-a-time\t7\tq.click\tx")


class TestMobileTextLogger:
    def test_roundtrip(self):
        logger = MobileTextLogger(drop_user_id_rate=0.0)
        record = logger.parse(logger.encode(
            _event(name="iphone:home:timeline:stream:tweet:click")).message)
        assert record.user_id == 7
        assert record.label == "click"

    def test_user_id_sometimes_missing(self):
        logger = MobileTextLogger(drop_user_id_rate=1.0)
        record = logger.parse(logger.encode(_event()).message)
        assert record.user_id is None

    def test_bad_message_raises(self):
        with pytest.raises(ParseError):
            MobileTextLogger().parse(b"gibberish without delimiters")


class TestApiThriftLogger:
    def test_request_shape(self):
        logger = ApiThriftLogger()
        event = _event(name="web:search::search_box:input:query")
        entry = logger.encode(event)
        assert entry.message[:1] == b"R"
        record = logger.parse(entry.message)
        assert record.user_id == 7
        assert "query" in record.label

    def test_error_shape(self):
        logger = ApiThriftLogger()
        event = _event(name="web:home:suggestions:who_to_follow:user_card:follow")
        entry = logger.encode(event)
        assert entry.message[:1] == b"E"
        record = logger.parse(entry.message)
        assert record.label == "follow"

    def test_bad_tag_raises(self):
        with pytest.raises(ParseError):
            ApiThriftLogger().parse(b"Zjunk")
        with pytest.raises(ParseError):
            ApiThriftLogger().parse(b"")


class TestRouting:
    def test_silo_routing(self):
        loggers = _loggers()
        assert route_logger(
            _event(name="web:search::results:result:click"),
            loggers).category == "search_events"
        assert route_logger(
            _event(name="iphone:home:timeline:stream:tweet:impression"),
            loggers).category == "mobile_client"
        assert route_logger(
            _event(name="web:tweet_detail::detail:tweet:reply"),
            loggers).category == "api_events"
        assert route_logger(
            _event(name="web:home:timeline:stream:tweet:impression"),
            loggers).category == "web_frontend"


class TestScraper:
    def test_induces_schema(self):
        logger = WebJsonLogger()
        messages = [logger.encode(_event(user_id=i)).message
                    for i in range(50)]
        report = scrape_json(messages)
        assert report.messages_seen == 50
        assert report.parse_failures == 0
        assert "userId" in report.obligatory_keys()
        assert "timestampSecs" in report.obligatory_keys()

    def test_value_ranges(self):
        logger = WebJsonLogger()
        messages = [logger.encode(_event(user_id=i)).message
                    for i in (3, 9, 5)]
        report = scrape_json(messages)
        assert report.value_range("userId") == (3, 9)

    def test_optional_keys_detected(self):
        messages = [b'{"always": 1, "sometimes": 2}', b'{"always": 1}']
        report = scrape_json(messages)
        assert report.obligatory_keys() == ["always"]
        assert report.optional_keys() == ["sometimes"]

    def test_parse_failures_counted(self):
        report = scrape_json([b"{}", b"NOT JSON"])
        assert report.parse_failures == 1

    def test_type_histogram(self):
        report = scrape_json([b'{"k": 1}', b'{"k": "s"}'])
        assert report.keys["k"].type_counts == {"int": 1, "str": 1}


class TestReconstruction:
    def test_merges_concurrent_sessions(self):
        """Without session ids, two concurrent sessions of one user merge:
        the defining accuracy loss of the legacy pipeline."""
        loggers = _loggers()
        events = []
        for i in range(4):  # two interleaved sessions of user 7
            events.append(_event(session_id="desktop",
                                 timestamp=i * MILLIS_PER_MINUTE))
            events.append(_event(session_id="laptop",
                                 timestamp=i * MILLIS_PER_MINUTE + 5000))
        entries = [route_logger(e, loggers).encode(e) for e in events]
        sessions, stats = LegacySessionReconstructor(loggers).reconstruct(
            entries)
        assert stats.sessions == 1  # merged!
        truth = Sessionizer().sessionize(events)
        assert len(truth) == 2  # unified keeps them apart

    def test_pairwise_f1_below_one_for_merged(self):
        truth = [[(1, 0), (1, 1)], [(1, 10), (1, 11)]]
        merged = [[(1, 0), (1, 1), (1, 10), (1, 11)]]
        assert pairwise_f1(truth, merged) < 1.0
        assert pairwise_f1(truth, truth) == 1.0

    def test_pairwise_f1_empty(self):
        assert pairwise_f1([], []) == 1.0
        assert pairwise_f1([[(1, 0), (1, 1)]], [[(2, 5), (2, 6)]]) == 0.0

    def test_unknown_category_counted_as_failure(self):
        from repro.scribe.message import LogEntry

        loggers = _loggers()
        sessions, stats = LegacySessionReconstructor(loggers).reconstruct(
            [LogEntry("mystery_category", b"???")])
        assert stats.parse_failures == 1
        assert stats.sessions == 0

    def test_missing_user_ids_dropped(self):
        loggers = _loggers()
        loggers["mobile_client"] = MobileTextLogger(drop_user_id_rate=1.0)
        event = _event(name="iphone:home:timeline:stream:tweet:click")
        entries = [route_logger(event, loggers).encode(event)]
        sessions, stats = LegacySessionReconstructor(loggers).reconstruct(
            entries)
        assert stats.missing_user_id == 1
        assert stats.sessions == 0

    def test_unified_beats_legacy_on_workload(self, workload):
        """The headline §3 comparison: pairwise F1 of legacy join-based
        reconstruction is strictly below the unified group-by's 1.0."""
        loggers = _loggers(seed=9)
        entries = [route_logger(e, loggers).encode(e)
                   for e in workload.events]
        legacy_sessions, stats = LegacySessionReconstructor(
            loggers).reconstruct(entries)
        truth = Sessionizer().sessionize(workload.events)
        truth_clusters = [[(e.user_id, e.timestamp) for e in s.events]
                          for s in truth]
        legacy_clusters = [[(r.user_id, r.timestamp_ms) for r in s.records]
                           for s in legacy_sessions]
        score = pairwise_f1(truth_clusters, legacy_clusters)
        assert score < 0.95
        assert stats.parsed <= stats.messages
