"""LifeFlow aggregation and A/B testing tests (§5.3, §6)."""

import pytest

from repro.analytics.abtest import (
    ABResult,
    Experiment,
    compare_proportions,
    evaluate_metric,
)
from repro.analytics.lifeflow import (
    LifeFlowTree,
    action_level,
    page_level,
)
from repro.core.dictionary import EventDictionary
from repro.core.sequences import SessionSequenceRecord

A = "web:home:timeline:stream:tweet:impression"
B = "web:home:timeline:stream:tweet:click"
C = "web:search::search_box:input:query"
NAMES = [A, B, C]


@pytest.fixture
def d():
    return EventDictionary(NAMES)


def _record(d, names, user_id=1):
    return SessionSequenceRecord(
        user_id=user_id, session_id=f"s{user_id}", ip="1.1.1.1",
        session_sequence=d.encode(names), duration=10)


class TestLifeFlowTree:
    def test_counts_flow_through_prefixes(self):
        tree = LifeFlowTree()
        tree.add_sequence([A, B])
        tree.add_sequence([A, C])
        tree.add_sequence([C])
        assert tree.total_sessions == 3
        assert tree.flows_through([A]) == 2
        assert tree.flows_through([A, B]) == 1
        assert tree.flows_through([C]) == 1
        assert tree.flows_through([B]) == 0

    def test_terminations(self):
        tree = LifeFlowTree()
        tree.add_sequence([A])
        tree.add_sequence([A, B])
        node_a = tree.root.children[A]
        assert node_a.terminations == 1
        assert node_a.children[B].terminations == 1

    def test_max_depth_truncates(self):
        tree = LifeFlowTree(max_depth=2)
        tree.add_sequence([A, B, C, A, B])
        assert tree.flows_through([A, B]) == 1
        assert tree.flows_through([A, B, C]) == 0

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            LifeFlowTree(max_depth=0)

    def test_dominant_path(self):
        tree = LifeFlowTree()
        for __ in range(5):
            tree.add_sequence([A, B])
        tree.add_sequence([C])
        assert tree.dominant_path() == [A, B]

    def test_simplifier_merges_flows(self):
        tree = LifeFlowTree(simplify=action_level)
        tree.add_sequence([A])
        tree.add_sequence(["iphone:home:timeline:stream:tweet:impression"])
        assert tree.flows_through(["impression"]) == 2

    def test_page_level_simplifier(self):
        assert page_level(A) == "home:impression"
        assert page_level(C) == "search:query"

    def test_branch_factor(self):
        tree = LifeFlowTree()
        tree.add_sequence([A, B])
        tree.add_sequence([A, C])
        # root has 1 child; A has 2 children -> mean 1.5
        assert tree.branch_factor() == pytest.approx(1.5)

    def test_add_records(self, d):
        tree = LifeFlowTree().add_records(
            [_record(d, [A, B]), _record(d, [A], user_id=2)], d)
        assert tree.total_sessions == 2
        assert tree.flows_through([A]) == 2

    def test_render_shows_traffic(self):
        tree = LifeFlowTree(simplify=action_level)
        for __ in range(10):
            tree.add_sequence([A, B])
        tree.add_sequence([C])
        text = tree.render(min_fraction=0.05)
        assert "impression" in text
        assert "[11 sessions]" in text
        assert "#" in text

    def test_render_elides_minor_branches(self):
        tree = LifeFlowTree(simplify=action_level)
        for __ in range(100):
            tree.add_sequence([A])
        tree.add_sequence([C])  # 1% of traffic
        text = tree.render(min_fraction=0.05)
        assert "minor branch" in text
        assert "query" not in text


class TestExperimentAssignment:
    def test_deterministic_assignment(self):
        experiment = Experiment("exp1")
        assert all(experiment.assign(uid) == experiment.assign(uid)
                   for uid in range(100))

    def test_roughly_even_split(self):
        experiment = Experiment("exp1")
        buckets = [experiment.assign(uid) for uid in range(2000)]
        treatment_share = buckets.count("treatment") / len(buckets)
        assert 0.45 < treatment_share < 0.55

    def test_weighted_split(self):
        experiment = Experiment("exp2", buckets=("control", "treatment"),
                                weights=(9, 1))
        buckets = [experiment.assign(uid) for uid in range(5000)]
        assert 0.05 < buckets.count("treatment") / len(buckets) < 0.15

    def test_salt_changes_assignment(self):
        a = Experiment("exp", salt="a")
        b = Experiment("exp", salt="b")
        assignments_differ = any(a.assign(uid) != b.assign(uid)
                                 for uid in range(50))
        assert assignments_differ

    def test_different_experiments_independent(self):
        a = Experiment("exp_a")
        b = Experiment("exp_b")
        assert any(a.assign(uid) != b.assign(uid) for uid in range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            Experiment("x", buckets=("only",))
        with pytest.raises(ValueError):
            Experiment("x", buckets=("a", "a"))
        with pytest.raises(ValueError):
            Experiment("x", weights=(1,))
        with pytest.raises(ValueError):
            Experiment("x", weights=(1, 0))

    def test_split_partitions_records(self, d):
        experiment = Experiment("exp1")
        records = [_record(d, [A], user_id=uid) for uid in range(100)]
        split = experiment.split(records)
        assert sum(len(v) for v in split.values()) == 100
        for bucket, bucket_records in split.items():
            for record in bucket_records:
                assert experiment.assign(record.user_id) == bucket


class TestABComparison:
    def _records_with_rates(self, d, control_rate, treatment_rate, n=400):
        """Users whose conversion depends on their (hashed) bucket."""
        import random

        rng = random.Random(0)
        experiment = Experiment("funnel_exp")
        records = []
        for uid in range(1, n + 1):
            rate = (treatment_rate
                    if experiment.assign(uid) == "treatment"
                    else control_rate)
            names = [A, B] if rng.random() < rate else [A]
            records.append(_record(d, names, user_id=uid))
        return experiment, records

    def test_detects_real_lift(self, d):
        experiment, records = self._records_with_rates(d, 0.2, 0.5)
        converted = lambda r: 1.0 if d.symbol_for(B) in r.session_sequence \
            else 0.0
        result = compare_proportions(experiment, records, converted,
                                     metric_name="clicked")
        assert result.treatment.mean > result.control.mean
        assert result.lift > 0.5
        assert result.significant(alpha=0.05)

    def test_null_effect_not_significant(self, d):
        experiment, records = self._records_with_rates(d, 0.3, 0.3)
        converted = lambda r: 1.0 if d.symbol_for(B) in r.session_sequence \
            else 0.0
        result = compare_proportions(experiment, records, converted)
        assert result.p_value > 0.01  # no fabricated significance

    def test_evaluate_metric_totals(self, d):
        experiment = Experiment("count_exp")
        records = [_record(d, [A, A, B], user_id=uid) for uid in range(50)]
        per_bucket = evaluate_metric(experiment, records,
                                     lambda r: r.num_events)
        assert sum(b.total for b in per_bucket.values()) == 150
        assert all(b.mean == 3.0 for b in per_bucket.values()
                   if b.sessions)

    def test_empty_buckets_safe(self, d):
        experiment = Experiment("empty_exp")
        result = compare_proportions(experiment, [], lambda r: 1.0)
        assert result.z_score == 0.0
        assert result.lift == 0.0

    def test_infinite_lift_from_zero_control(self):
        from repro.analytics.abtest import ABResult, BucketResult

        result = ABResult(
            metric_name="m",
            control=BucketResult("control", 10, 0.0),
            treatment=BucketResult("treatment", 10, 5.0),
            z_score=2.0, p_value=0.04)
        assert result.lift == float("inf")
