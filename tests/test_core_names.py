"""Event name and pattern tests (Table 1, §3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.names import (
    LEVELS,
    EventName,
    EventPattern,
    InvalidEventNameError,
    match_names,
)

PAPER_EXAMPLE = "web:home:mentions:stream:avatar:profile_click"


class TestEventName:
    def test_paper_example_roundtrip(self):
        name = EventName.parse(PAPER_EXAMPLE)
        assert name.client == "web"
        assert name.page == "home"
        assert name.section == "mentions"
        assert name.component == "stream"
        assert name.element == "avatar"
        assert name.action == "profile_click"
        assert str(name) == PAPER_EXAMPLE

    def test_six_levels_required(self):
        with pytest.raises(InvalidEventNameError):
            EventName.parse("web:home:click")
        with pytest.raises(InvalidEventNameError):
            EventName.parse(PAPER_EXAMPLE + ":extra")

    @pytest.mark.parametrize("bad", [
        "Web:home:mentions:stream:avatar:profile_click",   # uppercase
        "web:home:mentions:stream:avatar:profileClick",    # camelCase
        "web:home:men tions:stream:avatar:profile_click",  # space
        "web:home:mentions:stream:avatar:profile-click",   # dash
    ])
    def test_camel_snake_is_dead(self, bad):
        with pytest.raises(InvalidEventNameError):
            EventName.parse(bad)

    def test_empty_middle_components_allowed(self):
        name = EventName.parse("web:::::click")
        assert name.page == ""
        assert name.element == ""
        assert name.action == "click"

    def test_client_and_action_required(self):
        with pytest.raises(InvalidEventNameError):
            EventName(":home:mentions:stream:avatar:click".split(":")[0],
                      "home", "mentions", "stream", "avatar", "click")
        with pytest.raises(InvalidEventNameError):
            EventName("web", "home", "mentions", "stream", "avatar", "")

    def test_of_constructor(self):
        name = EventName.of("web", "home", "", "", "", "click")
        assert str(name) == "web:home::::click"
        with pytest.raises(InvalidEventNameError):
            EventName.of("web", "click")

    def test_ordering_and_hash(self):
        a = EventName.parse("android:home::::click")
        b = EventName.parse("web:home::::click")
        assert a < b
        assert hash(a) != hash(b)

    def test_rollup(self):
        name = EventName.parse(PAPER_EXAMPLE)
        assert name.rollup(5) == ("web", "home", "mentions", "stream",
                                  "avatar", "profile_click")
        assert name.rollup(3) == ("web", "home", "mentions", "*", "*",
                                  "profile_click")
        assert name.rollup(1) == ("web", "*", "*", "*", "*",
                                  "profile_click")
        with pytest.raises(ValueError):
            name.rollup(6)
        with pytest.raises(ValueError):
            name.rollup(0)


class TestEventPattern:
    def test_prefix_pattern(self):
        """§3.2: "all actions on the user's home mentions timeline on
        twitter.com by considering web:home:mentions:*"."""
        pattern = EventPattern("web:home:mentions:*")
        assert pattern.matches(PAPER_EXAMPLE)
        assert pattern.matches("web:home:mentions:stream:tweet:impression")
        assert not pattern.matches("web:home:timeline:stream:tweet:impression")
        assert not pattern.matches("iphone:home:mentions:stream:tweet:click")

    def test_suffix_pattern(self):
        """§3.2: "track profile clicks across all clients ... with
        *:profile_click"."""
        pattern = EventPattern("*:profile_click")
        assert pattern.matches(PAPER_EXAMPLE)
        assert pattern.matches("iphone:tweet_detail::detail:avatar:profile_click")
        assert not pattern.matches("web:home:mentions:stream:tweet:click")

    def test_full_six_component_pattern(self):
        pattern = EventPattern("*:home:*:*:tweet:impression")
        assert pattern.matches("web:home:timeline:stream:tweet:impression")
        assert not pattern.matches("web:search:timeline:stream:tweet:impression")

    def test_partial_glob_within_component(self):
        pattern = EventPattern("*:profile_*")
        assert pattern.matches(PAPER_EXAMPLE)
        assert not pattern.matches("web:home:mentions:stream:tweet:click")

    def test_exact_pattern(self):
        pattern = EventPattern(PAPER_EXAMPLE)
        assert pattern.matches(PAPER_EXAMPLE)
        assert not pattern.matches(PAPER_EXAMPLE.replace("avatar", "tweet"))

    def test_ambiguous_short_pattern_rejected(self):
        with pytest.raises(InvalidEventNameError):
            EventPattern("home:mentions")

    def test_too_many_components_rejected(self):
        with pytest.raises(InvalidEventNameError):
            EventPattern("a:b:c:d:e:f:g")

    def test_filter_preserves_order(self):
        names = ["web:a::::x", "web:b::::y", "iphone:a::::x"]
        assert match_names("web:*", names) == ["web:a::::x", "web:b::::y"]

    def test_matches_event_name_objects(self):
        name = EventName.parse(PAPER_EXAMPLE)
        assert EventPattern("web:*").matches(name)

    def test_star_matches_empty_component(self):
        pattern = EventPattern("web:profile:*")
        assert pattern.matches("web:profile::header:follow_button:click")


@st.composite
def event_names(draw):
    token = st.text(alphabet="abcdefghij_0123456789", min_size=1,
                    max_size=8)
    maybe = st.one_of(st.just(""), token)
    return EventName(draw(token), draw(maybe), draw(maybe), draw(maybe),
                     draw(maybe), draw(token))


class TestProperties:
    @given(event_names())
    def test_parse_str_roundtrip(self, name):
        assert EventName.parse(str(name)) == name

    @given(event_names())
    def test_client_prefix_pattern_always_matches(self, name):
        assert EventPattern(f"{name.client}:*").matches(name)

    @given(event_names())
    def test_action_suffix_pattern_always_matches(self, name):
        assert EventPattern(f"*:{name.action}").matches(name)

    @given(event_names())
    def test_rollup_keeps_action(self, name):
        for keep in range(1, 6):
            key = name.rollup(keep)
            assert key[-1] == name.action
            assert key[:keep] == name.components[:keep]


class TestUniversalPattern:
    def test_star_matches_everything(self):
        pattern = EventPattern("*")
        assert pattern.matches(PAPER_EXAMPLE)
        assert pattern.matches("iphone:::::view")

    def test_star_star_prefix_and_suffix(self):
        assert EventPattern("web:*").matches("web:::::x")
        assert not EventPattern("web:*").matches("iphone:::::x")
