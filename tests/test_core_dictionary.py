"""Event dictionary tests: bijection, frequency coding, persistence (§4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.dictionary import DictionaryError, EventDictionary


NAMES = [f"web:p{i}::::action_{i}" for i in range(10)]


class TestConstruction:
    def test_frequency_order_gets_smaller_code_points(self):
        counts = {"web:a::::x": 100, "web:b::::y": 10, "web:c::::z": 1000}
        dictionary = EventDictionary.from_histogram(counts)
        assert (dictionary.code_for("web:c::::z")
                < dictionary.code_for("web:a::::x")
                < dictionary.code_for("web:b::::y"))

    def test_ties_break_lexicographically(self):
        counts = {"web:b::::y": 5, "web:a::::x": 5}
        dictionary = EventDictionary.from_histogram(counts)
        assert (dictionary.code_for("web:a::::x")
                < dictionary.code_for("web:b::::y"))

    def test_from_events_counts_stream(self):
        stream = ["a"] * 3 + ["b"] * 5 + ["c"]
        dictionary = EventDictionary.from_events(stream)
        assert dictionary.code_for("b") < dictionary.code_for("a") \
            < dictionary.code_for("c")

    def test_duplicate_names_rejected(self):
        with pytest.raises(DictionaryError):
            EventDictionary(["a", "a"])

    def test_surrogate_range_skipped(self):
        many = [f"e{i}" for i in range(0xE000)]
        dictionary = EventDictionary(many)
        codes = {dictionary.code_for(name) for name in many}
        assert not any(0xD800 <= code <= 0xDFFF for code in codes)
        # every encoded string is valid UTF-8
        "".join(chr(c) for c in sorted(codes)).encode("utf-8")


class TestBijection:
    def test_encode_decode_roundtrip(self):
        dictionary = EventDictionary(NAMES)
        sequence = [NAMES[3], NAMES[0], NAMES[3], NAMES[9]]
        encoded = dictionary.encode(sequence)
        assert len(encoded) == 4
        assert dictionary.decode(encoded) == sequence

    def test_symbol_for(self):
        dictionary = EventDictionary(NAMES)
        symbol = dictionary.symbol_for(NAMES[0])
        assert len(symbol) == 1
        assert dictionary.name_for(ord(symbol)) == NAMES[0]

    def test_unknown_name_raises(self):
        dictionary = EventDictionary(NAMES)
        with pytest.raises(DictionaryError):
            dictionary.code_for("web:ghost::::nothing")
        with pytest.raises(DictionaryError):
            dictionary.encode(["web:ghost::::nothing"])

    def test_unknown_code_raises(self):
        dictionary = EventDictionary(NAMES)
        with pytest.raises(DictionaryError):
            dictionary.name_for(0x10FF00)

    def test_len_contains_iter(self):
        dictionary = EventDictionary(NAMES)
        assert len(dictionary) == len(NAMES)
        assert NAMES[0] in dictionary
        assert "nope" not in dictionary
        assert list(dictionary) == NAMES  # insertion order == code order


class TestVariableLengthCoding:
    def test_frequent_events_encode_shorter(self):
        """The paper's coding claim: with >128 events, a frequency-ordered
        dictionary yields fewer UTF-8 bytes than a reversed one."""
        names = [f"e{i}" for i in range(300)]
        counts = {name: 1000 // (i + 1) + 1 for i, name in enumerate(names)}
        good = EventDictionary.from_histogram(counts)
        bad = EventDictionary(sorted(counts, key=counts.__getitem__))
        stream = [name for name, count in counts.items()
                  for __ in range(count)]
        good_bytes = len(good.encode(stream).encode("utf-8"))
        bad_bytes = len(bad.encode(stream).encode("utf-8"))
        assert good_bytes < bad_bytes

    def test_first_127_events_are_single_byte(self):
        names = [f"e{i}" for i in range(200)]
        dictionary = EventDictionary(names)
        for name in names[:127]:
            assert len(dictionary.symbol_for(name).encode("utf-8")) == 1


class TestPatternExpansion:
    def test_expand_pattern(self):
        names = ["web:home::::click", "web:home::::impression",
                 "iphone:home::::click"]
        dictionary = EventDictionary(names)
        assert set(dictionary.expand_pattern("web:*")) == set(names[:2])
        assert set(dictionary.expand_pattern("*:click")) == \
            {names[0], names[2]}

    def test_expansion_sorted_by_code_point(self):
        dictionary = EventDictionary.from_histogram(
            {"web:a::::x": 1, "web:b::::x": 100})
        expanded = dictionary.expand_pattern("web:*")
        assert expanded == ["web:b::::x", "web:a::::x"]

    def test_symbol_class_matches_only_expansion(self):
        import re

        names = ["web:a::::x", "web:b::::y", "iphone:c::::x"]
        dictionary = EventDictionary(names)
        regex = re.compile(dictionary.symbol_class("web:*"))
        encoded = dictionary.encode(names)
        assert len(regex.findall(encoded)) == 2

    def test_symbol_class_empty_expansion_matches_nothing(self):
        import re

        dictionary = EventDictionary(["web:a::::x"])
        regex = re.compile(dictionary.symbol_class("android:*"))
        assert regex.search(dictionary.encode(["web:a::::x"])) is None

    def test_symbol_class_escapes_metacharacters(self):
        import re

        # Enough names that some get code points that are regex
        # metacharacters inside character classes ('[' is 0x5B, '\\' 0x5C,
        # ']' 0x5D, '^' 0x5E, '-' 0x2D); every class must still compile
        # and match exactly its own symbol.
        names = [f"web:p{i}::::x" for i in range(0x80)]
        dictionary = EventDictionary(names)
        encoded = dictionary.encode(names)
        for name in names:
            regex = re.compile(dictionary.symbol_class(name))
            assert len(regex.findall(encoded)) == 1


class TestPersistence:
    def test_bytes_roundtrip(self):
        dictionary = EventDictionary(NAMES)
        restored = EventDictionary.from_bytes(dictionary.to_bytes())
        assert len(restored) == len(dictionary)
        for name in NAMES:
            assert restored.code_for(name) == dictionary.code_for(name)

    def test_corrupt_mapping_rejected(self):
        import json

        payload = json.dumps({"a": 1, "b": 1}).encode()
        with pytest.raises(DictionaryError):
            EventDictionary.from_bytes(payload)


class TestProperties:
    @given(st.lists(st.text(alphabet="abcdef_:", min_size=1, max_size=10),
                    unique=True, min_size=1, max_size=50),
           st.data())
    def test_roundtrip_property(self, names, data):
        dictionary = EventDictionary(names)
        indices = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(names) - 1),
            max_size=30))
        sequence = [names[i] for i in indices]
        assert dictionary.decode(dictionary.encode(sequence)) == sequence

    @given(st.dictionaries(st.text(alphabet="abc", min_size=1, max_size=5),
                           st.integers(min_value=1, max_value=10 ** 6),
                           min_size=1, max_size=30))
    def test_histogram_order_property(self, counts):
        dictionary = EventDictionary.from_histogram(counts)
        ordered = list(dictionary)
        frequencies = [counts[name] for name in ordered]
        assert frequencies == sorted(frequencies, reverse=True)
