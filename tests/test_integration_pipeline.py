"""End-to-end integration: the full Figure 1 + §3/§4 pipeline.

Production hosts log unified client events through Scribe daemons →
aggregators → staging HDFS → log mover → warehouse → Oink-triggered
session-sequence build → analytics. One test walks the whole path and
checks conservation and correctness at each hand-off.
"""

import pytest

from repro.analytics.counting import count_events_sequences
from repro.analytics.funnel import run_funnel
from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR, LogicalClock
from repro.core.builder import SessionSequenceBuilder
from repro.core.event import CLIENT_EVENTS_CATEGORY, ClientEvent
from repro.hdfs.layout import LogHour, hours_of_day
from repro.logmover.mover import LogMover
from repro.oink.scheduler import Oink
from repro.scribe.cluster import ScribeDeployment
from repro.scribe.message import LogEntry
from repro.workload.behavior import signup_funnel_stages
from repro.workload.generator import WorkloadGenerator

DATE = (2012, 1, 1)  # clock epoch, so timestamps align with LogHours


@pytest.fixture(scope="module")
def pipeline():
    """Run the entire pipeline once; tests assert on the outcome."""
    generator = WorkloadGenerator(num_users=120, seed=77)
    workload = generator.generate_day(*DATE)
    events = sorted(workload.events, key=lambda e: e.timestamp)

    deployment = ScribeDeployment(["east", "west"], num_hosts=4,
                                  num_aggregators=2, seed=5)
    clock = deployment.clock
    datacenters = list(deployment.datacenters.values())

    # Hosts emit serialized client events as Scribe messages, the clock
    # following event time; crash one aggregator mid-day and restart it.
    crash_at = MILLIS_PER_DAY // 2
    crashed = False
    for i, event in enumerate(events):
        clock.advance_to(event.timestamp)
        if not crashed and clock.now() >= crash_at:
            datacenters[0].crash_aggregator(
                next(iter(datacenters[0].aggregators)))
            crashed = True
        datacenter = datacenters[event.user_id % 2]
        datacenter.log_from(
            event.user_id,
            LogEntry(CLIENT_EVENTS_CATEGORY, event.to_bytes()),
            wrap=True)
    deployment.flush_all()

    mover = LogMover(
        {name: dc.staging for name, dc in deployment.datacenters.items()},
        deployment.warehouse,
    )
    # Sessions started late in the day spill past midnight, so cover the
    # next day's hours too. Quiet hours can leave one datacenter empty;
    # operators move those past the barrier after a deadline, which we
    # model with require_complete=False on hours that have any data.
    all_hours = (hours_of_day(CLIENT_EVENTS_CATEGORY, *DATE)
                 + hours_of_day(CLIENT_EVENTS_CATEGORY, DATE[0], DATE[1],
                                DATE[2] + 1))
    moved = [mover.move_hour(hour, require_complete=False)
             for hour in all_hours if mover.hour_has_data(hour)]

    # Oink: daily sequence build gated on the mover having run.
    oink = Oink(clock)
    builder = SessionSequenceBuilder(deployment.warehouse)
    results = {}

    def build(period_start):
        results["build"] = builder.run(*DATE)

    oink.daily("session_sequences", build,
               gate=lambda p: bool(moved))
    clock.advance_to(MILLIS_PER_DAY + MILLIS_PER_HOUR)
    oink.run_pending()

    return {
        "workload": workload,
        "events": events,
        "deployment": deployment,
        "mover_results": moved,
        "builder": builder,
        "build": results.get("build"),
        "oink": oink,
    }


class TestDelivery:
    def test_all_accepted_events_reach_warehouse_or_are_accounted(
            self, pipeline):
        deployment = pipeline["deployment"]
        accepted = deployment.total_accepted()
        staged = deployment.total_staged()
        lost = sum(a.stats.lost_in_crash
                   for dc in deployment.datacenters.values()
                   for a in dc.aggregators.values())
        buffered = sum(dc.total_daemon_buffered()
                       for dc in deployment.datacenters.values())
        assert accepted == len(pipeline["events"])
        assert staged + lost + buffered == accepted

    def test_failover_happened(self, pipeline):
        deployment = pipeline["deployment"]
        failovers = sum(d.stats.failovers
                        for dc in deployment.datacenters.values()
                        for d in dc.daemons)
        assert failovers >= 1

    def test_moved_messages_match_staged(self, pipeline):
        moved = sum(r.messages_moved for r in pipeline["mover_results"])
        assert moved == pipeline["deployment"].total_staged()

    def test_warehouse_layout(self, pipeline):
        warehouse = pipeline["deployment"].warehouse
        hours_with_logs = [
            h for h in hours_of_day(CLIENT_EVENTS_CATEGORY, *DATE)
            if warehouse.glob_files(h.path())
        ]
        assert len(hours_with_logs) > 12  # traffic spans most of the day


class TestRoundtripFidelity:
    def test_events_decode_identically(self, pipeline):
        """Serialization through Scribe+mover preserves every field."""
        builder = pipeline["builder"]
        recovered = sorted(builder.iter_day_events(*DATE),
                           key=lambda e: (e.timestamp, e.user_id,
                                          e.event_name))
        sent = {e.to_bytes() for e in pipeline["events"]}
        recovered_bytes = {e.to_bytes() for e in recovered}
        # recovered is a subset (crash loss) but everything recovered is
        # byte-identical to something sent
        assert recovered_bytes <= sent
        assert len(recovered_bytes) >= len(sent) * 0.9


class TestBuildOnTop:
    def test_oink_triggered_build(self, pipeline):
        assert pipeline["build"] is not None
        assert pipeline["oink"].traces.succeeded("session_sequences", 0)

    def test_sequences_cover_recovered_events(self, pipeline):
        build = pipeline["build"]
        total_symbols = sum(
            r.num_events
            for r in pipeline["builder"].iter_sequences(*DATE))
        assert total_symbols == build.events_scanned

    def test_compression(self, pipeline):
        assert pipeline["build"].compression_factor > 10

    def test_analytics_run_end_to_end(self, pipeline):
        builder = pipeline["builder"]
        warehouse = pipeline["deployment"].warehouse
        dictionary = builder.load_dictionary(*DATE)
        count = count_events_sequences(warehouse, DATE, "*:impression",
                                       dictionary)
        assert count > 0
        report = run_funnel(warehouse, DATE, signup_funnel_stages("web"),
                            dictionary)
        counts = [report.entered] + report.stage_counts
        assert all(a >= b for a, b in zip(counts, counts[1:]))
