"""Scribe tests: messages, discovery, aggregators, daemons, failover."""

import pytest

from repro.clock import LogicalClock
from repro.hdfs.layout import hour_for_millis, staging_path
from repro.hdfs.namenode import HDFS
from repro.scribe.aggregator import (
    AggregatorDownError,
    ScribeAggregator,
    decode_messages,
    encode_messages,
)
from repro.scribe.cluster import Datacenter, ScribeDeployment
from repro.scribe.daemon import ScribeDaemon
from repro.scribe.discovery import (
    AggregatorDiscovery,
    register_aggregator,
    registration_path,
)
from repro.scribe.message import (
    CategoryConfig,
    CategoryRegistry,
    InvalidCategoryError,
    LogEntry,
)
from repro.scribe.zookeeper import ZooKeeper


class TestLogEntry:
    def test_valid_entry(self):
        entry = LogEntry("client_events", b"payload")
        assert entry.size == len("client_events") + len(b"payload")

    @pytest.mark.parametrize("bad", ["Has Space", "UPPER", "semi;colon", ""])
    def test_invalid_category(self, bad):
        with pytest.raises(InvalidCategoryError):
            LogEntry(bad, b"x")

    def test_message_must_be_bytes(self):
        with pytest.raises(TypeError):
            LogEntry("ok", "not bytes")


class TestCategoryRegistry:
    def test_default_config_on_demand(self):
        registry = CategoryRegistry(default_codec="none")
        config = registry.get("newcat")
        assert config.codec == "none"
        assert "newcat" in registry.categories()

    def test_registered_config_wins(self):
        registry = CategoryRegistry()
        registry.register(CategoryConfig("special", codec="bz2",
                                         max_file_records=5))
        assert registry.get("special").max_file_records == 5

    def test_invalid_max_file_records(self):
        with pytest.raises(ValueError):
            CategoryConfig("c", max_file_records=0)


class TestMessageFraming:
    def test_roundtrip(self):
        messages = [b"a", b"bb", b""]
        # empty messages are encodable (mover checks reject them later)
        assert decode_messages(encode_messages(messages)) == messages


class TestDiscovery:
    def test_register_and_list(self):
        zk = ZooKeeper()
        register_aggregator(zk, "dc1", "agg-a")
        register_aggregator(zk, "dc1", "agg-b")
        discovery = AggregatorDiscovery(zk, "dc1", seed=1)
        assert discovery.live_aggregators() == ["agg-a", "agg-b"]

    def test_pick_with_no_aggregators(self):
        zk = ZooKeeper()
        discovery = AggregatorDiscovery(zk, "empty-dc")
        assert discovery.pick() is None

    def test_session_close_removes_registration(self):
        zk = ZooKeeper()
        session = register_aggregator(zk, "dc1", "agg-a")
        discovery = AggregatorDiscovery(zk, "dc1")
        assert discovery.live_aggregators() == ["agg-a"]
        session.close()
        assert discovery.live_aggregators() == []

    def test_pick_excludes_failed(self):
        zk = ZooKeeper()
        register_aggregator(zk, "dc1", "agg-a")
        register_aggregator(zk, "dc1", "agg-b")
        discovery = AggregatorDiscovery(zk, "dc1", seed=0)
        for __ in range(20):
            assert discovery.pick(exclude="agg-a") == "agg-b"

    def test_exclude_ignored_when_sole_survivor(self):
        zk = ZooKeeper()
        register_aggregator(zk, "dc1", "agg-a")
        discovery = AggregatorDiscovery(zk, "dc1")
        assert discovery.pick(exclude="agg-a") == "agg-a"

    def test_registration_path_shape(self):
        assert registration_path("dc9") == "/scribe/aggregators/dc9"


def _make_aggregator(durable=False):
    zk = ZooKeeper()
    clock = LogicalClock()
    staging = HDFS()
    aggregator = ScribeAggregator("agg-1", "dc1", zk, staging, clock,
                                  durable=durable)
    aggregator.start()
    return aggregator, staging, clock, zk


class TestAggregator:
    def test_receive_and_flush_writes_staging(self):
        aggregator, staging, clock, __ = _make_aggregator()
        for i in range(10):
            aggregator.receive(LogEntry("cat", b"m%d" % i))
        aggregator.flush()
        hour = hour_for_millis("cat", clock.now())
        files = staging.glob_files(staging_path("dc1", hour))
        assert len(files) == 1
        messages = decode_messages(staging.open_bytes(files[0]))
        assert messages == [b"m%d" % i for i in range(10)]

    def test_max_file_records_triggers_roll(self):
        zk, clock, staging = ZooKeeper(), LogicalClock(), HDFS()
        categories = CategoryRegistry()
        categories.register(CategoryConfig("cat", max_file_records=3))
        aggregator = ScribeAggregator("a", "dc1", zk, staging, clock,
                                      categories=categories)
        aggregator.start()
        for i in range(7):
            aggregator.receive(LogEntry("cat", b"x"))
        # two files rolled automatically (3+3), one message pending
        assert aggregator.stats.files_written == 2
        aggregator.flush()
        assert aggregator.stats.files_written == 3

    def test_crashed_aggregator_rejects(self):
        aggregator, *_ = _make_aggregator()
        aggregator.crash()
        with pytest.raises(AggregatorDownError):
            aggregator.receive(LogEntry("cat", b"x"))

    def test_crash_loses_pending_without_wal(self):
        aggregator, staging, clock, __ = _make_aggregator(durable=False)
        aggregator.receive(LogEntry("cat", b"x"))
        aggregator.crash()
        assert aggregator.stats.lost_in_crash == 1
        aggregator.start()
        aggregator.flush()
        assert aggregator.stats.written == 0

    def test_durable_aggregator_replays_wal(self):
        aggregator, staging, clock, __ = _make_aggregator(durable=True)
        for i in range(5):
            aggregator.receive(LogEntry("cat", b"m%d" % i))
        aggregator.crash()
        assert aggregator.stats.lost_in_crash == 0
        aggregator.start()
        aggregator.flush()
        assert aggregator.stats.written == 5

    def test_hdfs_outage_buffers_on_disk(self):
        aggregator, staging, clock, __ = _make_aggregator()
        staging.set_available(False)
        aggregator.receive(LogEntry("cat", b"x"))
        aggregator.flush()
        assert aggregator.disk_buffered_files == 1
        assert aggregator.stats.buffered_on_disk == 1
        staging.set_available(True)
        assert aggregator.retry_disk_buffer() == 1
        assert aggregator.disk_buffered_files == 0
        assert aggregator.stats.written == 1
        assert aggregator.stats.buffered_on_disk == 0

    def test_shutdown_flushes(self):
        aggregator, staging, clock, zk = _make_aggregator()
        aggregator.receive(LogEntry("cat", b"x"))
        aggregator.shutdown()
        assert aggregator.stats.written == 1
        assert not aggregator.alive
        assert zk.session_count() == 0

    def test_messages_bucketed_by_hour(self):
        aggregator, staging, clock, __ = _make_aggregator()
        aggregator.receive(LogEntry("cat", b"hour0"))
        clock.advance(60 * 60 * 1000)
        aggregator.receive(LogEntry("cat", b"hour1"))
        aggregator.flush()
        hour0 = hour_for_millis("cat", 0)
        hour1 = hour_for_millis("cat", clock.now())
        assert staging.glob_files(staging_path("dc1", hour0))
        assert staging.glob_files(staging_path("dc1", hour1))


class TestDaemonFailover:
    def _datacenter(self, **kwargs):
        zk = ZooKeeper()
        clock = LogicalClock()
        return Datacenter("dc1", zk, clock, num_hosts=2, num_aggregators=2,
                          **kwargs), zk

    def test_normal_delivery(self):
        dc, __ = self._datacenter()
        for i in range(50):
            dc.log_from(i, LogEntry("cat", b"m%d" % i), wrap=True)
        dc.flush()
        assert dc.total_written() == 50

    def test_failover_to_live_aggregator(self):
        dc, __ = self._datacenter()
        dc.log_from(0, LogEntry("cat", b"before"))
        victim = dc.daemons[0].connected_to
        dc.crash_aggregator(victim)
        dc.log_from(0, LogEntry("cat", b"after"))
        dc.flush()
        assert dc.daemons[0].connected_to != victim
        assert dc.daemons[0].stats.failovers >= 1
        # the 'after' message was delivered despite the crash
        survivor = dc.daemons[0].connected_to
        assert dc.aggregators[survivor].stats.received >= 1

    def test_buffering_when_all_aggregators_down(self):
        dc, __ = self._datacenter()
        for name in list(dc.aggregators):
            dc.crash_aggregator(name)
        for i in range(5):
            dc.log_from(0, LogEntry("cat", b"x"))
        assert dc.daemons[0].buffered == 5
        dc.restart_aggregator(next(iter(dc.aggregators)))
        flushed = dc.daemons[0].flush()
        assert flushed == 5
        assert dc.daemons[0].buffered == 0
        assert dc.daemons[0].stats.resent == 5

    def test_bounded_buffer_drops_oldest(self):
        zk = ZooKeeper()
        discovery = AggregatorDiscovery(zk, "dcx")
        daemon = ScribeDaemon("h", discovery, resolve=lambda n: None,
                              max_buffer=3)
        for i in range(5):
            daemon.log(LogEntry("cat", b"m%d" % i))
        assert daemon.buffered == 3

    def test_live_aggregator_names(self):
        dc, __ = self._datacenter()
        name = next(iter(dc.aggregators))
        dc.crash_aggregator(name)
        assert name not in dc.live_aggregator_names()


class TestDeployment:
    def test_multi_datacenter_conservation(self):
        deployment = ScribeDeployment(["east", "west"], num_hosts=3,
                                      num_aggregators=2, seed=7)
        for i in range(200):
            dc = deployment.datacenters["east" if i % 2 else "west"]
            dc.log_from(i, LogEntry("client_events", b"m%d" % i),
                        wrap=True)
        deployment.flush_all()
        assert deployment.total_accepted() == 200
        assert deployment.total_staged() == 200

    def test_needs_a_datacenter(self):
        with pytest.raises(ValueError):
            ScribeDeployment([])

    def test_durable_deployment_survives_crash(self):
        deployment = ScribeDeployment(["dc"], num_hosts=2,
                                      num_aggregators=2,
                                      durable_aggregators=True, seed=1)
        dc = deployment.datacenters["dc"]
        for i in range(100):
            dc.log_from(i, LogEntry("client_events", b"m%d" % i), wrap=True)
        for name in list(dc.aggregators):
            dc.crash_aggregator(name)
            dc.restart_aggregator(name)
        dc.flush()
        lost = sum(a.stats.lost_in_crash for a in dc.aggregators.values())
        assert lost == 0
        assert dc.total_written() == 100


class TestDiscoveryWatchCache:
    def test_steady_state_uses_cache(self):
        zk = ZooKeeper()
        register_aggregator(zk, "dc1", "agg-a")
        discovery = AggregatorDiscovery(zk, "dc1", seed=0)
        for __ in range(10):
            discovery.pick()
        assert discovery.zk_reads == 1  # one read, then the cache

    def test_crash_invalidates_cache(self):
        zk = ZooKeeper()
        session = register_aggregator(zk, "dc1", "agg-a")
        register_aggregator(zk, "dc1", "agg-b")
        discovery = AggregatorDiscovery(zk, "dc1", seed=0)
        assert discovery.live_aggregators() == ["agg-a", "agg-b"]
        session.close()  # ephemeral node vanishes -> watch fires
        assert discovery.live_aggregators() == ["agg-b"]
        assert discovery.zk_reads == 2

    def test_new_registration_seen(self):
        zk = ZooKeeper()
        register_aggregator(zk, "dc1", "agg-a")
        discovery = AggregatorDiscovery(zk, "dc1", seed=0)
        discovery.live_aggregators()
        register_aggregator(zk, "dc1", "agg-b")
        assert "agg-b" in discovery.live_aggregators()

    def test_empty_root_not_cached(self):
        zk = ZooKeeper()
        discovery = AggregatorDiscovery(zk, "dc-new", seed=0)
        assert discovery.live_aggregators() == []
        register_aggregator(zk, "dc-new", "agg-a")
        assert discovery.live_aggregators() == ["agg-a"]


class TestLoadBalancing:
    def test_traffic_spreads_across_aggregators(self):
        """§2: the ZooKeeper listing "mechanism is used for balancing
        load across aggregators" -- random picks over the ephemeral
        children spread daemons' traffic roughly evenly."""
        zk = ZooKeeper()
        clock = LogicalClock()
        dc = Datacenter("dc", zk, clock, num_hosts=40, num_aggregators=4,
                        seed=3)
        for i in range(400):
            dc.log_from(i, LogEntry("cat", b"m%d" % i), wrap=True)
        received = sorted(a.stats.received for a in dc.aggregators.values())
        assert sum(received) == 400
        # no aggregator is starved or hot-spotted
        assert received[0] > 400 / 4 * 0.4
        assert received[-1] < 400 / 4 * 2.0
