"""Incremental sessionization + continuously-updated rollups.

Covers the seal-driven incremental path (`repro.oink.incremental`), the
rollup atomic-commit and loading fixes, the indexed `RollupResult.count`,
the midnight double-count regression, and the streaming wiring of
`register_standard_pipeline`.
"""

import json

import pytest

from repro.clock import (
    LogicalClock,
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    MILLIS_PER_MINUTE,
)
from repro.core.builder import SessionSequenceBuilder, write_day_events
from repro.core.event import ClientEvent
from repro.core.sessionizer import Sessionizer
from repro.faults.injector import (
    KIND_CRASH,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    set_default_injector,
)
from repro.hdfs.layout import LogHour, hour_for_millis
from repro.hdfs.namenode import HDFS
from repro.logmover.streaming import PollResult
from repro.obs.metrics import MetricsRegistry, set_default_registry
from repro.oink.incremental import (
    IncrementalPipeline,
    IncrementalRollup,
    IncrementalSessionizer,
    date_of_millis,
)
from repro.oink.rollups import (
    ROLLUP_LEVELS,
    MissingRollupError,
    RollupResult,
    load_rollups,
    materialize_rollups,
    rollup_day_dir,
    rollup_tables,
)
from repro.scribe.aggregator import encode_messages

CATEGORY = "client_events"
GAP_MS = 10 * MILLIS_PER_MINUTE
MIN = MILLIS_PER_MINUTE

NAMES = (
    "web:home:main:stream:tweet:impression",
    "web:home:main:stream:tweet:favorite",
    "iphone:profile:header:card:avatar:click",
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    old = set_default_registry(MetricsRegistry())
    yield
    set_default_registry(old)


@pytest.fixture(autouse=True)
def _clean_injector():
    yield
    set_default_injector(None)


_counter = [0]


def ev(ts, user=1, sid="s1", name=NAMES[0], country="us", logged_in=True):
    _counter[0] += 1
    return ClientEvent.make(name, user_id=user, session_id=sid,
                            ip="10.0.0.1", timestamp=ts,
                            details={"n": str(_counter[0])},
                            country=country, logged_in=logged_in)


def land_hour(warehouse, hour, events, part="part-00000"):
    """Write events into one warehouse hour dir, mover-style."""
    warehouse.create(f"{hour.path()}/{part}",
                     encode_messages([e.to_bytes() for e in events]),
                     codec="zlib")


def poll_result(now_ms, watermark_ms, sealed=()):
    return PollResult(category=CATEGORY, now_ms=now_ms,
                      watermark_ms=watermark_ms, sealed=list(sealed))


def arm_crash(site):
    plan = FaultPlan()
    plan.add(site, KIND_CRASH, max_fires=1)
    set_default_injector(FaultInjector(plan, clock=LogicalClock()))


# -- the incremental sessionizer -------------------------------------------
class TestIncrementalSessionizer:
    def test_closes_only_after_watermark_passes_horizon(self):
        s = IncrementalSessionizer(inactivity_gap_ms=GAP_MS)
        s.ingest([ev(0), ev(4 * MIN)])
        assert s.advance(4 * MIN + GAP_MS - 1) == []  # horizon not passed
        assert s.open_count() == 1
        closed = s.advance(4 * MIN + GAP_MS)
        assert len(closed) == 1
        assert [e.timestamp for e in closed[0].session.events] == [0, 4 * MIN]
        assert s.open_count() == 0

    def test_session_spanning_hour_boundary_closes_once(self):
        s = IncrementalSessionizer(inactivity_gap_ms=GAP_MS)
        s.ingest([ev(57 * MIN), ev(59 * MIN)])  # hour 0 events
        # Hour 0 seals (watermark just past the hour): still open.
        assert s.advance(62 * MIN) == []
        s.ingest([ev(63 * MIN)])  # hour 1 continuation, within the gap
        closed = s.advance(80 * MIN)
        assert len(closed) == 1
        assert len(closed[0].session.events) == 3
        assert s.closed_total == 1

    def test_late_data_reopens_closed_session(self):
        s = IncrementalSessionizer(inactivity_gap_ms=GAP_MS)
        s.ingest([ev(0), ev(4 * MIN)])
        s.advance(30 * MIN)
        assert s.closed_total == 1
        s.ingest([ev(6 * MIN)])  # late, within the gap of the closed run
        closed = s.advance(30 * MIN)
        assert s.reopened_total == 1
        assert len(closed) == 1
        assert len(closed[0].session.events) == 3
        # The retracted emission is gone: one standing closed session.
        assert len(s.closed_sessions()) == 1

    def test_late_bridge_merges_two_closed_sessions(self):
        s = IncrementalSessionizer(inactivity_gap_ms=GAP_MS)
        s.ingest([ev(0), ev(18 * MIN)])  # two runs: 18min > the 10min gap
        s.advance(40 * MIN)
        assert s.closed_total == 2
        # A late event 9min from both runs bridges them into one session.
        s.ingest([ev(9 * MIN)])
        s.advance(40 * MIN)
        assert s.reopened_total == 2
        standing = s.closed_sessions()
        assert len(standing) == 1
        assert len(standing[0].session.events) == 3

    def test_duplicate_ingest_is_dropped(self):
        s = IncrementalSessionizer(inactivity_gap_ms=GAP_MS)
        event = ev(0)
        assert s.ingest([event, event]) == 1
        assert s.ingest([ClientEvent.from_bytes(event.to_bytes())]) == 0
        closed = s.finish()
        assert len(closed[0].session.events) == 1

    def test_midnight_session_attributed_to_exactly_one_day(self):
        s = IncrementalSessionizer(inactivity_gap_ms=GAP_MS)
        s.ingest([ev(MILLIS_PER_DAY - 5 * MIN), ev(MILLIS_PER_DAY + 3 * MIN)])
        closed = s.finish()
        assert len(closed) == 1
        assert closed[0].date == (2012, 1, 1)  # the day it *started*
        by_day = s.closed_by_day()
        assert list(by_day) == [(2012, 1, 1)]
        assert sum(len(rows) for rows in by_day.values()) == 1

    def test_counters_and_gauge_are_recorded(self):
        from repro.obs.metrics import get_default_registry

        s = IncrementalSessionizer(inactivity_gap_ms=GAP_MS)
        s.ingest([ev(0)])
        s.advance(5 * MIN)
        registry = get_default_registry()
        assert registry.total("incremental_sessions_open_total") == 1
        assert registry.total("incremental_open_sessions") == 1
        s.finish()
        assert registry.total("incremental_sessions_closed_total") == 1
        assert registry.total("incremental_open_sessions") == 0


class TestDateOfMillis:
    def test_maps_epoch_and_day_boundaries(self):
        assert date_of_millis(0) == (2012, 1, 1)
        assert date_of_millis(MILLIS_PER_DAY - 1) == (2012, 1, 1)
        assert date_of_millis(MILLIS_PER_DAY) == (2012, 1, 2)


# -- the incremental rollup ------------------------------------------------
class TestIncrementalRollup:
    HOUR0 = LogHour(CATEGORY, 2012, 1, 1, 0)

    def test_fold_materializes_and_correction_retracts(self):
        warehouse = HDFS()
        rollup = IncrementalRollup(warehouse, category=CATEGORY)
        first = [ev(1000), ev(2000)]
        delta = rollup.fold_hour(self.HOUR0, first, now_ms=62 * MIN)
        assert delta is not None and not delta.correction
        loaded = load_rollups(warehouse, 2012, 1, 1)
        key5 = ("web", "home", "main", "stream", "tweet", "impression")
        assert loaded.count(5, key5) == 2
        # Re-seal with one more event: a signed correction delta.
        late = ev(1500, name=NAMES[1])
        delta = rollup.fold_hour(self.HOUR0, first + [late],
                                 now_ms=90 * MIN)
        assert delta is not None and delta.correction
        loaded = load_rollups(warehouse, 2012, 1, 1)
        assert loaded.count(5, key5) == 2
        assert loaded.count(
            5, ("web", "home", "main", "stream", "tweet", "favorite")) == 1
        # Retraction: events counted before but absent now are removed
        # and zero-count keys pruned from the tables entirely.
        rollup.fold_hour(self.HOUR0, [late], now_ms=95 * MIN)
        loaded = load_rollups(warehouse, 2012, 1, 1)
        assert loaded.count(5, key5) == 0
        assert all(key5 != key[0] for key in loaded.tables[5])

    def test_identical_refold_is_a_noop(self):
        warehouse = HDFS()
        rollup = IncrementalRollup(warehouse, category=CATEGORY)
        events = [ev(1000)]
        assert rollup.fold_hour(self.HOUR0, events, now_ms=0) is not None
        assert rollup.fold_hour(self.HOUR0, list(events),
                                now_ms=MIN) is None
        assert rollup.deltas_applied == 1
        assert rollup.corrections == 0

    def test_day_files_byte_identical_to_batch_materialization(self):
        warehouse = HDFS()
        rollup = IncrementalRollup(warehouse, category=CATEGORY)
        h0 = self.HOUR0
        h1 = LogHour(CATEGORY, 2012, 1, 1, 1)
        hour0_events = [ev(1000, name=NAMES[i % 3], country=c)
                        for i, c in enumerate(("us", "jp", "de"))]
        hour1_events = [ev(61 * MIN, user=7, sid="s9", logged_in=False)]
        rollup.fold_hour(h0, hour0_events, now_ms=62 * MIN)
        rollup.fold_hour(h1, hour1_events, now_ms=122 * MIN)
        batch_fs = HDFS()
        materialize_rollups(
            batch_fs, RollupResult(
                date=(2012, 1, 1),
                tables=rollup_tables(hour0_events + hour1_events)))
        for level in ROLLUP_LEVELS:
            path = f"{rollup_day_dir(2012, 1, 1)}/level-{level}.json"
            assert warehouse.open_bytes(path) == batch_fs.open_bytes(path)

    def test_correction_lag_metric(self):
        from repro.obs.metrics import get_default_registry

        warehouse = HDFS()
        rollup = IncrementalRollup(warehouse, category=CATEGORY)
        rollup.fold_hour(self.HOUR0, [ev(1000)], now_ms=62 * MIN)
        rollup.fold_hour(self.HOUR0, [ev(1000), ev(2000)],
                         now_ms=100 * MIN)
        histogram = get_default_registry().merged_histogram(
            "rollup_correction_lag_ms")
        assert histogram.count == 1
        # Lag measured from the corrected hour's close (60min).
        assert histogram.values() == [40 * MIN]
        assert get_default_registry().total(
            "rollup_deltas_applied_total") == 2


# -- the pipeline facade ---------------------------------------------------
class TestIncrementalPipeline:
    def test_observe_poll_folds_seals_and_closes_sessions(self):
        warehouse = HDFS()
        pipeline = IncrementalPipeline(warehouse, category=CATEGORY,
                                       inactivity_gap_ms=GAP_MS)
        hour0 = hour_for_millis(CATEGORY, 0)
        land_hour(warehouse, hour0, [ev(40 * MIN), ev(44 * MIN)])
        pipeline.observe_poll(poll_result(62 * MIN, 60 * MIN,
                                          sealed=[hour0]))
        # Watermark 60min passed 44min + 10min: the session closed and
        # the day's rollups are already materialized, mid-day.
        assert pipeline.sessionizer.closed_total == 1
        assert load_rollups(warehouse, 2012, 1, 1).count(
            1, ("web", "*", "*", "*", "*", "impression")) == 2

    def test_reseal_ingests_only_new_events(self):
        warehouse = HDFS()
        pipeline = IncrementalPipeline(warehouse, category=CATEGORY,
                                       inactivity_gap_ms=GAP_MS)
        hour0 = hour_for_millis(CATEGORY, 0)
        on_time = [ev(40 * MIN), ev(44 * MIN)]
        land_hour(warehouse, hour0, on_time)
        pipeline.observe_poll(poll_result(62 * MIN, 60 * MIN,
                                          sealed=[hour0]))
        # Late data re-opens and re-seals the hour; the whole hour is
        # re-read but previously-seen payloads are not re-ingested.
        land_hour(warehouse, hour0, [ev(46 * MIN)], part="batch-00007")
        pipeline.observe_poll(poll_result(80 * MIN, 78 * MIN,
                                          sealed=[hour0]))
        assert pipeline.sessionizer.reopened_total == 1
        standing = pipeline.sessionizer.closed_sessions()
        assert len(standing) == 1
        assert len(standing[0].session.events) == 3
        assert pipeline.rollup.corrections == 1

    def test_undecodable_hour_is_skipped_not_fatal(self):
        warehouse = HDFS()
        pipeline = IncrementalPipeline(warehouse, category=CATEGORY)
        hour0 = hour_for_millis(CATEGORY, 0)
        warehouse.create(f"{hour0.path()}/part-00000",
                         encode_messages([b"not a client event"]),
                         codec="zlib")
        pipeline.observe_poll(poll_result(62 * MIN, 60 * MIN,
                                          sealed=[hour0]))
        assert pipeline.hours_processed == 0
        assert pipeline.rollup.days() == []


# -- streaming wiring of the standard pipeline -----------------------------
class TestStandardPipelineStreamingWiring:
    def test_streaming_mover_replaces_daily_rollup_job(self):
        from repro.logmover.streaming import StreamingMover
        from repro.oink.pipelines import register_standard_pipeline
        from repro.oink.scheduler import Oink
        from repro.scribe.message import encode_envelope

        staging, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        mover = StreamingMover({"dc": staging}, warehouse, clock,
                               batch_interval_ms=5 * MIN,
                               watermark_delay_ms=2 * MIN)
        oink = Oink(clock)
        builder = SessionSequenceBuilder(warehouse,
                                         inactivity_gap_ms=GAP_MS)
        state = register_standard_pipeline(oink, mover, builder,
                                           category=CATEGORY)
        assert state.incremental is not None
        hour0 = hour_for_millis(CATEGORY, 0)
        events = [ev(40 * MIN, user=5, sid="w1"),
                  ev(44 * MIN, user=5, sid="w1")]
        staging.create(
            f"/staging/dc/{CATEGORY}/2012/01/01/00/p1",
            encode_messages([encode_envelope("h1", i, e.to_bytes())
                             for i, e in enumerate(events)]),
            codec="zlib")
        # Two hours in: the hour is sealed and the rollups are already
        # materialized + recorded -- no daily job involved.
        oink.run_until(2 * MILLIS_PER_HOUR, step_ms=5 * MIN)
        assert hour0 in state.moved_hours
        assert (2012, 1, 1) in state.rollups
        assert state.rollups[(2012, 1, 1)].count(
            1, ("web", "*", "*", "*", "*", "impression")) == 2
        assert state.incremental.sessionizer.closed_total == 1
        # The daily rollups job was never registered.
        assert not oink.traces.successes("rollups")
        assert load_rollups(warehouse, 2012, 1, 1).tables[1]


# -- satellite: atomic day commit ------------------------------------------
class TestRollupAtomicCommit:
    def _result(self, version):
        events = [ev(1000 + i, name=NAMES[version % 3])
                  for i in range(version + 1)]
        return RollupResult(date=(2012, 1, 1),
                            tables=rollup_tables(events))

    @pytest.mark.parametrize("site", ["oink.rollups.pre_levels",
                                      "oink.rollups.pre_commit"])
    def test_crash_before_commit_leaves_previous_day_intact(self, site):
        warehouse = HDFS()
        materialize_rollups(warehouse, self._result(0))
        before = {level: warehouse.open_bytes(
            f"{rollup_day_dir(2012, 1, 1)}/level-{level}.json")
            for level in ROLLUP_LEVELS}
        arm_crash(site)
        with pytest.raises(InjectedCrash):
            materialize_rollups(warehouse, self._result(1))
        # The old day is fully intact -- not a mix of old and new levels.
        for level in ROLLUP_LEVELS:
            path = f"{rollup_day_dir(2012, 1, 1)}/level-{level}.json"
            assert warehouse.open_bytes(path) == before[level]
        # The retry (crash budget exhausted) repairs to the new day.
        materialize_rollups(warehouse, self._result(1))
        assert load_rollups(warehouse, 2012, 1, 1) == self._result(1)

    def test_crash_in_commit_window_leaves_day_missing_never_mixed(self):
        warehouse = HDFS()
        materialize_rollups(warehouse, self._result(0))
        arm_crash("oink.rollups.pre_rename")
        with pytest.raises(InjectedCrash):
            materialize_rollups(warehouse, self._result(1))
        # Mid-commit: the day reads as *missing*, never half-new.
        with pytest.raises(MissingRollupError):
            load_rollups(warehouse, 2012, 1, 1)
        materialize_rollups(warehouse, self._result(1))
        assert load_rollups(warehouse, 2012, 1, 1) == self._result(1)

    def test_stale_tmp_from_a_crash_is_replaced_on_retry(self):
        warehouse = HDFS()
        arm_crash("oink.rollups.pre_commit")
        with pytest.raises(InjectedCrash):
            materialize_rollups(warehouse, self._result(0))
        assert warehouse.is_dir(f"{rollup_day_dir(2012, 1, 1)}.tmp")
        materialize_rollups(warehouse, self._result(1))
        assert not warehouse.exists(f"{rollup_day_dir(2012, 1, 1)}.tmp")
        assert load_rollups(warehouse, 2012, 1, 1) == self._result(1)


# -- satellite: missing/partial day loading --------------------------------
class TestMissingRollups:
    def test_missing_day_raises_clear_error(self):
        with pytest.raises(MissingRollupError) as excinfo:
            load_rollups(HDFS(), 2012, 3, 10)
        assert "2012-03-10" in str(excinfo.value)
        assert excinfo.value.date == (2012, 3, 10)

    def test_partial_day_raises_clear_error(self):
        warehouse = HDFS()
        # Pre-atomic-commit debris: only one level file present.
        warehouse.create(f"{rollup_day_dir(2012, 3, 10)}/level-5.json",
                         json.dumps([]).encode(), codec="zlib")
        with pytest.raises(MissingRollupError) as excinfo:
            load_rollups(warehouse, 2012, 3, 10)
        assert "partially materialized" in str(excinfo.value)

    def test_dashboard_panel_renders_no_data_instead_of_crashing(self):
        from repro.analytics.dashboard import format_rollup_panel

        panel = format_rollup_panel(HDFS(), (2012, 3, 10))
        assert "no data" in panel
        assert "2012-03-10" in panel

    def test_dashboard_panel_renders_counts_when_materialized(self):
        from repro.analytics.dashboard import format_rollup_panel

        warehouse = HDFS()
        materialize_rollups(warehouse, RollupResult(
            date=(2012, 3, 10), tables=rollup_tables([ev(0), ev(100)])))
        panel = format_rollup_panel(warehouse, (2012, 3, 10))
        assert "no data" not in panel
        assert "impression" in panel


# -- satellite: indexed RollupResult.count ---------------------------------
def _linear_count(result, level, key, country="*", status="*"):
    """The pre-index reference implementation: full-table scan."""
    total = 0
    for (name_key, entry_country, entry_status), count in \
            result.tables[level].items():
        if name_key != tuple(key):
            continue
        if country != "*" and entry_country != country:
            continue
        if status != "*" and entry_status != status:
            continue
        total += count
    return total


class TestIndexedCount:
    def _result(self):
        events = [ev(i, name=NAMES[i % 3],
                     country=("us", "jp", "de")[i % 3],
                     logged_in=bool(i % 2)) for i in range(60)]
        return RollupResult(date=(2012, 1, 1),
                            tables=rollup_tables(events))

    def test_parity_with_linear_scan(self):
        result = self._result()
        queries = []
        for level in ROLLUP_LEVELS:
            for (name_key, country, status) in result.tables[level]:
                queries.extend([
                    (level, name_key, "*", "*"),
                    (level, name_key, country, "*"),
                    (level, name_key, "*", status),
                    (level, name_key, country, status),
                ])
            queries.append((level, ("no", "such", "*", "*", "*", "key"),
                            "*", "*"))
        for level, key, country, status in queries:
            assert result.count(level, key, country, status) == \
                _linear_count(result, level, key, country, status)

    def test_index_rebuilds_when_keys_change(self):
        result = self._result()
        key = ("web", "*", "*", "*", "*", "impression")
        before = result.count(1, key)
        result.tables[1][(key, "br", "logged_in")] = 7
        assert result.count(1, key) == before + 7  # size change -> rebuild

    def test_in_place_mutation_needs_explicit_invalidation(self):
        result = self._result()
        key = ("web", "*", "*", "*", "*", "impression")
        entry = next(k for k in result.tables[1] if k[0] == key)
        before = result.count(1, key)
        result.tables[1][entry] += 5
        result.invalidate_index()
        assert result.count(1, key) == before + 5


# -- satellite: the midnight double-count bug ------------------------------
class TestMidnightDoubleCount:
    def test_per_day_batch_builds_double_count_spanning_session(self):
        warehouse = HDFS()
        # One genuine session straddling the day-1/day-2 midnight.
        day1_tail = [ev(2 * MILLIS_PER_DAY - 4 * MIN, user=3, sid="mid"),
                     ev(2 * MILLIS_PER_DAY - 2 * MIN, user=3, sid="mid")]
        day2_head = [ev(2 * MILLIS_PER_DAY + 2 * MIN, user=3, sid="mid")]
        write_day_events(warehouse, day1_tail, 2012, 1, 2)
        write_day_events(warehouse, day2_head, 2012, 1, 3)
        builder = SessionSequenceBuilder(warehouse,
                                         inactivity_gap_ms=GAP_MS)
        builder.run(2012, 1, 2)
        builder.run(2012, 1, 3)
        per_day = (len(list(builder.iter_sequences(2012, 1, 2)))
                   + len(list(builder.iter_sequences(2012, 1, 3))))
        truth = len(Sessionizer(GAP_MS).sessionize(day1_tail + day2_head))
        assert truth == 1
        # The documented bug: each per-day build sees its half of the
        # run as a session of its own, so the user is counted twice.
        assert per_day == 2

    def test_incremental_attributes_spanning_session_once(self):
        warehouse = HDFS()
        pipeline = IncrementalPipeline(warehouse, category=CATEGORY,
                                       inactivity_gap_ms=GAP_MS)
        h23 = LogHour(CATEGORY, 2012, 1, 2, 23)
        h00 = LogHour(CATEGORY, 2012, 1, 3, 0)
        day2 = 2 * MILLIS_PER_DAY
        land_hour(warehouse, h23, [ev(day2 - 4 * MIN, user=3, sid="mid"),
                                   ev(day2 - 2 * MIN, user=3, sid="mid")])
        land_hour(warehouse, h00, [ev(day2 + 2 * MIN, user=3, sid="mid")])
        pipeline.observe_poll(poll_result(day2 + 2 * MIN, day2,
                                          sealed=[h23]))
        # Day 2's last hour sealed but the session is NOT closed yet --
        # its inactivity horizon reaches into day 3.
        assert pipeline.sessionizer.closed_total == 0
        pipeline.observe_poll(poll_result(day2 + 62 * MIN, day2 + HOUR,
                                          sealed=[h00]))
        closed = pipeline.sessionizer.closed_sessions()
        assert len(closed) == 1
        assert len(closed[0].session.events) == 3
        # Attributed to exactly one day: the day the session started.
        assert closed[0].date == (2012, 1, 2)
        assert list(pipeline.sessionizer.closed_by_day()) == [(2012, 1, 2)]


HOUR = MILLIS_PER_HOUR


# -- satellite: property tests ---------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

component = st.text(
    alphabet=st.sampled_from("ab*é日"), min_size=1, max_size=4)
name_key = st.tuples(component, component, component,
                     component, component, component)
country = st.text(alphabet=st.sampled_from("uüé日jp"), min_size=1,
                  max_size=3)
status = st.sampled_from(["logged_in", "logged_out"])
table = st.dictionaries(st.tuples(name_key, country, status),
                        st.integers(min_value=1, max_value=10_000),
                        max_size=12)


class TestRollupRoundTripProperties:
    @given(tables=st.fixed_dictionaries(
        {level: table for level in ROLLUP_LEVELS}))
    @settings(max_examples=40, deadline=None)
    def test_materialize_load_round_trip(self, tables):
        from collections import Counter

        warehouse = HDFS()
        result = RollupResult(
            date=(2012, 3, 10),
            tables={level: Counter(t) for level, t in tables.items()})
        materialize_rollups(warehouse, result)
        loaded = load_rollups(warehouse, 2012, 3, 10)
        assert loaded.tables == result.tables
        # Spot-check the indexed lookup against the source counts.
        for level, t in tables.items():
            for (key, entry_country, entry_status), count in t.items():
                assert loaded.count(level, key, entry_country,
                                    entry_status) == count


class TestSessionizerProperties:
    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=3),      # user
                  st.sampled_from(["a", "b"]),                # session id
                  st.integers(min_value=0, max_value=6 * HOUR)),  # ts
        max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_splitting_never_reorders_or_drops_events(self, rows):
        events = [ev(ts, user=user, sid=sid) for user, sid, ts in rows]
        sessions = Sessionizer(GAP_MS).sessionize(events)
        # No event dropped or invented.
        flattened = [e.to_bytes() for s in sessions for e in s.events]
        assert sorted(flattened) == sorted(e.to_bytes() for e in events)
        for session in sessions:
            stamps = [e.timestamp for e in session.events]
            # Time-ordered within a session, splits only at gap breaks.
            assert stamps == sorted(stamps)
            assert all(b - a <= GAP_MS
                       for a, b in zip(stamps, stamps[1:]))
        # Incremental agreement: the same events fed incrementally give
        # the same multiset of sessions once everything closes.
        incremental = IncrementalSessionizer(inactivity_gap_ms=GAP_MS)
        incremental.ingest(events)
        incremental.finish()
        incr = sorted((c.session.user_id, c.session.session_id,
                       tuple(e.to_bytes() for e in c.session.events))
                      for c in incremental.closed_sessions())
        batch = sorted((s.user_id, s.session_id,
                        tuple(e.to_bytes() for e in s.events))
                       for s in sessions)
        assert incr == batch
