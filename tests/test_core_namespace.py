"""View-hierarchy tests: name generation and reverse mapping (§3.2)."""

import pytest

from repro.core.names import EventName
from repro.core.namespace import UnknownViewError, ViewHierarchy

TREE = {
    "home": {
        "mentions": {
            "stream": {
                "avatar": ["profile_click", "impression"],
                "tweet": ["click", "impression"],
            },
        },
    },
    "profile": {
        "": {  # page without multiple sections: empty section (§3.2)
            "header": {
                "follow_button": ["click"],
            },
        },
    },
}


@pytest.fixture
def web():
    return ViewHierarchy("web", TREE)


class TestForwardMapping:
    def test_generates_paper_example(self, web):
        name = web.event_name(["home", "mentions", "stream", "avatar"],
                              "profile_click")
        assert str(name) == "web:home:mentions:stream:avatar:profile_click"

    def test_empty_section_generates_empty_component(self, web):
        name = web.event_name(["profile", "", "header", "follow_button"],
                              "click")
        assert str(name) == "web:profile::header:follow_button:click"

    def test_short_path_pads_with_empty(self, web):
        name = web.event_name(["home"], "view")
        assert str(name) == "web:home::::view"

    def test_unknown_path_component(self, web):
        with pytest.raises(UnknownViewError):
            web.event_name(["home", "nope"], "click")

    def test_unknown_action_on_leaf(self, web):
        with pytest.raises(UnknownViewError):
            web.event_name(["home", "mentions", "stream", "avatar"],
                           "teleport")

    def test_all_event_names_sorted_and_complete(self, web):
        names = web.all_event_names()
        assert names == sorted(names)
        assert len(names) == 5  # 2 avatar + 2 tweet + 1 follow_button
        assert all(name.client == "web" for name in names)


class TestReverseMapping:
    def test_locate_returns_triggering_node(self, web):
        name = EventName.parse("web:home:mentions:stream:avatar:impression")
        node = web.locate(name)
        assert node.name == "avatar"
        assert node.kind == "element"

    def test_locate_wrong_client(self, web):
        name = EventName.parse("iphone:home:mentions:stream:avatar:impression")
        with pytest.raises(UnknownViewError):
            web.locate(name)

    def test_locate_unknown_node(self, web):
        name = EventName.parse("web:home:retweets:stream:avatar:impression")
        with pytest.raises(UnknownViewError):
            web.locate(name)

    def test_locate_wrong_action(self, web):
        name = EventName.parse("web:home:mentions:stream:avatar:retweet")
        with pytest.raises(UnknownViewError):
            web.locate(name)

    def test_forward_then_reverse_is_identity(self, web):
        for name in web.all_event_names():
            node = web.locate(name)
            nonempty = [c for c in (name.page, name.section, name.component,
                                    name.element) if c]
            assert node.name == (nonempty[-1] if nonempty else "web")


class TestConstruction:
    def test_too_deep_rejected(self):
        too_deep = {"a": {"b": {"c": {"d": {"e": ["x"]}}}}}
        with pytest.raises(ValueError):
            ViewHierarchy("web", too_deep)

    def test_invalid_spec_type(self):
        with pytest.raises(TypeError):
            ViewHierarchy("web", {"page": 42})

    def test_same_tree_different_clients_same_suffixes(self):
        """The consistent-design-language property: the same tree
        instantiated for web and iphone yields identical names modulo
        the client component (§3.2)."""
        web = ViewHierarchy("web", TREE)
        iphone = ViewHierarchy("iphone", TREE)
        web_suffixes = {str(n).split(":", 1)[1] for n in web.all_event_names()}
        iphone_suffixes = {str(n).split(":", 1)[1]
                           for n in iphone.all_event_names()}
        assert web_suffixes == iphone_suffixes
