"""Columnar mega-table segments: encodings, zone maps, scan parity.

Property tests pin each block encoding's round-trip over its full value
domain (negative and 64-bit ints, non-BMP strings, nulls, empty blocks)
and the zone maps' no-false-negative contract; integration tests pin
the invariant the whole subsystem hangs on -- a columnar scan returns
byte-identical rows to the raw row scan, across all three execution
backends, composed with Elephant Twin split pruning, and degrading
safely when segments are stale or half-written.
"""

import json
import pickle

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core.builder import write_day_events
from repro.core.event import CLIENT_EVENTS_CATEGORY, ClientEvent
from repro.core.names import EventPattern
from repro.faults.injector import (
    KIND_CRASH,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    set_default_injector,
)
from repro.hdfs.layout import (
    LogHour,
    data_files,
    hour_columnar_dir,
    is_columnar_path,
    millis_for_hour,
)
from repro.hdfs.namenode import HDFS
from repro.mapreduce.inputformats import (
    ColumnarBlockSplit,
    ColumnarInputFormat,
)
from repro.mapreduce.jobtracker import JobTracker
from repro.obs import names as obs_names
from repro.obs.metrics import MetricsRegistry, set_default_registry
from repro.pig.loaders import ClientEventsLoader
from repro.pig.relation import PigServer
from repro.thriftlike.codegen import ThriftFileFormat
from repro.warehouse.encodings import (
    ENCODINGS,
    decode_block,
    dict_block_values,
    encode_block,
)
from repro.warehouse.predicates import (
    EqPredicate,
    EventPatternPredicate,
    InPredicate,
    PatternPredicate,
    RangePredicate,
)
from repro.warehouse.segment import (
    STATUS_FRESH,
    STATUS_MISSING,
    STATUS_STALE,
    ColumnarSegment,
    ProjectedEvent,
    build_day_segments,
    compact_hour,
    day_columnar_input,
    segment_status,
    write_hour_segment,
)
from repro.warehouse.zonemap import ZoneMap

CDATE = (2012, 3, 10)
RARE = "web:signup:step_confirm:form:button:submit"
COMMON = "web:home:timeline:stream:tweet:impression"
RARE_PATTERN = "*:signup:*:*:*:*"

_FMT = ThriftFileFormat(ClientEvent)

I64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


def _event(name, user, ts, **kwargs):
    return ClientEvent.make(name, user_id=user, session_id=f"s{user}",
                            ip="10.0.0.1", timestamp=ts, **kwargs)


def _hour(h):
    return LogHour(CLIENT_EVENTS_CATEGORY, *CDATE, h)


def _mini_world(hours=(3, 4), events_per_hour=40, events_per_file=10,
                block_size=512):
    fs = HDFS(block_size=block_size)
    events = []
    for h in hours:
        base = millis_for_hour(_hour(h))
        for i in range(events_per_hour):
            name = RARE if i % 20 == 0 else COMMON
            events.append(_event(
                name, user=i % 5, ts=base + i * 500,
                details={"page": f"p{i % 3}", "emoji": "\U0001f426"},
                country="us" if i % 2 == 0 else None,
                logged_in=(i % 3 == 0) if i % 4 != 0 else None))
    write_day_events(fs, events, *CDATE, events_per_file=events_per_file)
    return fs


def _all_rows(fmt):
    return sorted(record.to_bytes() for split in fmt.splits()
                  for record in fmt.read_split(split))


def _matching_rows(fmt, pattern):
    matcher = EventPattern(pattern)
    return sorted(record.to_bytes() for split in fmt.splits()
                  for record in fmt.read_split(split)
                  if matcher.matches(record.event_name))


# ---------------------------------------------------------------------------
# Encoding round-trips.
# ---------------------------------------------------------------------------


class TestEncodingRoundTrips:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=st.lists(st.one_of(st.none(), I64), max_size=40))
    @example(values=[-(2**63), 2**63 - 1, None, 0])
    def test_varint(self, values):
        assert decode_block("varint",
                            encode_block("varint", values)) == values

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=st.lists(st.one_of(st.none(), I64), max_size=40))
    @example(values=[2**63 - 1, -(2**63), 2**63 - 1])  # extreme deltas
    @example(values=[None, None])
    def test_delta(self, values):
        assert decode_block("delta", encode_block("delta", values)) == values

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=st.lists(st.one_of(st.none(), st.text(max_size=12)),
                           max_size=30))
    @example(values=["\U0001f426:tweet", "", None, "\U0001d54b"])
    def test_plain(self, values):
        assert decode_block("plain", encode_block("plain", values)) == values

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=st.lists(
        st.one_of(st.none(),
                  st.sampled_from(["a", "bb", "\U0001f426", "", "x:y"])),
        max_size=40))
    def test_dict(self, values):
        data = encode_block("dict", values)
        assert decode_block("dict", data) == values
        table = dict_block_values(data)
        seen = []
        for value in values:
            if value is not None and value not in seen:
                seen.append(value)
        assert table == seen  # first-occurrence order, nulls excluded

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.one_of(st.none(), st.booleans()), max_size=40))
    def test_bool(self, values):
        assert decode_block("bool", encode_block("bool", values)) == values

    @pytest.mark.parametrize("encoding", sorted(ENCODINGS))
    def test_empty_block(self, encoding):
        assert decode_block(encoding, encode_block(encoding, [])) == []

    @pytest.mark.parametrize("encoding", sorted(ENCODINGS))
    def test_all_null_block(self, encoding):
        values = [None] * 9
        assert decode_block(encoding, encode_block(encoding, values)) \
            == values

    def test_truncated_block_is_loud(self):
        data = encode_block("varint", [1, 2, 3])
        with pytest.raises(ValueError, match="truncated"):
            decode_block("varint", data[:-1])


# ---------------------------------------------------------------------------
# Zone maps.
# ---------------------------------------------------------------------------


class TestZoneMaps:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=st.lists(st.one_of(st.none(), I64), min_size=1,
                           max_size=30))
    def test_no_false_negatives_ints(self, values):
        zone = ZoneMap.build(values)
        for value in values:
            if value is not None:
                assert zone.might_contain(value)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=st.lists(st.text(max_size=8), min_size=1, max_size=20))
    @example(values=["\U0001f426", "a"])
    def test_no_false_negatives_strings(self, values):
        zone = ZoneMap.build(values)
        for value in values:
            assert zone.might_contain(value)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=st.lists(I64, min_size=1, max_size=20), probe=I64)
    def test_overlaps_no_false_negatives(self, values, probe):
        zone = ZoneMap.build(values)
        for value in values:
            assert zone.overlaps(value, value)
            assert zone.overlaps(None, value)
            assert zone.overlaps(value, None)
        if all(probe < v for v in values):
            assert not zone.overlaps(None, probe)
        if all(probe > v for v in values):
            assert not zone.overlaps(probe, None)

    def test_empty_block_prunes_everything(self):
        zone = ZoneMap.build([None, None])
        assert zone.count == 0
        assert not zone.might_contain(7)
        assert not zone.overlaps(None, None)

    def test_range_pruning_outside_min_max(self):
        zone = ZoneMap.build([10, 20, 30])
        assert not zone.might_contain(9)
        assert not zone.might_contain(31)
        assert not zone.overlaps(31, 99)
        assert zone.overlaps(25, 99)

    def test_type_tagged_hashing(self):
        # 1 and "1" must not collide into guaranteed bloom hits.
        zone = ZoneMap.build(["1"])
        assert zone.might_contain("1")
        assert not zone.might_contain(1)  # range check: mixed types

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(values=st.lists(st.one_of(st.none(), I64), min_size=1,
                           max_size=20))
    def test_json_round_trip(self, values):
        zone = ZoneMap.build(values)
        loaded = ZoneMap.from_json(json.loads(json.dumps(zone.to_json())))
        assert loaded == zone


# ---------------------------------------------------------------------------
# Predicates.
# ---------------------------------------------------------------------------


class TestPredicates:
    def test_event_pattern_agrees_with_grammar(self):
        predicate = EventPatternPredicate(RARE_PATTERN)
        assert predicate.expand([RARE, COMMON]) == [RARE]
        # Expansion must agree with the EventNameFilter row filter's
        # grammar exactly -- same matcher, same verdicts.
        for pattern in (RARE_PATTERN, "web:*", "*:impression"):
            matcher = EventPattern(pattern)
            assert EventPatternPredicate(pattern).expand([RARE, COMMON]) \
                == [v for v in (RARE, COMMON) if matcher.matches(v)]

    def test_event_pattern_abstains_without_values(self):
        zone = ZoneMap.build([COMMON])
        assert EventPatternPredicate(RARE_PATTERN).block_may_match(
            zone, None)  # no value list: must not prune
        assert not EventPatternPredicate(RARE_PATTERN).block_may_match(
            zone, [COMMON])

    def test_pickle_round_trip(self):
        for predicate in (EqPredicate("user_id", 7),
                          InPredicate("country", ("us", "jp")),
                          RangePredicate("timestamp", 10, 20),
                          PatternPredicate("event_name", "web:*"),
                          EventPatternPredicate(RARE_PATTERN)):
            clone = pickle.loads(pickle.dumps(predicate))
            zone = ZoneMap.build([COMMON, 7, "us", 15])
            assert clone.block_may_match(zone, [COMMON]) \
                == predicate.block_may_match(zone, [COMMON])

    def test_in_and_range(self):
        zone = ZoneMap.build([5, 6, 7])
        assert InPredicate("user_id", (7, 99)).block_may_match(zone)
        assert not InPredicate("user_id", (99, 100)).block_may_match(zone)
        assert RangePredicate("user_id", 6, None).block_may_match(zone)
        assert not RangePredicate("user_id", 8, None).block_may_match(zone)


# ---------------------------------------------------------------------------
# Segment write / read / freshness.
# ---------------------------------------------------------------------------


class TestSegmentRoundTrip:
    def test_full_projection_is_byte_identical(self):
        fs = _mini_world(hours=(3,))
        directory = _hour(3).path()
        segment = compact_hour(fs, directory, block_rows=7)
        assert segment is not None
        raw = []
        for path in data_files(fs, directory):
            raw.extend(_FMT.decode(fs.open_bytes(path)))
        rebuilt = []
        for block in range(segment.num_blocks):
            lo, hi = segment.block_range(block)
            rebuilt.extend(segment.materialize(block, lo, hi))
        assert [e.to_bytes() for e in rebuilt] == [e.to_bytes() for e in raw]

    def test_projected_rows_carry_only_projection(self):
        fs = _mini_world(hours=(3,))
        segment = compact_hour(fs, _hour(3).path(), block_rows=16)
        rows = segment.materialize(0, 0, 16,
                                   projection=("event_name", "user_id"))
        assert all(isinstance(r, ProjectedEvent) for r in rows)
        assert rows[0].event_name == RARE
        with pytest.raises(AttributeError):
            rows[0].ip  # noqa: B018 - unprojected column is loud

    def test_projected_event_pickles(self):
        row = ProjectedEvent()
        row.event_name = RARE
        row.user_id = 3
        clone = pickle.loads(pickle.dumps(row))
        assert clone == row
        with pytest.raises(AttributeError):
            clone.ip  # noqa: B018

    def test_segment_pickle_drops_caches(self):
        fs = _mini_world(hours=(3,))
        segment = compact_hour(fs, _hour(3).path())
        segment.column_block("event_name", 0)
        assert segment._block_cache
        clone = pickle.loads(pickle.dumps(segment))
        assert clone._block_cache == {} and clone._file_cache == {}
        assert clone.rows == segment.rows

    def test_late_file_turns_segment_stale(self):
        fs = _mini_world(hours=(3,))
        directory = _hour(3).path()
        compact_hour(fs, directory)
        assert segment_status(fs, directory) == STATUS_FRESH
        base = millis_for_hour(_hour(3))
        fs.create(f"{directory}/late-00000",
                  _FMT.encode([_event(RARE, user=9, ts=base)]), codec="zlib")
        assert segment_status(fs, directory) == STATUS_STALE
        segment = ColumnarSegment.load(fs, directory)
        assert not segment.covers(f"{directory}/late-00000")

    def test_incremental_day_build_skips_fresh(self):
        fs = _mini_world(hours=(3, 4))
        first = build_day_segments(fs, *CDATE)
        assert len(first.built) == 2 and first.rows_compacted == 80
        again = build_day_segments(fs, *CDATE)
        assert again.built == [] and len(again.skipped_fresh) == 2
        base = millis_for_hour(_hour(4))
        fs.create(f"{_hour(4).path()}/late-00000",
                  _FMT.encode([_event(RARE, user=9, ts=base)]), codec="zlib")
        rebuilt = build_day_segments(fs, *CDATE)
        assert rebuilt.built == [_hour(4).path()]

    def test_empty_hour_writes_nothing(self):
        fs = HDFS()
        assert write_hour_segment(fs, "/logs/x/2012/03/10/03", [], []) is None


class TestCrashSafety:
    SITES = ["pre_columns", "pre_manifest", "pre_commit", "pre_rename"]

    @pytest.mark.parametrize("site", SITES)
    def test_crash_leaves_no_committed_segment(self, site):
        fs = _mini_world(hours=(3,))
        directory = _hour(3).path()
        plan = FaultPlan()
        plan.add(f"warehouse.segment.{site}", KIND_CRASH, max_fires=1)
        set_default_injector(FaultInjector(plan))
        try:
            with pytest.raises(InjectedCrash):
                compact_hour(fs, directory)
        finally:
            set_default_injector(None)
        # Never a half-written consultable segment.
        assert ColumnarSegment.load(fs, directory) is None
        assert segment_status(fs, directory) == STATUS_MISSING
        # Re-running converges.
        assert compact_hour(fs, directory) is not None
        assert segment_status(fs, directory) == STATUS_FRESH

    def test_pre_commit_crash_keeps_old_segment(self):
        fs = _mini_world(hours=(3,))
        directory = _hour(3).path()
        first = compact_hour(fs, directory)
        plan = FaultPlan()
        plan.add("warehouse.segment.pre_commit", KIND_CRASH, max_fires=1)
        set_default_injector(FaultInjector(plan))
        try:
            with pytest.raises(InjectedCrash):
                compact_hour(fs, directory, block_rows=5)
        finally:
            set_default_injector(None)
        survivor = ColumnarSegment.load(fs, directory)
        assert survivor is not None
        assert survivor.block_rows == first.block_rows  # the old one


# ---------------------------------------------------------------------------
# Layout: columnar dirs are metadata, not rows (satellite 2).
# ---------------------------------------------------------------------------


class TestLayoutFiltering:
    def test_is_columnar_path(self):
        assert is_columnar_path("/a/03/_columnar/manifest.json")
        assert is_columnar_path("/a/03/_columnar.tmp/event_name.col")
        assert not is_columnar_path("/a/03/part-00000")

    def test_data_files_ignore_segments_mixed_hours(self):
        fs = _mini_world(hours=(3, 4))
        loader = ClientEventsLoader(fs, *CDATE)
        before = loader.paths()
        compact_hour(fs, _hour(3).path())  # hour 4 stays raw
        assert fs.glob_files(hour_columnar_dir(_hour(3).path()))
        assert ClientEventsLoader(fs, *CDATE).paths() == before
        for directory in (_hour(3).path(), _hour(4).path()):
            assert data_files(fs, directory) == [
                p for p in before if p.startswith(directory)]

    def test_half_written_tmp_is_invisible(self):
        fs = _mini_world(hours=(3,))
        directory = _hour(3).path()
        before = data_files(fs, directory)
        fs.create(f"{directory}/_columnar.tmp/event_name.col", b"junk")
        assert data_files(fs, directory) == before
        assert ColumnarSegment.load(fs, directory) is None


# ---------------------------------------------------------------------------
# Scan parity: columnar vs raw, across backends, with pruning.
# ---------------------------------------------------------------------------


class TestScanParity:
    def test_rows_identical_and_blocks_prunable(self):
        fs = _mini_world(hours=(3, 4), events_per_hour=60)
        loader = ClientEventsLoader(fs, *CDATE)
        raw = _all_rows(loader.input_format())
        build_day_segments(fs, *CDATE, block_rows=10)
        fmt = loader.columnar_input_format()
        assert fmt is not None
        assert _all_rows(fmt) == raw
        assert fmt.columnar_splits > 0 and fmt.raw_splits == 0

    def test_absent_value_prunes_every_block(self):
        fs = _mini_world(hours=(3,))
        build_day_segments(fs, *CDATE, block_rows=10)
        registry = MetricsRegistry()
        old = set_default_registry(registry)
        try:
            loader = ClientEventsLoader(fs, *CDATE)
            fmt = loader.columnar_input_format(
                predicates=[EqPredicate("user_id", 10**9)])
            splits = fmt.splits()
        finally:
            set_default_registry(old)
        assert splits == []
        assert fmt.blocks_pruned == 4 and fmt.pruned_bytes > 0
        assert registry.counter(
            obs_names.COLUMNAR_BLOCKS_PRUNED).value == 4

    def test_pattern_pruning_keeps_answers_identical(self):
        # Rare events sit in every other 10-row block, so zone maps can
        # prune half the blocks without losing a single matching row.
        fs = _mini_world(hours=(3, 4))
        build_day_segments(fs, *CDATE, block_rows=10)
        loader = ClientEventsLoader(fs, *CDATE)
        full = _matching_rows(loader.input_format(), RARE_PATTERN)
        fmt = loader.columnar_input_format(
            predicates=[EventPatternPredicate(RARE_PATTERN)])
        assert _matching_rows(fmt, RARE_PATTERN) == full
        assert fmt.blocks_pruned > 0

    def test_stale_hour_falls_back_to_raw_splits(self):
        fs = _mini_world(hours=(3, 4))
        build_day_segments(fs, *CDATE)
        base = millis_for_hour(_hour(4))
        fs.create(f"{_hour(4).path()}/late-00000",
                  _FMT.encode([_event(RARE, user=9, ts=base)]), codec="zlib")
        loader = ClientEventsLoader(fs, *CDATE)
        fmt = loader.columnar_input_format()
        rows = _all_rows(fmt)
        assert rows == _all_rows(loader.input_format())
        assert fmt.raw_splits > 0  # hour 4 scanned raw
        assert fmt.columnar_splits > 0  # hour 3 still vectorized

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_backend_parity(self, backend):
        from repro.analytics.counting import count_events_raw

        fs = _mini_world(hours=(3, 4), events_per_hour=60)
        baseline = count_events_raw(fs, CDATE, RARE_PATTERN)
        build_day_segments(fs, *CDATE, block_rows=10)
        tracker = JobTracker()
        count = count_events_raw(fs, CDATE, RARE_PATTERN, tracker=tracker,
                                 backend=backend, max_workers=4)
        assert count == baseline > 0
        assert tracker.runs[0].backend == backend

    def test_projection_reduces_decoded_bytes(self):
        fs = _mini_world(hours=(3, 4), events_per_hour=60)
        build_day_segments(fs, *CDATE, block_rows=10)
        loader = ClientEventsLoader(fs, *CDATE)

        def decoded_bytes(projection):
            registry = MetricsRegistry()
            old = set_default_registry(registry)
            try:
                fmt = loader.columnar_input_format(projection=projection)
                for split in fmt.splits():
                    fmt.read_split(split)
            finally:
                set_default_registry(old)
            return registry.total(obs_names.COLUMNAR_BYTES_DECODED)
        narrow = decoded_bytes(("event_name",))
        full = decoded_bytes(None)
        assert 0 < narrow < full


class TestElephantTwinComposition:
    def test_index_prunes_splits_then_zones_prune_blocks(self):
        from repro.elephanttwin.buildjob import build_day_indexes

        fs = _mini_world(hours=(3, 4), events_per_hour=60)
        loader = ClientEventsLoader(fs, *CDATE)
        full = _matching_rows(loader.input_format(), RARE_PATTERN)
        build_day_indexes(fs, *CDATE)
        build_day_segments(fs, *CDATE, block_rows=5)

        base = loader.indexed_input_format(RARE_PATTERN)
        registry = MetricsRegistry()
        old = set_default_registry(registry)
        try:
            fmt = ColumnarInputFormat(
                fs, base, predicates=[EventPatternPredicate(RARE_PATTERN)])
            rows = _matching_rows(fmt, RARE_PATTERN)
        finally:
            set_default_registry(old)
        assert rows == full
        assert base.skipped_splits > 0  # Elephant Twin dropped splits
        assert fmt.blocks_pruned > 0  # zone maps dropped blocks within
        assert registry.counter(
            obs_names.COLUMNAR_BLOCKS_PRUNED).value == fmt.blocks_pruned

    def test_pruned_split_rows_never_resurrected(self):
        """A block split clipped to surviving ranges must not leak rows
        Elephant Twin proved unneeded back into the scan."""
        from repro.elephanttwin.buildjob import build_day_indexes

        fs = _mini_world(hours=(3,), events_per_hour=60)
        loader = ClientEventsLoader(fs, *CDATE)
        build_day_indexes(fs, *CDATE)
        build_day_segments(fs, *CDATE, block_rows=25)  # blocks span files
        base = loader.indexed_input_format(RARE_PATTERN)
        surviving = {(s.path, s.index) for s in base.splits()}
        fmt = ColumnarInputFormat(fs, loader.indexed_input_format(
            RARE_PATTERN))
        segment = ColumnarSegment.load(fs, _hour(3).path())
        expected = set()
        for path, index in surviving:
            lo, hi = segment.split_row_range(path, index)
            expected.update(range(lo, hi))
        got = set()
        for split in fmt.splits():
            assert isinstance(split, ColumnarBlockSplit)
            got.update(range(split.start_row, split.end_row))
        assert got == expected


# ---------------------------------------------------------------------------
# Executor integration: projection pruning + predicate pushdown.
# ---------------------------------------------------------------------------


class TestExecutorIntegration:
    def test_filter_events_uses_segments_and_matches_raw(self):
        from repro.pig.udf import EventNameFilter

        fs = _mini_world(hours=(3, 4), events_per_hour=60)
        baseline = sorted(e.to_bytes() for e in (
            PigServer().load(ClientEventsLoader(fs, *CDATE))
            .filter(EventNameFilter(RARE_PATTERN)).dump()))
        build_day_segments(fs, *CDATE, block_rows=10)
        registry = MetricsRegistry()
        old = set_default_registry(registry)
        try:
            rows = (PigServer(JobTracker())
                    .load(ClientEventsLoader(fs, *CDATE))
                    .filter(EventNameFilter(RARE_PATTERN)).dump())
        finally:
            set_default_registry(old)
        assert sorted(e.to_bytes() for e in rows) == baseline
        decoded = registry.total(obs_names.COLUMNAR_BYTES_DECODED)
        assert decoded > 0  # the plan really went columnar
        assert registry.counter(obs_names.COLUMNAR_BLOCKS_PRUNED).value > 0

    def test_counting_queries_identical_with_segments(self):
        from repro.analytics.counting import count_events_raw

        fs = _mini_world(hours=(3, 4), events_per_hour=60)
        before_sum = count_events_raw(fs, CDATE, RARE_PATTERN)
        before_sessions = count_events_raw(fs, CDATE, RARE_PATTERN,
                                           mode="sessions")
        build_day_segments(fs, *CDATE, block_rows=10)
        assert count_events_raw(fs, CDATE, RARE_PATTERN) == before_sum
        assert count_events_raw(fs, CDATE, RARE_PATTERN,
                                mode="sessions") == before_sessions

    def test_events_for_user_identical_with_segments(self):
        from repro.analytics.counting import events_for_user

        fs = _mini_world(hours=(3, 4))
        baseline = sorted(e.to_bytes()
                          for e in events_for_user(fs, CDATE, 2))
        build_day_segments(fs, *CDATE, block_rows=10)
        rows = events_for_user(fs, CDATE, 2)
        assert sorted(e.to_bytes() for e in rows) == baseline

    def test_scan_hints_projection_and_pushdown(self):
        from repro.pig.executor import PlanExecutor
        from repro.pig.plan import FilterNode, ForeachNode
        from repro.pig.udf import EventNameFilter

        class _Raw:
            pass  # no columns_read: needs the full row

        class _Narrow:
            columns_read = ("user_id",)

        flt = FilterNode(child=None, predicate=EventNameFilter(RARE_PATTERN),
                         description="f")
        # Filter-only chain: raw rows still flow to the output, so the
        # scan needs every column -- but the pushdown hint is collected.
        projection, predicates = PlanExecutor._scan_hints([flt])
        assert projection is None
        assert len(predicates) == 1
        # A declared foreach terminates the walk: only the union of the
        # declared columns is ever read.
        projection, predicates = PlanExecutor._scan_hints(
            [flt, ForeachNode(child=None, fn=_Narrow(), description="g")])
        assert projection == ("event_name", "user_id")
        assert len(predicates) == 1
        # An undeclared foreach needs full rows; the hint still rides.
        projection, predicates = PlanExecutor._scan_hints(
            [flt, ForeachNode(child=None, fn=_Raw(), description="g")])
        assert projection is None
        assert len(predicates) == 1


# ---------------------------------------------------------------------------
# Pipeline integration: mover landing and Oink compaction.
# ---------------------------------------------------------------------------


class TestPipelineIntegration:
    @staticmethod
    def _staged_world(hours=(3, 4)):
        from repro.hdfs.layout import staging_path
        from repro.scribe.aggregator import encode_messages

        staging, warehouse = HDFS(), HDFS()
        for h in hours:
            hour = _hour(h)
            base = millis_for_hour(hour)
            messages = [
                _event(RARE if i % 10 == 0 else COMMON, user=i % 4,
                       ts=base + i * 1000).to_bytes()
                for i in range(30)]
            staging.create(f"{staging_path('dc1', hour)}/part-00000",
                           encode_messages(messages), codec="zlib")
        return staging, warehouse

    def test_mover_builds_segments_at_publish(self):
        from repro.logmover.mover import LogMover

        staging, warehouse = self._staged_world(hours=(3,))
        mover = LogMover({"dc1": staging}, warehouse,
                         columnar_categories=[CLIENT_EVENTS_CATEGORY])
        mover.move_hour(_hour(3), require_complete=False)
        directory = _hour(3).path()
        assert segment_status(warehouse, directory) == STATUS_FRESH
        loader = ClientEventsLoader(warehouse, *CDATE)
        fmt = loader.columnar_input_format()
        assert _all_rows(fmt) == _all_rows(loader.input_format())

    def test_mover_without_opt_in_skips_segments(self):
        from repro.logmover.mover import LogMover

        staging, warehouse = self._staged_world(hours=(3,))
        LogMover({"dc1": staging}, warehouse).move_hour(
            _hour(3), require_complete=False)
        assert segment_status(warehouse, _hour(3).path()) == STATUS_MISSING

    def test_oink_columnar_compaction_job(self):
        from repro.clock import LogicalClock
        from repro.core.builder import SessionSequenceBuilder
        from repro.logmover.mover import LogMover
        from repro.oink.pipelines import register_standard_pipeline
        from repro.oink.scheduler import Oink

        staging, warehouse = self._staged_world(hours=(3, 4))
        clock = LogicalClock()
        # Register the pipeline at the covered day's start: Oink runs
        # periods strictly in order, so a pipeline registered months
        # before its first data would hold every daily job behind the
        # empty days' closed gates.
        clock.advance_to(millis_for_hour(_hour(0)))
        oink = Oink(clock)
        mover = LogMover({"dc1": staging}, warehouse)
        state = register_standard_pipeline(
            oink, mover, SessionSequenceBuilder(warehouse),
            build_columnar=True)
        clock.advance_to(millis_for_hour(_hour(23)) + 2 * 3600 * 1000)
        oink.run_pending()
        assert CDATE in state.columnar
        assert sorted(state.columnar[CDATE].built) == [
            _hour(3).path(), _hour(4).path()]
        for h in (3, 4):
            assert segment_status(warehouse, _hour(h).path()) == STATUS_FRESH

    def test_day_build_uses_projected_histogram_scan(self):
        from repro.core.builder import SessionSequenceBuilder

        fs = _mini_world(hours=(3, 4), events_per_hour=60)
        plain = SessionSequenceBuilder(_mini_world(hours=(3, 4),
                                                   events_per_hour=60))
        baseline = plain.run(*CDATE, engine="mapreduce")
        build_day_segments(fs, *CDATE, block_rows=10)
        builder = SessionSequenceBuilder(fs)
        registry = MetricsRegistry()
        old = set_default_registry(registry)
        try:
            result = builder.run(*CDATE, engine="mapreduce")
        finally:
            set_default_registry(old)
        assert builder.load_histogram(*CDATE) == plain.load_histogram(*CDATE)
        assert result.sessions_built == baseline.sessions_built
        assert result.events_scanned == baseline.events_scanned
        decoded = {labels.get("column") for labels, __ in
                   registry.series(obs_names.COLUMNAR_BYTES_DECODED)}
        assert decoded == {"event_name"}  # histogram pass went columnar

    def test_day_columnar_input_none_without_segments(self):
        fs = _mini_world(hours=(3,))
        assert day_columnar_input(fs, CLIENT_EVENTS_CATEGORY,
                                  *CDATE) is None  # no segments yet
        assert day_columnar_input(HDFS(), CLIENT_EVENTS_CATEGORY,
                                  *CDATE) is None  # no data at all
        build_day_segments(fs, *CDATE)
        assert day_columnar_input(fs, CLIENT_EVENTS_CATEGORY,
                                  *CDATE) is not None
