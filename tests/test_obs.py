"""Observability layer: registry semantics, exposition, pipeline tracing."""

import json

import pytest

from repro.analytics.dashboard import format_pipeline_health, pipeline_health
from repro.clock import MILLIS_PER_HOUR
from repro.hdfs.layout import hour_for_millis
from repro.logmover.mover import LogMover
from repro.mapreduce.engine import run_job
from repro.mapreduce.inputformats import InMemoryInputFormat
from repro.mapreduce.job import MapReduceJob
from repro.obs import names
from repro.obs.metrics import (
    MetricTypeError,
    MetricsRegistry,
    get_default_registry,
    set_default_registry,
)
from repro.obs.trace import (
    Tracer,
    get_default_tracer,
    set_default_tracer,
)
from repro.scribe.cluster import ScribeDeployment
from repro.scribe.message import LogEntry

CATEGORY = "client_events"


@pytest.fixture
def fresh_obs():
    """A private registry + enabled tracer installed as the defaults."""
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True)
    old_registry = set_default_registry(registry)
    old_tracer = set_default_tracer(tracer)
    yield registry, tracer
    set_default_registry(old_registry)
    set_default_tracer(old_tracer)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("reqs_total").inc(-1)

    def test_same_labels_same_series(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", host="a", dc="e").inc()
        # label order must not matter
        registry.counter("reqs_total", dc="e", host="a").inc()
        registry.counter("reqs_total", host="b", dc="e").inc()
        assert registry.counter("reqs_total", host="a", dc="e").value == 2
        assert registry.total("reqs_total") == 3


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.gauge("depth")
        with pytest.raises(MetricTypeError):
            registry.counter("depth")


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        histogram = MetricsRegistry().histogram("lat_ms")
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.percentile(0.5) == 50
        assert histogram.percentile(0.95) == 95
        assert histogram.percentile(0.99) == 99
        assert histogram.percentile(0.0) == 1
        assert histogram.percentile(1.0) == 100
        assert histogram.count == 100
        assert histogram.sum == 5050

    def test_empty_percentile_is_none(self):
        histogram = MetricsRegistry().histogram("lat_ms")
        assert histogram.percentile(0.5) is None

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("lat_ms").percentile(1.5)

    def test_merged_across_labels(self):
        registry = MetricsRegistry()
        registry.histogram("lat_ms", stage="a").observe(1)
        registry.histogram("lat_ms", stage="b").observe(3)
        merged = registry.merged_histogram("lat_ms")
        assert merged.count == 2
        assert merged.sum == 4


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", handler="index").inc(3)
        registry.gauge("depth").set(2)
        histogram = registry.histogram("latency_ms", stage="end")
        for value in range(1, 11):
            histogram.observe(value)
        return registry

    def test_text_format_is_stable(self):
        expected = (
            "# TYPE depth gauge\n"
            "depth 2\n"
            "# TYPE latency_ms summary\n"
            'latency_ms{quantile="0.5",stage="end"} 5\n'
            'latency_ms{quantile="0.95",stage="end"} 10\n'
            'latency_ms{quantile="0.99",stage="end"} 10\n'
            'latency_ms_sum{stage="end"} 55\n'
            'latency_ms_count{stage="end"} 10\n'
            "# TYPE requests_total counter\n"
            'requests_total{handler="index"} 3\n'
        )
        assert self._populated().expose() == expected

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", path='a"b\\c\nd').inc()
        line = registry.expose().splitlines()[1]
        assert line == 'c_total{path="a\\"b\\\\c\\nd"} 1'

    def test_snapshot_is_jsonable(self):
        snapshot = self._populated().snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["depth"][0]["value"] == 2
        assert round_tripped["latency_ms"][0]["p50"] == 5
        assert round_tripped["latency_ms"][0]["count"] == 10
        assert round_tripped["requests_total"][0]["labels"] == {
            "handler": "index"}

    def test_empty_registry_exposes_empty(self):
        assert MetricsRegistry().expose() == ""

    def test_histograms_expose_as_summary(self):
        """Quantile series are the Prometheus *summary* type; the old
        ``histogram`` TYPE promised ``_bucket`` series we never emit."""
        text = self._populated().expose()
        assert "# TYPE latency_ms summary\n" in text
        assert "histogram" not in text
        # The JSON snapshot keeps the internal kind name.
        snapshot = self._populated().snapshot()
        assert snapshot["latency_ms"][0]["type"] == "histogram"


class TestDefaults:
    def test_default_registry_swap(self):
        mine = MetricsRegistry()
        old = set_default_registry(mine)
        try:
            assert get_default_registry() is mine
        finally:
            set_default_registry(old)
        assert get_default_registry() is old

    def test_default_tracer_disabled_records_nothing(self):
        tracer = Tracer()
        assert tracer.record("t1", "hop", 0) is None
        tracer.bind_path("/p", ("t1",))
        assert tracer.ids_for_path("/p") == ()
        assert len(tracer) == 0

    def test_tracer_ids_are_deterministic(self):
        tracer = Tracer(enabled=True)
        assert tracer.new_trace_id() == "t00000001"
        assert tracer.new_trace_id() == "t00000002"


class TestTracerBounds:
    def test_max_traces_evicts_oldest(self, fresh_obs):
        registry, __ = fresh_obs
        tracer = Tracer(enabled=True, max_traces=3)
        for i in range(5):
            tracer.record(f"t{i}", "hop", start_ms=i)
        assert len(tracer) == 3
        assert tracer.trace_ids() == ["t2", "t3", "t4"]
        assert registry.counter(names.TRACER_EVICTED,
                                kind="trace").value == 2

    def test_existing_trace_growth_is_not_an_eviction(self, fresh_obs):
        registry, __ = fresh_obs
        tracer = Tracer(enabled=True, max_traces=2)
        tracer.record("t1", "hop_a", start_ms=0)
        tracer.record("t2", "hop_a", start_ms=1)
        # More spans on a known trace must not evict anything.
        tracer.record("t1", "hop_b", start_ms=2)
        assert tracer.trace_ids() == ["t1", "t2"]
        assert tracer.hops("t1") == ["hop_a", "hop_b"]
        assert registry.total(names.TRACER_EVICTED) == 0

    def test_path_bindings_bounded_too(self, fresh_obs):
        registry, __ = fresh_obs
        tracer = Tracer(enabled=True, max_traces=2)
        for i in range(4):
            tracer.bind_path(f"/staging/f{i}", (f"t{i}",))
        assert tracer.ids_for_path("/staging/f0") == ()
        assert tracer.ids_for_path("/staging/f3") == ("t3",)
        assert registry.counter(names.TRACER_EVICTED,
                                kind="path").value == 2

    def test_unbounded_when_disabled_cap(self):
        tracer = Tracer(enabled=True, max_traces=None)
        for i in range(300):
            tracer.record(f"t{i}", "hop", start_ms=i)
        assert len(tracer) == 300

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            Tracer(enabled=True, max_traces=0)


def _run_pipeline_hour(registry, tracer, num_messages=3,
                       advance_ms=1000, mover_delay_ms=MILLIS_PER_HOUR):
    """Deliver a few entries daemon→warehouse; returns (deployment, mover)."""
    deployment = ScribeDeployment(["east"], num_hosts=1, num_aggregators=1,
                                  seed=3)
    datacenter = deployment.datacenters["east"]
    for i in range(num_messages):
        datacenter.log_from(0, LogEntry(CATEGORY, b"m%d" % i))
        deployment.clock.advance(advance_ms)
    deployment.flush_all()
    deployment.clock.advance(mover_delay_ms)
    mover = LogMover({"east": datacenter.staging}, deployment.warehouse,
                     clock=deployment.clock)
    mover.move_hour(hour_for_millis(CATEGORY, 0), require_complete=False)
    return deployment, mover


class TestPipelineTracing:
    def test_entry_trace_covers_every_hop(self, fresh_obs):
        """One entry's spans cover daemon → aggregator → staging → mover
        → warehouse, in pipeline order, under the logical clock."""
        registry, tracer = fresh_obs
        _run_pipeline_hour(registry, tracer, num_messages=3)

        assert len(tracer.trace_ids()) == 3
        first = tracer.trace_ids()[0]
        assert tracer.hops(first) == list(names.PIPELINE_HOPS)

        spans = tracer.spans(first)
        by_name = {span.name: span for span in spans}
        assert by_name[names.SPAN_DAEMON_ENQUEUE].attrs["outcome"] == "sent"
        assert by_name[names.SPAN_AGGREGATOR_RECEIVE].attrs[
            "aggregator"] == "east-agg-000"
        staging_file = by_name[names.SPAN_STAGING_WRITE].attrs["path"]
        assert by_name[names.SPAN_MOVER_DEMUX].attrs["path"] == staging_file
        assert by_name[names.SPAN_WAREHOUSE_LAND].attrs[
            "directory"].startswith("/logs/")
        # Timestamps never go backwards along the pipeline.
        starts = [span.start_ms for span in spans]
        assert starts == sorted(starts)

    def test_end_to_end_latency_observed(self, fresh_obs):
        registry, tracer = fresh_obs
        _run_pipeline_hour(registry, tracer, num_messages=3,
                           advance_ms=1000)
        first = tracer.trace_ids()[0]
        # enqueued at t=0; landed after 3 s of traffic + the mover delay
        assert tracer.end_to_end_ms(first) == 3000 + MILLIS_PER_HOUR
        histogram = registry.merged_histogram(
            names.PIPELINE_DELIVERY_LATENCY)
        assert histogram.count == 3
        assert histogram.percentile(0.99) == 3000 + MILLIS_PER_HOUR

    def test_loss_point_when_aggregators_crash(self, fresh_obs):
        registry, tracer = fresh_obs
        deployment = ScribeDeployment(["east"], num_hosts=1,
                                      num_aggregators=1, seed=3)
        datacenter = deployment.datacenters["east"]
        datacenter.log_from(0, LogEntry(CATEGORY, b"doomed"))
        for name in list(datacenter.aggregators):
            datacenter.crash_aggregator(name)
        (trace_id,) = tracer.trace_ids()
        # Entry reached the aggregator but was lost before the staging
        # write: the trace's last hop is its loss point.
        assert tracer.last_hop(trace_id) == names.SPAN_AGGREGATOR_RECEIVE
        assert registry.total(names.AGGREGATOR_LOST_IN_CRASH) == 1

    def test_untraced_entries_record_no_spans(self):
        registry = MetricsRegistry()
        old_registry = set_default_registry(registry)
        try:
            _run_pipeline_hour(registry, get_default_tracer())
            assert len(get_default_tracer().trace_ids()) == 0
            # ... but metrics still flow into the registry.
            assert registry.total(names.DAEMON_SENT) == 3
        finally:
            set_default_registry(old_registry)


class TestLayerMetrics:
    def test_scribe_and_mover_counters(self, fresh_obs):
        registry, __ = fresh_obs
        _run_pipeline_hour(registry, __, num_messages=5)
        assert registry.total(names.DAEMON_ACCEPTED) == 5
        assert registry.total(names.DAEMON_SENT) == 5
        assert registry.total(names.AGGREGATOR_RECEIVED) == 5
        assert registry.total(names.AGGREGATOR_WRITTEN) == 5
        assert registry.total(names.MOVER_MESSAGES_MOVED) == 5
        assert registry.total(names.MOVER_HOURS_MOVED) == 1
        assert registry.total(names.MOVER_BYTES_MOVED) > 0

    def test_daemon_buffer_metrics_and_drop_oldest(self, fresh_obs):
        registry, tracer = fresh_obs
        from repro.scribe.daemon import ScribeDaemon
        from repro.scribe.discovery import AggregatorDiscovery
        from repro.scribe.zookeeper import ZooKeeper

        daemon = ScribeDaemon("h", AggregatorDiscovery(ZooKeeper(), "dcx"),
                              resolve=lambda name: None, max_buffer=3)
        for i in range(5):
            daemon.log(LogEntry("cat", b"m%d" % i))
        assert daemon.buffered == 3
        assert daemon.stats.buffered_total == 5
        assert daemon.stats.dropped == 2
        assert [entry.message for entry, _key, _rank in daemon._buffer] == [
            b"m2", b"m3", b"m4"]
        assert registry.total(names.DAEMON_BUFFER_DEPTH) == 3
        assert registry.total(names.DAEMON_DROPPED) == 2

    def test_mapreduce_bridge(self, fresh_obs):
        registry, __ = fresh_obs

        def mapper(record, ctx):
            ctx.emit(record, 1)

        def reducer(key, values, ctx):
            ctx.emit(key, sum(values))

        job = MapReduceJob(name="wc",
                           input_format=InMemoryInputFormat(["a", "b", "a"]),
                           mapper=mapper, reducer=reducer)
        run_job(job)
        assert registry.counter(names.MAPREDUCE_JOBS, job="wc").value == 1
        assert registry.counter("mapreduce_io_map_input_records_total",
                                job="wc").value == 3
        wall = registry.merged_histogram(names.MAPREDUCE_JOB_WALL_TIME)
        assert wall.count == 1

    def test_oink_trace_metrics(self, fresh_obs):
        registry, __ = fresh_obs
        from repro.clock import LogicalClock, MILLIS_PER_HOUR as HOUR
        from repro.oink.scheduler import Oink

        clock = LogicalClock()
        oink = Oink(clock)
        oink.hourly("ok", lambda period: None)

        def boom(period):
            raise RuntimeError("nope")

        oink.hourly("bad", boom)
        clock.advance(HOUR)
        oink.run_pending()
        assert registry.counter(names.OINK_JOB_RUNS, job="ok",
                                outcome="success").value == 1
        assert registry.counter(names.OINK_JOB_RUNS, job="bad",
                                outcome="failure").value == 1
        assert registry.merged_histogram(names.OINK_JOB_DURATION).count == 2


class TestPipelineHealthPanel:
    def test_panel_from_registry(self, fresh_obs):
        registry, __ = fresh_obs
        _run_pipeline_hour(registry, __, num_messages=4)
        health = pipeline_health(registry)
        assert health.accepted == 4
        assert health.landed == 4
        assert health.delivery_rate == 1.0
        assert health.backlog == 0
        assert health.latency_count == 4
        assert health.latency_p99_ms is not None
        text = format_pipeline_health(health)
        assert "delivery rate 100.00%" in text
        assert "e2e latency" in text

    def test_empty_panel(self):
        health = pipeline_health(MetricsRegistry())
        assert health.delivery_rate is None
        assert health.monitored is False
        assert health.hours_by_verdict == {}
        text = format_pipeline_health(health)
        assert "no traced deliveries" in text
        assert "alerts" not in text

    def test_partial_registry_never_raises(self):
        """Any subset of pipeline metrics renders without KeyError."""
        registry = MetricsRegistry()
        registry.counter(names.DAEMON_ACCEPTED, host="h").inc(7)
        health = pipeline_health(registry)
        assert health.accepted == 7
        assert health.landed == 0
        assert health.delivery_rate == 0.0
        assert "delivery rate 0.00%" in format_pipeline_health(health)

        registry = MetricsRegistry()
        registry.gauge(names.DAEMON_BUFFER_DEPTH, host="h").set(12)
        registry.histogram(names.PIPELINE_DELIVERY_LATENCY,
                           category="c").observe(250)
        health = pipeline_health(registry)
        assert health.backlog == 12
        assert health.latency_count == 1
        assert health.delivery_rate is None
        format_pipeline_health(health)  # must not raise

    def test_monitored_panel_section(self):
        """Monitor metrics light up the alerts/hours section."""
        registry = MetricsRegistry()
        registry.counter(names.QUALITY_AUDITS).inc(3)
        registry.counter(names.ALERTS_FIRED, rule="staging_outage").inc(2)
        registry.counter(names.ALERTS_RESOLVED, rule="staging_outage").inc(2)
        registry.gauge(names.ALERTS_ACTIVE).set(0)
        registry.gauge(names.QUALITY_HOURS, verdict="complete").set(4)
        registry.gauge(names.QUALITY_HOURS, verdict="late").set(0)
        health = pipeline_health(registry)
        assert health.monitored is True
        assert health.alerts_fired == 2
        assert health.hours_by_verdict == {"complete": 4}
        text = format_pipeline_health(health)
        assert "fired 2" in text
        assert "complete=4" in text
        assert "late=" not in text  # zero-count verdicts are elided
