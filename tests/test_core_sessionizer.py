"""Sessionization tests: group-by semantics, 30-minute gap, ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.clock import MILLIS_PER_MINUTE
from repro.core.event import ClientEvent
from repro.core.sessionizer import (
    DEFAULT_INACTIVITY_GAP_MS,
    Session,
    Sessionizer,
)

NAME = "web:home:timeline:stream:tweet:impression"


def _event(user_id, session_id, timestamp, name=NAME):
    return ClientEvent.make(name, user_id=user_id, session_id=session_id,
                            ip=f"10.0.0.{user_id % 250}",
                            timestamp=timestamp)


class TestGrouping:
    def test_default_gap_is_30_minutes(self):
        assert DEFAULT_INACTIVITY_GAP_MS == 30 * MILLIS_PER_MINUTE

    def test_groups_by_user_and_session(self):
        events = [_event(1, "a", 0), _event(1, "b", 0), _event(2, "a", 0)]
        sessions = Sessionizer().sessionize(events)
        assert len(sessions) == 3

    def test_same_session_id_same_user_groups_together(self):
        events = [_event(1, "a", 0), _event(1, "a", 1000)]
        sessions = Sessionizer().sessionize(events)
        assert len(sessions) == 1
        assert len(sessions[0].events) == 2

    def test_unsorted_input_is_sorted(self):
        events = [_event(1, "a", 5000), _event(1, "a", 1000),
                  _event(1, "a", 3000)]
        (session,) = Sessionizer().sessionize(events)
        assert [e.timestamp for e in session.events] == [1000, 3000, 5000]

    def test_empty_input(self):
        assert Sessionizer().sessionize([]) == []

    def test_output_ordering(self):
        events = [_event(2, "a", 0), _event(1, "b", 0), _event(1, "a", 0)]
        sessions = Sessionizer().sessionize(events)
        keys = [(s.user_id, s.session_id) for s in sessions]
        assert keys == sorted(keys)


class TestInactivityGap:
    def test_gap_splits_session(self):
        gap = DEFAULT_INACTIVITY_GAP_MS
        events = [_event(1, "a", 0), _event(1, "a", gap + 1)]
        sessions = Sessionizer().sessionize(events)
        assert len(sessions) == 2

    def test_gap_boundary_exactly_30min_stays_together(self):
        gap = DEFAULT_INACTIVITY_GAP_MS
        events = [_event(1, "a", 0), _event(1, "a", gap)]
        sessions = Sessionizer().sessionize(events)
        assert len(sessions) == 1

    def test_custom_gap(self):
        sessionizer = Sessionizer(inactivity_gap_ms=1000)
        events = [_event(1, "a", 0), _event(1, "a", 1500)]
        assert len(sessionizer.sessionize(events)) == 2

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            Sessionizer(inactivity_gap_ms=0)

    def test_multiple_splits(self):
        gap = 1000
        times = [0, 500, 3000, 3500, 9000]
        events = [_event(1, "a", t) for t in times]
        sessions = Sessionizer(gap).sessionize(events)
        assert [len(s.events) for s in sessions] == [2, 2, 1]


class TestSessionProperties:
    def test_duration(self):
        events = [_event(1, "a", 1000), _event(1, "a", 61_000)]
        (session,) = Sessionizer().sessionize(events)
        assert session.duration_ms == 60_000
        assert session.duration_seconds == 60
        assert session.start == 1000
        assert session.end == 61_000

    def test_single_event_session_zero_duration(self):
        (session,) = Sessionizer().sessionize([_event(1, "a", 5)])
        assert session.duration_ms == 0
        assert len(session) == 1

    def test_ip_and_client(self):
        (session,) = Sessionizer().sessionize([_event(7, "a", 0)])
        assert session.ip == "10.0.0.7"
        assert session.client == "web"

    def test_event_names(self):
        other = "web:search::results:result:click"
        events = [_event(1, "a", 0), _event(1, "a", 10, name=other)]
        (session,) = Sessionizer().sessionize(events)
        assert session.event_names == [NAME, other]

    def test_iter_sessions(self):
        events = [_event(1, "a", 0)]
        assert len(list(Sessionizer().iter_sessions(events))) == 1


class TestPropertyInvariants:
    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=5),      # user
                  st.sampled_from(["s1", "s2"]),              # session id
                  st.integers(min_value=0, max_value=10 ** 8)),  # timestamp
        max_size=80))
    def test_conservation_and_ordering(self, specs):
        events = [_event(u, s, t) for u, s, t in specs]
        sessions = Sessionizer().sessionize(events)
        # every event lands in exactly one session
        assert sum(len(s.events) for s in sessions) == len(events)
        for session in sessions:
            times = [e.timestamp for e in session.events]
            assert times == sorted(times)
            # within a session no gap exceeds the cutoff
            for a, b in zip(times, times[1:]):
                assert b - a <= DEFAULT_INACTIVITY_GAP_MS
            # one user, one session id per session
            assert len({e.user_id for e in session.events}) == 1
            assert len({e.session_id for e in session.events}) == 1

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 7),
                    min_size=2, max_size=40))
    def test_sessions_maximal(self, times):
        """Sessions are split exactly at >gap boundaries: consecutive
        sessions of the same (user, id) are separated by more than the
        gap."""
        events = [_event(1, "a", t) for t in times]
        sessions = Sessionizer(inactivity_gap_ms=1000).sessionize(events)
        for a, b in zip(sessions, sessions[1:]):
            assert b.start - a.end > 1000
