"""Continuous monitoring: time-series store, quality audits, alerting."""

import pytest

from repro.clock import LogicalClock, MILLIS_PER_HOUR
from repro.obs import names
from repro.obs.metrics import MetricsRegistry, set_default_registry
from repro.obs.monitor import (
    AlertEngine,
    CompletenessRule,
    DataQualityAuditor,
    DeltaRule,
    MonitorContext,
    PipelineMonitor,
    SeasonalRule,
    ThresholdRule,
    TimeSeriesStore,
    VERDICT_COMPLETE,
    VERDICT_INCOMPLETE,
    VERDICT_LATE,
    VERDICT_MISSING,
    format_alerts,
    format_audits,
    sparkline,
    standard_rules,
)
from repro.scribe.daemon import HourCounts

MINUTE = 60_000


@pytest.fixture
def fresh_registry():
    registry = MetricsRegistry()
    old = set_default_registry(registry)
    yield registry
    set_default_registry(old)


class TestTimeSeriesStore:
    def test_samples_counters_and_gauges(self, fresh_registry):
        fresh_registry.counter("reqs_total", host="a").inc(3)
        fresh_registry.gauge("depth").set(7)
        store = TimeSeriesStore()
        store.sample(1000)
        assert store.points("reqs_total", host="a") == [(1000, 3.0)]
        assert store.points("depth") == [(1000, 7.0)]
        assert store.kind("reqs_total") == "counter"
        assert store.kind("depth") == "gauge"
        assert store.sample_times() == [1000]

    def test_histograms_become_count_and_sum(self, fresh_registry):
        histogram = fresh_registry.histogram("lat_ms", stage="e")
        histogram.observe(10)
        histogram.observe(30)
        store = TimeSeriesStore()
        store.sample(500)
        assert store.points("lat_ms_count", stage="e") == [(500, 2.0)]
        assert store.points("lat_ms_sum", stage="e") == [(500, 40.0)]

    def test_same_instant_overwrites(self, fresh_registry):
        counter = fresh_registry.counter("reqs_total")
        counter.inc()
        store = TimeSeriesStore()
        store.sample(1000)
        counter.inc()
        store.sample(1000)  # same logical instant: no zero-dt artifact
        assert store.points("reqs_total") == [(1000, 2.0)]
        assert store.sample_times() == [1000]

    def test_rates_from_counter_deltas(self):
        points = [(0, 0.0), (1000, 5.0), (3000, 5.0), (4000, 9.0)]
        assert TimeSeriesStore.rates(points) == [
            (1000, 5.0), (3000, 0.0), (4000, 4.0)]

    def test_counter_reset_clamps_to_zero(self):
        points = [(0, 100.0), (1000, 2.0), (2000, 4.0)]
        assert TimeSeriesStore.rates(points) == [(1000, 0.0), (2000, 2.0)]

    def test_total_and_grouped_across_labels(self, fresh_registry):
        fresh_registry.counter("c_total", dc="east").inc(1)
        fresh_registry.counter("c_total", dc="west").inc(2)
        store = TimeSeriesStore()
        store.sample(1000)
        fresh_registry.counter("c_total", dc="east").inc(3)
        store.sample(2000)
        assert store.total_points("c_total") == [(1000, 3.0), (2000, 6.0)]
        grouped = store.grouped_points("c_total", "dc")
        assert grouped["east"] == [(1000, 1.0), (2000, 4.0)]
        assert grouped["west"] == [(1000, 2.0), (2000, 2.0)]
        assert store.total_rate_points("c_total") == [(2000, 3.0)]
        assert store.latest_total("c_total") == 6.0
        assert store.latest("c_total", dc="east") == 4.0
        assert store.latest_rate("c_total", dc="east") == 3.0

    def test_ring_buffer_bounds_history(self, fresh_registry):
        counter = fresh_registry.counter("c_total")
        store = TimeSeriesStore(max_samples=4)
        for i in range(10):
            counter.inc()
            store.sample(i * 1000)
        points = store.points("c_total")
        assert len(points) == 4
        assert points[0] == (6000, 7.0)
        assert len(store.sample_times()) == 4

    def test_rejects_tiny_ring(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(max_samples=1)

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0, 0.0]) == "   "
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(list(range(100)), width=10)) == 10


class _FakeMove:
    def __init__(self, hour, quarantined=0, moved_at_ms=None):
        self.hour = hour
        self.quarantined_messages = quarantined
        self.moved_at_ms = moved_at_ms


class _FakeMover:
    def __init__(self, landed=(), moves=()):
        self._landed = set(landed)
        self.moves = list(moves)

    def landed_identities(self, hour=None):
        return frozenset(self._landed)


class _FakeDaemon:
    def __init__(self, ledger):
        self._ledger = ledger

    def hour_ledger(self):
        return self._ledger


def _books(category, hour_index, ids, dropped_ids=()):
    counts = HourCounts(accepted=len(ids) + len(dropped_ids),
                        dropped=len(dropped_ids),
                        ids=set(ids) | set(dropped_ids),
                        dropped_ids=set(dropped_ids))
    return {(category, hour_index): counts}


class TestDataQualityAuditor:
    def test_complete_hour(self, fresh_registry):
        ids = {("h", 0), ("h", 1), ("h", 2)}
        daemon = _FakeDaemon(_books("cat", 0, ids))
        auditor = DataQualityAuditor(_FakeMover(landed=ids),
                                     daemons=[daemon])
        (audit,) = auditor.audit(MILLIS_PER_HOUR)
        assert audit.verdict == VERDICT_COMPLETE
        assert audit.accepted == 3
        assert audit.landed == 3
        assert audit.outstanding == 0
        assert audit.conserved

    def test_open_hours_are_skipped(self, fresh_registry):
        daemon = _FakeDaemon(_books("cat", 0, {("h", 0)}))
        auditor = DataQualityAuditor(_FakeMover(), daemons=[daemon])
        assert auditor.audit(MILLIS_PER_HOUR - 1) == []
        assert len(auditor.audit(MILLIS_PER_HOUR)) == 1

    def test_late_then_incomplete(self, fresh_registry):
        ids = {("h", 0), ("h", 1)}
        daemon = _FakeDaemon(_books("cat", 0, ids))
        mover = _FakeMover(landed={("h", 0)})
        auditor = DataQualityAuditor(mover, daemons=[daemon],
                                     grace_ms=30 * MINUTE)
        # Inside the grace window: outstanding data is merely late.
        (audit,) = auditor.audit(MILLIS_PER_HOUR + MINUTE)
        assert audit.verdict == VERDICT_LATE
        assert audit.outstanding == 1
        assert audit.conserved
        # Past the deadline with partial data: incomplete.
        (audit,) = auditor.audit(MILLIS_PER_HOUR + 31 * MINUTE)
        assert audit.verdict == VERDICT_INCOMPLETE

    def test_missing_when_nothing_landed(self, fresh_registry):
        daemon = _FakeDaemon(_books("cat", 0, {("h", 0)}))
        auditor = DataQualityAuditor(_FakeMover(), daemons=[daemon],
                                     grace_ms=0)
        (audit,) = auditor.audit(MILLIS_PER_HOUR)
        assert audit.verdict == VERDICT_MISSING

    def test_quarantine_is_an_accounted_sink(self, fresh_registry):
        from repro.hdfs.layout import hour_for_millis

        ids = {("h", 0), ("h", 1)}
        daemon = _FakeDaemon(_books("cat", 0, ids))
        hour = hour_for_millis("cat", 0)
        mover = _FakeMover(landed={("h", 0)},
                           moves=[_FakeMove(hour, quarantined=1,
                                            moved_at_ms=MILLIS_PER_HOUR
                                            + 5 * MINUTE)])
        auditor = DataQualityAuditor(mover, daemons=[daemon], grace_ms=0)
        (audit,) = auditor.audit(2 * MILLIS_PER_HOUR)
        assert audit.verdict == VERDICT_COMPLETE
        assert audit.quarantined == 1
        assert audit.outstanding == 0
        assert audit.lag_ms == 5 * MINUTE
        assert audit.conserved

    def test_drops_count_against_the_accept_hour(self, fresh_registry):
        daemon = _FakeDaemon(_books("cat", 0, {("h", 1)},
                                    dropped_ids={("h", 0)}))
        auditor = DataQualityAuditor(_FakeMover(landed={("h", 1)}),
                                     daemons=[daemon])
        (audit,) = auditor.audit(MILLIS_PER_HOUR)
        assert audit.verdict == VERDICT_COMPLETE
        assert audit.accepted == 2
        assert audit.dropped == 1
        assert audit.landed == 1
        assert audit.conserved

    def test_metrics_mirrored(self, fresh_registry):
        ids = {("h", 0)}
        daemon = _FakeDaemon(_books("cat", 0, ids))
        auditor = DataQualityAuditor(_FakeMover(landed=ids),
                                     daemons=[daemon])
        auditor.audit(MILLIS_PER_HOUR)
        auditor.audit(MILLIS_PER_HOUR)
        assert fresh_registry.total(names.QUALITY_AUDITS) == 2
        assert fresh_registry.gauge(names.QUALITY_HOURS,
                                    verdict="complete").value == 1
        assert fresh_registry.gauge(names.QUALITY_OUTSTANDING).value == 0

    def test_format_audits_table(self, fresh_registry):
        ids = {("h", 0)}
        daemon = _FakeDaemon(_books("cat", 0, ids))
        auditor = DataQualityAuditor(_FakeMover(landed=ids),
                                     daemons=[daemon])
        text = format_audits(auditor.audit(MILLIS_PER_HOUR))
        assert "cat/2012/01/01/00" in text
        assert "complete" in text
        assert format_audits([]).startswith("completeness: no closed")


def _ctx(store, now_ms, audits=()):
    return MonitorContext(store=store, audits=list(audits), now_ms=now_ms)


class TestAlertRules:
    def test_threshold_fires_and_clears(self, fresh_registry):
        gauge = fresh_registry.gauge("depth")
        store = TimeSeriesStore()
        rule = ThresholdRule("deep", "depth", threshold=10)
        gauge.set(5)
        store.sample(1000)
        assert rule.evaluate(_ctx(store, 1000)) is None
        gauge.set(25)
        store.sample(2000)
        assert "depth=25 > 10" in rule.evaluate(_ctx(store, 2000))
        gauge.set(0)
        store.sample(3000)
        assert rule.evaluate(_ctx(store, 3000)) is None

    def test_threshold_debounce(self, fresh_registry):
        gauge = fresh_registry.gauge("depth")
        store = TimeSeriesStore()
        rule = ThresholdRule("deep", "depth", threshold=0, for_samples=2)
        gauge.set(9)
        store.sample(1000)
        assert rule.evaluate(_ctx(store, 1000)) is None  # first sample
        store.sample(2000)
        assert rule.evaluate(_ctx(store, 2000)) is not None

    def test_delta_first_evaluation_is_baseline(self, fresh_registry):
        counter = fresh_registry.counter("failovers_total")
        counter.inc(5)  # history from before monitoring started
        store = TimeSeriesStore()
        store.sample(1000)
        rule = DeltaRule("fo", "failovers_total", clear_after=2)
        assert rule.evaluate(_ctx(store, 1000)) is None
        counter.inc()
        store.sample(2000)
        assert "+1" in rule.evaluate(_ctx(store, 2000))
        # Holds through clear_after-1 quiet ticks, then clears.
        store.sample(3000)
        assert rule.evaluate(_ctx(store, 3000)) is not None
        store.sample(4000)
        assert rule.evaluate(_ctx(store, 4000)) is None

    def test_seasonal_needs_prior_day_baseline(self, fresh_registry):
        counter = fresh_registry.counter("accepted_total")
        store = TimeSeriesStore(max_samples=600)
        rule = SeasonalRule("seasonal", "accepted_total", tolerance=0.5)
        # Day 0: steady 10 msgs per 10-minute sample, all 24 hours.
        now = 0
        fired_day0 = []
        for __ in range(24 * 6):
            now += 10 * MINUTE
            counter.inc(10)
            store.sample(now)
            fired_day0.append(rule.evaluate(_ctx(store, now)))
        assert not any(fired_day0)  # no baseline on the first day
        # Day 1: the same cadence but traffic collapses -> fires.
        messages = []
        for __ in range(6):
            now += 10 * MINUTE
            counter.inc(0)
            store.sample(now)
            messages.append(rule.evaluate(_ctx(store, now)))
        assert any(messages)
        assert "below seasonal baseline" in [m for m in messages if m][0]

    def test_seasonal_quiet_on_normal_day(self, fresh_registry):
        counter = fresh_registry.counter("accepted_total")
        store = TimeSeriesStore(max_samples=600)
        rule = SeasonalRule("seasonal", "accepted_total", tolerance=0.5)
        now = 0
        messages = []
        for __ in range(30 * 6):  # a day and a quarter, steady rate
            now += 10 * MINUTE
            counter.inc(10)
            store.sample(now)
            messages.append(rule.evaluate(_ctx(store, now)))
        assert not any(messages)

    def test_completeness_rule_lists_unhealthy_hours(self, fresh_registry):
        from repro.hdfs.layout import hour_for_millis

        store = TimeSeriesStore()
        rule = CompletenessRule()
        healthy = _audit_stub(hour_for_millis("cat", 0), VERDICT_COMPLETE)
        sick = _audit_stub(hour_for_millis("cat", MILLIS_PER_HOUR),
                           VERDICT_INCOMPLETE)
        assert rule.evaluate(_ctx(store, 0, [healthy])) is None
        message = rule.evaluate(_ctx(store, 0, [healthy, sick]))
        assert "1 unhealthy hour(s)" in message
        assert "cat/2012/01/01/01=incomplete" in message


def _audit_stub(hour, verdict):
    from repro.obs.monitor import HourAudit

    return HourAudit(hour=hour, accepted=1, dropped=0, landed=1,
                     quarantined=0, outstanding=0, verdict=verdict,
                     deadline_ms=0)


class TestAlertEngine:
    def test_episode_lifecycle_and_metrics(self, fresh_registry):
        gauge = fresh_registry.gauge("depth")
        store = TimeSeriesStore()
        engine = AlertEngine([ThresholdRule("deep", "depth", threshold=0)])
        gauge.set(5)
        store.sample(1000)
        engine.evaluate(_ctx(store, 1000))
        (alert,) = engine.active()
        assert alert.rule == "deep" and alert.fired_at_ms == 1000
        assert fresh_registry.counter(names.ALERTS_FIRED,
                                      rule="deep").value == 1
        assert fresh_registry.total(names.ALERTS_ACTIVE) == 1
        # Still firing: same episode, refreshed message.
        gauge.set(9)
        store.sample(2000)
        engine.evaluate(_ctx(store, 2000))
        assert engine.fired("deep") == 1
        assert "depth=9" in engine.active()[0].message
        # Recovery resolves it.
        gauge.set(0)
        store.sample(3000)
        engine.evaluate(_ctx(store, 3000))
        assert engine.all_resolved()
        (episode,) = engine.episodes("deep")
        assert episode.resolved_at_ms == 3000
        assert fresh_registry.counter(names.ALERTS_RESOLVED,
                                      rule="deep").value == 1
        assert fresh_registry.total(names.ALERTS_ACTIVE) == 0

    def test_duplicate_rule_names_rejected(self, fresh_registry):
        with pytest.raises(ValueError):
            AlertEngine([ThresholdRule("x", "m"), ThresholdRule("x", "m")])

    def test_format_alerts(self, fresh_registry):
        gauge = fresh_registry.gauge("depth")
        store = TimeSeriesStore()
        engine = AlertEngine([ThresholdRule("deep", "depth", threshold=0)])
        assert format_alerts(engine) == "alerts: none fired"
        gauge.set(5)
        store.sample(90 * MINUTE)
        engine.evaluate(_ctx(store, 90 * MINUTE))
        text = format_alerts(engine)
        assert "FIRING" in text and "1h30m" in text


class TestPipelineMonitor:
    def test_tick_samples_audits_and_alerts(self, fresh_registry):
        ids = {("h", 0)}
        daemon = _FakeDaemon(_books("cat", 0, ids))
        monitor = PipelineMonitor(
            auditor=DataQualityAuditor(_FakeMover(), daemons=[daemon]),
            rules=[CompletenessRule()])
        fresh_registry.counter("anything_total").inc()
        ctx = monitor.tick(MILLIS_PER_HOUR + 31 * MINUTE)
        assert monitor.ticks == 1
        assert ctx.audits == monitor.audits
        assert monitor.audits[0].verdict == VERDICT_MISSING
        assert len(monitor.engine.active()) == 1
        assert fresh_registry.total(names.MONITOR_SAMPLES) == 1

    def test_standard_rules_cover_failure_modes(self):
        assert sorted(rule.name for rule in standard_rules()) == [
            "aggregator_failover", "completeness", "delivery_backlog",
            "mover_crash", "seasonal_accepted", "staging_outage"]

    def test_render_panel(self, fresh_registry):
        fresh_registry.counter(names.DAEMON_ACCEPTED, host="h").inc(4)
        monitor = PipelineMonitor(rules=[])
        monitor.tick(1000)
        fresh_registry.counter(names.DAEMON_ACCEPTED, host="h").inc(4)
        monitor.tick(2000)
        text = monitor.render()
        assert "monitor: 2 tick(s)" in text
        assert "accepted msg/s" in text
        assert "alerts: none fired" in text


class TestDaemonHourLedger:
    def _daemon(self, clock, max_buffer=None):
        from repro.scribe.daemon import ScribeDaemon
        from repro.scribe.discovery import AggregatorDiscovery
        from repro.scribe.zookeeper import ZooKeeper

        return ScribeDaemon("h", AggregatorDiscovery(ZooKeeper(), "dc"),
                            resolve=lambda name: None, clock=clock,
                            max_buffer=max_buffer)

    def test_accepts_keyed_by_hour(self, fresh_registry):
        from repro.scribe.message import LogEntry

        clock = LogicalClock()
        daemon = self._daemon(clock)
        daemon.log(LogEntry("cat", b"a"))
        clock.advance(MILLIS_PER_HOUR)
        daemon.log(LogEntry("cat", b"b"))
        ledger = daemon.hour_ledger()
        assert ledger[("cat", 0)].accepted == 1
        assert ledger[("cat", 1)].accepted == 1
        assert ledger[("cat", 0)].expected_ids() == {("h", 0)}

    def test_drop_oldest_attributed_to_accept_hour(self, fresh_registry):
        from repro.scribe.message import LogEntry

        clock = LogicalClock()
        daemon = self._daemon(clock, max_buffer=2)
        daemon.log(LogEntry("cat", b"old"))
        clock.advance(MILLIS_PER_HOUR)
        daemon.log(LogEntry("cat", b"x"))
        daemon.log(LogEntry("cat", b"y"))  # evicts b"old" from hour 0
        ledger = daemon.hour_ledger()
        assert ledger[("cat", 0)].dropped == 1
        assert ledger[("cat", 0)].expected_ids() == set()
        assert ledger[("cat", 1)].dropped == 0
        assert len(ledger[("cat", 1)].expected_ids()) == 2


class TestMoverMonitoringHooks:
    def test_moved_at_ms_stamped(self, fresh_registry):
        from repro.hdfs.layout import hour_for_millis
        from repro.logmover.mover import LogMover
        from repro.scribe.cluster import ScribeDeployment
        from repro.scribe.message import LogEntry

        deployment = ScribeDeployment(["east"], num_hosts=1,
                                      num_aggregators=1, seed=3)
        datacenter = deployment.datacenters["east"]
        datacenter.log_from(0, LogEntry("cat", b"m"))
        deployment.flush_all()
        deployment.clock.advance(MILLIS_PER_HOUR + 5 * MINUTE)
        mover = LogMover({"east": datacenter.staging},
                         deployment.warehouse, clock=deployment.clock)
        mover.move_hour(hour_for_millis("cat", 0), require_complete=False)
        (result,) = mover.moves
        assert result.moved_at_ms == MILLIS_PER_HOUR + 5 * MINUTE


class TestOinkQualityAudit:
    def test_quality_audit_job_fills_state(self, fresh_registry):
        from repro.core.builder import SessionSequenceBuilder
        from repro.core.event import CLIENT_EVENTS_CATEGORY
        from repro.logmover.mover import LogMover
        from repro.oink.pipelines import register_standard_pipeline
        from repro.oink.scheduler import Oink
        from repro.scribe.cluster import ScribeDeployment
        from repro.scribe.message import LogEntry

        deployment = ScribeDeployment(["dc"], num_hosts=1,
                                      num_aggregators=1, seed=2)
        datacenter = deployment.datacenters["dc"]
        clock = deployment.clock
        oink = Oink(clock)
        mover = LogMover({"dc": datacenter.staging}, deployment.warehouse,
                         clock=clock)
        monitor = PipelineMonitor(
            auditor=DataQualityAuditor(mover, daemons=datacenter.daemons),
            rules=standard_rules())
        state = register_standard_pipeline(
            oink, mover, SessionSequenceBuilder(deployment.warehouse),
            monitor=monitor)

        for i in range(5):
            datacenter.log_from(0, LogEntry(CLIENT_EVENTS_CATEGORY,
                                            b"m%d" % i))
        datacenter.flush()
        clock.advance(MILLIS_PER_HOUR)
        oink.run_pending()

        assert oink.traces.succeeded("quality_audit", 0)
        (audit,) = state.audits
        assert audit.verdict == VERDICT_COMPLETE
        assert audit.accepted == 5
        assert audit.landed == 5
        assert monitor.engine.all_resolved()
        assert fresh_registry.total(names.QUALITY_AUDITS) >= 1

    def test_monitorless_pipeline_has_no_audit_job(self, fresh_registry):
        from repro.core.builder import SessionSequenceBuilder
        from repro.hdfs.namenode import HDFS
        from repro.logmover.mover import LogMover
        from repro.oink.pipelines import register_standard_pipeline
        from repro.oink.scheduler import Oink

        clock = LogicalClock()
        oink = Oink(clock)
        warehouse = HDFS()
        register_standard_pipeline(
            oink, LogMover({"dc": HDFS()}, warehouse),
            SessionSequenceBuilder(warehouse))
        clock.advance(MILLIS_PER_HOUR)
        oink.run_pending()
        assert not oink.traces.for_job("quality_audit")


class TestChaosIntegration:
    def test_storm_fires_and_resolves_alerts(self, fresh_registry):
        from repro.faults.chaos import run_chaos

        report = run_chaos(1, hours=1, monitor=True)
        assert report.ok, report.summary()
        assert report.alerts_fired >= 3
        assert report.alerts_unresolved == 0
        engine = report.monitor.engine
        for rule in ("staging_outage", "aggregator_failover",
                     "mover_crash"):
            assert engine.fired(rule) >= 1, rule
        assert all(v == VERDICT_COMPLETE
                   for v in report.hour_verdicts.values())

    def test_clean_run_fires_nothing(self, fresh_registry):
        from repro.faults.chaos import run_chaos

        report = run_chaos(0, hours=1, monitor=True, faults=False)
        assert report.ok, report.summary()
        assert report.alerts_fired == 0
        assert report.faults_injected == 0
        assert report.hour_verdicts
        assert all(v == VERDICT_COMPLETE
                   for v in report.hour_verdicts.values())

    def test_mover_crash_counter(self, fresh_registry):
        from repro.faults.chaos import run_chaos

        report = run_chaos(1, hours=1, monitor=True)
        assert report.ok
        assert fresh_registry.total(names.MOVER_CRASHES) >= 1
