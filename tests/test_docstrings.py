"""Documentation coverage: every public item carries a docstring.

Walks every module under :mod:`repro` and asserts that modules, public
classes, public functions, and public methods are documented. Inherited
docstrings count (overriding a documented method without restating the
contract is fine).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        yield name, obj


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in _public_members(module):
        if inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(f"class {name}")
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if isinstance(attr, property):
                    target = attr.fget
                elif inspect.isfunction(attr):
                    target = attr
                elif isinstance(attr, (classmethod, staticmethod)):
                    target = attr.__func__
                else:
                    continue
                if not inspect.getdoc(target) and not _inherits_doc(
                        obj, attr_name):
                    undocumented.append(f"{name}.{attr_name}")
        elif inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(f"def {name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}")


def _inherits_doc(cls, attr_name) -> bool:
    for base in cls.__mro__[1:]:
        base_attr = getattr(base, attr_name, None)
        if base_attr is not None and inspect.getdoc(base_attr):
            return True
    return False
