"""Grammar induction (Re-Pair) tests (§6 ongoing work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.nlp.grammar import (
    Grammar,
    compression_ratio,
    induce_grammar,
    is_nonterminal,
)


class TestInduction:
    def test_repeated_phrase_becomes_rule(self):
        grammar = induce_grammar([list("abcabcabc")])
        units = grammar.cohesive_units(min_length=3, top=1)
        assert units
        assert units[0][0] == ["a", "b", "c"]

    def test_expansion_is_lossless(self):
        corpus = [list("abcabcxy"), list("ababab"), list("zq")]
        grammar = induce_grammar(corpus)
        for original, compressed in zip(corpus, grammar.sequences):
            assert grammar.expand(compressed) == original

    def test_no_repeats_no_rules(self):
        grammar = induce_grammar([list("abcdef")])
        assert grammar.num_rules == 0
        assert grammar.sequences == [list("abcdef")]

    def test_pairs_not_counted_across_sequences(self):
        # "ab" appears once per sequence: boundary must not join them
        grammar = induce_grammar([["x", "a"], ["b", "y"]])
        assert grammar.num_rules == 0

    def test_max_rules_bound(self):
        grammar = induce_grammar([list("abababcdcdcd")], max_rules=1)
        assert grammar.num_rules == 1

    def test_min_pair_count(self):
        grammar = induce_grammar([list("abab")], min_pair_count=3)
        assert grammar.num_rules == 0
        with pytest.raises(ValueError):
            induce_grammar([list("ab")], min_pair_count=1)

    def test_deterministic(self):
        corpus = [list("abcabcab"), list("bcabca")]
        a = induce_grammar(corpus)
        b = induce_grammar(corpus)
        assert a.rules == b.rules
        assert a.sequences == b.sequences

    def test_nonterminals_distinct_from_event_names(self):
        grammar = induce_grammar([["w:a::::x", "w:b::::y"] * 4])
        for nonterminal in grammar.rules:
            assert is_nonterminal(nonterminal)
            assert not is_nonterminal("w:a::::x")

    def test_empty_corpus(self):
        grammar = induce_grammar([])
        assert grammar.num_rules == 0
        assert compression_ratio(grammar, []) == 1.0


class TestMeasures:
    def test_grammar_size_counts_rules(self):
        grammar = induce_grammar([list("abab")])
        # sequence [R0, R0] (2) + one rule body (2) = 4
        assert grammar.grammar_size() == 4

    def test_compression_ratio_above_one_for_repetitive(self):
        corpus = [list("abcabcabcabc")] * 5
        grammar = induce_grammar(corpus)
        assert compression_ratio(grammar, corpus) > 1.5

    def test_compression_ratio_one_for_incompressible(self):
        corpus = [list("abcdefgh")]
        grammar = induce_grammar(corpus)
        assert compression_ratio(grammar, corpus) == 1.0

    def test_rule_usage(self):
        grammar = induce_grammar([list("ababab")])
        usage = grammar.rule_usage()
        assert sum(usage.values()) >= 3

    def test_cohesive_units_on_sessions(self, dictionary, sequence_records):
        """The workload's search phrase (query -> results impressions)
        emerges as a cohesive unit."""
        sequences = [r.event_names(dictionary) for r in sequence_records
                     if r.num_events >= 3]
        grammar = induce_grammar(sequences, max_rules=300)
        assert grammar.num_rules > 10
        units = grammar.cohesive_units(min_length=2, top=30)
        assert any(
            unit[0].endswith(":query")
            and unit[1].endswith(":impression")
            for unit, __ in [(u, c) for u, c in units] if len(unit) >= 2
        )
        # expansion losslessness on real data
        for original, compressed in list(zip(sequences,
                                             grammar.sequences))[:20]:
            assert grammar.expand(compressed) == original


class TestProperties:
    @given(st.lists(st.lists(st.sampled_from("abcd"), max_size=30),
                    max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_lossless_property(self, corpus):
        grammar = induce_grammar(corpus)
        for original, compressed in zip(corpus, grammar.sequences):
            assert grammar.expand(compressed) == original

    @given(st.lists(st.lists(st.sampled_from("ab"), min_size=2,
                             max_size=20), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_grammar_never_larger(self, corpus):
        grammar = induce_grammar(corpus)
        assert grammar.grammar_size() <= sum(len(s) for s in corpus)
