"""Record I/O tests: framing, derived readers/writers, file format."""

import pytest
from hypothesis import given, strategies as st

from repro.thriftlike.codegen import (
    ThriftFileFormat,
    frame,
    iter_frames,
    record_reader,
    record_writer,
)
from repro.thriftlike.struct import ThriftStruct
from repro.thriftlike.types import FieldSpec, ProtocolError, TType


class Rec(ThriftStruct):
    FIELDS = (
        FieldSpec(1, "n", TType.I64, required=True),
        FieldSpec(2, "s", TType.STRING),
    )


class TestFraming:
    def test_roundtrip_multiple_frames(self):
        payloads = [b"", b"a", b"hello" * 100]
        data = b"".join(frame(p) for p in payloads)
        assert list(iter_frames(data)) == payloads

    def test_empty_stream(self):
        assert list(iter_frames(b"")) == []

    def test_truncated_frame_raises(self):
        data = frame(b"hello")[:-2]
        with pytest.raises(ProtocolError):
            list(iter_frames(data))

    @given(st.lists(st.binary(max_size=100), max_size=20))
    def test_framing_property(self, payloads):
        data = b"".join(frame(p) for p in payloads)
        assert list(iter_frames(data)) == payloads


class TestDerivedReadersWriters:
    def test_writer_reader_roundtrip(self):
        write = record_writer(Rec)
        read = record_reader(Rec)
        records = [Rec(n=i, s=f"r{i}") for i in range(10)]
        assert list(read(write(records))) == records

    def test_writer_rejects_wrong_type(self):
        write = record_writer(Rec)
        with pytest.raises(TypeError):
            write([Rec(n=1), "not a record"])

    def test_binary_protocol_variant(self):
        write = record_writer(Rec, protocol="binary")
        read = record_reader(Rec, protocol="binary")
        records = [Rec(n=5, s="x")]
        assert list(read(write(records))) == records

    def test_protocol_mismatch_fails(self):
        write = record_writer(Rec, protocol="binary")
        read = record_reader(Rec, protocol="compact")
        data = write([Rec(n=1, s="abcdef")])
        with pytest.raises(Exception):
            list(read(data))


class TestThriftFileFormat:
    def test_encode_decode(self):
        fmt = ThriftFileFormat(Rec)
        records = [Rec(n=i) for i in range(5)]
        assert fmt.decode(fmt.encode(records)) == records

    def test_iter_decode_is_lazy(self):
        fmt = ThriftFileFormat(Rec)
        data = fmt.encode([Rec(n=1), Rec(n=2)])
        iterator = fmt.iter_decode(data)
        assert next(iterator).n == 1
        assert next(iterator).n == 2

    def test_empty_input(self):
        fmt = ThriftFileFormat(Rec)
        assert fmt.decode(b"") == []
        assert fmt.encode([]) == b""

    def test_repr(self):
        assert "Rec" in repr(ThriftFileFormat(Rec))
