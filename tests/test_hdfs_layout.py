"""Layout tests: per-hour paths, parsing, clock <-> calendar mapping."""

import pytest

from repro.clock import MILLIS_PER_HOUR
from repro.hdfs.layout import (
    LOGS_ROOT,
    LogHour,
    day_path,
    hour_for_millis,
    hours_of_day,
    millis_for_hour,
    parse_hour_path,
    sequences_day_path,
    staging_path,
)


class TestLogHour:
    def test_path(self):
        hour = LogHour("client_events", 2012, 3, 7, 9)
        assert hour.path() == "/logs/client_events/2012/03/07/09"

    def test_path_custom_root(self):
        hour = LogHour("web", 2012, 1, 1, 0)
        assert hour.path(root="/staging/dc1") == "/staging/dc1/web/2012/01/01/00"

    def test_validation(self):
        with pytest.raises(ValueError):
            LogHour("c", 2012, 1, 1, 24)
        with pytest.raises(ValueError):
            LogHour("c", 2012, 13, 1, 0)
        with pytest.raises(ValueError):
            LogHour("c", 2012, 1, 32, 0)

    def test_next_hour_rollover(self):
        hour = LogHour("c", 2012, 1, 1, 23)
        nxt = hour.next_hour()
        assert (nxt.day, nxt.hour) == (2, 0)

    def test_ordering(self):
        a = LogHour("c", 2012, 1, 1, 5)
        b = LogHour("c", 2012, 1, 1, 6)
        assert a < b

    def test_with_category(self):
        hour = LogHour("a", 2012, 1, 1, 0).with_category("b")
        assert hour.category == "b"


class TestParse:
    def test_roundtrip(self):
        hour = LogHour("client_events", 2012, 12, 31, 23)
        assert parse_hour_path(hour.path()) == hour

    def test_staging_roundtrip(self):
        hour = LogHour("web", 2012, 6, 15, 12)
        parsed = parse_hour_path(staging_path("dc1", hour))
        assert parsed == hour

    @pytest.mark.parametrize("bad", [
        "/logs/client_events/2012/03/07",      # no hour
        "/logs/client_events/2012/3/7/9",      # unpadded
        "not a path",
    ])
    def test_non_matching(self, bad):
        assert parse_hour_path(bad) is None


class TestHelpers:
    def test_day_path(self):
        assert day_path("ce", 2012, 3, 7) == "/logs/ce/2012/03/07"

    def test_hours_of_day(self):
        hours = hours_of_day("ce", 2012, 3, 7)
        assert len(hours) == 24
        assert hours[0].hour == 0 and hours[-1].hour == 23

    def test_sequences_day_path(self):
        assert sequences_day_path(2012, 3, 7) == "/session_sequences/2012/03/07"


class TestClockMapping:
    def test_epoch_is_hour_zero(self):
        hour = hour_for_millis("ce", 0)
        assert (hour.year, hour.month, hour.day, hour.hour) == (2012, 1, 1, 0)

    def test_hour_boundaries(self):
        assert hour_for_millis("ce", MILLIS_PER_HOUR - 1).hour == 0
        assert hour_for_millis("ce", MILLIS_PER_HOUR).hour == 1

    def test_roundtrip(self):
        hour = LogHour("ce", 2012, 2, 29, 13)  # 2012 is a leap year
        assert hour_for_millis("ce", millis_for_hour(hour)) == hour

    def test_millis_monotone_in_hours(self):
        a = millis_for_hour(LogHour("ce", 2012, 1, 31, 23))
        b = millis_for_hour(LogHour("ce", 2012, 2, 1, 0))
        assert b - a == MILLIS_PER_HOUR
