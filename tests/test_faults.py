"""Fault injector and retry-policy tests: determinism, windows, backoff."""

import pytest

from repro.clock import LogicalClock
from repro.faults.injector import (
    KIND_CRASH,
    KIND_ERROR,
    KIND_UNAVAILABLE,
    FaultInjector,
    FaultPlan,
    FaultRule,
    fault_point,
    get_default_injector,
    set_default_injector,
)
from repro.faults.retry import RetryExhaustedError, RetryPolicy
from repro.obs import names as obs_names
from repro.obs.metrics import MetricsRegistry, set_default_registry


@pytest.fixture(autouse=True)
def _clean_state():
    old_registry = set_default_registry(MetricsRegistry())
    yield
    set_default_injector(None)
    set_default_registry(old_registry)


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultRule(site="x", kind="meteor_strike")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultRule(site="x", kind=KIND_ERROR, probability=1.5)

    def test_site_patterns_fnmatch(self):
        rule = FaultRule(site="daemon.east-host-*.send", kind=KIND_ERROR)
        assert rule.matches_site("daemon.east-host-0001.send")
        assert not rule.matches_site("daemon.west-host-0001.send")

    def test_window_half_open(self):
        rule = FaultRule(site="x", kind=KIND_ERROR, start_ms=10, end_ms=20)
        assert not rule.in_window(9)
        assert rule.in_window(10)
        assert rule.in_window(19)
        assert not rule.in_window(20)

    def test_unbounded_window(self):
        rule = FaultRule(site="x", kind=KIND_ERROR)
        assert rule.in_window(0)
        assert rule.in_window(10 ** 12)


class TestFaultInjector:
    def test_fires_matching_rule(self):
        plan = FaultPlan()
        rule = plan.add("hdfs.staging.write", KIND_UNAVAILABLE)
        injector = FaultInjector(plan)
        assert injector.check("hdfs.staging.write") is rule
        assert injector.check("hdfs.other.write") is None
        assert rule.fires == 1
        assert injector.injected_total == 1

    def test_window_gates_on_logical_clock(self):
        clock = LogicalClock()
        plan = FaultPlan()
        plan.add("s", KIND_ERROR, start_ms=100, end_ms=200)
        injector = FaultInjector(plan, clock=clock)
        assert injector.check("s") is None
        clock.advance(150)
        assert injector.check("s") is not None
        clock.advance(100)  # now 250, past the window
        assert injector.check("s") is None

    def test_after_calls_skips_then_fires(self):
        plan = FaultPlan()
        plan.add("s", KIND_ERROR, after_calls=2)
        injector = FaultInjector(plan)
        assert injector.check("s") is None
        assert injector.check("s") is None
        assert injector.check("s") is not None

    def test_max_fires_retires_rule(self):
        plan = FaultPlan()
        plan.add("s", KIND_ERROR, max_fires=2)
        injector = FaultInjector(plan)
        assert injector.check("s") is not None
        assert injector.check("s") is not None
        assert injector.check("s") is None

    def test_probability_draws_are_seed_deterministic(self):
        def outcomes(seed):
            plan = FaultPlan()
            plan.add("s", KIND_ERROR, probability=0.5)
            injector = FaultInjector(plan, seed=seed)
            return [injector.check("s") is not None for __ in range(50)]

        assert outcomes(7) == outcomes(7)
        assert any(outcomes(7))
        assert not all(outcomes(7))

    def test_probability_zero_never_fires(self):
        plan = FaultPlan()
        plan.add("s", KIND_ERROR, probability=0.0)
        injector = FaultInjector(plan)
        assert all(injector.check("s") is None for __ in range(20))

    def test_disable_stops_injection(self):
        plan = FaultPlan()
        plan.add("s", KIND_ERROR)
        injector = FaultInjector(plan)
        injector.disable()
        assert injector.check("s") is None

    def test_fires_counted_in_metric(self):
        registry = MetricsRegistry()
        old = set_default_registry(registry)
        try:
            plan = FaultPlan()
            plan.add("s", KIND_CRASH)
            FaultInjector(plan).check("s")
            assert registry.total(obs_names.FAULTS_INJECTED) == 1
        finally:
            set_default_registry(old)

    def test_first_matching_rule_wins(self):
        plan = FaultPlan()
        first = plan.add("s", KIND_ERROR)
        plan.add("s", KIND_CRASH)
        assert FaultInjector(plan).check("s") is first


class TestDefaultInjector:
    def test_fault_point_noop_without_injector(self):
        assert get_default_injector() is None
        assert fault_point("anything.at.all") is None

    def test_fault_point_consults_installed_injector(self):
        plan = FaultPlan()
        plan.add("site.x", KIND_ERROR)
        set_default_injector(FaultInjector(plan))
        assert fault_point("site.x") is not None
        set_default_injector(None)
        assert fault_point("site.x") is None


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_schedule_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=6, base_delay_ms=100,
                             max_delay_ms=500, multiplier=2.0, jitter=0.0)
        assert policy.delays() == [100, 200, 400, 500, 500]

    def test_jitter_is_seed_deterministic(self):
        a = RetryPolicy(max_attempts=5, seed=3).delays()
        b = RetryPolicy(max_attempts=5, seed=3).delays()
        assert a == b

    def test_success_needs_no_retries(self):
        policy = RetryPolicy()
        assert policy.call(lambda: 42, site="s") == 42

    def test_retries_until_success_advancing_clock(self):
        clock = LogicalClock()
        policy = RetryPolicy(max_attempts=5, base_delay_ms=100, jitter=0.0)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise IOError("transient")
            return "ok"

        assert policy.call(flaky, site="s", clock=clock) == "ok"
        assert len(attempts) == 3
        assert clock.now() == 100 + 200  # two backoffs

    def test_exhaustion_raises_with_context(self):
        policy = RetryPolicy(max_attempts=3, base_delay_ms=0)

        def always_fails():
            raise IOError("down")

        with pytest.raises(RetryExhaustedError) as info:
            policy.call(always_fails, site="mysite")
        assert info.value.site == "mysite"
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, IOError)

    def test_unlisted_exceptions_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        calls = []

        def crashes():
            calls.append(1)
            raise KeyError("boom")

        with pytest.raises(KeyError):
            policy.call(crashes, site="s", retry_on=(IOError,))
        assert len(calls) == 1

    def test_retries_recorded_in_metric(self):
        registry = MetricsRegistry()
        old = set_default_registry(registry)
        try:
            policy = RetryPolicy(max_attempts=3, base_delay_ms=0)
            with pytest.raises(RetryExhaustedError):
                policy.call(lambda: (_ for _ in ()).throw(IOError("x")),
                            site="s")
            assert registry.total(obs_names.RETRY_ATTEMPTS) == 2
        finally:
            set_default_registry(old)

    def test_on_retry_callback_sees_attempt_and_error(self):
        policy = RetryPolicy(max_attempts=3, base_delay_ms=0)
        seen = []

        def flaky():
            if len(seen) < 1:
                raise IOError("once")
            return "ok"

        policy.call(flaky, site="s",
                    on_retry=lambda n, exc: seen.append((n, str(exc))))
        assert seen == [(1, "once")]
