"""Struct tests: roundtrips, validation, defaults, schema evolution."""

import pytest
from hypothesis import given, strategies as st

from repro.thriftlike.struct import ThriftStruct
from repro.thriftlike.types import FieldSpec, TType, ValidationError, elem


class Inner(ThriftStruct):
    FIELDS = (
        FieldSpec(1, "value", TType.I32, required=True),
    )


class Everything(ThriftStruct):
    FIELDS = (
        FieldSpec(1, "flag", TType.BOOL),
        FieldSpec(2, "small", TType.BYTE),
        FieldSpec(3, "medium", TType.I16),
        FieldSpec(4, "normal", TType.I32),
        FieldSpec(5, "big", TType.I64),
        FieldSpec(6, "real", TType.DOUBLE),
        FieldSpec(7, "text", TType.STRING),
        FieldSpec(8, "nested", TType.STRUCT, struct_cls=Inner),
        FieldSpec(9, "items", TType.LIST, value=elem(TType.STRING)),
        FieldSpec(10, "tags", TType.SET, value=elem(TType.I32)),
        FieldSpec(11, "mapping", TType.MAP, key=elem(TType.STRING),
                  value=elem(TType.I64)),
    )


class V1(ThriftStruct):
    FIELDS = (
        FieldSpec(1, "a", TType.I32, required=True),
        FieldSpec(2, "b", TType.STRING),
    )


class V2(ThriftStruct):
    """V1 plus a new optional field (forward/backward compat pair)."""

    FIELDS = V1.FIELDS + (
        FieldSpec(3, "c", TType.LIST, value=elem(TType.I32)),
        FieldSpec(4, "d", TType.STRING),
    )


PROTOCOLS = ["binary", "compact"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestRoundtrip:
    def test_full_roundtrip(self, protocol):
        original = Everything(
            flag=True, small=7, medium=-300, normal=123456,
            big=-(10 ** 15), real=3.25, text="hello world",
            nested=Inner(value=42), items=["a", "b", ""],
            tags={1, 2, 3}, mapping={"x": 1, "y": -2},
        )
        decoded = Everything.from_bytes(original.to_bytes(protocol), protocol)
        assert decoded == original

    def test_unset_optionals_stay_none(self, protocol):
        original = Everything(normal=1)
        decoded = Everything.from_bytes(original.to_bytes(protocol), protocol)
        assert decoded.flag is None
        assert decoded.text is None
        assert decoded.normal == 1

    def test_empty_containers_roundtrip(self, protocol):
        original = Everything(items=[], tags=set(), mapping={})
        decoded = Everything.from_bytes(original.to_bytes(protocol), protocol)
        assert decoded.items == []
        assert decoded.tags == set()
        assert decoded.mapping == {}


class TestValidation:
    def test_required_field_missing(self):
        with pytest.raises(ValidationError):
            Inner().validate()

    def test_required_field_enforced_on_write(self):
        with pytest.raises(ValidationError):
            Inner().to_bytes()

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(ValidationError):
            Inner(bogus=1)

    def test_wrong_type_rejected_on_write(self):
        with pytest.raises(ValidationError):
            Everything(normal="not an int").to_bytes()

    def test_duplicate_field_names_detected(self):
        class Bad(ThriftStruct):
            FIELDS = (FieldSpec(1, "x", TType.I32),
                      FieldSpec(2, "x", TType.I32))

        with pytest.raises(ValidationError):
            Bad()

    def test_duplicate_field_ids_detected(self):
        class Bad2(ThriftStruct):
            FIELDS = (FieldSpec(1, "x", TType.I32),
                      FieldSpec(1, "y", TType.I32))

        with pytest.raises(ValidationError):
            Bad2().fid_map()

    def test_callable_default_is_evaluated(self):
        class WithDefault(ThriftStruct):
            FIELDS = (FieldSpec(1, "m", TType.MAP, key=elem(TType.STRING),
                                value=elem(TType.STRING), default=dict),)

        a, b = WithDefault(), WithDefault()
        a.m["k"] = "v"
        assert b.m == {}  # no shared mutable default


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestSchemaEvolution:
    def test_old_reader_skips_new_fields(self, protocol):
        """V2 writer -> V1 reader: unknown fields 3-4 are skipped."""
        new = V2(a=7, b="hi", c=[1, 2, 3], d="extra")
        old = V1.from_bytes(new.to_bytes(protocol), protocol)
        assert old.a == 7
        assert old.b == "hi"

    def test_new_reader_defaults_missing_fields(self, protocol):
        """V1 writer -> V2 reader: new fields default to None."""
        old = V1(a=9, b="legacy")
        new = V2.from_bytes(old.to_bytes(protocol), protocol)
        assert new.a == 9
        assert new.b == "legacy"
        assert new.c is None
        assert new.d is None

    def test_retyped_field_is_skipped_not_crashed(self, protocol):
        """A field whose wire type changed is treated as unknown."""

        class V1Retyped(ThriftStruct):
            FIELDS = (FieldSpec(1, "a", TType.STRING),
                      FieldSpec(2, "b", TType.STRING))

        data = V1(a=5, b="x").to_bytes(protocol)
        decoded = V1Retyped.from_bytes(data, protocol)
        assert decoded.a is None  # i32 'a' skipped, not misread
        assert decoded.b == "x"


class TestConveniences:
    def test_to_dict_recurses(self):
        s = Everything(nested=Inner(value=1), items=["a"])
        d = s.to_dict()
        assert d["nested"] == {"value": 1}
        assert d["items"] == ["a"]

    def test_replace(self):
        a = V1(a=1, b="x")
        b = a.replace(b="y")
        assert a.b == "x" and b.b == "y" and b.a == 1

    def test_equality_and_hash(self):
        assert V1(a=1, b="x") == V1(a=1, b="x")
        assert V1(a=1, b="x") != V1(a=2, b="x")
        assert hash(V1(a=1, b="x")) == hash(V1(a=1, b="x"))

    def test_eq_different_type(self):
        assert V1(a=1) != Inner(value=1)

    def test_repr_shows_set_fields_only(self):
        text = repr(V1(a=1))
        assert "a=1" in text and "b=" not in text

    def test_hash_with_containers(self):
        s = Everything(items=["a"], mapping={"k": 1}, tags={5})
        assert isinstance(hash(s), int)


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestPropertyRoundtrip:
    @given(a=st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
           b=st.one_of(st.none(), st.text(max_size=50)),
           c=st.one_of(st.none(),
                       st.lists(st.integers(-(2 ** 31), 2 ** 31 - 1),
                                max_size=10)),
           )
    def test_v2_roundtrip(self, protocol, a, b, c):
        original = V2(a=a, b=b, c=c)
        decoded = V2.from_bytes(original.to_bytes(protocol), protocol)
        assert decoded == original
