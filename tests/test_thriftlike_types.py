"""Tests for the type system: FieldSpec construction and value checking."""

import pytest

from repro.thriftlike.types import (
    FieldSpec,
    TType,
    ValidationError,
    check_value,
    elem,
)


class TestFieldSpec:
    def test_basic_construction(self):
        spec = FieldSpec(1, "user_id", TType.I64, required=True)
        assert spec.fid == 1
        assert spec.name == "user_id"
        assert spec.ttype is TType.I64
        assert spec.required

    def test_fid_must_be_positive(self):
        with pytest.raises(ValidationError):
            FieldSpec(0, "x", TType.I32)

    def test_fid_upper_bound(self):
        with pytest.raises(ValidationError):
            FieldSpec(40000, "x", TType.I32)
        FieldSpec(32767, "x", TType.I32)  # boundary ok

    def test_list_requires_element_spec(self):
        with pytest.raises(ValidationError):
            FieldSpec(1, "xs", TType.LIST)

    def test_set_requires_element_spec(self):
        with pytest.raises(ValidationError):
            FieldSpec(1, "xs", TType.SET)

    def test_map_requires_both_specs(self):
        with pytest.raises(ValidationError):
            FieldSpec(1, "m", TType.MAP, key=elem(TType.STRING))

    def test_struct_requires_class(self):
        with pytest.raises(ValidationError):
            FieldSpec(1, "s", TType.STRUCT)


class TestCheckValue:
    def test_bool_accepts_bool_only(self):
        spec = FieldSpec(1, "b", TType.BOOL)
        check_value(spec, True)
        with pytest.raises(ValidationError):
            check_value(spec, 1)

    @pytest.mark.parametrize("ttype,good,bad", [
        (TType.BYTE, 127, 128),
        (TType.I16, 32767, 32768),
        (TType.I32, 2 ** 31 - 1, 2 ** 31),
        (TType.I64, 2 ** 63 - 1, 2 ** 63),
    ])
    def test_int_bounds(self, ttype, good, bad):
        spec = FieldSpec(1, "n", ttype)
        check_value(spec, good)
        check_value(spec, -good - 1)
        with pytest.raises(ValidationError):
            check_value(spec, bad)

    def test_int_rejects_bool(self):
        spec = FieldSpec(1, "n", TType.I32)
        with pytest.raises(ValidationError):
            check_value(spec, True)

    def test_double_accepts_int_and_float(self):
        spec = FieldSpec(1, "d", TType.DOUBLE)
        check_value(spec, 1.5)
        check_value(spec, 3)
        with pytest.raises(ValidationError):
            check_value(spec, "1.5")

    def test_string_accepts_str_and_bytes(self):
        spec = FieldSpec(1, "s", TType.STRING)
        check_value(spec, "hello")
        check_value(spec, b"hello")
        with pytest.raises(ValidationError):
            check_value(spec, 7)

    def test_list_checks_elements_recursively(self):
        spec = FieldSpec(1, "xs", TType.LIST, value=elem(TType.I32))
        check_value(spec, [1, 2, 3])
        with pytest.raises(ValidationError):
            check_value(spec, [1, "two"])

    def test_nested_container_validation(self):
        inner = elem(TType.LIST, value=elem(TType.I32))
        spec = FieldSpec(1, "m", TType.MAP, key=elem(TType.STRING),
                         value=inner)
        check_value(spec, {"a": [1, 2]})
        with pytest.raises(ValidationError):
            check_value(spec, {"a": [1, "x"]})

    def test_set_type(self):
        spec = FieldSpec(1, "s", TType.SET, value=elem(TType.STRING))
        check_value(spec, {"a", "b"})
        with pytest.raises(ValidationError):
            check_value(spec, ["a"])

    def test_map_rejects_bad_key(self):
        spec = FieldSpec(1, "m", TType.MAP, key=elem(TType.I32),
                         value=elem(TType.STRING))
        check_value(spec, {1: "one"})
        with pytest.raises(ValidationError):
            check_value(spec, {"1": "one"})
