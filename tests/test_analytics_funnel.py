"""Funnel analytics tests (§5.3)."""

import pytest

from repro.analytics.funnel import ClientEventsFunnel, FunnelReport, run_funnel
from repro.core.dictionary import EventDictionary
from repro.core.sequences import SessionSequenceRecord
from repro.workload.behavior import FUNNEL_CONTINUE, signup_funnel_stages

S1 = "web:signup:step_credentials:form:fields:submit"
S2 = "web:signup:step_interests:form:fields:submit"
S3 = "web:signup:step_suggestions:form:fields:submit"
OTHER = "web:home:timeline:stream:tweet:impression"
NAMES = [S1, S2, S3, OTHER]


@pytest.fixture
def small_dictionary():
    return EventDictionary(NAMES)


def _record(dictionary, names, user_id=1):
    return SessionSequenceRecord(
        user_id=user_id, session_id=f"s{user_id}", ip="1.1.1.1",
        session_sequence=dictionary.encode(names), duration=10)


class TestClientEventsFunnel:
    def test_full_completion(self, small_dictionary):
        funnel = ClientEventsFunnel([S1, S2, S3], small_dictionary)
        assert funnel(_record(small_dictionary, [S1, OTHER, S2, S3])) == 3

    def test_partial_completion(self, small_dictionary):
        funnel = ClientEventsFunnel([S1, S2, S3], small_dictionary)
        assert funnel(_record(small_dictionary, [S1, OTHER])) == 1
        assert funnel(_record(small_dictionary, [S1, S2])) == 2

    def test_zero_stages(self, small_dictionary):
        funnel = ClientEventsFunnel([S1, S2], small_dictionary)
        assert funnel(_record(small_dictionary, [OTHER, OTHER])) == 0

    def test_order_matters(self, small_dictionary):
        """Stages must appear as an ordered subsequence."""
        funnel = ClientEventsFunnel([S1, S2], small_dictionary)
        assert funnel(_record(small_dictionary, [S2, S1])) == 1

    def test_intervening_events_allowed(self, small_dictionary):
        funnel = ClientEventsFunnel([S1, S2], small_dictionary)
        record = _record(small_dictionary, [OTHER, S1] + [OTHER] * 10 + [S2])
        assert funnel(record) == 2

    def test_stage_patterns_expand(self, small_dictionary):
        """Stages may be patterns, not just literal events."""
        funnel = ClientEventsFunnel(
            ["web:signup:step_credentials:*", "web:signup:step_interests:*"],
            small_dictionary)
        assert funnel(_record(small_dictionary, [S1, S2])) == 2

    def test_needs_at_least_one_stage(self, small_dictionary):
        with pytest.raises(ValueError):
            ClientEventsFunnel([], small_dictionary)

    def test_accepts_plain_string(self, small_dictionary):
        funnel = ClientEventsFunnel([S1], small_dictionary)
        assert funnel(small_dictionary.encode([S1])) == 1


class TestFunnelReport:
    def test_rows_paper_shape(self):
        """Output shape: (0, entered), (1, stage1), ... like the paper's
        (0, 490123) (1, 297071)."""
        report = FunnelReport(stage_patterns=[S1, S2],
                              entered=490123, stage_counts=[297071, 100000])
        assert report.rows() == [(0, 490123), (1, 297071), (2, 100000)]

    def test_abandonment(self):
        report = FunnelReport(stage_patterns=[S1, S2],
                              entered=100, stage_counts=[50, 25])
        assert report.abandonment() == [0.5, 0.5]
        assert report.completion_rate == 0.25

    def test_zero_entered(self):
        report = FunnelReport(stage_patterns=[S1], entered=0,
                              stage_counts=[0])
        assert report.completion_rate == 0.0
        assert report.abandonment() == [0.0]


class TestRunFunnel:
    def test_monotone_nonincreasing(self, warehouse, date, dictionary):
        stages = signup_funnel_stages("web")
        report = run_funnel(warehouse, date, stages, dictionary)
        counts = [report.entered] + report.stage_counts
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert report.entered > 0

    def test_stage1_roughly_matches_continue_rate(self, warehouse, date,
                                                  dictionary, workload):
        """The measured stage-1 completion among funnel entrants should
        track the generator's configured continuation probability."""
        stages = signup_funnel_stages("web")
        report = run_funnel(warehouse, date, stages, dictionary)
        entered_funnel = sum(
            1 for r in _records_entering(warehouse, date, dictionary))
        if entered_funnel >= 20:  # enough signal
            rate = report.stage_counts[0] / entered_funnel
            assert abs(rate - FUNNEL_CONTINUE[0]) < 0.25

    def test_unique_users_never_exceeds_sessions(self, warehouse, date,
                                                 dictionary):
        stages = signup_funnel_stages("web")
        by_session = run_funnel(warehouse, date, stages, dictionary)
        by_user = run_funnel(warehouse, date, stages, dictionary,
                             unique_users=True)
        for s_count, u_count in zip(by_session.stage_counts,
                                    by_user.stage_counts):
            assert u_count <= s_count
        assert by_user.entered <= by_session.entered


def _records_entering(warehouse, date, dictionary):
    import re

    from repro.core.builder import SessionSequenceBuilder

    builder = SessionSequenceBuilder(warehouse)
    view = re.compile(dictionary.symbol_class(
        "web:signup:step_credentials:form:fields:view"))
    for record in builder.iter_sequences(*date):
        if view.search(record.session_sequence):
            yield record


class TestControlCharacterSymbols:
    """Code points 0x0A/0x0D (newline/CR) are legal dictionary symbols
    (frequent events get small code points); every regex over session
    sequences must treat them as ordinary characters."""

    def test_funnel_spans_newline_symbol(self):
        # build a dictionary whose 10th code point (U+000A) is in use
        names = [f"web:p{i}::::a{i}" for i in range(30)]
        d = EventDictionary(names)
        newline_name = d.name_for(0x0A)
        first, last = names[0], names[20]
        funnel = ClientEventsFunnel([first, last], d)
        record = SessionSequenceRecord(
            user_id=1, session_id="s", ip="1.1.1.1",
            session_sequence=d.encode([first, newline_name, last]),
            duration=1)
        assert "\n" in record.session_sequence
        assert funnel(record) == 2  # the .* crosses the newline

    def test_counting_newline_symbol_itself(self):
        from repro.analytics.counting import CountClientEvents

        names = [f"web:p{i}::::a{i}" for i in range(30)]
        d = EventDictionary(names)
        newline_name = d.name_for(0x0A)
        udf = CountClientEvents(newline_name, d)
        record = SessionSequenceRecord(
            user_id=1, session_id="s", ip="1.1.1.1",
            session_sequence=d.encode([newline_name] * 3), duration=1)
        assert udf(record) == 3
