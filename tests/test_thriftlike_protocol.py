"""Wire protocol tests: primitives, varints, field framing, skipping."""

import pytest
from hypothesis import given, strategies as st

from repro.thriftlike.protocol import (
    BinaryProtocolReader,
    BinaryProtocolWriter,
    CompactProtocolReader,
    CompactProtocolWriter,
    read_varint,
    reader_for,
    unzigzag,
    write_varint,
    writer_for,
    zigzag,
)
from repro.thriftlike.types import ProtocolError, TType

PROTOCOLS = ["binary", "compact"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestPrimitives:
    def test_bool_roundtrip(self, protocol):
        writer = writer_for(protocol)
        writer.write_bool(True)
        writer.write_bool(False)
        reader = reader_for(protocol, writer.getvalue())
        assert reader.read_bool() is True
        assert reader.read_bool() is False

    @pytest.mark.parametrize("value", [0, 1, -1, 127, -128])
    def test_byte_roundtrip(self, protocol, value):
        writer = writer_for(protocol)
        writer.write_byte(value)
        assert reader_for(protocol, writer.getvalue()).read_byte() == value

    @pytest.mark.parametrize("value", [0, 42, -42, 32767, -32768])
    def test_i16_roundtrip(self, protocol, value):
        writer = writer_for(protocol)
        writer.write_i16(value)
        assert reader_for(protocol, writer.getvalue()).read_i16() == value

    @pytest.mark.parametrize("value", [0, 1, -1, 2 ** 31 - 1, -(2 ** 31)])
    def test_i32_roundtrip(self, protocol, value):
        writer = writer_for(protocol)
        writer.write_i32(value)
        assert reader_for(protocol, writer.getvalue()).read_i32() == value

    @pytest.mark.parametrize("value", [0, 2 ** 63 - 1, -(2 ** 63)])
    def test_i64_roundtrip(self, protocol, value):
        writer = writer_for(protocol)
        writer.write_i64(value)
        assert reader_for(protocol, writer.getvalue()).read_i64() == value

    @pytest.mark.parametrize("value", [0.0, 1.5, -2.75, 1e300])
    def test_double_roundtrip(self, protocol, value):
        writer = writer_for(protocol)
        writer.write_double(value)
        assert reader_for(protocol, writer.getvalue()).read_double() == value

    @pytest.mark.parametrize("value", ["", "hello", "日本語", "a" * 10000])
    def test_string_roundtrip(self, protocol, value):
        writer = writer_for(protocol)
        writer.write_string(value)
        assert reader_for(protocol, writer.getvalue()).read_string() == value

    def test_bytes_roundtrip(self, protocol):
        writer = writer_for(protocol)
        writer.write_string(b"\x00\xff\x01binary")
        reader = reader_for(protocol, writer.getvalue())
        assert reader.read_binary() == b"\x00\xff\x01binary"

    def test_truncated_read_raises(self, protocol):
        writer = writer_for(protocol)
        writer.write_i64(123456789)
        data = writer.getvalue()[:-1]
        with pytest.raises(ProtocolError):
            reader_for(protocol, data).read_i64()
            # compact varint may succeed early; force another read
            reader = reader_for(protocol, data)
            reader.read_i64()
            reader.read_i64()


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestFieldFraming:
    def test_field_header_roundtrip(self, protocol):
        writer = writer_for(protocol)
        writer.write_struct_begin()
        writer.write_field(1, TType.I32)
        writer.write_i32(7)
        writer.write_field(2, TType.STRING)
        writer.write_string("x")
        writer.write_field_stop()
        writer.write_struct_end()

        reader = reader_for(protocol, writer.getvalue())
        reader.read_struct_begin()
        assert reader.read_field() == (1, TType.I32)
        assert reader.read_i32() == 7
        assert reader.read_field() == (2, TType.STRING)
        assert reader.read_string() == "x"
        assert reader.read_field()[1] is TType.STOP

    def test_large_field_id(self, protocol):
        writer = writer_for(protocol)
        writer.write_struct_begin()
        writer.write_field(3000, TType.BOOL)
        writer.write_bool(True)
        writer.write_field_stop()
        reader = reader_for(protocol, writer.getvalue())
        reader.read_struct_begin()
        assert reader.read_field() == (3000, TType.BOOL)

    def test_skip_each_type(self, protocol):
        writer = writer_for(protocol)
        cases = [
            (TType.BOOL, lambda w: w.write_bool(True)),
            (TType.BYTE, lambda w: w.write_byte(3)),
            (TType.I16, lambda w: w.write_i16(-9)),
            (TType.I32, lambda w: w.write_i32(1000)),
            (TType.I64, lambda w: w.write_i64(-10 ** 12)),
            (TType.DOUBLE, lambda w: w.write_double(2.5)),
            (TType.STRING, lambda w: w.write_string("skipme")),
        ]
        for __, write in cases:
            write(writer)
        writer.write_i32(99)  # sentinel after skipped values
        reader = reader_for(protocol, writer.getvalue())
        for ttype, __ in cases:
            reader.skip(ttype)
        assert reader.read_i32() == 99

    def test_skip_containers(self, protocol):
        writer = writer_for(protocol)
        writer.write_collection_begin(TType.I32, 3)
        for v in (1, 2, 3):
            writer.write_i32(v)
        writer.write_map_begin(TType.STRING, TType.I64, 1)
        writer.write_string("k")
        writer.write_i64(5)
        writer.write_i32(77)
        reader = reader_for(protocol, writer.getvalue())
        reader.skip(TType.LIST)
        reader.skip(TType.MAP)
        assert reader.read_i32() == 77


class TestCompactEncoding:
    def test_small_ints_are_one_byte(self):
        writer = CompactProtocolWriter()
        writer.write_i64(3)
        assert len(writer.getvalue()) == 1

    def test_compact_smaller_than_binary_for_typical_struct(self):
        binary = BinaryProtocolWriter()
        compact = CompactProtocolWriter()
        for writer in (binary, compact):
            writer.write_struct_begin()
            writer.write_field(1, TType.I64)
            writer.write_i64(123)
            writer.write_field(2, TType.I32)
            writer.write_i32(-5)
            writer.write_field_stop()
            writer.write_struct_end()
        assert len(compact.getvalue()) < len(binary.getvalue())

    def test_delta_field_encoding_single_byte(self):
        writer = CompactProtocolWriter()
        writer.write_struct_begin()
        writer.write_field(1, TType.BOOL)
        before = len(writer.getvalue())
        writer.write_field(2, TType.BOOL)
        assert len(writer.getvalue()) - before == 1  # delta header

    def test_unknown_protocol_name(self):
        with pytest.raises(ProtocolError):
            writer_for("xml")
        with pytest.raises(ProtocolError):
            reader_for("xml", b"")


class TestVarintZigzag:
    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    def test_varint_roundtrip(self, value):
        import io

        buf = io.BytesIO()
        write_varint(buf, value)
        data = buf.getvalue()
        pos = [0]

        def read_exact(n):
            chunk = data[pos[0]:pos[0] + n]
            pos[0] += n
            return chunk

        assert read_varint(read_exact) == value

    @given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
    def test_zigzag_roundtrip(self, value):
        assert unzigzag(zigzag(value)) == value

    @given(st.integers(min_value=-100, max_value=100))
    def test_zigzag_small_magnitude_small_code(self, value):
        assert zigzag(value) <= 2 * abs(value) + 1

    def test_varint_rejects_negative(self):
        import io

        with pytest.raises(ProtocolError):
            write_varint(io.BytesIO(), -1)


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestPropertyRoundtrips:
    @given(value=st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1))
    def test_i64_property(self, protocol, value):
        writer = writer_for(protocol)
        writer.write_i64(value)
        assert reader_for(protocol, writer.getvalue()).read_i64() == value

    @given(value=st.text(max_size=200))
    def test_string_property(self, protocol, value):
        writer = writer_for(protocol)
        writer.write_string(value)
        assert reader_for(protocol, writer.getvalue()).read_string() == value
