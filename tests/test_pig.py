"""Pig layer tests: operators, fusion, job boundaries, loaders."""

import pytest

from repro.core.builder import write_day_events
from repro.core.event import ClientEvent
from repro.hdfs.namenode import HDFS
from repro.mapreduce.jobtracker import JobTracker
from repro.pig.loaders import (
    ClientEventsLoader,
    InMemoryLoader,
    SessionSequencesLoader,
)
from repro.pig.relation import PigServer
from repro.pig.udf import EvalFunc, UDFRegistry


@pytest.fixture
def pig():
    return PigServer(JobTracker())


class TestRowOperators:
    def test_foreach(self, pig):
        assert pig.from_rows([1, 2, 3]).foreach(lambda x: x * 2).dump() == \
            [2, 4, 6]

    def test_filter(self, pig):
        out = pig.from_rows(range(10)).filter(lambda x: x % 3 == 0).dump()
        assert out == [0, 3, 6, 9]

    def test_flatten(self, pig):
        out = pig.from_rows([2, 3]).flatten(lambda n: list(range(n))).dump()
        assert out == [0, 1, 0, 1, 2]

    def test_chained_map_ops_fuse_into_one_job(self, pig):
        (pig.from_rows(range(100))
            .foreach(lambda x: x + 1)
            .filter(lambda x: x % 2 == 0)
            .foreach(lambda x: x * 3)
            .dump())
        assert len(pig.tracker.runs) == 1  # one map-only job


class TestShuffleOperators:
    def test_group_by(self, pig):
        rows = [{"k": i % 2, "v": i} for i in range(6)]
        groups = pig.from_rows(rows).group_by(lambda r: r["k"]).dump()
        by_key = {g["group"]: sorted(r["v"] for r in g["bag"])
                  for g in groups}
        assert by_key == {0: [0, 2, 4], 1: [1, 3, 5]}

    def test_group_all(self, pig):
        out = pig.from_rows([1, 2, 3]).group_all().dump()
        assert len(out) == 1
        assert sorted(out[0]["bag"]) == [1, 2, 3]
        assert out[0]["group"] == "all"

    def test_join_inner(self, pig):
        left = pig.from_rows([{"id": 1, "a": "x"}, {"id": 2, "a": "y"},
                              {"id": 3, "a": "z"}])
        right = pig.from_rows([{"id": 1, "b": "p"}, {"id": 2, "b": "q"},
                               {"id": 2, "b": "r"}])
        out = left.join(right, lambda r: r["id"], lambda r: r["id"]).dump()
        pairs = sorted((row["left"]["a"], row["right"]["b"]) for row in out)
        assert pairs == [("x", "p"), ("y", "q"), ("y", "r")]

    def test_distinct(self, pig):
        assert sorted(pig.from_rows([3, 1, 3, 2, 1]).distinct().dump()) == \
            [1, 2, 3]

    def test_order_by(self, pig):
        assert pig.from_rows([3, 1, 2]).order_by(lambda x: x).dump() == \
            [1, 2, 3]
        assert pig.from_rows([3, 1, 2]).order_by(lambda x: x,
                                                 reverse=True).dump() == \
            [3, 2, 1]

    def test_limit(self, pig):
        assert pig.from_rows(range(100)).limit(3).dump() == [0, 1, 2]

    def test_union(self, pig):
        out = pig.from_rows([1, 2]).union(pig.from_rows([3])).dump()
        assert sorted(out) == [1, 2, 3]

    def test_count_action(self, pig):
        assert pig.from_rows(range(7)).count() == 7


class TestJobBoundaries:
    def test_each_shuffle_is_one_job(self, pig):
        rows = [{"k": i % 3, "v": i} for i in range(30)]
        (pig.from_rows(rows)
            .group_by(lambda r: r["k"])                       # job 1
            .foreach(lambda g: (g["group"], len(g["bag"])))
            .group_all()                                      # job 2
            .foreach(lambda g: sum(v for __, v in g["bag"]))
            .dump())                                          # job 3 (final)
        names = [r.job_name for r in pig.tracker.runs]
        assert names == ["group", "group_all", "final"]

    def test_map_ops_before_shuffle_fused(self, pig):
        rows = list(range(50))
        (pig.from_rows(rows)
            .filter(lambda x: x % 2 == 0)
            .foreach(lambda x: x % 5)
            .group_by(lambda x: x)
            .dump())
        # filter+foreach fused into the group job's mapper: one job total
        assert len(pig.tracker.runs) == 1

    def test_shuffle_volume_shrinks_with_early_projection(self):
        rows = [{"big": "x" * 1000, "k": i % 2} for i in range(20)]
        t_wide, t_narrow = JobTracker(), JobTracker()
        PigServer(t_wide).from_rows(rows).group_by(lambda r: r["k"]).dump()
        (PigServer(t_narrow).from_rows(rows)
            .foreach(lambda r: r["k"])     # early projection (§4.1)
            .group_by(lambda k: k)
            .dump())
        assert (t_narrow.runs[0].shuffle_bytes
                < t_wide.runs[0].shuffle_bytes / 10)


class TestLoaders:
    def test_client_events_loader_full_day(self, warehouse, date, workload):
        pig = PigServer()
        loader = ClientEventsLoader(warehouse, *date)
        events = pig.load(loader).dump()
        assert len(events) > 0
        assert all(isinstance(e, ClientEvent) for e in events[:5])

    def test_client_events_loader_specific_hours(self, warehouse, date):
        loader_all = ClientEventsLoader(warehouse, *date)
        loader_some = ClientEventsLoader(warehouse, *date, hours=[12])
        assert len(loader_some.paths()) <= len(loader_all.paths())
        assert all("/12/" in p for p in loader_some.paths())

    def test_sequences_loader(self, warehouse, date, sequence_records):
        pig = PigServer()
        loader = SessionSequencesLoader(warehouse, *date)
        records = pig.load(loader).dump()
        assert len(records) == len(sequence_records)

    def test_in_memory_loader(self):
        pig = PigServer()
        out = pig.load(InMemoryLoader([5, 6])).foreach(lambda x: x).dump()
        assert out == [5, 6]


class TestUDF:
    def test_eval_func_callable(self):
        class Doubler(EvalFunc):
            def exec(self, row):
                return row * 2

        assert Doubler()(21) == 42

    def test_eval_func_requires_exec(self):
        with pytest.raises(NotImplementedError):
            EvalFunc()(1)

    def test_registry_define_lookup(self):
        registry = UDFRegistry()
        fn = registry.define("Inc", lambda x: x + 1)
        assert registry.lookup("Inc") is fn
        assert "Inc" in registry
        assert registry.names() == ["Inc"]

    def test_registry_rejects_noncallable(self):
        with pytest.raises(TypeError):
            UDFRegistry().define("X", 42)

    def test_registry_unknown_name(self):
        with pytest.raises(KeyError):
            UDFRegistry().lookup("Nope")
