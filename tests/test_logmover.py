"""Log mover tests: barrier, merging, sanity checks, atomic slide."""

import pytest

from repro.clock import LogicalClock
from repro.faults.injector import (
    KIND_CRASH,
    KIND_UNAVAILABLE,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    set_default_injector,
)
from repro.faults.retry import RetryPolicy
from repro.hdfs.layout import LOGS_ROOT, LogHour, staging_path
from repro.hdfs.namenode import HDFS, HDFSError
from repro.logmover.checks import (
    SanityCheckError,
    check_max_message_size,
    check_no_empty_messages,
    check_nonempty,
)
from repro.logmover.mover import IncompleteHourError, LogMover
from repro.obs import names as obs_names
from repro.obs.metrics import (
    MetricsRegistry,
    get_default_registry,
    set_default_registry,
)
from repro.scribe.aggregator import decode_messages, encode_messages
from repro.scribe.message import encode_envelope

HOUR = LogHour("client_events", 2012, 3, 7, 10)


def _stage(staging: HDFS, datacenter: str, part: str,
           messages, codec="zlib") -> None:
    path = f"{staging_path(datacenter, HOUR)}/{part}"
    staging.create(path, encode_messages(messages), codec=codec)


def _warehouse_messages(warehouse: HDFS):
    out = []
    for path in warehouse.glob_files(HOUR.path(root=LOGS_ROOT)):
        out.extend(decode_messages(warehouse.open_bytes(path)))
    return out


class TestChecks:
    def test_nonempty(self):
        with pytest.raises(SanityCheckError):
            check_nonempty("/p", [])
        check_nonempty("/p", [b"x"])

    def test_no_empty_messages(self):
        with pytest.raises(SanityCheckError):
            check_no_empty_messages("/p", [b"x", b""])
        check_no_empty_messages("/p", [b"x"])

    def test_max_message_size(self):
        check = check_max_message_size(4)
        check("/p", [b"1234"])
        with pytest.raises(SanityCheckError):
            check("/p", [b"12345"])

    def test_error_carries_path_and_reason(self):
        try:
            check_nonempty("/some/file", [])
        except SanityCheckError as exc:
            assert exc.path == "/some/file"
            assert "empty" in exc.reason


class TestBarrier:
    def test_not_ready_until_all_datacenters_staged(self):
        s1, s2, warehouse = HDFS(), HDFS(), HDFS()
        mover = LogMover({"dc1": s1, "dc2": s2}, warehouse)
        _stage(s1, "dc1", "p1", [b"a"])
        assert not mover.hour_ready(HOUR)
        _stage(s2, "dc2", "p1", [b"b"])
        assert mover.hour_ready(HOUR)

    def test_move_incomplete_raises(self):
        s1, s2, warehouse = HDFS(), HDFS(), HDFS()
        mover = LogMover({"dc1": s1, "dc2": s2}, warehouse)
        _stage(s1, "dc1", "p1", [b"a"])
        with pytest.raises(IncompleteHourError):
            mover.move_hour(HOUR)

    def test_producers_declaration_narrows_barrier(self):
        s1, s2, warehouse = HDFS(), HDFS(), HDFS()
        mover = LogMover({"dc1": s1, "dc2": s2}, warehouse,
                         producers={"client_events": ["dc1"]})
        _stage(s1, "dc1", "p1", [b"a"])
        assert mover.hour_ready(HOUR)
        result = mover.move_hour(HOUR)
        assert result.messages_moved == 1

    def test_force_move_without_barrier(self):
        s1, s2, warehouse = HDFS(), HDFS(), HDFS()
        mover = LogMover({"dc1": s1, "dc2": s2}, warehouse)
        _stage(s1, "dc1", "p1", [b"a"])
        result = mover.move_hour(HOUR, require_complete=False)
        assert result.messages_moved == 1


class TestMove:
    def test_messages_conserved_across_datacenters(self):
        s1, s2, warehouse = HDFS(), HDFS(), HDFS()
        mover = LogMover({"dc1": s1, "dc2": s2}, warehouse)
        _stage(s1, "dc1", "p1", [b"a1", b"a2"])
        _stage(s1, "dc1", "p2", [b"a3"])
        _stage(s2, "dc2", "p1", [b"b1", b"b2"])
        result = mover.move_hour(HOUR)
        assert result.messages_moved == 5
        assert sorted(_warehouse_messages(warehouse)) == [
            b"a1", b"a2", b"a3", b"b1", b"b2"]

    def test_small_files_merged(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse,
                         target_file_bytes=10 ** 6)
        for i in range(20):
            _stage(s1, "dc1", f"p{i:02d}", [b"m%d" % i])
        result = mover.move_hour(HOUR)
        assert result.input_files == 20
        assert result.output_files == 1
        assert result.merge_ratio == 20.0

    def test_target_file_bytes_splits_output(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse, target_file_bytes=100)
        _stage(s1, "dc1", "p1", [b"x" * 60 for __ in range(10)])
        result = mover.move_hour(HOUR)
        assert result.output_files > 1

    def test_staged_files_deleted_after_move(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [b"a"])
        mover.move_hour(HOUR)
        assert s1.glob_files(staging_path("dc1", HOUR)) == []

    def test_keep_staged_files_when_asked(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [b"a"])
        mover.move_hour(HOUR, delete_staged=False)
        assert len(s1.glob_files(staging_path("dc1", HOUR))) == 1

    def test_quarantine_bad_file_keeps_good_ones(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "good", [b"fine"])
        _stage(s1, "dc1", "bad", [b"ok", b""])  # empty message inside
        result = mover.move_hour(HOUR)
        assert result.messages_moved == 1
        assert len(result.quarantined) == 1
        assert "bad" in result.quarantined[0][0]

    def test_atomic_slide_replaces_existing_hour(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [b"v1"])
        mover.move_hour(HOUR)
        _stage(s1, "dc1", "p2", [b"v2"])
        mover.move_hour(HOUR)
        assert _warehouse_messages(warehouse) == [b"v2"]

    def test_no_incoming_leftovers(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [b"a"])
        mover.move_hour(HOUR)
        assert warehouse.glob_files("/_incoming") == []

    def test_move_ready_hours_skips_unready(self):
        s1, s2, warehouse = HDFS(), HDFS(), HDFS()
        mover = LogMover({"dc1": s1, "dc2": s2}, warehouse)
        other = LogHour("client_events", 2012, 3, 7, 11)
        _stage(s1, "dc1", "p1", [b"a"])
        _stage(s2, "dc2", "p1", [b"b"])
        # 'other' hour staged only in dc1
        s1.create(f"{staging_path('dc1', other)}/p1",
                  encode_messages([b"c"]), codec="zlib")
        results = mover.move_ready_hours([HOUR, other])
        assert len(results) == 1
        assert results[0].hour == HOUR

    def test_moves_audit_trail(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [b"a"])
        mover.move_hour(HOUR)
        assert len(mover.moves) == 1
        assert mover.moves[0].messages_moved == 1

    def test_requires_a_staging_cluster(self):
        with pytest.raises(ValueError):
            LogMover({}, HDFS())


class _FlakyHDFS(HDFS):
    """Fails the Nth create call: injects a crash mid-merge."""

    def __init__(self, fail_on_create: int, **kwargs):
        super().__init__(**kwargs)
        self._creates = 0
        self._fail_on = fail_on_create

    def create(self, path, data, codec="none", overwrite=False):
        self._creates += 1
        if self._creates == self._fail_on:
            raise HDFSError("simulated crash during merge")
        return super().create(path, data, codec=codec, overwrite=overwrite)


class TestAtomicSlideUnderFailure:
    def test_failure_mid_merge_leaves_no_partial_hour(self):
        """The atomic slide guarantee: if the mover dies while writing
        merged files, readers of /logs never see a partial hour."""
        staging = HDFS()
        mover_target = _FlakyHDFS(fail_on_create=2)
        mover = LogMover({"dc1": staging}, mover_target,
                         target_file_bytes=50)  # forces several outputs
        for i in range(5):
            _stage(staging, "dc1", f"p{i}", [b"x" * 40])
        with pytest.raises(HDFSError):
            mover.move_hour(HOUR)
        # nothing published, staged data intact for the retry
        assert not mover_target.exists(HOUR.path(root=LOGS_ROOT))
        assert len(staging.glob_files(staging_path("dc1", HOUR))) == 5

    def test_retry_after_failure_succeeds(self):
        staging = HDFS()
        mover_target = _FlakyHDFS(fail_on_create=2)
        mover = LogMover({"dc1": staging}, mover_target,
                         target_file_bytes=50)
        for i in range(5):
            _stage(staging, "dc1", f"p{i}", [b"x" * 40])
        with pytest.raises(HDFSError):
            mover.move_hour(HOUR)
        # the leftover /_incoming debris from the failed attempt must not
        # block the retry
        from repro.logmover.mover import INCOMING_ROOT

        if mover_target.exists(HOUR.path(root=INCOMING_ROOT)):
            mover_target.delete(HOUR.path(root=INCOMING_ROOT),
                                recursive=True)
        result = mover.move_hour(HOUR)
        assert result.messages_moved == 5
        assert mover_target.exists(HOUR.path(root=LOGS_ROOT))


class TestMultipleCategories:
    def test_categories_move_independently(self):
        staging, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": staging}, warehouse)
        other_hour = HOUR.with_category("ad_impressions")
        _stage(staging, "dc1", "p1", [b"ce-1"])
        staging.create(f"{staging_path('dc1', other_hour)}/p1",
                       encode_messages([b"ad-1", b"ad-2"]), codec="zlib")
        first = mover.move_hour(HOUR)
        second = mover.move_hour(other_hour)
        assert first.messages_moved == 1
        assert second.messages_moved == 2
        assert warehouse.glob_files("/logs/client_events")
        assert warehouse.glob_files("/logs/ad_impressions")


class TestQuarantinePreservation:
    """Quarantine is an accounted sink, not a loss: the staged bytes
    survive in the warehouse after staged cleanup."""

    def test_quarantined_file_recoverable_after_cleanup(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "good", [b"fine"])
        _stage(s1, "dc1", "bad", [b"ok", b""])
        bad_path = [p for p in s1.glob_files(staging_path("dc1", HOUR))
                    if p.endswith("bad")][0]
        original = s1.open_bytes(bad_path)
        result = mover.move_hour(HOUR)
        # Staged inputs are gone...
        assert s1.glob_files(staging_path("dc1", HOUR)) == []
        # ...but the quarantined file survives, byte for byte, at a
        # warehouse path named after its hour and origin datacenter.
        assert len(result.quarantined_to) == 1
        dest = result.quarantined_to[0]
        assert dest.startswith("/quarantine/client_events/")
        assert dest.endswith("dc1-bad")
        assert warehouse.open_bytes(dest) == original
        assert decode_messages(warehouse.open_bytes(dest)) == [b"ok", b""]

    def test_re_move_re_preserves_without_conflict(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "bad", [b""])
        _stage(s1, "dc1", "good", [b"fine"])
        mover.move_hour(HOUR, delete_staged=False)
        # The same bad file is seen again on the re-move; the preserved
        # copy is simply overwritten, not a FileExistsError.
        result = mover.move_hour(HOUR)
        assert len(result.quarantined_to) == 1
        assert warehouse.exists(result.quarantined_to[0])

    def test_quarantined_files_metric(self):
        old = set_default_registry(MetricsRegistry())
        try:
            s1, warehouse = HDFS(), HDFS()
            mover = LogMover({"dc1": s1}, warehouse)
            _stage(s1, "dc1", "bad", [b""])
            _stage(s1, "dc1", "good", [b"fine"])
            mover.move_hour(HOUR)
            registry = get_default_registry()
            assert registry.total(obs_names.MOVER_QUARANTINED_FILES) == 1
        finally:
            set_default_registry(old)


class TestCounterIdempotence:
    """Per-attempt metric accumulators: RetryPolicy retries of a failed
    attempt must not recount that attempt's duplicates or quarantines."""

    @pytest.fixture(autouse=True)
    def _clean_injector(self):
        yield
        set_default_injector(None)

    def test_retried_move_counts_duplicates_and_failures_once(self):
        old = set_default_registry(MetricsRegistry())
        try:
            s1, warehouse = HDFS(), HDFS()
            clock = LogicalClock()
            mover = LogMover({"dc1": s1}, warehouse, clock=clock,
                             retry_policy=RetryPolicy(max_attempts=4,
                                                      seed=7))
            _stage(s1, "dc1", "p1", [encode_envelope("h1", 0, b"a")])
            _stage(s1, "dc1", "p2", [encode_envelope("h1", 0, b"a")])
            _stage(s1, "dc1", "bad", [b"ok", b""])
            # The first two warehouse writes hit an outage, so two full
            # attempts read the staged files (counting the duplicate and
            # the quarantine) and then abort before the rename.
            plan = FaultPlan()
            plan.add("hdfs.hdfs.write", KIND_UNAVAILABLE, max_fires=2)
            set_default_injector(FaultInjector(plan, clock=clock))
            result = mover.move_hour(HOUR)
            registry = get_default_registry()
            assert result.duplicates_skipped == 1
            assert registry.total(obs_names.MOVER_DUPLICATES_SKIPPED) == 1
            assert registry.total(obs_names.MOVER_CHECK_FAILURES) == 1
            assert registry.total(obs_names.MOVER_QUARANTINED_FILES) == 1
        finally:
            set_default_registry(old)


class TestExactlyOnce:
    """Envelope dedup, crash-site convergence, and the delivery ledger."""

    @pytest.fixture(autouse=True)
    def _clean_injector(self):
        yield
        set_default_injector(None)

    def test_envelopes_stripped_before_warehouse(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [encode_envelope("h1", 0, b"raw")])
        mover.move_hour(HOUR)
        assert _warehouse_messages(warehouse) == [b"raw"]

    def test_duplicate_identities_deduped_within_hour(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [encode_envelope("h1", 0, b"a"),
                                 encode_envelope("h1", 1, b"b")])
        _stage(s1, "dc1", "p2", [encode_envelope("h1", 0, b"a")])
        result = mover.move_hour(HOUR)
        assert result.messages_moved == 2
        assert result.duplicates_skipped == 1
        assert sorted(_warehouse_messages(warehouse)) == [b"a", b"b"]

    def test_duplicate_landed_in_earlier_hour_skipped(self):
        """A resend that slips past an hour boundary must not land twice."""
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [encode_envelope("h1", 0, b"a")])
        mover.move_hour(HOUR)
        later = LogHour("client_events", 2012, 3, 7, 11)
        s1.create(f"{staging_path('dc1', later)}/p1",
                  encode_messages([encode_envelope("h1", 0, b"a"),
                                   encode_envelope("h1", 1, b"b")]),
                  codec="zlib")
        result = mover.move_hour(later)
        assert result.duplicates_skipped == 1
        assert sorted(decode_messages(b"".join(
            warehouse.open_bytes(p)
            for p in warehouse.glob_files(later.path(root=LOGS_ROOT))
        ))) == [b"b"]

    def test_duplicates_skipped_metric(self):
        old = set_default_registry(MetricsRegistry())
        try:
            s1, warehouse = HDFS(), HDFS()
            mover = LogMover({"dc1": s1}, warehouse)
            _stage(s1, "dc1", "p1", [encode_envelope("h1", 0, b"a")])
            _stage(s1, "dc1", "p2", [encode_envelope("h1", 0, b"a")])
            mover.move_hour(HOUR)
            registry = get_default_registry()
            assert registry.total(obs_names.MOVER_DUPLICATES_SKIPPED) == 1
        finally:
            set_default_registry(old)

    def test_unenveloped_frames_pass_through_undeduped(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [b"legacy", b"legacy"])
        result = mover.move_hour(HOUR)
        assert result.messages_moved == 2
        assert result.duplicates_skipped == 0

    def test_ledger_records_committed_identities(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [encode_envelope("h1", 0, b"a"),
                                 encode_envelope("h2", 5, b"b")])
        mover.move_hour(HOUR)
        assert mover.landed_identities(HOUR) == {("h1", 0), ("h2", 5)}
        assert mover.landed_identities() == {("h1", 0), ("h2", 5)}

    def test_late_data_re_move_unions_exactly_once(self):
        """Replace semantics: late staged data re-moves the hour and the
        union of original and late messages lands exactly once."""
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [encode_envelope("h1", 0, b"a")])
        mover.move_hour(HOUR)
        # Late data arrives: a resend of the committed identity plus a
        # genuinely new entry. The hour's own ledger is excluded from
        # dedup, so the rebuild re-lands 'a' (the original input is
        # gone) instead of suppressing it -- replace, not append.
        _stage(s1, "dc1", "late", [encode_envelope("h1", 0, b"a"),
                                   encode_envelope("h1", 1, b"b")])
        result = mover.move_hour(HOUR)
        assert result.messages_moved == 2
        assert result.duplicates_skipped == 0
        assert sorted(_warehouse_messages(warehouse)) == [b"a", b"b"]
        assert mover.landed_identities(HOUR) == {("h1", 0), ("h1", 1)}

    def test_ledger_not_committed_without_staged_deletion(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [encode_envelope("h1", 0, b"a")])
        mover.move_hour(HOUR, delete_staged=False)
        assert mover.landed_identities(HOUR) == frozenset()

    def _arm_crash(self, site):
        plan = FaultPlan()
        plan.add(site, KIND_CRASH, max_fires=1)
        set_default_injector(FaultInjector(plan))

    def test_crash_between_delete_and_rename_rerun_converges(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [encode_envelope("h1", 0, b"v1")])
        mover.move_hour(HOUR)
        _stage(s1, "dc1", "p2", [encode_envelope("h1", 1, b"v2")])
        self._arm_crash("logmover.client_events.pre_rename")
        with pytest.raises(InjectedCrash):
            mover.move_hour(HOUR)
        # Crashed after deleting the published hour but before renaming
        # the rebuild in: consumers momentarily see no hour at all.
        assert not warehouse.exists(HOUR.path(root=LOGS_ROOT))
        assert len(s1.glob_files(staging_path("dc1", HOUR))) == 1
        result = mover.move_hour(HOUR)  # operator restarts the mover
        assert result.messages_moved == 1
        assert _warehouse_messages(warehouse) == [b"v2"]
        assert s1.glob_files(staging_path("dc1", HOUR)) == []

    def test_crash_between_rename_and_cleanup_rerun_converges(self):
        s1, warehouse = HDFS(), HDFS()
        mover = LogMover({"dc1": s1}, warehouse)
        _stage(s1, "dc1", "p1", [encode_envelope("h1", 0, b"v1")])
        self._arm_crash("logmover.client_events.pre_cleanup")
        with pytest.raises(InjectedCrash):
            mover.move_hour(HOUR)
        # Published, but staged inputs survive: the re-run must rebuild
        # the identical hour without duplicating anything.
        assert warehouse.exists(HOUR.path(root=LOGS_ROOT))
        assert len(s1.glob_files(staging_path("dc1", HOUR))) == 1
        result = mover.move_hour(HOUR)
        assert result.messages_moved == 1
        assert _warehouse_messages(warehouse) == [b"v1"]
        assert s1.glob_files(staging_path("dc1", HOUR)) == []
        assert mover.landed_identities(HOUR) == {("h1", 0)}

    def test_retry_policy_rides_through_staging_outage(self):
        s1, warehouse = HDFS(), HDFS()
        clock = LogicalClock()
        mover = LogMover({"dc1": s1}, warehouse, clock=clock,
                         retry_policy=RetryPolicy(max_attempts=4, seed=7))
        _stage(s1, "dc1", "p1", [b"a"])
        outages = FaultPlan()
        # The first two staged-file deletions hit an outage; backoff
        # retries the whole (idempotent) move until it lands.
        outages.add("hdfs.hdfs.write", KIND_UNAVAILABLE, max_fires=2)
        set_default_injector(FaultInjector(outages, clock=clock))
        result = mover.move_hour(HOUR)
        assert result.messages_moved == 1
        assert _warehouse_messages(warehouse) == [b"a"]
