"""Workload generator tests: population, behavior models, event streams."""

import random
from collections import Counter

import pytest

from repro.clock import MILLIS_PER_DAY
from repro.core.names import EventName
from repro.core.sessionizer import Sessionizer
from repro.hdfs.layout import millis_for_hour, LogHour
from repro.workload.behavior import (
    END,
    FUNNEL_CONTINUE,
    build_browsing_behavior,
    build_signup_behavior,
    signup_funnel_stages,
    standard_hierarchy,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.population import CLIENTS, UserPopulation


class TestPopulation:
    def test_deterministic(self):
        a = UserPopulation(50, seed=1)
        b = UserPopulation(50, seed=1)
        assert [(u.user_id, u.country, u.client) for u in a] == \
            [(u.user_id, u.country, u.client) for u in b]

    def test_seed_changes_population(self):
        a = UserPopulation(50, seed=1)
        b = UserPopulation(50, seed=2)
        assert [(u.country, u.client) for u in a] != \
            [(u.country, u.client) for u in b]

    def test_size_and_ids(self):
        population = UserPopulation(30, seed=0)
        assert len(population) == 30
        assert sorted(u.user_id for u in population) == list(range(1, 31))

    def test_needs_positive_size(self):
        with pytest.raises(ValueError):
            UserPopulation(0)

    def test_activity_power_law(self):
        population = UserPopulation(2000, seed=3)
        activities = sorted((u.activity for u in population), reverse=True)
        top_decile = sum(activities[:200])
        total = sum(activities)
        assert top_decile > total * 0.3  # heavy tail

    def test_country_distribution_roughly_weighted(self):
        population = UserPopulation(5000, seed=4)
        by_country = Counter(u.country for u in population)
        assert by_country["us"] > by_country["au"]

    def test_new_users_fraction(self):
        population = UserPopulation(1000, seed=5, new_user_fraction=0.2)
        fraction = len(population.new_users()) / 1000
        assert 0.1 < fraction < 0.3

    def test_by_country_partition(self):
        population = UserPopulation(100, seed=6)
        grouped = population.by_country()
        assert sum(len(v) for v in grouped.values()) == 100


class TestBehaviorModels:
    @pytest.mark.parametrize("client", [c for c, __ in CLIENTS])
    def test_all_states_are_valid_event_names(self, client):
        model = build_browsing_behavior(client)
        for state in model.states():
            name = EventName.parse(state)
            assert name.client == client

    def test_states_exist_in_standard_hierarchy(self):
        model = build_browsing_behavior("web")
        hierarchy = standard_hierarchy("web")
        universe = {str(n) for n in hierarchy.all_event_names()}
        for state in model.states():
            assert state in universe

    def test_sampling_deterministic_under_seed(self):
        model = build_browsing_behavior("web")
        a = model.sample(random.Random(7))
        b = model.sample(random.Random(7))
        assert a == b

    def test_sample_respects_max_events(self):
        model = build_browsing_behavior("web")
        rng = random.Random(0)
        for __ in range(50):
            assert len(model.sample(rng, max_events=10)) <= 10

    def test_impressions_dominate_clicks(self):
        model = build_browsing_behavior("web")
        rng = random.Random(1)
        counts = Counter()
        for __ in range(500):
            counts.update(name.rsplit(":", 1)[1]
                          for name in model.sample(rng))
        assert counts["impression"] > counts["click"] * 3

    def test_signup_funnel_monotone(self):
        model = build_signup_behavior("web")
        stages = signup_funnel_stages("web")
        rng = random.Random(2)
        reached = Counter()
        for __ in range(2000):
            session = set(model.sample(rng))
            for i, stage in enumerate(stages):
                if stage in session:
                    reached[i] += 1
        counts = [reached[i] for i in range(len(stages))]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        # stage-0 completion tracks the configured continuation rate
        assert abs(counts[0] / 2000 - FUNNEL_CONTINUE[0]) < 0.05

    def test_funnel_stage_names_are_submits(self):
        for stage in signup_funnel_stages("iphone"):
            assert stage.startswith("iphone:signup:")
            assert stage.endswith(":submit")


class TestGenerator:
    def test_deterministic(self):
        a = WorkloadGenerator(num_users=50, seed=9).generate_day(2012, 5, 1)
        b = WorkloadGenerator(num_users=50, seed=9).generate_day(2012, 5, 1)
        assert len(a.events) == len(b.events)
        assert [e.to_bytes() for e in a.events[:20]] == \
            [e.to_bytes() for e in b.events[:20]]

    def test_different_days_differ(self):
        generator = WorkloadGenerator(num_users=50, seed=9)
        a = generator.generate_day(2012, 5, 1)
        b = generator.generate_day(2012, 5, 2)
        assert [e.to_bytes() for e in a.events[:20]] != \
            [e.to_bytes() for e in b.events[:20]]

    def test_events_carry_all_unified_fields(self, workload):
        for event in workload.events[:200]:
            assert event.user_id > 0
            assert event.session_id
            assert event.ip.count(".") == 3
            assert event.timestamp >= 0
            assert event.country
            assert event.logged_in is not None
            assert event.event_details  # verbose details

    def test_timestamps_within_day_or_spillover(self, workload, date):
        day_start = millis_for_hour(
            LogHour("client_events", *date, 0))
        for event in workload.events:
            assert event.timestamp >= day_start
            # sessions may spill past midnight but not by more than a day
            assert event.timestamp < day_start + 2 * MILLIS_PER_DAY

    def test_sessions_reconstructible(self, workload):
        sessions = Sessionizer().sessionize(workload.events)
        assert len(sessions) >= workload.sessions_generated * 0.95
        # a session's events share client (one device per session)
        for session in sessions[:100]:
            clients = {e.client for e in session.events}
            assert len(clients) == 1

    def test_funnel_entries_only_for_new_users(self, workload):
        signup_events = [e for e in workload.events
                         if ":signup:" in e.event_name]
        assert workload.funnel_entries > 0
        assert signup_events

    def test_user_client_consistency(self, workload):
        generator = WorkloadGenerator(num_users=200, seed=42)
        by_user = {u.user_id: u.client for u in generator.population}
        for event in workload.events[:500]:
            assert event.client == by_user[event.user_id]

    def test_diurnal_shape(self, workload, date):
        day_start = millis_for_hour(LogHour("client_events", *date, 0))
        by_hour = Counter(
            min((e.timestamp - day_start) // (3600 * 1000), 23)
            for e in workload.events)
        # night hours (1-4 am) are quieter than evening (18-21)
        night = sum(by_hour[h] for h in (1, 2, 3, 4))
        evening = sum(by_hour[h] for h in (18, 19, 20, 21))
        assert evening > night


class TestMultiDevice:
    def test_off_by_default(self, workload):
        generator = WorkloadGenerator(num_users=200, seed=42)
        by_user = {u.user_id: u.client for u in generator.population}
        assert all(e.client == by_user[e.user_id]
                   for e in workload.events[:300])

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(num_users=10, multi_device_fraction=1.5)

    def test_multi_device_users_emit_two_clients(self):
        generator = WorkloadGenerator(num_users=300, seed=13,
                                      multi_device_fraction=0.5)
        workload = generator.generate_day(2012, 7, 1)
        clients_per_user = {}
        for event in workload.events:
            clients_per_user.setdefault(event.user_id, set()).add(
                event.client)
        multi = sum(1 for clients in clients_per_user.values()
                    if len(clients) > 1)
        assert multi > 10

    def test_sessions_still_single_client(self):
        """Each session happens on one device even for multi-device
        users -- the session id is the device-session cookie."""
        generator = WorkloadGenerator(num_users=150, seed=13,
                                      multi_device_fraction=0.6)
        workload = generator.generate_day(2012, 7, 1)
        sessions = Sessionizer().sessionize(workload.events)
        for session in sessions:
            assert len({e.client for e in session.events}) == 1


class TestSecondOrderBehavior:
    def test_off_by_default(self):
        model = build_browsing_behavior("web")
        assert model.context_transitions == {}

    def test_context_rules_present_when_enabled(self):
        model = build_browsing_behavior("web", second_order=True)
        assert model.context_transitions
        for (prev, cur), options in model.context_transitions.items():
            assert prev in model.transitions
            assert cur in model.transitions
            assert options

    def test_trigram_beats_bigram_on_second_order_stream(self):
        from repro.nlp.ngram import perplexity_by_order

        model = build_browsing_behavior("web", second_order=True)
        rng = random.Random(0)
        sequences = [model.sample(rng) for __ in range(2500)]
        sequences = [s for s in sequences if len(s) >= 2]
        train, test = sequences[::2], sequences[1::2]
        curve = dict(perplexity_by_order(train, test, max_n=3))
        assert curve[3] < curve[2] < curve[1]

    def test_first_order_stream_shows_no_trigram_gain(self):
        """The control: without context rules, the trigram model does
        not meaningfully beat the bigram."""
        from repro.nlp.ngram import perplexity_by_order

        model = build_browsing_behavior("web", second_order=False)
        rng = random.Random(0)
        sequences = [model.sample(rng) for __ in range(2500)]
        sequences = [s for s in sequences if len(s) >= 2]
        train, test = sequences[::2], sequences[1::2]
        curve = dict(perplexity_by_order(train, test, max_n=3))
        gain_2 = curve[1] - curve[2]
        gain_3 = curve[2] - curve[3]
        assert gain_3 < gain_2 * 0.25
