"""ZooKeeper simulation tests: znodes, sessions, ephemerals, watches."""

import pytest

from repro.scribe.zookeeper import (
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    SessionExpiredError,
    ZooKeeper,
    ZooKeeperError,
)


class TestZNodes:
    def test_create_and_get(self):
        zk = ZooKeeper()
        zk.create("/a", b"data")
        assert zk.get_data("/a") == b"data"

    def test_create_requires_existing_parent(self):
        zk = ZooKeeper()
        with pytest.raises(NoNodeError):
            zk.create("/a/b")

    def test_ensure_path(self):
        zk = ZooKeeper()
        zk.ensure_path("/a/b/c")
        assert zk.exists("/a/b/c")
        zk.ensure_path("/a/b/c")  # idempotent

    def test_duplicate_create_fails(self):
        zk = ZooKeeper()
        zk.create("/a")
        with pytest.raises(NodeExistsError):
            zk.create("/a")

    def test_relative_path_rejected(self):
        with pytest.raises(ZooKeeperError):
            ZooKeeper().create("relative")

    def test_set_data_and_get(self):
        zk = ZooKeeper()
        zk.create("/a", b"1")
        zk.set_data("/a", b"2")
        assert zk.get_data("/a") == b"2"

    def test_get_children_sorted(self):
        zk = ZooKeeper()
        zk.create("/p")
        for name in ("c", "a", "b"):
            zk.create(f"/p/{name}")
        assert zk.get_children("/p") == ["a", "b", "c"]

    def test_delete_leaf(self):
        zk = ZooKeeper()
        zk.create("/a")
        zk.delete("/a")
        assert not zk.exists("/a")

    def test_delete_with_children_fails(self):
        zk = ZooKeeper()
        zk.create("/a")
        zk.create("/a/b")
        with pytest.raises(NotEmptyError):
            zk.delete("/a")

    def test_missing_node_errors(self):
        zk = ZooKeeper()
        with pytest.raises(NoNodeError):
            zk.get_data("/none")
        with pytest.raises(NoNodeError):
            zk.delete("/none")
        with pytest.raises(NoNodeError):
            zk.get_children("/none")

    def test_sequential_nodes_monotone(self):
        zk = ZooKeeper()
        zk.create("/q")
        first = zk.create("/q/item-", sequential=True)
        second = zk.create("/q/item-", sequential=True)
        assert first < second
        assert first.startswith("/q/item-")


class TestSessionsAndEphemerals:
    def test_ephemeral_vanishes_with_session(self):
        zk = ZooKeeper()
        zk.create("/workers")
        session = zk.connect()
        session.create("/workers/w1", ephemeral=True)
        assert zk.get_children("/workers") == ["w1"]
        session.close()
        assert zk.get_children("/workers") == []

    def test_persistent_nodes_survive_session_close(self):
        zk = ZooKeeper()
        session = zk.connect()
        session.create("/durable")
        session.close()
        assert zk.exists("/durable")

    def test_closed_session_rejects_operations(self):
        zk = ZooKeeper()
        session = zk.connect()
        session.close()
        with pytest.raises(SessionExpiredError):
            session.create("/x")

    def test_session_close_is_idempotent(self):
        zk = ZooKeeper()
        session = zk.connect()
        session.close()
        session.close()

    def test_ephemeral_requires_session(self):
        zk = ZooKeeper()
        with pytest.raises(ZooKeeperError):
            zk.create("/e", ephemeral=True)

    def test_ephemeral_cannot_have_children(self):
        zk = ZooKeeper()
        session = zk.connect()
        session.create("/e", ephemeral=True)
        with pytest.raises(ZooKeeperError):
            zk.create("/e/child")

    def test_multiple_sessions_independent(self):
        zk = ZooKeeper()
        zk.create("/w")
        s1, s2 = zk.connect(), zk.connect()
        s1.create("/w/a", ephemeral=True)
        s2.create("/w/b", ephemeral=True)
        s1.close()
        assert zk.get_children("/w") == ["b"]

    def test_explicit_delete_of_ephemeral(self):
        zk = ZooKeeper()
        zk.create("/w")
        session = zk.connect()
        session.create("/w/e", ephemeral=True)
        session.delete("/w/e")
        # closing must not fail on the already-deleted node
        session.close()

    def test_session_count(self):
        zk = ZooKeeper()
        s1 = zk.connect()
        s2 = zk.connect()
        assert zk.session_count() == 2
        s1.close()
        assert zk.session_count() == 1
        s2.close()


class TestWatches:
    def test_child_watch_fires_on_create(self):
        zk = ZooKeeper()
        zk.create("/p")
        fired = []
        zk.get_children("/p", watch=lambda kind, path: fired.append((kind, path)))
        zk.create("/p/c")
        assert fired == [("child", "/p")]

    def test_child_watch_is_one_shot(self):
        zk = ZooKeeper()
        zk.create("/p")
        fired = []
        zk.get_children("/p", watch=lambda k, p: fired.append(k))
        zk.create("/p/a")
        zk.create("/p/b")
        assert len(fired) == 1

    def test_exists_watch_fires_on_delete(self):
        zk = ZooKeeper()
        zk.create("/x")
        fired = []
        zk.exists("/x", watch=lambda kind, path: fired.append(kind))
        zk.delete("/x")
        assert fired == ["deleted"]

    def test_watch_fires_when_session_closes_ephemeral(self):
        zk = ZooKeeper()
        zk.create("/w")
        session = zk.connect()
        session.create("/w/e", ephemeral=True)
        fired = []
        zk.get_children("/w", watch=lambda k, p: fired.append(k))
        session.close()
        assert fired == ["child"]
