"""Protobuf-style wire format tests (§3's second serialization)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.thriftlike.codegen import record_reader, record_writer
from repro.thriftlike.proto import ProtoField, ProtoMessage
from repro.thriftlike.types import ProtocolError, ValidationError


class Point(ProtoMessage):
    FIELDS = (
        ProtoField(1, "x", "int64"),
        ProtoField(2, "y", "sint64"),
    )


class Everything(ProtoMessage):
    FIELDS = (
        ProtoField(1, "n", "int64"),
        ProtoField(2, "u", "uint64"),
        ProtoField(3, "s", "sint64"),
        ProtoField(4, "flag", "bool"),
        ProtoField(5, "real", "double"),
        ProtoField(6, "text", "string"),
        ProtoField(7, "blob", "bytes"),
        ProtoField(8, "child", "message", message_cls=Point),
        ProtoField(9, "tags", "string", repeated=True),
        ProtoField(10, "points", "message", repeated=True,
                   message_cls=Point),
    )


class TestFieldSpecs:
    def test_unknown_kind(self):
        with pytest.raises(ValidationError):
            ProtoField(1, "x", "float128")

    def test_reserved_numbers(self):
        with pytest.raises(ValidationError):
            ProtoField(19_500, "x", "int64")
        with pytest.raises(ValidationError):
            ProtoField(0, "x", "int64")

    def test_message_needs_class(self):
        with pytest.raises(ValidationError):
            ProtoField(1, "m", "message")

    def test_duplicate_numbers_detected(self):
        class Bad(ProtoMessage):
            FIELDS = (ProtoField(1, "a", "int64"),
                      ProtoField(1, "b", "int64"))

        with pytest.raises(ValidationError):
            Bad()


class TestRoundtrip:
    def test_full_roundtrip(self):
        original = Everything(
            n=-5, u=2 ** 63, s=-1000, flag=True, real=2.5,
            text="héllo", blob=b"\x00\xff", child=Point(x=1, y=-2),
            tags=["a", "b"], points=[Point(x=3), Point(y=4)])
        assert Everything.from_bytes(original.to_bytes()) == original

    def test_proto3_defaults_absent_on_wire(self):
        assert Everything().to_bytes() == b""
        assert Point(x=0, y=0).to_bytes() == b""

    def test_negative_int64_roundtrip(self):
        point = Point(x=-1)
        decoded = Point.from_bytes(point.to_bytes())
        assert decoded.x == -1

    def test_sint_encoding_smaller_for_negatives(self):
        as_int64 = Point(x=-1).to_bytes()       # 10-byte varint
        as_sint64 = Point(y=-1).to_bytes()      # zigzag: 1 byte
        assert len(as_sint64) < len(as_int64)

    def test_uint64_rejects_negative(self):
        with pytest.raises(ValidationError):
            Everything(u=-1).to_bytes()

    def test_int_field_rejects_non_int(self):
        with pytest.raises(ValidationError):
            Everything(n="7").to_bytes()


class TestForwardCompatibility:
    def test_unknown_fields_skipped(self):
        """A reader with fewer declared fields accepts newer messages."""

        class PointV2(ProtoMessage):
            FIELDS = Point.FIELDS + (
                ProtoField(3, "label", "string"),
                ProtoField(4, "weight", "double"),
            )

        new = PointV2(x=7, y=8, label="later", weight=1.5)
        old = Point.from_bytes(new.to_bytes())
        assert (old.x, old.y) == (7, 8)

    def test_retyped_field_skipped(self):
        class PointStr(ProtoMessage):
            FIELDS = (ProtoField(1, "x", "string"),)

        decoded = PointStr.from_bytes(Point(x=9).to_bytes())
        assert decoded.x == ""  # varint 'x' skipped, not misread

    def test_truncated_message(self):
        data = Everything(text="hello").to_bytes()[:-2]
        with pytest.raises(ProtocolError):
            Everything.from_bytes(data)


class TestElephantBirdIntegration:
    def test_record_io_works_unchanged(self):
        """The format-agnostic point: Elephant-Bird readers/writers
        derived for Thrift structs work for proto messages too."""
        write = record_writer(Point)
        read = record_reader(Point)
        records = [Point(x=i, y=-i) for i in range(10)]
        assert list(read(write(records))) == records

    def test_file_format(self):
        from repro.thriftlike.codegen import ThriftFileFormat

        fmt = ThriftFileFormat(Point)
        records = [Point(x=1), Point(y=2)]
        assert fmt.decode(fmt.encode(records)) == records


class TestProperties:
    @given(x=st.integers(-(2 ** 63), 2 ** 63 - 1),
           y=st.integers(-(2 ** 63), 2 ** 63 - 1))
    @settings(max_examples=100, deadline=None)
    def test_point_roundtrip(self, x, y):
        point = Point(x=x, y=y)
        assert Point.from_bytes(point.to_bytes()) == point

    @given(data=st.binary(max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_fuzz_decode_never_hangs(self, data):
        try:
            Everything.from_bytes(data)
        except (ProtocolError, UnicodeDecodeError, ValidationError):
            pass
