"""Pig Latin interpreter tests: the paper's scripts, verbatim."""

import pytest

from repro.analytics.counting import count_events_sequences
from repro.analytics.funnel import run_funnel
from repro.pig.latin import (
    PigLatinError,
    PigLatinInterpreter,
    standard_bindings,
)
from repro.pig.loaders import InMemoryLoader
from repro.pig.relation import PigServer
from repro.workload.behavior import signup_funnel_stages

PAPER_SCRIPT = """
define CountClientEvents CountClientEvents('$EVENTS');

raw = load '/session_sequences/$DATE/' using SessionSequencesLoader();
generated = foreach raw generate CountClientEvents(symbols);
grouped = group generated all;
count = foreach grouped generate SUM(generated);
dump count;
"""


def _date_path(date):
    return f"{date[0]:04d}/{date[1]:02d}/{date[2]:02d}"


@pytest.fixture
def interpreter(warehouse, dictionary, date):
    def build(variables):
        return PigLatinInterpreter(PigServer(), variables=variables,
                                   **standard_bindings(warehouse,
                                                       dictionary))

    return build


class TestPaperScripts:
    def test_counting_script_verbatim(self, interpreter, warehouse,
                                      dictionary, date):
        """§5.2's script, with $EVENTS/$DATE substitution, must match
        the fluent-API answer exactly."""
        interp = interpreter({"EVENTS": "*:profile_click",
                              "DATE": _date_path(date)})
        result = interp.run(PAPER_SCRIPT)
        expected = count_events_sequences(warehouse, date,
                                          "*:profile_click", dictionary)
        assert result.last_dump == [expected]

    def test_count_variant(self, interpreter, warehouse, dictionary, date):
        """"A common variant ... is a replacement of SUM by COUNT"."""
        interp = interpreter({"EVENTS": "*:query",
                              "DATE": _date_path(date)})
        result = interp.run(PAPER_SCRIPT.replace("SUM", "COUNT"))
        expected = count_events_sequences(warehouse, date, "*:query",
                                          dictionary, mode="sessions")
        assert result.last_dump == [expected]

    def test_funnel_script(self, interpreter, warehouse, dictionary, date):
        """§5.3's funnel definition, adapted to a runnable script."""
        stages = signup_funnel_stages("web")[:3]
        script = f"""
        define Funnel ClientEventsFunnel('{stages[0]}', '{stages[1]}',
                                         '{stages[2]}');
        raw = load '/session_sequences/{_date_path(date)}/'
              using SessionSequencesLoader();
        depths = foreach raw generate Funnel(symbols);
        dump depths;
        """
        interp = interpreter({})
        depths = interp.run(script).last_dump
        report = run_funnel(warehouse, date, stages, dictionary)
        for k in range(1, 4):
            assert sum(1 for d in depths if d >= k) == \
                report.stage_counts[k - 1]

    def test_jobs_have_real_boundaries(self, warehouse, dictionary, date):
        """Scripts compile to the same MR job structure as the API."""
        server = PigServer()
        interp = PigLatinInterpreter(
            server, variables={"EVENTS": "*:impression",
                               "DATE": _date_path(date)},
            **standard_bindings(warehouse, dictionary))
        interp.run(PAPER_SCRIPT)
        names = [run.job_name for run in server.tracker.runs]
        assert "group_all" in names  # the shuffle is real


class TestLanguageFeatures:
    def _interp(self, rows, **kwargs):
        server = PigServer()
        loaders = {"Mem": lambda path: InMemoryLoader(rows)}
        return PigLatinInterpreter(server, loaders=loaders, **kwargs)

    def test_filter_by_udf(self):
        interp = self._interp([1, 2, 3, 4],
                              udfs={"IsEven": lambda: lambda x: x % 2 == 0})
        result = interp.run("""
            define IsEven IsEven();
            raw = load 'x' using Mem();
            evens = filter raw by IsEven(*);
            dump evens;
        """)
        assert result.last_dump == [2, 4]

    def test_group_by_field(self):
        rows = [{"k": 1, "v": 10}, {"k": 2, "v": 20}, {"k": 1, "v": 5}]
        interp = self._interp(rows)
        result = interp.run("""
            raw = load 'x' using Mem();
            grouped = group raw by k;
            sums = foreach grouped generate SUM(v);
            dump sums;
        """)
        assert sorted(result.last_dump) == [15, 20]

    def test_distinct_and_limit(self):
        interp = self._interp([3, 1, 3, 2, 1])
        result = interp.run("""
            raw = load 'x' using Mem();
            d = distinct raw;
            top = limit d 2;
            dump top;
        """)
        assert len(result.last_dump) == 2

    def test_flatten(self):
        interp = self._interp([2, 3],
                              udfs={"Upto": lambda: lambda n: range(n)})
        result = interp.run("""
            define Upto Upto();
            raw = load 'x' using Mem();
            flat = foreach raw generate flatten(Upto(*));
            dump flat;
        """)
        assert result.last_dump == [0, 1, 0, 1, 2]

    def test_multiple_dumps(self):
        interp = self._interp([1, 2])
        result = interp.run("""
            raw = load 'x' using Mem();
            dump raw;
            doubled = foreach raw generate *;
            dump doubled;
        """)
        assert len(result.dumps) == 2

    def test_comments_stripped(self):
        interp = self._interp([5])
        result = interp.run("""
            -- a comment line
            raw = load 'x' using Mem();  -- trailing comment
            dump raw;
        """)
        assert result.last_dump == [5]


class TestErrors:
    def _interp(self, **kwargs):
        return PigLatinInterpreter(PigServer(), **kwargs)

    def test_undefined_parameter(self):
        with pytest.raises(PigLatinError, match="undefined parameter"):
            self._interp().run("dump $NOPE;")

    def test_unknown_loader(self):
        with pytest.raises(PigLatinError, match="unknown loader"):
            self._interp().run("raw = load 'p' using Ghost();")

    def test_unknown_udf_in_define(self):
        with pytest.raises(PigLatinError, match="unknown UDF"):
            self._interp().run("define X Ghost('a');")

    def test_udf_used_before_define(self):
        interp = self._interp(
            loaders={"Mem": lambda path: InMemoryLoader([1])})
        with pytest.raises(PigLatinError, match="before DEFINE"):
            interp.run("""
                raw = load 'x' using Mem();
                out = foreach raw generate Mystery(*);
                dump out;
            """)

    def test_unknown_alias(self):
        with pytest.raises(PigLatinError, match="unknown alias"):
            self._interp().run("dump ghost;")

    def test_unparseable_statement(self):
        with pytest.raises(PigLatinError, match="cannot parse"):
            self._interp().run("cogroup a by x, b by y;")

    def test_load_requires_using(self):
        with pytest.raises(PigLatinError, match="USING"):
            self._interp().run("raw = load '/plain/path';")

    def test_sum_outside_group(self):
        """A bad aggregate fails the job the way a broken UDF fails a
        Hadoop job: the task exhausts its attempts and surfaces the
        underlying error as the cause."""
        from repro.mapreduce.engine import TaskFailedError

        interp = self._interp(
            loaders={"Mem": lambda path: InMemoryLoader([1])})
        with pytest.raises(TaskFailedError, match="grouped relation"):
            interp.run("""
                raw = load 'x' using Mem();
                bad = foreach raw generate SUM(*);
                dump bad;
            """)

    def test_bad_date_in_standard_bindings(self, warehouse):
        bindings = standard_bindings(warehouse)
        with pytest.raises(PigLatinError, match="YYYY/MM/DD"):
            bindings["loaders"]["ClientEventsLoader"]("/logs/nodate")


class TestStore:
    def test_store_writes_json_lines(self, warehouse, dictionary, date,
                                     interpreter):
        import json

        interp = interpreter({"DATE": _date_path(date)})
        interp.run("""
            raw = load '/session_sequences/$DATE/'
                  using SessionSequencesLoader();
            short = limit raw 5;
            store short into '/exports/sample.json' using JsonStorage();
        """)
        payload = warehouse.open_bytes("/exports/sample.json")
        rows = [json.loads(line) for line in payload.decode().splitlines()]
        assert len(rows) == 5
        assert all("session_sequence" in row for row in rows)

    def test_store_default_storer(self, warehouse, dictionary, date,
                                  interpreter):
        interp = interpreter({"DATE": _date_path(date)})
        interp.run("""
            raw = load '/session_sequences/$DATE/'
                  using SessionSequencesLoader();
            one = limit raw 1;
            store one into '/exports/one.json';
        """)
        assert warehouse.is_file("/exports/one.json")

    def test_unknown_storer(self, interpreter, date):
        interp = interpreter({"DATE": _date_path(date)})
        with pytest.raises(PigLatinError, match="unknown storer"):
            interp.run("""
                raw = load '/session_sequences/$DATE/'
                      using SessionSequencesLoader();
                store raw into '/x' using ParquetStorage();
            """)
