"""Public API smoke tests: top-level exports, loaders, misc gaps."""

import pytest

import repro
from repro.hdfs.namenode import HDFS
from repro.pig.loaders import FramedMessagesLoader
from repro.pig.relation import PigServer
from repro.scribe.aggregator import encode_messages


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize("package", [
        "repro.core", "repro.thriftlike", "repro.scribe", "repro.hdfs",
        "repro.logmover", "repro.mapreduce", "repro.pig", "repro.oink",
        "repro.legacy", "repro.analytics", "repro.nlp",
        "repro.elephanttwin", "repro.workload", "repro.obs",
        "repro.faults",
    ])
    def test_subpackage_all_resolves(self, package):
        import importlib

        module = importlib.import_module(package)
        for name in module.__all__:
            assert getattr(module, name) is not None

    def test_convenience_flow(self):
        """The names exported at top level compose into the core flow."""
        from repro import (
            ClientEvent,
            EventDictionary,
            SessionSequenceRecord,
            Sessionizer,
        )

        event = ClientEvent.make(
            "web:home:timeline:stream:tweet:impression", user_id=1,
            session_id="s", ip="1.1.1.1", timestamp=0)
        (session,) = Sessionizer().sessionize([event])
        dictionary = EventDictionary([event.event_name])
        record = SessionSequenceRecord.from_session(session, dictionary)
        assert record.num_events == 1


class TestFramedMessagesLoader:
    def test_loads_raw_messages(self):
        fs = HDFS()
        fs.create("/raw/f1", encode_messages([b"a", b"b"]), codec="zlib")
        fs.create("/raw/f2", encode_messages([b"c"]))
        loader = FramedMessagesLoader(fs, "/raw")
        rows = PigServer().load(loader).dump()
        assert sorted(rows) == [b"a", b"b", b"c"]


class TestInitiatorEnumOnWire:
    def test_initiator_survives_serialization(self):
        from repro.core.event import ClientEvent, EventInitiator

        for initiator in EventInitiator:
            event = ClientEvent.make(
                "web:home:timeline:stream:tweet:impression", user_id=1,
                session_id="s", ip="1.1.1.1", timestamp=0,
                initiator=initiator)
            decoded = ClientEvent.from_bytes(event.to_bytes())
            assert decoded.initiator is initiator
