"""Client event catalog tests (§4.3)."""

import pytest

from repro.core.catalog import ClientEventCatalog

COUNTS = {
    "web:home:timeline:stream:tweet:impression": 1000,
    "web:home:timeline:stream:tweet:click": 100,
    "web:search::results:result:click": 50,
    "iphone:home:timeline:stream:tweet:impression": 400,
}
SAMPLES = {
    "web:home:timeline:stream:tweet:click": [{"user_id": 1}],
}


@pytest.fixture
def catalog():
    return ClientEventCatalog(COUNTS, SAMPLES)


class TestAccess:
    def test_len_and_contains(self, catalog):
        assert len(catalog) == 4
        assert "web:search::results:result:click" in catalog
        assert "nope" not in catalog

    def test_entries_most_frequent_first(self, catalog):
        entries = catalog.entries()
        counts = [e.count for e in entries]
        assert counts == sorted(counts, reverse=True)

    def test_entry_with_samples(self, catalog):
        entry = catalog.entry("web:home:timeline:stream:tweet:click")
        assert entry.samples == [{"user_id": 1}]

    def test_missing_entry_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.entry("ghost")


class TestBrowsing:
    def test_browse_clients(self, catalog):
        clients = catalog.browse()
        assert clients == {"web": 1150, "iphone": 400}

    def test_browse_pages_of_client(self, catalog):
        pages = catalog.browse("web")
        assert pages == {"home": 1100, "search": 50}

    def test_browse_below_action_rejected(self, catalog):
        with pytest.raises(ValueError):
            catalog.browse("web", "home", "timeline", "stream", "tweet",
                           "impression")

    def test_by_component(self, catalog):
        clicks = catalog.by_component("action", "click")
        assert len(clicks) == 2
        with pytest.raises(ValueError):
            catalog.by_component("nonsense", "x")


class TestSearching:
    def test_wildcard_search(self, catalog):
        hits = catalog.search("*:impression")
        assert len(hits) == 2

    def test_regex_search(self, catalog):
        hits = catalog.search_regex(r"^web:search")
        assert len(hits) == 1


class TestCuration:
    def test_describe(self, catalog):
        name = "web:search::results:result:click"
        catalog.describe(name, "User clicked a search result")
        assert catalog.entry(name).description == \
            "User clicked a search result"

    def test_undocumented_most_frequent_first(self, catalog):
        catalog.describe("web:home:timeline:stream:tweet:impression", "doc")
        undocumented = catalog.undocumented()
        assert "web:home:timeline:stream:tweet:impression" not in undocumented
        assert undocumented[0] == "iphone:home:timeline:stream:tweet:impression"

    def test_descriptions_carry_across_daily_rebuild(self, catalog):
        """§4.3: the catalog is rebuilt every day; developer descriptions
        must survive."""
        catalog.describe("web:search::results:result:click", "kept")
        tomorrow = ClientEventCatalog(
            {**COUNTS, "web:discover:trends:trend_list:trend:click": 7})
        carried = tomorrow.carry_descriptions_from(catalog)
        assert carried == 1
        assert tomorrow.entry("web:search::results:result:click") \
            .description == "kept"

    def test_carry_does_not_overwrite(self, catalog):
        catalog.describe("web:search::results:result:click", "old")
        tomorrow = ClientEventCatalog(COUNTS)
        tomorrow.describe("web:search::results:result:click", "new")
        tomorrow.carry_descriptions_from(catalog)
        assert tomorrow.entry("web:search::results:result:click") \
            .description == "new"


class TestPersistence:
    def test_bytes_roundtrip(self, catalog):
        catalog.describe("web:search::results:result:click", "described")
        restored = ClientEventCatalog.from_bytes(catalog.to_bytes())
        assert len(restored) == len(catalog)
        assert restored.entry("web:search::results:result:click") \
            .description == "described"
        assert restored.entry("web:home:timeline:stream:tweet:click") \
            .samples == [{"user_id": 1}]


class TestBuiltFromWarehouse:
    def test_catalog_from_builder_artifacts(self, builder, date):
        histogram = builder.load_histogram(*date)
        samples = builder.load_samples(*date)
        catalog = ClientEventCatalog(histogram, samples)
        assert len(catalog) == len(histogram)
        clients = catalog.browse()
        assert set(clients) <= {"web", "iphone", "android", "ipad"}
        # samples show complete Thrift structures
        top = catalog.entries()[0]
        assert top.samples
        assert "user_id" in top.samples[0]


class TestDetailsSchemaIntegration:
    def test_attach_details_schemas(self, builder, date, workload):
        from repro.core.details_schema import DetailsSchemaInferencer

        catalog = ClientEventCatalog(builder.load_histogram(*date),
                                     builder.load_samples(*date))
        inferencer = DetailsSchemaInferencer().observe_all(workload.events)
        attached = catalog.attach_details_schemas(inferencer)
        assert attached > 0
        top = catalog.entries()[0]
        assert top.details_schema
        assert any("obligatory" in line for line in top.details_schema)

    def test_details_schema_persists(self, builder, date, workload):
        from repro.core.details_schema import DetailsSchemaInferencer

        catalog = ClientEventCatalog(builder.load_histogram(*date),
                                     builder.load_samples(*date))
        inferencer = DetailsSchemaInferencer().observe_all(workload.events)
        catalog.attach_details_schemas(inferencer)
        restored = ClientEventCatalog.from_bytes(catalog.to_bytes())
        top = restored.entries()[0]
        assert top.details_schema == catalog.entries()[0].details_schema
