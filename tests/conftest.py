"""Shared fixtures: a small generated day of traffic, built artifacts.

Expensive fixtures are session-scoped; tests must not mutate them. Tests
needing a private warehouse build their own.
"""

from __future__ import annotations

import pytest

from repro.core.builder import SessionSequenceBuilder
from repro.hdfs.namenode import HDFS
from repro.workload.generator import WorkloadGenerator, load_warehouse_day

DATE = (2012, 3, 10)


@pytest.fixture(scope="session")
def workload():
    """One generated day: ~200 users, deterministic."""
    generator = WorkloadGenerator(num_users=200, seed=42)
    return generator.generate_day(*DATE)


@pytest.fixture(scope="session")
def warehouse(workload):
    """A warehouse HDFS holding the generated day plus built artifacts."""
    fs = HDFS()
    load_warehouse_day(fs, workload)
    builder = SessionSequenceBuilder(fs)
    builder.run(*DATE)
    return fs


@pytest.fixture(scope="session")
def builder(warehouse):
    return SessionSequenceBuilder(warehouse)


@pytest.fixture(scope="session")
def build_result(warehouse):
    # Rebuild result object cheaply by re-running on the same warehouse
    # is wasteful; instead run once here and reuse.
    builder = SessionSequenceBuilder(warehouse)
    return builder.run(*DATE)


@pytest.fixture(scope="session")
def dictionary(builder):
    return builder.load_dictionary(*DATE)


@pytest.fixture(scope="session")
def sequence_records(builder):
    return list(builder.iter_sequences(*DATE))


@pytest.fixture(scope="session")
def date():
    return DATE
