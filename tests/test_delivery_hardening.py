"""Regression tests for the duplicate/reorder/loss bug family (§2).

Each test class covers one of the delivery-hardening fixes: head-of-line
flush ordering, exception-safe buffering with single-path accounting,
WAL custody across outages and crashes, and replay fidelity. Every test
here fails against the pre-fix implementations.
"""

import pytest

from repro.clock import LogicalClock
from repro.faults.injector import (
    KIND_ACK_LOST,
    KIND_ERROR,
    KIND_EXPIRE_SESSION,
    FaultInjector,
    FaultPlan,
    set_default_injector,
)
from repro.faults.retry import RetryPolicy
from repro.hdfs.namenode import HDFS
from repro.obs.metrics import MetricsRegistry, set_default_registry
from repro.obs.trace import Tracer, set_default_tracer
from repro.scribe.aggregator import ScribeAggregator, decode_messages
from repro.scribe.daemon import ScribeDaemon
from repro.scribe.discovery import AggregatorDiscovery
from repro.scribe.message import LogEntry, decode_envelope
from repro.scribe.zookeeper import ZooKeeper


@pytest.fixture(autouse=True)
def _clean_state():
    old_registry = set_default_registry(MetricsRegistry())
    yield
    set_default_injector(None)
    set_default_registry(old_registry)


def _rig(durable=False, retry_policy=None, max_buffer=None):
    """One daemon wired to one aggregator through ZooKeeper."""
    zk = ZooKeeper()
    clock = LogicalClock()
    staging = HDFS()
    aggregator = ScribeAggregator("agg-1", "dc1", zk, staging, clock,
                                  durable=durable)
    aggregator.start()
    daemon = ScribeDaemon("host-1", AggregatorDiscovery(zk, "dc1", seed=0),
                          resolve={"agg-1": aggregator}.get, clock=clock,
                          max_buffer=max_buffer, retry_policy=retry_policy)
    return daemon, aggregator, staging, clock


def _staged_payloads(aggregator, staging):
    """Payloads landed in staging, in write order, envelopes stripped."""
    aggregator.flush()
    out = []
    for path in sorted(staging.glob_files("/staging")):
        for wire in decode_messages(staging.open_bytes(path)):
            __, __, payload = decode_envelope(wire)
            out.append(payload)
    return out


class TestSequenceStamping:
    def test_entries_stamped_with_origin_and_monotone_seq(self):
        daemon, aggregator, staging, __ = _rig()
        for i in range(3):
            daemon.log(LogEntry("cat", b"m%d" % i))
        assert daemon.next_seq == 3
        aggregator.flush()
        identities = []
        for path in sorted(staging.glob_files("/staging")):
            for wire in decode_messages(staging.open_bytes(path)):
                origin, seq, __ = decode_envelope(wire)
                identities.append((origin, seq))
        assert identities == [("host-1", 0), ("host-1", 1), ("host-1", 2)]


class TestFlushOrdering:
    """Satellite 1: flush must stop at the first failure, not reorder."""

    def test_failed_head_blocks_the_line(self):
        daemon, aggregator, staging, __ = _rig()
        aggregator.crash()
        for i in range(3):
            daemon.log(LogEntry("cat", b"m%d" % i))
        assert daemon.buffered == 3
        aggregator.start()
        # The head entry's send is lost on the wire; nothing behind it
        # may be delivered in this flush.
        plan = FaultPlan()
        plan.add("daemon.host-1.send", KIND_ERROR, max_fires=2)
        set_default_injector(FaultInjector(plan))
        assert daemon.flush() == 0
        assert daemon.buffered == 3
        set_default_injector(None)
        assert daemon.flush() == 3
        assert _staged_payloads(aggregator, staging) == [b"m0", b"m1", b"m2"]

    def test_fresh_entry_never_overtakes_backlog(self):
        daemon, aggregator, staging, __ = _rig()
        aggregator.crash()
        daemon.log(LogEntry("cat", b"old-1"))
        daemon.log(LogEntry("cat", b"old-2"))
        aggregator.start()
        # The next log() drains the backlog first, then sends the fresh
        # entry: strict per-host FIFO.
        daemon.log(LogEntry("cat", b"new"))
        assert daemon.buffered == 0
        assert _staged_payloads(aggregator, staging) == [
            b"old-1", b"old-2", b"new"]

    def test_backlog_stuck_means_fresh_entry_queues_behind(self):
        daemon, aggregator, __, __ = _rig()
        aggregator.crash()
        daemon.log(LogEntry("cat", b"old"))
        daemon.log(LogEntry("cat", b"new"))
        assert daemon.buffered == 2
        aggregator.start()
        assert daemon.flush() == 2


class _ExplodingAggregator(ScribeAggregator):
    """Raises an unexpected (non-protocol) error on the Nth receive."""

    def __init__(self, *args, explode_on=2, **kwargs):
        super().__init__(*args, **kwargs)
        self._receives = 0
        self._explode_on = explode_on

    def receive(self, entry):
        self._receives += 1
        if self._receives == self._explode_on:
            raise RuntimeError("transport wedged")
        super().receive(entry)


class TestNoSilentDrops:
    """Satellite 2: a failure mid-flush must never lose buffered entries."""

    def test_unexpected_exception_keeps_backlog(self):
        zk = ZooKeeper()
        clock = LogicalClock()
        aggregator = _ExplodingAggregator("agg-1", "dc1", zk, HDFS(), clock,
                                          explode_on=2)
        aggregator.start()
        daemon = ScribeDaemon("host-1",
                              AggregatorDiscovery(zk, "dc1", seed=0),
                              resolve={"agg-1": aggregator}.get, clock=clock)
        aggregator.alive = False
        for i in range(3):
            daemon.log(LogEntry("cat", b"m%d" % i))
        aggregator.alive = True
        # First send lands, second raises RuntimeError: the old flush had
        # already cleared the buffer and silently dropped m1 and m2.
        with pytest.raises(RuntimeError):
            daemon.flush()
        assert daemon.buffered == 2

    def test_accounting_invariant_holds_under_overload(self):
        daemon, aggregator, __, __ = _rig(max_buffer=2)
        aggregator.crash()
        for i in range(6):
            daemon.log(LogEntry("cat", b"m%d" % i))
        stats = daemon.stats
        # Every accepted entry is accounted for exactly once: delivered,
        # dropped by the bounded buffer, or still buffered.
        assert stats.accepted == stats.sent + stats.dropped + daemon.buffered
        assert stats.dropped == 4


class TestWalCustody:
    """Satellite 3: WAL trim at custody transfer, not at final landing."""

    def test_outage_then_crash_does_not_duplicate(self):
        daemon, aggregator, staging, __ = _rig(durable=True)
        staging.set_available(False)
        for i in range(3):
            daemon.log(LogEntry("cat", b"m%d" % i))
        aggregator.flush()  # rolls into the local-disk outage buffer
        assert aggregator.disk_buffered_files == 1
        # Custody passed WAL -> disk buffer, so a crash-restart replays
        # nothing; pre-fix the WAL kept the records and the restart
        # re-staged every message a second time.
        assert aggregator.wal_depth == 0
        aggregator.crash()
        aggregator.start()
        staging.set_available(True)
        assert _staged_payloads(aggregator, staging) == [b"m0", b"m1", b"m2"]
        assert aggregator.stats.written == 3

    def test_wal_trimmed_as_messages_land(self):
        daemon, aggregator, __, __ = _rig(durable=True)
        for i in range(5):
            daemon.log(LogEntry("cat", b"m%d" % i))
        assert aggregator.wal_depth == 5
        aggregator.flush()
        assert aggregator.wal_depth == 0

    def test_disk_buffer_replay_with_retry_policy(self):
        daemon, aggregator, staging, clock = _rig(durable=True)
        staging.set_available(False)
        daemon.log(LogEntry("cat", b"m0"))
        aggregator.flush()
        assert aggregator.disk_buffered_files == 1
        staging.set_available(True)
        before = clock.now()
        landed = aggregator.retry_disk_buffer(
            RetryPolicy(max_attempts=3, base_delay_ms=10, seed=1))
        assert landed == 1
        assert aggregator.disk_buffered_files == 0
        assert clock.now() == before  # landed on the first pass, no backoff


class TestReplayFidelity:
    """Satellite 4: WAL replay preserves trace ids, counts separately."""

    def test_replay_keeps_trace_id_and_counts_once(self):
        old_tracer = set_default_tracer(Tracer(enabled=True))
        try:
            daemon, aggregator, staging, __ = _rig(durable=True)
            for i in range(3):
                daemon.log(LogEntry("cat", b"m%d" % i))
            assert aggregator.stats.received == 3
            aggregator.crash()
            aggregator.start()
            # Replays are counted as replays; received is an ingest
            # measure and must not double-count (pre-fix it did).
            assert aggregator.stats.received == 3
            assert aggregator.stats.replayed == 3
        finally:
            set_default_tracer(old_tracer)

    def test_replayed_entries_traceable_to_staging_file(self):
        old_tracer = set_default_tracer(Tracer(enabled=True))
        try:
            from repro.obs.trace import get_default_tracer

            daemon, aggregator, staging, __ = _rig(durable=True)
            daemon.log(LogEntry("cat", b"payload"))
            aggregator.crash()
            aggregator.start()
            aggregator.flush()
            tracer = get_default_tracer()
            (path,) = staging.glob_files("/staging")
            # Pre-fix, replay dropped the trace id and the staged file
            # was unattributable.
            assert tracer.ids_for_path(path)
        finally:
            set_default_tracer(old_tracer)

    def test_replay_lands_in_original_hour(self):
        daemon, aggregator, staging, clock = _rig(durable=True)
        daemon.log(LogEntry("cat", b"early"))
        aggregator.crash()
        clock.advance(2 * 3_600_000)  # restart two hours later
        aggregator.start()
        aggregator.flush()
        (path,) = staging.glob_files("/staging")
        # 2012-01-01 hour 00, not hour 02: late replays must not leak
        # into the wrong warehouse hour.
        assert "/2012/01/01/00/" in path


class TestSessionExpiry:
    def test_aggregator_reregisters_after_expiry(self):
        daemon, aggregator, staging, __ = _rig()
        daemon.log(LogEntry("cat", b"before"))
        plan = FaultPlan()
        plan.add("zk.session.*", KIND_EXPIRE_SESSION, max_fires=1)
        set_default_injector(FaultInjector(plan))
        daemon.log(LogEntry("cat", b"during"))
        set_default_injector(None)
        daemon.log(LogEntry("cat", b"after"))
        assert aggregator.stats.session_expiries == 1
        assert _staged_payloads(aggregator, staging) == [
            b"before", b"during", b"after"]


class TestAckLostDuplicates:
    def test_lost_ack_delivers_then_resends(self):
        daemon, aggregator, staging, __ = _rig()
        plan = FaultPlan()
        plan.add("daemon.host-1.send", KIND_ACK_LOST, max_fires=1)
        set_default_injector(FaultInjector(plan))
        daemon.log(LogEntry("cat", b"dup"))
        set_default_injector(None)
        assert daemon.buffered == 1  # we never learned it landed
        daemon.flush()
        # The aggregator holds both copies -- same (origin, seq) -- and
        # the mover's dedup is what collapses them downstream.
        payloads = _staged_payloads(aggregator, staging)
        assert payloads == [b"dup", b"dup"]
        identities = set()
        for path in staging.glob_files("/staging"):
            for wire in decode_messages(staging.open_bytes(path)):
                origin, seq, __ = decode_envelope(wire)
                identities.add((origin, seq))
        assert identities == {("host-1", 0)}
