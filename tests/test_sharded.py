"""Sharded warehouse tests: routing, path compatibility, parallel moves.

The router must keep the warehouse layout byte-identical to a single
namenode (path compatibility is the whole point), enforce the
co-sharding invariant on renames, and let per-shard movers run in
parallel with results identical to the serial order.
"""

import pytest

from repro.hdfs.layout import LOGS_ROOT, LogHour, staging_path
from repro.hdfs.namenode import (
    HDFS,
    FileNotFound,
    HDFSError,
    HDFSUnavailableError,
)
from repro.hdfs.sharded import CrossShardRenameError, ShardedHDFS, shard_key
from repro.logmover.mover import LogMover
from repro.logmover.sharded import SHARD_BACKENDS, ShardedLogMover
from repro.obs import names as obs_names
from repro.obs.metrics import (
    MetricsRegistry,
    get_default_registry,
    set_default_registry,
)
from repro.scribe.aggregator import encode_messages


@pytest.fixture(autouse=True)
def fresh_registry():
    old = get_default_registry()
    registry = MetricsRegistry()
    set_default_registry(registry)
    yield registry
    set_default_registry(old)


def _distinct_shard_categories(router, count):
    """``count`` category names that hash to pairwise-distinct shards."""
    chosen = {}
    index = 0
    while len(chosen) < count:
        category = f"cat_{index:03d}"
        shard = router.shard_index(category)
        if shard not in chosen:
            chosen[shard] = category
        index += 1
    return list(chosen.values())


def _stage_hours(staging, categories, messages_per=3):
    hours = []
    for n, category in enumerate(categories):
        hour = LogHour(category, 2012, 3, 7, 10)
        messages = [b"%s-%03d" % (category.encode(), i)
                    for i in range(messages_per + n)]
        staging.create(f"{staging_path('dc1', hour)}/part-000",
                       encode_messages(messages), codec="zlib")
        hours.append(hour)
    return hours


def _warehouse_listing(fs):
    """Sorted (path, payload bytes, codec) for everything under /logs."""
    return [(path, fs.open_bytes(path), fs.codec_of(path))
            for path in sorted(fs.glob_files(LOGS_ROOT))]


class TestRouting:
    def test_shard_key_is_second_component(self):
        assert shard_key("/logs/web_events/2012/03/07/10/f") == "web_events"
        assert shard_key("/_incoming/web_events/x") == "web_events"
        assert shard_key("/logs") is None
        assert shard_key("/") is None

    def test_num_shards_validation(self):
        with pytest.raises(ValueError):
            ShardedHDFS(0)

    def test_same_category_always_same_shard(self):
        router = ShardedHDFS(4)
        shard = router.shard_index("web_events")
        for root in ("/logs", "/_incoming", "/_sequences"):
            assert router.shard_for(f"{root}/web_events/x") \
                is router.shards[shard]

    def test_shards_carry_fault_site_names(self):
        router = ShardedHDFS(3, name="warehouse")
        assert [s.name for s in router.shards] == [
            "warehouse-shard-0", "warehouse-shard-1", "warehouse-shard-2"]

    def test_spanning_reads_union_and_mutations_broadcast(self):
        router = ShardedHDFS(4)
        cat_a, cat_b = _distinct_shard_categories(router, 2)
        router.mkdirs("/logs")
        assert all(s.is_dir("/logs") for s in router.shards)
        router.create(f"/logs/{cat_a}/f", b"a")
        router.create(f"/logs/{cat_b}/f", b"b")
        assert router.listdir("/logs") == sorted([cat_a, cat_b])
        assert router.exists(f"/logs/{cat_a}/f")
        assert router.open_bytes(f"/logs/{cat_b}/f") == b"b"
        assert sorted(router.glob_files("/logs")) == sorted(
            [f"/logs/{cat_a}/f", f"/logs/{cat_b}/f"])
        router.delete("/logs", recursive=True)
        assert not router.exists(f"/logs/{cat_a}/f")
        with pytest.raises(FileNotFound):
            router.listdir("/logs")

    def test_single_shard_outage_is_partial(self):
        router = ShardedHDFS(4)
        cat_a, cat_b = _distinct_shard_categories(router, 2)
        down = router.shard_index(cat_a)
        router.shards[down].set_available(False)
        assert not router.available
        with pytest.raises(HDFSUnavailableError):
            router.create(f"/logs/{cat_a}/f", b"a")
        router.create(f"/logs/{cat_b}/f", b"b")  # other shards unaffected
        router.shards[down].set_available(True)
        assert router.available


class TestCoShardingInvariant:
    def test_rename_within_shard_works(self):
        router = ShardedHDFS(4)
        router.create("/_incoming/web_events/h", b"x")
        router.rename("/_incoming/web_events/h", "/logs/web_events/h")
        assert router.open_bytes("/logs/web_events/h") == b"x"

    def test_cross_shard_rename_refused(self):
        router = ShardedHDFS(4)
        cat_a, cat_b = _distinct_shard_categories(router, 2)
        router.create(f"/logs/{cat_a}/f", b"x")
        with pytest.raises(CrossShardRenameError):
            router.rename(f"/logs/{cat_a}/f", f"/logs/{cat_b}/f")
        # Refused atomically: nothing moved, nothing copied.
        assert router.open_bytes(f"/logs/{cat_a}/f") == b"x"
        assert not router.exists(f"/logs/{cat_b}/f")

    def test_spanning_rename_refused(self):
        router = ShardedHDFS(4)
        with pytest.raises(HDFSError):
            router.rename("/", "/logs")


class TestPathCompatibility:
    def test_sharded_warehouse_is_byte_identical_to_unsharded(self):
        """The capstone invariant: same staged inputs produce the same
        files at the same paths with the same bytes, sharded or not."""
        staging = HDFS(name="staging-dc1")
        plain = HDFS(name="warehouse")
        router = ShardedHDFS(4, name="warehouse")
        categories = _distinct_shard_categories(router, 3)
        hours = _stage_hours(staging, categories)

        single_mover = LogMover({"dc1": staging}, plain)
        sharded_mover = ShardedLogMover({"dc1": staging}, router,
                                        backend="serial")
        for hour in hours:
            single_mover.move_hour(hour, delete_staged=False)
            sharded_mover.move_hour(hour, delete_staged=False)

        assert _warehouse_listing(plain) == _warehouse_listing(router)

    def test_landed_identities_union_across_shards(self):
        staging = HDFS(name="staging-dc1")
        router = ShardedHDFS(4)
        categories = _distinct_shard_categories(router, 2)
        hours = _stage_hours(staging, categories)
        mover = ShardedLogMover({"dc1": staging}, router)
        mover.move_hours(hours)
        assert mover.landed_identities() == frozenset()  # unstamped
        assert len(mover.moves) == 2


class TestParallelMoves:
    def test_threads_equals_serial(self):
        staging = HDFS(name="staging-dc1")
        categories = _distinct_shard_categories(ShardedHDFS(4), 4)
        hours = _stage_hours(staging, categories)
        results = {}
        listings = {}
        for backend in SHARD_BACKENDS:
            router = ShardedHDFS(4, name="warehouse")
            mover = ShardedLogMover({"dc1": staging}, router,
                                    backend=backend)
            moved = mover.move_hours(hours, delete_staged=False)
            results[backend] = [(r.hour, r.messages_moved,
                                 r.output_files) for r in moved]
            listings[backend] = _warehouse_listing(router)
        assert results["threads"] == results["serial"]
        assert listings["threads"] == listings["serial"]

    def test_processes_backend_falls_back_to_threads(self):
        router = ShardedHDFS(2)
        with pytest.warns(RuntimeWarning):
            mover = ShardedLogMover({"dc1": HDFS()}, router,
                                    backend="processes")
        assert "threads" in repr(mover)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ShardedLogMover({"dc1": HDFS()}, ShardedHDFS(2),
                            backend="fibers")

    def test_group_failure_does_not_swallow_other_shards(self):
        staging = HDFS(name="staging-dc1")
        router = ShardedHDFS(4)
        cat_ok, cat_down = _distinct_shard_categories(router, 2)
        hours = _stage_hours(staging, [cat_ok, cat_down])
        router.shards[router.shard_index(cat_down)].set_available(False)
        mover = ShardedLogMover({"dc1": staging}, router,
                                backend="threads")
        with pytest.raises(HDFSUnavailableError):
            mover.move_hours(hours, delete_staged=False)
        # The healthy shard's hour still landed before the error surfaced.
        assert router.glob_files(f"/logs/{cat_ok}")

    def test_per_shard_metrics_recorded(self, fresh_registry):
        staging = HDFS(name="staging-dc1")
        router = ShardedHDFS(4, name="warehouse")
        categories = _distinct_shard_categories(router, 3)
        mover = ShardedLogMover({"dc1": staging}, router,
                                backend="threads")
        mover.move_hours(_stage_hours(staging, categories))
        assert fresh_registry.total(obs_names.SHARD_HOURS_MOVED) == 3
        shards = {labels["shard"] for labels, _ in
                  fresh_registry.series(obs_names.SHARD_HOURS_MOVED)}
        assert shards == {f"warehouse-shard-{router.shard_index(c)}"
                          for c in categories}
        assert fresh_registry.total(obs_names.SHARD_MESSAGES_MOVED) \
            == 3 + 4 + 5
