"""Parallel execution backends: parity, stability, fallback, metrics.

The engine's contract is that ``serial``, ``threads``, and ``processes``
produce byte-identical results: same output, same counter totals, same
tracker accounting. These tests pin that contract, plus the
hash-seed-independent partitioner and the closure->threads fallback.
"""

import os
import subprocess
import sys
import warnings

import pytest

from repro.mapreduce.backends import default_worker_count
from repro.mapreduce.engine import BACKEND_NAMES, prepare_backend, run_job
from repro.mapreduce.inputformats import InMemoryInputFormat
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.jobtracker import JobTracker
from repro.mapreduce.partition import serialize_key, stable_partition
from repro.obs import names as obs_names
from repro.obs.metrics import MetricsRegistry, set_default_registry

WORDS = ("the quick brown fox jumps over the lazy dog "
         "pack my box with five dozen liquor jugs").split()
RECORDS = [" ".join(WORDS[i % len(WORDS)] for i in range(j, j + 7))
           for j in range(120)]


def wc_mapper(record, ctx):
    """Emit (word, 1) per word; module-level so it pickles."""
    for word in record.split():
        ctx.emit(word, 1)


def sum_reducer(key, values, ctx):
    """Sum the values of one key; module-level so it pickles."""
    ctx.emit(key, sum(values))


def upper_mapper(record, ctx):
    """Map-only transform; module-level so it pickles."""
    ctx.emit(None, record.upper())


def _wc_job(**kwargs):
    return MapReduceJob(name="wc",
                        input_format=InMemoryInputFormat(RECORDS, 10),
                        mapper=wc_mapper, reducer=sum_reducer, **kwargs)


def _run(job, backend):
    tracker = JobTracker()
    result = run_job(job, tracker, backend=backend, max_workers=4)
    return result, tracker


class TestBackendParity:
    def test_output_and_counters_identical(self):
        baseline, base_tracker = _run(_wc_job(), "serial")
        for backend in ("threads", "processes"):
            result, tracker = _run(_wc_job(), backend)
            assert result.output == baseline.output  # exact order too
            assert result.counters.as_dict() == baseline.counters.as_dict()
            assert (tracker.runs[0].simulated_ms
                    == base_tracker.runs[0].simulated_ms)
            assert tracker.runs[0].backend == backend

    def test_combiner_parity(self):
        baseline, __ = _run(_wc_job(combiner=sum_reducer), "serial")
        for backend in ("threads", "processes"):
            result, __ = _run(_wc_job(combiner=sum_reducer), backend)
            assert result.output == baseline.output
            assert result.counters.as_dict() == baseline.counters.as_dict()

    def test_map_only_parity(self):
        def job():
            return MapReduceJob(name="upper",
                                input_format=InMemoryInputFormat(RECORDS, 9),
                                mapper=upper_mapper, reducer=None)

        baseline, __ = _run(job(), "serial")
        assert [v for __, v in baseline.output] == [r.upper()
                                                    for r in RECORDS]
        for backend in ("threads", "processes"):
            result, __ = _run(job(), backend)
            assert result.output == baseline.output

    def test_tracker_default_backend_applies(self):
        tracker = JobTracker(backend="threads", max_workers=3)
        run_job(_wc_job(), tracker)
        assert tracker.runs[0].backend == "threads"
        assert tracker.runs[0].workers == 3

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_job(_wc_job(), backend="gpu")
        assert "gpu" not in BACKEND_NAMES

    def test_default_worker_count_bounded(self):
        assert 1 <= default_worker_count() <= 8


class TestSmallPhaseInline:
    """Phases at or under the inline threshold skip pool dispatch but
    keep the backend's name and exact accounting."""

    @staticmethod
    def _small_job():
        # 3 splits: under INLINE_PHASE_TASKS, so the map phase (and the
        # 4-partition reduce phase) run inline on pooled backends.
        return MapReduceJob(name="wc_small",
                            input_format=InMemoryInputFormat(RECORDS, 40),
                            mapper=wc_mapper, reducer=sum_reducer)

    def test_inline_matches_serial_and_keeps_name(self):
        baseline, __ = _run(self._small_job(), "serial")
        for backend in ("threads", "processes"):
            result, tracker = _run(self._small_job(), backend)
            assert result.output == baseline.output
            assert result.counters.as_dict() == baseline.counters.as_dict()
            assert tracker.runs[0].backend == backend


class TestProcessFallback:
    def test_closure_job_falls_back_to_threads(self):
        captured = {}

        def mapper(record, ctx):  # a closure: not picklable
            captured["seen"] = True
            wc_mapper(record, ctx)

        job = MapReduceJob(name="closure_wc",
                           input_format=InMemoryInputFormat(RECORDS, 10),
                           mapper=mapper, reducer=sum_reducer)
        tracker = JobTracker()
        with pytest.warns(RuntimeWarning, match="falling back to 'threads'"):
            result = run_job(job, tracker, backend="processes")
        baseline, __ = _run(_wc_job(), "serial")
        assert result.output == baseline.output
        assert tracker.runs[0].backend == "threads"

    def test_picklable_job_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with prepare_backend(_wc_job(), "processes", 2) as backend:
                assert backend.name == "processes"


class TestStablePartitioning:
    def test_serialize_key_disambiguates(self):
        # Distinct (non-equal) values must serialize apart.
        keys = [1, "1", b"1", (1,), [1], None, 1.5, ("a", "b"),
                ("a", ("b",)), ("ab",), frozenset({1, 2})]
        blobs = [serialize_key(k) for k in keys]
        assert len(set(blobs)) == len(blobs)

    def test_equal_keys_co_hash(self):
        # Python's hash invariant: a == b implies same partition.
        assert serialize_key(1) == serialize_key(1.0) == serialize_key(True)
        assert serialize_key({1, 2}) == serialize_key(frozenset({2, 1}))

    def test_set_order_independent(self):
        assert (serialize_key(frozenset({"a", "b", "c"}))
                == serialize_key(frozenset({"c", "a", "b"})))

    def test_partition_range_and_errors(self):
        for key in ("x", 17, ("u", 3), None):
            assert 0 <= stable_partition(key, 4) < 4
        with pytest.raises(ValueError):
            stable_partition("x", 0)

    def test_stable_across_interpreter_restarts(self):
        """The regression test for the latent hash() bug: partition
        assignment must not depend on PYTHONHASHSEED."""
        script = (
            "from repro.mapreduce.partition import stable_hash, "
            "stable_partition\n"
            "keys = ['web:home:impression', ('user', 42), 17, None, True,"
            " b'raw', 3.25, ('nested', ('tuple', 'key'))]\n"
            "print([(stable_hash(k), stable_partition(k, 8))"
            " for k in keys])\n"
        )
        outputs = set()
        for seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH="src")
            proc = subprocess.run([sys.executable, "-c", script],
                                  capture_output=True, text=True, env=env,
                                  check=True)
            outputs.add(proc.stdout)
        assert len(outputs) == 1

    def test_engine_output_stable_across_hash_seeds(self):
        """End to end: the full word-count output (including order) is
        identical under different hash seeds and backends."""
        script = (
            "from tests.test_mapreduce_backends import _wc_job, _run\n"
            "for backend in ('serial', 'threads'):\n"
            "    result, __ = _run(_wc_job(), backend)\n"
            "    print(result.output)\n"
        )
        outputs = set()
        for seed in ("1", "77"):
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH="src" + os.pathsep + ".")
            proc = subprocess.run([sys.executable, "-c", script],
                                  capture_output=True, text=True, env=env,
                                  check=True, cwd=os.path.dirname(
                                      os.path.dirname(__file__)))
            outputs.add(proc.stdout)
        assert len(outputs) == 1


class TestTaskMetrics:
    def test_per_task_histograms_and_worker_gauge(self):
        registry = MetricsRegistry()
        old = set_default_registry(registry)
        try:
            result, __ = _run(_wc_job(), "threads")
        finally:
            set_default_registry(old)
        splits = result.counters.get("task", "map_tasks")
        reducers = result.counters.get("task", "reduce_tasks")
        assert splits > 1 and reducers > 1
        map_hist = registry.histogram(obs_names.MAPREDUCE_TASK_WALL_TIME,
                                      job="wc", phase="map")
        reduce_hist = registry.histogram(obs_names.MAPREDUCE_TASK_WALL_TIME,
                                         job="wc", phase="reduce")
        assert map_hist.count == splits
        assert reduce_hist.count == reducers
        wait_hist = registry.histogram(obs_names.MAPREDUCE_TASK_QUEUE_WAIT,
                                       job="wc", phase="map")
        assert wait_hist.count == splits
        assert all(v >= 0.0 for v in wait_hist.values())
        gauge = registry.gauge(obs_names.MAPREDUCE_WORKERS, job="wc",
                               backend="threads")
        assert gauge.value == 4
