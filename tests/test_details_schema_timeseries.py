"""Tests for details-schema inference (§4.3's open item) and metric
time series."""

import pytest

from repro.analytics.timeseries import (
    event_count_series,
    rate_series,
    sessions_with_event_series,
)
from repro.core.anonymize import Anonymizer
from repro.core.builder import SessionSequenceBuilder
from repro.core.details_schema import (
    DetailsSchemaInferencer,
    classify_value,
)
from repro.core.event import ClientEvent
from repro.workload.simulate import WarehouseSimulation

NAME = "web:search::results:result:click"


def _event(details, name=NAME, user_id=1):
    return ClientEvent.make(name, user_id=user_id, session_id="s",
                            ip="1.1.1.1", timestamp=0, details=details)


class TestClassifyValue:
    @pytest.mark.parametrize("value,expected", [
        ("42", "int"), ("-7", "int"), ("3.14", "float"),
        ("https://twitter.com/x", "url"), ("en_US", "token"),
        ("hello world!", "text"),
    ])
    def test_classification(self, value, expected):
        assert classify_value(value) == expected


class TestInference:
    def test_obligatory_vs_optional(self):
        inferencer = DetailsSchemaInferencer()
        inferencer.observe(_event({"rank": "1", "lang": "en"}))
        inferencer.observe(_event({"rank": "2"}))
        schema = inferencer.schema_for(NAME)
        assert schema.obligatory_keys() == ["rank"]
        assert schema.optional_keys() == ["lang"]

    def test_value_ranges(self):
        inferencer = DetailsSchemaInferencer()
        for rank in ("3", "17", "5"):
            inferencer.observe(_event({"rank": rank}))
        schema = inferencer.schema_for(NAME)
        assert schema.keys["rank"].value_range() == (3.0, 17.0)
        assert schema.keys["rank"].dominant_type == "int"

    def test_categorical_detection(self):
        inferencer = DetailsSchemaInferencer()
        for i in range(40):
            inferencer.observe(_event({"lang": "en" if i % 2 else "ja"}))
        schema = inferencer.schema_for(NAME)
        assert schema.keys["lang"].looks_categorical

    def test_high_cardinality_not_categorical(self):
        inferencer = DetailsSchemaInferencer()
        for i in range(40):
            inferencer.observe(_event({"target_id": str(i * 997)}))
        assert not inferencer.schema_for(NAME).keys[
            "target_id"].looks_categorical

    def test_per_event_type_schemas(self):
        inferencer = DetailsSchemaInferencer()
        other = "web:home:timeline:stream:tweet:impression"
        inferencer.observe(_event({"rank": "1"}))
        inferencer.observe(_event({"position": "4"}, name=other))
        assert len(inferencer) == 2
        assert "rank" in inferencer.schema_for(NAME).keys
        assert "rank" not in inferencer.schema_for(other).keys

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError):
            DetailsSchemaInferencer().schema_for("web:x::::y")

    def test_describe_lines(self):
        inferencer = DetailsSchemaInferencer()
        inferencer.observe(_event({"rank": "3",
                                   "target_url": "https://t.co/x"}))
        lines = inferencer.schema_for(NAME).describe()
        joined = "\n".join(lines)
        assert "rank: int" in joined
        assert "obligatory" in joined
        assert "target_url: url" in joined

    def test_on_generated_workload(self, workload):
        """The generator's details vocabulary is recovered: query events
        have raw_query/result_count, click events have rank/target_url."""
        inferencer = DetailsSchemaInferencer().observe_all(workload.events)
        query_types = [n for n in inferencer.event_names()
                       if n.endswith(":query")]
        assert query_types
        schema = inferencer.schema_for(query_types[0])
        assert "raw_query" in schema.obligatory_keys()
        assert "result_count" in schema.obligatory_keys()
        assert schema.keys["result_count"].dominant_type == "int"


class TestAnonymizedBuild:
    def test_builder_applies_policy(self, workload, date):
        from repro.hdfs.namenode import HDFS
        from repro.workload.generator import load_warehouse_day

        fs = HDFS()
        load_warehouse_day(fs, workload)
        anonymizer = Anonymizer(b"secret-salt")
        builder = SessionSequenceBuilder(fs, anonymizer=anonymizer)
        result = builder.run(*date)
        records = list(builder.iter_sequences(*date))
        raw_user_ids = {e.user_id for e in workload.events}
        assert records
        for record in records[:100]:
            assert record.user_id not in raw_user_ids
            assert record.ip.endswith(".0")
        # pseudonyms are join-preserving: session counts unchanged
        plain_builder = SessionSequenceBuilder(HDFS())
        assert result.sessions_built == len(records)


class TestTimeSeries:
    @pytest.fixture(scope="class")
    def simulation(self):
        sim = WarehouseSimulation(num_users=80, seed=6,
                                  start=(2012, 5, 1),
                                  users_growth_per_day=60)
        sim.run_days(3)
        return sim

    def test_event_count_series_grows(self, simulation):
        series = event_count_series(simulation, "*:impression")
        assert len(series.points) == 3
        assert series.change() > 0
        assert all(v > 0 for v in series.values())

    def test_sessions_with_event_bounded(self, simulation):
        series = sessions_with_event_series(simulation, "*:query")
        for date, value in series.points:
            assert value <= simulation.days[date].summary.sessions

    def test_rate_series_stable_band(self, simulation):
        series = rate_series(simulation, "*:user_card:impression",
                             "*:user_card:click", name="wtf_ctr")
        # the behaviour model is fixed, so CTR stays in a narrow band
        values = series.values()
        assert all(0.0 <= v <= 0.5 for v in values)
        assert series.mean() > 0.01

    def test_custom_series(self, simulation):
        from repro.analytics.timeseries import custom_series

        series = custom_series(
            simulation, "mean_session_len",
            lambda records, d: sum(r.num_events for r in records)
            / len(records))
        assert all(v > 1 for v in series.values())

    def test_change_undefined_for_single_day(self):
        sim = WarehouseSimulation(num_users=30, seed=1)
        sim.run_days(1)
        series = event_count_series(sim, "*:impression")
        assert series.change() is None
