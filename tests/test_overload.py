"""Overload-survival tests: known-down cool-down, drop attribution.

The retry-amplification regression suite: a daemon whose aggregator is
known down must take O(1) wire attempts per ``log`` (zero during the
cool-down window), recover cleanly when the aggregator returns, and
attribute buffer evictions to the evicted entry's *accept* hour so the
per-hour ledger stays conservative across hour boundaries.
"""

import pytest

from repro.clock import MILLIS_PER_HOUR, LogicalClock
from repro.faults.retry import RetryPolicy
from repro.hdfs.namenode import HDFS
from repro.obs.metrics import (
    MetricsRegistry,
    get_default_registry,
    set_default_registry,
)
from repro.scribe.aggregator import ScribeAggregator
from repro.scribe.cluster import ScribeDeployment
from repro.scribe.daemon import ScribeDaemon
from repro.scribe.discovery import AggregatorDiscovery
from repro.scribe.message import CategoryRegistry, LogEntry
from repro.scribe.zookeeper import ZooKeeper


@pytest.fixture(autouse=True)
def fresh_registry():
    old = get_default_registry()
    registry = MetricsRegistry()
    set_default_registry(registry)
    yield registry
    set_default_registry(old)


def _rig(policy=None, with_aggregator=True, clock=None):
    """One daemon + (optionally crashed-out) aggregator on a shared zk."""
    zk = ZooKeeper()
    clock = clock or LogicalClock()
    staging = HDFS(name="staging-dc1")
    aggregators = {}
    if with_aggregator:
        aggregator = ScribeAggregator(
            name="dc1-agg-000", datacenter="dc1", zk=zk, staging=staging,
            clock=clock, categories=CategoryRegistry())
        aggregator.start()
        aggregators[aggregator.name] = aggregator
    discovery = AggregatorDiscovery(zk, "dc1", seed=3)
    daemon = ScribeDaemon("dc1-host-0000", discovery, aggregators.get,
                          clock=clock, retry_policy=policy)
    return zk, clock, daemon, aggregators


class TestKnownDownCooldown:
    def test_o1_attempts_while_down(self):
        """The amplification fix: a down aggregator costs ONE retry
        budget, after which log() buffers without any wire attempts."""
        policy = RetryPolicy(max_attempts=3, base_delay_ms=20,
                             max_delay_ms=200)
        zk, clock, daemon, aggs = _rig(policy=policy)
        aggs["dc1-agg-000"].crash()

        daemon.log(LogEntry("web_events", b"first"))
        budget = daemon.stats.send_attempts
        assert budget == policy.max_attempts
        assert daemon.cooling_down

        for i in range(100):
            daemon.log(LogEntry("web_events", b"more-%d" % i))
        # O(1): the 100 follow-up logs made ZERO additional attempts.
        assert daemon.stats.send_attempts == budget
        assert daemon.buffered == 101
        assert daemon.stats.accepted == 101

    def test_cooldown_expiry_costs_one_more_budget(self):
        policy = RetryPolicy(max_attempts=3, base_delay_ms=20,
                             max_delay_ms=200)
        zk, clock, daemon, aggs = _rig(policy=policy)
        aggs["dc1-agg-000"].crash()
        daemon.log(LogEntry("web_events", b"a"))
        budget = daemon.stats.send_attempts
        clock.advance(MILLIS_PER_HOUR)  # way past any cool-down deadline
        assert not daemon.cooling_down
        daemon.log(LogEntry("web_events", b"b"))
        # One more full budget (the flush probe), then cooling again.
        assert daemon.stats.send_attempts == 2 * budget
        assert daemon.cooling_down

    def test_recovery_preserves_order_and_delivers_everything(self):
        policy = RetryPolicy(max_attempts=3, base_delay_ms=20,
                             max_delay_ms=200)
        zk, clock, daemon, aggs = _rig(policy=policy)
        aggregator = aggs["dc1-agg-000"]
        aggregator.crash()
        for i in range(10):
            daemon.log(LogEntry("web_events", b"payload-%02d" % i))
        assert daemon.cooling_down and daemon.buffered == 10

        seen = []
        original = aggregator.receive

        def recording_receive(entry):
            seen.append(entry.seq)
            return original(entry)

        aggregator.receive = recording_receive
        # Restart re-registers the ephemeral znode; the discovery
        # generation bump ends the cool-down without waiting out the
        # deadline, so the next log replays the backlog immediately.
        aggregator.start()
        daemon.log(LogEntry("web_events", b"payload-10"))
        assert not daemon.cooling_down
        assert daemon.buffered == 0
        assert seen == list(range(11))  # strict accept order
        assert aggregator.stats.received == 11

    def test_generation_bump_clears_cooldown_without_deadline(self):
        policy = RetryPolicy(max_attempts=2, base_delay_ms=20,
                             max_delay_ms=200)
        zk, clock, daemon, aggs = _rig(policy=policy)
        aggs["dc1-agg-000"].crash()
        daemon.log(LogEntry("web_events", b"x"))
        assert daemon.cooling_down
        # A brand-new aggregator registering is new information: the
        # cool-down ends even though its deadline is still ahead.
        late = ScribeAggregator(
            name="dc1-agg-001", datacenter="dc1", zk=zk,
            staging=HDFS(name="staging-late"), clock=clock)
        late.start()
        aggs[late.name] = late
        assert not daemon.cooling_down
        daemon.log(LogEntry("web_events", b"y"))
        assert daemon.buffered == 0
        assert late.stats.received == 2

    def test_clockless_daemon_never_cools_down(self):
        zk, clock, daemon_unused, aggs = _rig(with_aggregator=False)
        discovery = AggregatorDiscovery(zk, "dc1", seed=5)
        daemon = ScribeDaemon("dc1-host-0001", discovery, aggs.get)
        for i in range(5):
            daemon.log(LogEntry("web_events", b"z"))
            assert not daemon.cooling_down
        # Classic behavior preserved: one probe per log, every log.
        assert daemon.stats.send_attempts == 5
        assert daemon.buffered == 5


class TestAcceptHourDropAttribution:
    def test_eviction_books_against_accept_hour(self):
        """An entry accepted in hour H and evicted in hour H+1 must book
        its drop under H, keeping both hours' ledgers conservative."""
        zk = ZooKeeper()
        clock = LogicalClock()
        discovery = AggregatorDiscovery(zk, "dc1", seed=1)
        daemon = ScribeDaemon("dc1-host-0000", discovery,
                              lambda name: None, max_buffer=2, clock=clock)
        daemon.log(LogEntry("web_events", b"old-0"))
        daemon.log(LogEntry("web_events", b"old-1"))
        clock.advance(MILLIS_PER_HOUR)
        daemon.log(LogEntry("web_events", b"new-0"))
        daemon.log(LogEntry("web_events", b"new-1"))

        ledger = daemon.hour_ledger()
        hour0 = ledger[("web_events", 0)]
        hour1 = ledger[("web_events", 1)]
        assert hour0.accepted == 2 and hour0.dropped == 2
        assert hour1.accepted == 2 and hour1.dropped == 0
        # Ledger conservation across the boundary: accepted splits
        # exactly into still-expected and dropped, per hour.
        assert hour0.expected_ids() == set()
        assert len(hour1.expected_ids()) == 2
        assert daemon.dropped_identities() == {("dc1-host-0000", 0),
                                               ("dc1-host-0000", 1)}
        total_accepted = sum(c.accepted for c in ledger.values())
        total_dropped = sum(c.dropped for c in ledger.values())
        assert total_accepted == daemon.stats.accepted == 4
        assert total_dropped == daemon.stats.dropped == 2
        assert total_accepted == daemon.buffered + total_dropped


class TestLogFromRange:
    def test_out_of_range_raises(self):
        deployment = ScribeDeployment(["dc1"], num_hosts=2,
                                      num_aggregators=1)
        dc = deployment.datacenters["dc1"]
        with pytest.raises(IndexError):
            dc.log_from(2, LogEntry("web_events", b"x"))
        with pytest.raises(IndexError):
            dc.log_from(-3, LogEntry("web_events", b"x"))

    def test_wrap_spreads_key_space(self):
        deployment = ScribeDeployment(["dc1"], num_hosts=2,
                                      num_aggregators=1)
        dc = deployment.datacenters["dc1"]
        for key in range(5):
            dc.log_from(key, LogEntry("web_events", b"x"), wrap=True)
        assert dc.daemons[0].stats.accepted == 3  # keys 0, 2, 4
        assert dc.daemons[1].stats.accepted == 2  # keys 1, 3
