"""Chaos soak tests: conservation holds under the standard storm."""

import pytest

from repro.faults.chaos import (
    ChaosReport,
    default_chaos_plan,
    run_chaos,
    streaming_chaos_plan,
)
from repro.faults.injector import get_default_injector
from repro.obs.metrics import MetricsRegistry, set_default_registry


@pytest.fixture(autouse=True)
def _fresh_registry():
    old = set_default_registry(MetricsRegistry())
    yield
    set_default_registry(old)


class TestChaosPlan:
    def test_plan_has_the_acceptance_faults(self):
        plan = default_chaos_plan(seed=0, hours=2)
        sites = [rule.site for rule in plan.rules]
        assert any(s.startswith("hdfs.") for s in sites)
        assert any(s.startswith("aggregator.") for s in sites)
        assert any("pre_rename" in s for s in sites)
        assert any("pre_cleanup" in s for s in sites)

    def test_noise_windows_end_before_hour_boundaries(self):
        plan = default_chaos_plan(seed=0, hours=3)
        for rule in plan.rules:
            if rule.probability < 1.0:
                assert rule.end_ms is not None
                assert rule.end_ms % 3_600_000 < 55 * 60_000


class TestRunChaos:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_soak_passes(self, seed):
        report = run_chaos(seed, hours=2)
        assert report.ok, report.summary()
        assert report.accepted > 0
        assert report.accepted == (report.landed + report.dropped +
                                   report.quarantined)
        # The storm actually happened: faults fired, retries happened,
        # and real duplicates were absorbed.
        assert report.faults_injected > 0
        assert report.duplicates_skipped > 0
        assert report.mover_restarts >= 2  # both mover crash sites

    def test_identical_seeds_identical_storms(self):
        a = run_chaos(5, hours=1)
        set_default_registry(MetricsRegistry())
        b = run_chaos(5, hours=1)
        assert (a.accepted, a.landed, a.faults_injected) == \
            (b.accepted, b.landed, b.faults_injected)

    def test_injector_uninstalled_afterwards(self):
        run_chaos(1, hours=1)
        assert get_default_injector() is None

    def test_rejects_zero_hours(self):
        with pytest.raises(ValueError):
            run_chaos(0, hours=0)

    def test_report_summary_mentions_outcome(self):
        report = ChaosReport(seed=9, hours=1)
        assert "PASS" in report.summary()
        report.violations.append("something broke")
        assert "FAIL" in report.summary()
        assert "something broke" in report.summary()


class TestStreamingChaos:
    def test_streaming_plan_arms_micro_batch_crash_sites(self):
        plan = streaming_chaos_plan(seed=0, hours=2)
        sites = [rule.site for rule in plan.rules]
        assert any("batch.pre_rename" in s for s in sites)
        assert any("batch.pre_cleanup" in s for s in sites)
        assert any("seal.pre_rename" in s for s in sites)
        assert any(s.startswith("hdfs.") for s in sites)
        assert any(s.startswith("aggregator.") for s in sites)

    def test_streaming_soak_passes_with_late_reopen(self):
        report = run_chaos(1, hours=2, streaming=True)
        assert report.ok, report.summary()
        assert report.streaming
        assert report.accepted == (report.landed + report.dropped +
                                   report.quarantined)
        # Micro-batches actually happened: far more landings than hours.
        assert report.batches_landed > 2 * report.hours
        assert report.hours_sealed >= report.hours
        # The held-datacenter WAL replay re-opened a sealed hour, the
        # completeness alert saw it, and everything still conserved.
        assert report.late_reopens >= 1
        assert report.mover_restarts >= 2
        assert report.alerts_fired > 0
        assert report.alerts_unresolved == 0

    def test_streaming_fault_free_run_is_quiet(self):
        report = run_chaos(3, hours=2, streaming=True, faults=False)
        assert report.ok, report.summary()
        assert report.late_reopens == 0
        assert report.alerts_fired == 0
        assert report.hours_sealed >= report.hours

    def test_streaming_summary_mentions_mode(self):
        report = run_chaos(1, hours=1, streaming=True)
        assert "(streaming)" in report.summary()
        assert "batches_landed" in report.summary()
