"""QoS tests: tiers, deterministic sampling, backpressure round-trip.

Admission-control correctness: the keep/shed decision must be identical
across processes and hash seeds, backpressure must propagate from an
aggregator's ack to the daemon's admission gate (and clear again), and
a full buffer must evict lower tiers before higher ones.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.clock import LogicalClock
from repro.hdfs.namenode import HDFS
from repro.obs import names as obs_names
from repro.obs.metrics import (
    MetricsRegistry,
    get_default_registry,
    set_default_registry,
)
from repro.scribe.aggregator import ScribeAggregator
from repro.scribe.daemon import ScribeDaemon
from repro.scribe.discovery import AggregatorDiscovery
from repro.scribe.message import CategoryConfig, CategoryRegistry, LogEntry
from repro.scribe.qos import (
    OVERLOAD_SAMPLE_RATES,
    QOS_BULK,
    QOS_CRITICAL,
    QOS_STANDARD,
    QOS_TIERS,
    admit,
    drop_rank,
    sample_rate,
    validate_tier,
)
from repro.scribe.zookeeper import ZooKeeper


@pytest.fixture(autouse=True)
def fresh_registry():
    old = get_default_registry()
    registry = MetricsRegistry()
    set_default_registry(registry)
    yield registry
    set_default_registry(old)


class TestTiers:
    def test_drop_rank_ordering(self):
        assert (drop_rank(QOS_CRITICAL) < drop_rank(QOS_STANDARD)
                < drop_rank(QOS_BULK))

    def test_only_bulk_is_sampled(self):
        assert sample_rate(QOS_CRITICAL) == 1.0
        assert sample_rate(QOS_STANDARD) == 1.0
        assert sample_rate(QOS_BULK) < 1.0

    def test_validate_tier(self):
        for tier in QOS_TIERS:
            assert validate_tier(tier) == tier
        with pytest.raises(ValueError):
            validate_tier("best_effort")

    def test_category_config_rate_override(self):
        config = CategoryConfig("diag_firehose", qos=QOS_BULK)
        assert config.sample_rate == OVERLOAD_SAMPLE_RATES[QOS_BULK]
        tuned = CategoryConfig("diag_firehose", qos=QOS_BULK,
                               overload_sample_rate=0.5)
        assert tuned.sample_rate == 0.5
        with pytest.raises(ValueError):
            CategoryConfig("diag_firehose", overload_sample_rate=1.5)


class TestAdmitDeterminism:
    def test_rate_extremes(self):
        assert all(admit("c", "h", s, 1.0) for s in range(32))
        assert not any(admit("c", "h", s, 0.0) for s in range(32))

    def test_fraction_tracks_rate(self):
        kept = sum(admit("web_events", "dc1-host-0000", seq, 0.25)
                   for seq in range(4000))
        assert 0.20 < kept / 4000 < 0.30

    def test_identity_sensitivity(self):
        # Different categories/origins make independent decisions for
        # the same seq -- the sample is not host- or stream-aligned.
        a = [admit("cat_a", "h1", s, 0.25) for s in range(256)]
        b = [admit("cat_b", "h1", s, 0.25) for s in range(256)]
        c = [admit("cat_a", "h2", s, 0.25) for s in range(256)]
        assert a != b and a != c

    def test_stable_across_hash_seeds(self):
        """The same decisions on every PYTHONHASHSEED and process."""
        src = Path(repro.__file__).resolve().parents[1]
        script = ("from repro.scribe.qos import admit; "
                  "print([admit('web_events', 'dc1-host-0007', s, 0.25) "
                  "for s in range(64)])")
        outputs = []
        for hash_seed in ("0", "1", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = (str(src) + os.pathsep
                                 + env.get("PYTHONPATH", ""))
            proc = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1] == outputs[2]
        in_process = [admit("web_events", "dc1-host-0007", s, 0.25)
                      for s in range(64)]
        assert outputs[0] == repr(in_process)


def _pressure_rig(backpressure_pending=3, backpressure_disk_files=2):
    zk = ZooKeeper()
    clock = LogicalClock()
    staging = HDFS(name="staging-dc1")
    categories = CategoryRegistry()
    categories.register(CategoryConfig("bulk_diag", qos=QOS_BULK))
    categories.register(CategoryConfig("billing_audit", qos=QOS_CRITICAL))
    aggregator = ScribeAggregator(
        name="dc1-agg-000", datacenter="dc1", zk=zk, staging=staging,
        clock=clock, categories=categories,
        backpressure_pending=backpressure_pending,
        backpressure_disk_files=backpressure_disk_files)
    aggregator.start()
    discovery = AggregatorDiscovery(zk, "dc1", seed=2)
    daemon = ScribeDaemon("dc1-host-0000", discovery,
                          {aggregator.name: aggregator}.get,
                          clock=clock, categories=categories)
    return clock, staging, aggregator, daemon


class TestBackpressureRoundTrip:
    def test_pending_backlog_fires_and_flush_clears(self, fresh_registry):
        clock, staging, aggregator, daemon = _pressure_rig(
            backpressure_pending=3)
        daemon.log(LogEntry("billing_audit", b"m0"))
        daemon.log(LogEntry("billing_audit", b"m1"))
        assert not daemon.backpressured
        daemon.log(LogEntry("billing_audit", b"m2"))
        # Third ack crosses the pending threshold: the daemon honors it.
        assert aggregator.backpressure
        assert daemon.backpressured
        assert fresh_registry.total(obs_names.BACKPRESSURE_HONORED) == 1

        aggregator.flush()  # rolls pending to staging; pressure source gone
        assert not aggregator.backpressure
        # A later ack clears the daemon-side hold (critical: never shed).
        daemon.log(LogEntry("billing_audit", b"m3"))
        assert not daemon.backpressured
        assert daemon.stats.shed == 0

    def test_disk_buffer_fires_during_staging_outage(self):
        clock, staging, aggregator, daemon = _pressure_rig(
            backpressure_pending=10_000, backpressure_disk_files=1)
        daemon.log(LogEntry("billing_audit", b"m0"))
        staging.set_available(False)
        aggregator.flush()  # roll lands on the local-disk outage buffer
        daemon.log(LogEntry("billing_audit", b"m1"))
        assert daemon.backpressured
        staging.set_available(True)
        aggregator.flush()  # replays the disk buffer to staging
        daemon.log(LogEntry("billing_audit", b"m2"))
        assert not daemon.backpressured

    def test_backpressure_sheds_bulk_only(self, fresh_registry):
        clock, staging, aggregator, daemon = _pressure_rig(
            backpressure_pending=2)
        daemon.log(LogEntry("billing_audit", b"m0"))
        daemon.log(LogEntry("billing_audit", b"m1"))
        assert daemon.backpressured
        sent_before = daemon.stats.sent
        for seq in range(40):
            daemon.log(LogEntry("bulk_diag", b"d%02d" % seq))
            daemon.log(LogEntry("billing_audit", b"a%02d" % seq))
        shed = daemon.stats.shed
        # Deterministic sampling admits roughly a quarter of bulk.
        assert 0 < shed < 40
        assert daemon.stats.accepted == 82
        # Everything not shed was delivered; critical saw no shedding.
        assert daemon.stats.sent == sent_before + 80 - shed
        assert fresh_registry.total(obs_names.QOS_SAMPLED) == shed
        tiers = {labels["tier"]
                 for labels, _ in fresh_registry.series(obs_names.QOS_SAMPLED)}
        assert tiers == {QOS_BULK}


class TestDropPriorityEviction:
    def _daemon(self, max_buffer):
        categories = CategoryRegistry()
        categories.register(CategoryConfig("bulk_diag", qos=QOS_BULK))
        categories.register(CategoryConfig("billing_audit",
                                           qos=QOS_CRITICAL))
        discovery = AggregatorDiscovery(ZooKeeper(), "dc1", seed=1)
        return ScribeDaemon("dc1-host-0000", discovery, lambda name: None,
                            max_buffer=max_buffer, categories=categories)

    def test_full_buffer_evicts_lowest_tier_first(self):
        daemon = self._daemon(max_buffer=3)
        daemon.log(LogEntry("bulk_diag", b"b0"))          # seq 0
        daemon.log(LogEntry("billing_audit", b"c0"))      # seq 1
        daemon.log(LogEntry("bulk_diag", b"b1"))          # seq 2
        daemon.log(LogEntry("billing_audit", b"c1"))      # seq 3: evicts
        assert daemon.buffered == 3
        # The oldest *bulk* entry went, not the oldest entry overall.
        assert daemon.dropped_identities() == {("dc1-host-0000", 0)}

    def test_incoming_bulk_dropped_when_outranked(self):
        daemon = self._daemon(max_buffer=2)
        daemon.log(LogEntry("billing_audit", b"c0"))      # seq 0
        daemon.log(LogEntry("billing_audit", b"c1"))      # seq 1
        daemon.log(LogEntry("bulk_diag", b"b0"))          # seq 2: itself
        assert daemon.buffered == 2
        # A critical backlog is never evicted for a bulk arrival.
        assert daemon.dropped_identities() == {("dc1-host-0000", 2)}
        assert daemon.stats.dropped == 1
