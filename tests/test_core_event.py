"""Client event struct tests (Table 2) and schema evolution."""

import pytest

from repro.core.event import (
    CLIENT_EVENTS_CATEGORY,
    ClientEvent,
    ClientEventV1,
    EventInitiator,
)
from repro.core.names import InvalidEventNameError
from repro.thriftlike.types import ValidationError

NAME = "web:home:mentions:stream:avatar:profile_click"


def _event(**overrides):
    defaults = dict(name=NAME, user_id=42, session_id="cookie-1",
                    ip="10.1.2.3", timestamp=1000)
    defaults.update(overrides)
    return ClientEvent.make(**defaults)


class TestEventInitiator:
    def test_four_quadrants(self):
        """Table 2: {client, server} x {user, app}."""
        assert EventInitiator.CLIENT_USER.side == "client"
        assert EventInitiator.CLIENT_USER.trigger == "user"
        assert EventInitiator.CLIENT_APP.trigger == "app"
        assert EventInitiator.SERVER_USER.side == "server"
        assert EventInitiator.SERVER_APP.side == "server"
        assert len(EventInitiator) == 4


class TestClientEvent:
    def test_make_with_all_table2_fields(self):
        event = _event(details={"profile_id": "99"}, country="uk",
                       logged_in=True)
        assert event.event_name == NAME
        assert event.user_id == 42
        assert event.session_id == "cookie-1"
        assert event.ip == "10.1.2.3"
        assert event.timestamp == 1000
        assert event.event_details == {"profile_id": "99"}
        assert event.country == "uk"
        assert event.logged_in is True

    def test_make_validates_event_name(self):
        with pytest.raises(InvalidEventNameError):
            _event(name="badName:x")

    def test_make_accepts_event_name_object(self):
        from repro.core.names import EventName

        event = _event(name=EventName.parse(NAME))
        assert event.event_name == NAME

    def test_name_property_parses(self):
        assert _event().name.element == "avatar"

    def test_client_property(self):
        assert _event().client == "web"

    def test_initiator_property(self):
        event = _event(initiator=EventInitiator.SERVER_APP)
        assert event.initiator is EventInitiator.SERVER_APP

    def test_details_default_not_shared(self):
        a, b = ClientEvent(), ClientEvent()
        a.event_details["k"] = "v"
        assert b.event_details == {}

    def test_serialization_roundtrip(self):
        event = _event(details={"k": "v"}, country="jp", logged_in=False)
        decoded = ClientEvent.from_bytes(event.to_bytes())
        assert decoded == event

    def test_required_fields_enforced(self):
        with pytest.raises(ValidationError):
            ClientEvent(event_name=NAME).to_bytes()

    def test_category_constant(self):
        assert CLIENT_EVENTS_CATEGORY == "client_events"


class TestSchemaEvolution:
    def test_v1_reader_accepts_v2_messages(self):
        """Old readers skip country/logged_in -- forward compatibility."""
        event = _event(country="br", logged_in=True)
        old = ClientEventV1.from_bytes(event.to_bytes())
        assert old.event_name == NAME
        assert old.user_id == 42

    def test_v2_reader_accepts_v1_messages(self):
        """New readers default the added fields -- backward compat."""
        old = ClientEventV1(
            event_initiator=0, event_name=NAME, user_id=7,
            session_id="s", ip="1.1.1.1", timestamp=5,
            event_details={},
        )
        new = ClientEvent.from_bytes(old.to_bytes())
        assert new.user_id == 7
        assert new.country is None
        assert new.logged_in is None

    def test_v1_has_exactly_table2_fields(self):
        names = [spec.name for spec in ClientEventV1.FIELDS]
        assert names == ["event_initiator", "event_name", "user_id",
                         "session_id", "ip", "timestamp", "event_details"]


class TestGroupByKeysEverPresent:
    """§3.2: every client event has user id, session id, ip with the same
    semantics, so a simple group-by reconstructs sessions."""

    def test_identity_fields_required(self):
        required = {spec.name for spec in ClientEvent.FIELDS if spec.required}
        assert {"user_id", "session_id", "ip", "timestamp",
                "event_name"} <= required
