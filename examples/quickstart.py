"""Quickstart: from raw client events to session-sequence analytics.

Generates one day of synthetic Twitter-like traffic, deposits it in a
simulated warehouse, builds the session sequences + event dictionary, and
runs the paper's canonical counting query both ways.

Run:  python examples/quickstart.py
"""

from repro.analytics.counting import count_events_raw, count_events_sequences
from repro.core.builder import SessionSequenceBuilder
from repro.hdfs.namenode import HDFS
from repro.mapreduce.jobtracker import JobTracker
from repro.workload.generator import WorkloadGenerator, load_warehouse_day

DATE = (2012, 3, 10)


def main() -> None:
    # 1. One day of traffic from 300 synthetic users.
    generator = WorkloadGenerator(num_users=300, seed=42)
    workload = generator.generate_day(*DATE)
    print(f"generated {workload.num_events} client events "
          f"in {workload.sessions_generated} sessions")

    # 2. Deposit into the warehouse layout (/logs/client_events/YYYY/MM/DD/HH).
    warehouse = HDFS(block_size=16 * 1024)
    load_warehouse_day(warehouse, workload)

    # 3. The daily job: histogram -> dictionary -> materialized sequences.
    builder = SessionSequenceBuilder(warehouse)
    result = builder.run(*DATE)
    print(f"built {result.sessions_built} session sequences over "
          f"{result.distinct_events} distinct event types")
    print(f"raw logs: {result.raw_bytes:,} bytes | sequence store: "
          f"{result.sequence_bytes:,} bytes "
          f"({result.compression_factor:.0f}x smaller)")

    # 4. The paper's counting script, over sequences and over raw logs.
    dictionary = builder.load_dictionary(*DATE)
    pattern = "*:profile_click"   # across all clients, as in §3.2
    t_seq, t_raw = JobTracker(), JobTracker()
    n_seq = count_events_sequences(warehouse, DATE, pattern, dictionary,
                                   tracker=t_seq)
    n_raw = count_events_raw(warehouse, DATE, pattern, tracker=t_raw)
    assert n_seq == n_raw
    print(f"\ncount of {pattern!r}: {n_seq}")
    print(f"  over sequences: {t_seq.total_map_tasks()} mappers, "
          f"{sum(r.input_bytes for r in t_seq.runs):,} bytes scanned")
    print(f"  over raw logs:  {t_raw.total_map_tasks()} mappers, "
          f"{sum(r.input_bytes for r in t_raw.runs):,} bytes scanned")

    # 5. Peek at a session the way a data scientist would.
    record = next(builder.iter_sequences(*DATE))
    print(f"\nexample session ({record.num_events} events, "
          f"{record.duration}s):")
    for name in record.event_names(dictionary)[:8]:
        print("   ", name)


if __name__ == "__main__":
    main()
