"""Exploratory user modeling with NLP techniques (§5.4, §6).

n-gram language models quantify the "temporal signal" in user behaviour,
PMI/LLR extract activity collocates, and Smith-Waterman alignment answers
"what users exhibit similar behavioral patterns?" by example.

Run:  python examples/user_modeling.py
"""

from repro.core.builder import SessionSequenceBuilder
from repro.hdfs.namenode import HDFS
from repro.nlp.alignment import query_by_example
from repro.nlp.collocations import log_likelihood_ratio, pmi
from repro.nlp.ngram import perplexity_by_order
from repro.workload.generator import WorkloadGenerator, load_warehouse_day

DATE = (2012, 3, 10)


def short(name: str) -> str:
    return ":".join(p for p in name.split(":")[1:] if p)


def main() -> None:
    workload = WorkloadGenerator(num_users=500, seed=5).generate_day(*DATE)
    warehouse = HDFS()
    load_warehouse_day(warehouse, workload)
    builder = SessionSequenceBuilder(warehouse)
    builder.run(*DATE)
    dictionary = builder.load_dictionary(*DATE)
    records = list(builder.iter_sequences(*DATE))
    sequences = [r.event_names(dictionary) for r in records
                 if r.num_events >= 2]

    # -- temporal signal: perplexity by n-gram order -------------------------
    train, test = sequences[::2], sequences[1::2]
    print("perplexity by n-gram order (lower = more signal captured):")
    for n, perplexity in perplexity_by_order(train, test, max_n=5):
        bar = "#" * int(perplexity)
        print(f"  n={n}: {perplexity:7.2f} {bar}")
    print("-> behaviour is dominated by the immediately preceding action\n")

    # -- activity collocates -----------------------------------------------
    print("top activity collocates (log-likelihood ratio):")
    for c in log_likelihood_ratio(sequences, min_count=5)[:6]:
        print(f"  {c.score:8.0f}  {short(c.first)}  ->  {short(c.second)}")
    print("\ntop activity collocates (PMI -- favours rare, deterministic):")
    for c in pmi(sequences, min_count=5)[:6]:
        print(f"  {c.score:8.2f}  {short(c.first)}  ->  {short(c.second)}")

    # -- query by example ----------------------------------------------------
    probe = max(records, key=lambda r: r.num_events)
    print(f"\nquery-by-example: sessions similar to user "
          f"{probe.user_id}'s {probe.num_events}-event session")
    for hit in query_by_example(probe, records, top_n=5):
        overlap = hit.alignment.length
        print(f"  score {hit.score:6.1f}  user {hit.record.user_id:4d}  "
              f"({hit.record.num_events} events, "
              f"aligned span {overlap})")


if __name__ == "__main__":
    main()
