"""Exploring session flows and testing a change (§5.3 + §6 extensions).

Aggregates one day of sessions into a LifeFlow-style prefix tree, induces
a grammar over the sequences to find cohesive behavioural units, and runs
an A/B comparison of a (synthetic) treatment on funnel completion.

Run:  python examples/flow_exploration.py
"""

import random
import re

from repro.analytics.abtest import Experiment, compare_proportions
from repro.analytics.lifeflow import LifeFlowTree, page_level
from repro.core.builder import SessionSequenceBuilder
from repro.hdfs.namenode import HDFS
from repro.nlp.grammar import compression_ratio, induce_grammar
from repro.workload.generator import WorkloadGenerator, load_warehouse_day

DATE = (2012, 3, 10)


def main() -> None:
    workload = WorkloadGenerator(num_users=400, seed=17).generate_day(*DATE)
    warehouse = HDFS()
    load_warehouse_day(warehouse, workload)
    builder = SessionSequenceBuilder(warehouse)
    builder.run(*DATE)
    dictionary = builder.load_dictionary(*DATE)
    records = list(builder.iter_sequences(*DATE))

    # -- LifeFlow: where do sessions go? ------------------------------------
    tree = LifeFlowTree(max_depth=5, simplify=page_level)
    tree.add_records(records, dictionary)
    print(f"session flows ({tree.total_sessions} sessions, "
          f"page:action level, top branches):\n")
    print(tree.render(min_fraction=0.04, max_children=3))

    # -- grammar induction: cohesive units ---------------------------------
    sequences = [r.event_names(dictionary) for r in records
                 if r.num_events >= 2]
    grammar = induce_grammar(sequences, max_rules=300)
    print(f"\ninduced {grammar.num_rules} rules; corpus compresses "
          f"{compression_ratio(grammar, sequences):.2f}x")
    print("most reused multi-event units:")
    for unit, uses in grammar.cohesive_units(min_length=3, top=4):
        labels = [":".join(p for p in name.split(":")[1:] if p)
                  for name in unit]
        print(f"  x{uses:<4d} {' -> '.join(labels[:4])}"
              + (" ..." if len(labels) > 4 else ""))

    # -- A/B test: did the new layout help follows? -------------------------
    experiment = Experiment("wtf_layout_v2", salt="s1")
    follow = re.compile(dictionary.symbol_class("*:user_card:follow"))
    rng = random.Random(4)

    def followed(record) -> float:
        converted = 1.0 if follow.search(record.session_sequence) else 0.0
        # synthetic ground truth: treatment adds conversions
        if (converted == 0.0 and rng.random() < 0.06
                and experiment.assign(record.user_id) == "treatment"):
            return 1.0
        return converted

    result = compare_proportions(experiment, records, followed,
                                 metric_name="session followed someone")
    print(f"\nA/B test '{experiment.name}' on "
          f"{result.control.sessions + result.treatment.sessions} sessions:")
    print(f"  control:   {result.control.mean:.3f} "
          f"({result.control.sessions} sessions)")
    print(f"  treatment: {result.treatment.mean:.3f} "
          f"({result.treatment.sessions} sessions)")
    print(f"  lift {result.lift:+.1%}, p = {result.p_value:.4f} "
          f"-> {'SHIP IT' if result.significant() else 'inconclusive'}")


if __name__ == "__main__":
    main()
