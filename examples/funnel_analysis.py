"""Funnel analytics and CTR/FTR over session sequences (§4.1, §5.3).

Reproduces the paper's funnel output shape for the signup flow, per-stage
abandonment, the unique-users variant, and the who-to-follow CTR/FTR
queries -- including an ad hoc demographic subset ("users in the UK")
which is exactly the kind of query dashboards cannot pre-compute.

Run:  python examples/funnel_analysis.py
"""

from repro.analytics.ctr import ctr, ftr
from repro.analytics.funnel import run_funnel
from repro.core.builder import SessionSequenceBuilder
from repro.hdfs.namenode import HDFS
from repro.workload.behavior import signup_funnel_stages
from repro.workload.generator import WorkloadGenerator, load_warehouse_day

DATE = (2012, 3, 10)


def main() -> None:
    generator = WorkloadGenerator(num_users=800, seed=99)
    workload = generator.generate_day(*DATE)
    warehouse = HDFS()
    load_warehouse_day(warehouse, workload)
    builder = SessionSequenceBuilder(warehouse)
    builder.run(*DATE)
    dictionary = builder.load_dictionary(*DATE)

    # -- the signup funnel (§5.3) ------------------------------------------
    stages = signup_funnel_stages("web")
    report = run_funnel(warehouse, DATE, stages, dictionary)
    print("signup funnel (sessions):")
    for stage, count in report.rows():
        print(f"  ({stage}, {count})")
    print("per-stage abandonment:",
          [f"{a:.0%}" for a in report.abandonment()])
    print(f"end-to-end completion: {report.completion_rate:.1%}")

    by_user = run_funnel(warehouse, DATE, stages, dictionary,
                         unique_users=True)
    print("\nsignup funnel (unique users):")
    for stage, count in by_user.rows():
        print(f"  ({stage}, {count})")

    # -- CTR / FTR for who-to-follow (§4.1) ---------------------------------
    records = list(builder.iter_sequences(*DATE))
    impressions = "*:user_card:impression"
    clicks = "*:user_card:click"
    follows = "*:user_card:follow"
    ctr_report = ctr("who_to_follow", impressions, clicks, dictionary,
                     records)
    ftr_report = ftr("who_to_follow", impressions, follows, dictionary,
                     records)
    print(f"\nwho-to-follow CTR: {ctr_report.rate:.3f} "
          f"({ctr_report.actions}/{ctr_report.impressions})")
    print(f"who-to-follow FTR: {ftr_report.rate:.3f} "
          f"({ftr_report.actions}/{ftr_report.impressions})")

    # -- the same rate for an ad hoc user subset ----------------------------
    uk_users = {u.user_id for u in generator.population
                if u.country == "uk"}
    uk_ctr = ctr("who_to_follow (uk)", impressions, clicks, dictionary,
                 records, user_filter=lambda r: r.user_id in uk_users)
    print(f"who-to-follow CTR, UK users only: {uk_ctr.rate:.3f} "
          f"over {uk_ctr.sessions} sessions")


if __name__ == "__main__":
    main()
