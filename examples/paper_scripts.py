"""Run the paper's Pig Latin scripts, verbatim (§5.2, §5.3).

The interpreter in :mod:`repro.pig.latin` executes the exact script text
the paper prints, with $EVENTS/$DATE parameter substitution, compiling
onto the same MapReduce engine as everything else.

Run:  python examples/paper_scripts.py
"""

from repro.pig.latin import PigLatinInterpreter, standard_bindings
from repro.pig.relation import PigServer
from repro.workload.behavior import signup_funnel_stages
from repro.workload.simulate import WarehouseSimulation

COUNTING_SCRIPT = """
define CountClientEvents CountClientEvents('$EVENTS');

raw = load '/session_sequences/$DATE/' using SessionSequencesLoader();
generated = foreach raw generate CountClientEvents(symbols);
grouped = group generated all;
count = foreach grouped generate SUM(generated);
dump count;
"""


def main() -> None:
    simulation = WarehouseSimulation(num_users=300, seed=31)
    simulation.run_days(1)
    date = simulation.dates()[0]
    date_path = f"{date[0]:04d}/{date[1]:02d}/{date[2]:02d}"
    dictionary = simulation.dictionary(date)
    bindings = standard_bindings(simulation.warehouse, dictionary)

    # -- §5.2's counting script, two parameterizations -----------------------
    for events in ("*:profile_click", "web:home:*"):
        server = PigServer()
        interp = PigLatinInterpreter(
            server, variables={"EVENTS": events, "DATE": date_path},
            **bindings)
        result = interp.run(COUNTING_SCRIPT)
        jobs = [run.job_name for run in server.tracker.runs]
        print(f"$EVENTS={events!r}: count = {result.last_dump[0]} "
              f"(MR jobs: {jobs})")

    # -- the COUNT variant ---------------------------------------------------
    interp = PigLatinInterpreter(
        PigServer(), variables={"EVENTS": "*:query", "DATE": date_path},
        **bindings)
    sessions = interp.run(COUNTING_SCRIPT.replace("SUM", "COUNT")).last_dump
    print(f"sessions containing a search query (COUNT variant): "
          f"{sessions[0]}")

    # -- §5.3's funnel UDF ----------------------------------------------------
    stages = signup_funnel_stages("web")
    stage_args = ", ".join(f"'{s}'" for s in stages)
    funnel_script = f"""
    define Funnel ClientEventsFunnel({stage_args});

    raw = load '/session_sequences/{date_path}/'
          using SessionSequencesLoader();
    depths = foreach raw generate Funnel(symbols);
    dump depths;
    """
    interp = PigLatinInterpreter(PigServer(), **bindings)
    depths = interp.run(funnel_script).last_dump
    print("\nsignup funnel from the script's output:")
    print(f"  (0, {len(depths)})")
    for k in range(1, len(stages) + 1):
        print(f"  ({k}, {sum(1 for d in depths if d >= k)})")


if __name__ == "__main__":
    main()
