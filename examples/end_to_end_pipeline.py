"""The full Figure 1 pipeline, with a failure injected along the way.

Production hosts → Scribe daemons → aggregators (discovered through
ZooKeeper) → staging HDFS → log mover (sanity checks, small-file merge,
atomic hourly slide) → main warehouse → Oink-triggered session-sequence
build → BirdBrain dashboard summary.

Pipeline tracing is switched on, so the run ends with the observability
layer's view: the pipeline-health panel and one entry's hop-by-hop trace.

Run:  python examples/end_to_end_pipeline.py
"""

from repro import obs
from repro.analytics.dashboard import (
    format_pipeline_health,
    pipeline_health,
    summarize_day,
)
from repro.clock import MILLIS_PER_DAY, MILLIS_PER_HOUR
from repro.core.builder import SessionSequenceBuilder
from repro.core.event import CLIENT_EVENTS_CATEGORY
from repro.hdfs.layout import hours_of_day
from repro.logmover.mover import LogMover
from repro.oink.scheduler import Oink
from repro.scribe.cluster import ScribeDeployment
from repro.scribe.message import CategoryConfig, LogEntry
from repro.workload.generator import WorkloadGenerator

DATE = (2012, 1, 1)  # the logical clock's epoch day


def main() -> None:
    # -- observability: fresh registry, tracing on -------------------------
    registry = obs.MetricsRegistry()
    obs.set_default_registry(registry)
    tracer = obs.Tracer(enabled=True)
    obs.set_default_tracer(tracer)

    # -- traffic -----------------------------------------------------------
    workload = WorkloadGenerator(num_users=150, seed=7).generate_day(*DATE)
    events = sorted(workload.events, key=lambda e: e.timestamp)
    print(f"{len(events)} events from {workload.sessions_generated} sessions")

    # -- Scribe delivery across two datacenters ----------------------------
    deployment = ScribeDeployment(["east", "west"], num_hosts=4,
                                  num_aggregators=2, seed=1,
                                  durable_aggregators=True)
    deployment.categories.register(
        CategoryConfig(CLIENT_EVENTS_CATEGORY, max_file_records=200))
    east, west = deployment.datacenters.values()

    crashed = restarted = False
    victim = next(iter(east.aggregators))
    for event in events:
        deployment.clock.advance_to(event.timestamp)
        if not crashed and event.timestamp > MILLIS_PER_DAY // 2:
            print(f"  !! crashing aggregator {victim} at noon "
                  f"(daemons fail over via ZooKeeper)")
            east.crash_aggregator(victim)
            crashed = True
        if crashed and not restarted and \
                event.timestamp > MILLIS_PER_DAY // 2 + MILLIS_PER_HOUR:
            print(f"  !! restarting {victim} an hour later "
                  f"(write-ahead buffer replays its pending messages)")
            east.restart_aggregator(victim)
            restarted = True
        datacenter = east if event.user_id % 2 else west
        datacenter.log_from(
            event.user_id,
            LogEntry(CLIENT_EVENTS_CATEGORY, event.to_bytes()),
            wrap=True)
    if not restarted:
        east.restart_aggregator(victim)
    deployment.flush_all()
    print(f"accepted {deployment.total_accepted()}, "
          f"staged {deployment.total_staged()} "
          f"(durable aggregators: zero loss)")

    # -- log mover: staging -> warehouse ------------------------------------
    mover = LogMover({name: dc.staging
                      for name, dc in deployment.datacenters.items()},
                     deployment.warehouse, clock=deployment.clock)
    moved = 0
    merged_from = 0
    for day in (DATE[2], DATE[2] + 1):  # sessions spill past midnight
        for hour in hours_of_day(CLIENT_EVENTS_CATEGORY, DATE[0], DATE[1],
                                 day):
            if mover.hour_has_data(hour):
                result = mover.move_hour(hour, require_complete=False)
                moved += result.messages_moved
                merged_from += result.input_files
    print(f"log mover slid {moved} messages into the warehouse "
          f"(merged {merged_from} staging files)")

    # -- Oink schedules the daily build after the mover ---------------------
    oink = Oink(deployment.clock)
    builder = SessionSequenceBuilder(deployment.warehouse)
    state = {}

    def build_sequences(period_start: int) -> None:
        state["result"] = builder.run(*DATE)

    oink.daily("session_sequences", build_sequences,
               gate=lambda period: moved > 0)
    deployment.clock.advance_to(MILLIS_PER_DAY + MILLIS_PER_HOUR)
    oink.run_pending()
    build = state["result"]
    trace = oink.traces.for_job("session_sequences")[0]
    print(f"oink ran session_sequences (success={trace.success}): "
          f"{build.sessions_built} sessions, "
          f"{build.compression_factor:.0f}x compression")

    # -- BirdBrain ----------------------------------------------------------
    dictionary = builder.load_dictionary(*DATE)
    records = list(builder.iter_sequences(*DATE))
    summary = summarize_day(DATE, records, dictionary)
    print(f"\nBirdBrain {summary.date_str}: {summary.sessions} sessions, "
          f"{summary.distinct_users} users")
    print("  by client:", dict(sorted(summary.sessions_by_client.items())))
    print("  by duration:", dict(sorted(summary.duration_histogram.items())))

    # -- observability ------------------------------------------------------
    print()
    print(format_pipeline_health(pipeline_health(registry)))
    first = tracer.trace_ids()[0]
    print(f"\ntrace {first} hop by hop:")
    for span in tracer.spans(first):
        print(f"  {span.start_ms:>10d}ms {span.name:20s} {span.attrs}")


if __name__ == "__main__":
    main()
