"""The client event catalog, and why it beats scraping legacy logs (§4.3).

Builds the automatically-generated, always-up-to-date event catalog from
the daily histogram job, browses it hierarchically, searches it, and
contrasts it with the old world: inducing a JSON log's schema by scraping
key-value histograms.

Run:  python examples/catalog_browser.py
"""

from repro.core.builder import SessionSequenceBuilder
from repro.core.catalog import ClientEventCatalog
from repro.hdfs.namenode import HDFS
from repro.legacy.formats import WebJsonLogger
from repro.legacy.scraper import scrape_json
from repro.workload.generator import WorkloadGenerator, load_warehouse_day

DATE = (2012, 3, 10)


def main() -> None:
    workload = WorkloadGenerator(num_users=250, seed=21).generate_day(*DATE)
    warehouse = HDFS()
    load_warehouse_day(warehouse, workload)
    builder = SessionSequenceBuilder(warehouse)
    builder.run(*DATE)

    # -- build today's catalog from the histogram job's artifacts ----------
    catalog = ClientEventCatalog(builder.load_histogram(*DATE),
                                 builder.load_samples(*DATE))
    print(f"catalog holds {len(catalog)} event types\n")

    print("browse > clients:")
    for client, count in sorted(catalog.browse().items()):
        print(f"  {client:8s} {count:7d} events")
    print("\nbrowse > web > pages:")
    for page, count in sorted(catalog.browse("web").items()):
        print(f"  {page:14s} {count:7d} events")

    print("\nsearch '*:profile_click' across all clients:")
    for entry in catalog.search("*:profile_click")[:5]:
        print(f"  {entry.count:6d}  {entry.name}")

    # -- developer-supplied descriptions survive the daily rebuild ----------
    top = catalog.entries()[0]
    catalog.describe(top.name, "Tweet shown in the home timeline")
    tomorrow = ClientEventCatalog(builder.load_histogram(*DATE),
                                  builder.load_samples(*DATE))
    carried = tomorrow.carry_descriptions_from(catalog)
    print(f"\nrebuilt catalog carried {carried} description(s); "
          f"{len(tomorrow.undocumented())} event types still undocumented")
    print(f"sample Thrift structure for {top.name}:")
    sample = tomorrow.entry(top.name).samples[0]
    for key in ("event_name", "user_id", "session_id", "timestamp"):
        print(f"   {key} = {sample[key]}")

    # -- the old world: induce a JSON format by scraping --------------------
    logger = WebJsonLogger()
    web_events = [e for e in workload.events if e.client == "web"][:1000]
    messages = [logger.encode(e).message for e in web_events]
    report = scrape_json(messages)
    print(f"\nlegacy contrast: scraped {report.messages_seen} JSON messages"
          f" to induce the schema:")
    print(f"  obligatory keys: {report.obligatory_keys()[:4]} ...")
    print(f"  optional keys:   {report.optional_keys()[:4]} ...")
    low, high = report.value_range("userId")
    print(f"  userId range observed: [{low:.0f}, {high:.0f}]"
          f"  (vs: just read Table 2)")


if __name__ == "__main__":
    main()
