"""Per-shard log movers running in parallel against a sharded warehouse.

With the warehouse split over N namenode shards
(:class:`~repro.hdfs.sharded.ShardedHDFS`), the hour-move pipeline stops
being serialized on one namespace: every category hashes to exactly one
shard, so hours of different shards touch disjoint namenodes and can
move concurrently without coordination.

:class:`ShardedLogMover` keeps one private
:class:`~repro.logmover.mover.LogMover` per shard -- each sees the
router as its warehouse, and routing confines its writes to the shard
owning the category being moved -- and fans grouped hours out on the
PR 2 execution backends (``serial`` or ``threads``; the in-memory
namenodes cannot cross a process boundary, so ``processes`` falls back
to ``threads`` with a warning). Within one shard, hours move in the
order given: the per-category dedup ledger and replace semantics of
``move_hour`` assume sequential moves per category, and a category
never spans shards, so per-shard ordering is exactly the ordering that
matters.

The single-hour surface (``move_hour`` / ``hour_ready`` /
``hour_has_data`` / ``landed_identities`` / ``moves``) matches
``LogMover``, so Oink's ``register_standard_pipeline`` and the chaos
harness drive a sharded mover unchanged.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set

from repro.hdfs.layout import LOGS_ROOT, LogHour
from repro.hdfs.namenode import HDFS
from repro.hdfs.sharded import ShardedHDFS
from repro.logmover.mover import LogMover, MessageIdentity, MoveResult
from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry

#: Backends the sharded mover can fan shard groups out on.
SHARD_BACKENDS = ("serial", "threads")


class ShardedLogMover:
    """N per-shard movers behind the single-mover interface.

    Constructor arguments mirror :class:`~repro.logmover.mover.LogMover`
    (everything in ``mover_kwargs`` is passed through to each inner
    mover); ``backend``/``max_workers`` pick how :meth:`move_hours`
    parallelizes across shards.
    """

    def __init__(self, staging_clusters: Dict[str, HDFS],
                 warehouse: ShardedHDFS,
                 backend: str = "serial",
                 max_workers: Optional[int] = None,
                 **mover_kwargs: Any) -> None:
        if backend == "processes":
            warnings.warn(
                "the sharded log mover cannot use the 'processes' backend "
                "(in-memory namenodes do not cross process boundaries); "
                "falling back to 'threads'", RuntimeWarning, stacklevel=2)
            backend = "threads"
        if backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of "
                f"{SHARD_BACKENDS}")
        self._warehouse = warehouse
        self._backend = backend
        self._max_workers = max_workers or warehouse.num_shards
        # One mover per shard. Each gets the *router* as its warehouse:
        # path routing confines its writes to the shard that owns the
        # category being moved, while reads of shard-spanning paths
        # still resolve. One mover per shard (not one global) keeps
        # every mover single-threaded -- a shard's hours are always
        # driven by at most one worker at a time.
        self._movers: List[LogMover] = [
            LogMover(staging_clusters, warehouse, **mover_kwargs)
            for _ in range(warehouse.num_shards)
        ]

    # -- routing -------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """How many warehouse shards (and inner movers) there are."""
        return self._warehouse.num_shards

    def mover_for(self, category: str) -> LogMover:
        """The per-shard mover owning a category's hours."""
        return self._movers[self._warehouse.shard_index(category)]

    # -- LogMover-compatible surface -----------------------------------
    def producing_datacenters(self, category: str) -> List[str]:
        """Datacenters expected to stage data for a category."""
        return self._movers[0].producing_datacenters(category)

    def hour_ready(self, hour: LogHour) -> bool:
        """True when every producing datacenter staged the hour."""
        return self.mover_for(hour.category).hour_ready(hour)

    def hour_has_data(self, hour: LogHour) -> bool:
        """True when at least one datacenter staged the hour."""
        return self.mover_for(hour.category).hour_has_data(hour)

    def move_hour(self, hour: LogHour, require_complete: bool = True,
                  delete_staged: bool = True) -> MoveResult:
        """Move one hour on its owning shard's mover."""
        result = self.mover_for(hour.category).move_hour(
            hour, require_complete=require_complete,
            delete_staged=delete_staged)
        self._record_shard_metrics([result])
        return result

    def landed_identities(
            self,
            hour: Optional[LogHour] = None) -> FrozenSet[MessageIdentity]:
        """Committed identities: one hour's shard, or all shards."""
        if hour is not None:
            return self.mover_for(hour.category).landed_identities(hour)
        out: Set[MessageIdentity] = set()
        for mover in self._movers:
            out |= mover.landed_identities()
        return frozenset(out)

    @property
    def moves(self) -> List[MoveResult]:
        """All completed moves, in deterministic (hour-sorted) order.

        Across shards there is no meaningful completion order (they run
        concurrently), so the aggregate is sorted by hour for stable
        reporting; per-shard chronology is preserved within equal hours
        by the underlying lists.
        """
        out: List[MoveResult] = []
        for mover in self._movers:
            out.extend(mover.moves)
        return sorted(out, key=lambda r: r.hour)

    # -- the parallel fan-out ------------------------------------------
    def move_hours(self, hours: Sequence[LogHour],
                   require_complete: bool = True,
                   delete_staged: bool = True) -> List[MoveResult]:
        """Move many hours, parallel across shards, ordered within each.

        Hours are grouped by owning shard (preserving the given order
        inside each group) and the groups run concurrently on the
        ``threads`` backend, or in shard order on ``serial``. A failure
        in any group propagates after every group has finished, so a
        partial failure cannot silently swallow other shards' results.
        """
        groups: Dict[int, List[LogHour]] = {}
        for hour in hours:
            groups.setdefault(
                self._warehouse.shard_index(hour.category), []).append(hour)

        def run_group(shard: int) -> List[MoveResult]:
            mover = self._movers[shard]
            return [mover.move_hour(hour,
                                    require_complete=require_complete,
                                    delete_staged=delete_staged)
                    for hour in groups[shard]]

        results: List[MoveResult] = []
        if self._backend == "serial" or len(groups) <= 1:
            for shard in sorted(groups):
                results.extend(run_group(shard))
        else:
            workers = min(self._max_workers, len(groups))
            with ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="shard-mover") as pool:
                futures = {shard: pool.submit(run_group, shard)
                           for shard in sorted(groups)}
                error: Optional[BaseException] = None
                for shard in sorted(futures):
                    try:
                        results.extend(futures[shard].result())
                    except BaseException as exc:  # noqa: BLE001 - re-raised
                        if error is None:
                            error = exc
                if error is not None:
                    raise error
        self._record_shard_metrics(results)
        return sorted(results, key=lambda r: r.hour)

    def move_ready_hours(self, hours: Sequence[LogHour]) -> List[MoveResult]:
        """Move every hour whose completeness barrier is satisfied."""
        return self.move_hours([h for h in hours if self.hour_ready(h)])

    # -- observability -------------------------------------------------
    def _record_shard_metrics(self, results: List[MoveResult]) -> None:
        """Per-shard move counters plus stored-bytes gauges.

        Called from the coordinating thread after moves complete, so the
        registry sees no concurrent updates from shard workers.
        """
        registry = get_default_registry()
        touched: Set[int] = set()
        for result in results:
            shard = self._warehouse.shard_index(result.hour.category)
            touched.add(shard)
            label = f"{self._warehouse.name}-shard-{shard}"
            registry.counter(obs_names.SHARD_HOURS_MOVED,
                             shard=label).inc()
            registry.counter(obs_names.SHARD_MESSAGES_MOVED,
                             shard=label).inc(result.messages_moved)
        for shard in touched:
            registry.gauge(
                obs_names.SHARD_STORED_BYTES,
                shard=f"{self._warehouse.name}-shard-{shard}").set(
                    self._warehouse.shards[shard].total_stored_bytes(
                        LOGS_ROOT))

    def __repr__(self) -> str:
        return (f"ShardedLogMover(shards={self.num_shards}, "
                f"backend={self._backend!r})")
