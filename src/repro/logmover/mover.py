"""The log mover: staging clusters → main data warehouse.

§2: "Another process is responsible for moving these logs from the
per-datacenter staging clusters into the main Hadoop data warehouse. It
applies certain sanity checks and transformations, such as merging many
small files into a few big ones ... it ensures that by the time logs are
made available in the main data warehouse, all datacenters that produce a
given log category have transferred their logs. Once all of this is done,
the log mover pipeline atomically slides an hour's worth of logs into the
main data warehouse."

The atomic slide is implemented by writing merged files into a hidden
``/_incoming`` directory and renaming the whole per-hour directory into
``/logs/<category>/...`` in one namespace operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clock import LogicalClock
from repro.hdfs.layout import LOGS_ROOT, LogHour, staging_path
from repro.hdfs.namenode import HDFS
from repro.logmover.checks import DEFAULT_CHECKS, SanityCheck, SanityCheckError
from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry
from repro.obs.trace import get_default_tracer
from repro.scribe.aggregator import decode_messages, encode_messages

INCOMING_ROOT = "/_incoming"


class IncompleteHourError(Exception):
    """Raised when a producing datacenter has not yet transferred its logs."""


@dataclass
class MoveResult:
    """Outcome of moving one hour of one category."""

    hour: LogHour
    messages_moved: int
    input_files: int
    output_files: int
    quarantined: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def merge_ratio(self) -> float:
        """Input files per output file (the small-file merge factor)."""
        if self.output_files == 0:
            return 0.0
        return self.input_files / self.output_files


class LogMover:
    """Moves per-hour log directories from staging clusters to the warehouse.

    ``producers`` maps each category to the datacenters that produce it;
    categories not listed are assumed to be produced by every datacenter.
    """

    def __init__(self, staging_clusters: Dict[str, HDFS], warehouse: HDFS,
                 producers: Optional[Dict[str, Sequence[str]]] = None,
                 checks: Optional[List[SanityCheck]] = None,
                 target_file_bytes: int = 256 * 1024,
                 codec: str = "zlib",
                 clock: Optional[LogicalClock] = None) -> None:
        if not staging_clusters:
            raise ValueError("need at least one staging cluster")
        self._staging = dict(staging_clusters)
        self._warehouse = warehouse
        self._producers = dict(producers or {})
        self._checks = list(DEFAULT_CHECKS if checks is None else checks)
        self._target_file_bytes = target_file_bytes
        self._codec = codec
        # Timestamps trace spans and the end-to-end latency histogram;
        # without a clock, spans fall back to each trace's latest time.
        self._clock = clock
        self.moves: List[MoveResult] = []

    # -- completeness barrier -------------------------------------------
    def producing_datacenters(self, category: str) -> List[str]:
        """Datacenters expected to stage data for a category."""
        declared = self._producers.get(category)
        if declared is not None:
            return sorted(declared)
        return sorted(self._staging)

    def hour_ready(self, hour: LogHour) -> bool:
        """True when every producing datacenter has staged data for ``hour``."""
        for datacenter in self.producing_datacenters(hour.category):
            staging = self._staging[datacenter]
            directory = staging_path(datacenter, hour)
            if not staging.glob_files(directory):
                return False
        return True

    def hour_has_data(self, hour: LogHour) -> bool:
        """True when at least one datacenter has staged data for ``hour``.

        Quiet hours may legitimately leave some datacenters empty; the
        operational pattern is to wait for :meth:`hour_ready` up to a
        deadline, then move whatever :meth:`hour_has_data` shows with
        ``require_complete=False``.
        """
        return any(
            self._staging[dc].glob_files(staging_path(dc, hour))
            for dc in self.producing_datacenters(hour.category)
        )

    # -- the move ----------------------------------------------------------
    def move_hour(self, hour: LogHour, require_complete: bool = True,
                  delete_staged: bool = True) -> MoveResult:
        """Merge, check, and atomically publish one hour of one category."""
        if require_complete and not self.hour_ready(hour):
            missing = [
                dc for dc in self.producing_datacenters(hour.category)
                if not self._staging[dc].glob_files(staging_path(dc, hour))
            ]
            raise IncompleteHourError(
                f"{hour} not transferred by datacenters: {missing}"
            )

        registry = get_default_registry()
        tracer = get_default_tracer()
        messages: List[bytes] = []
        quarantined: List[Tuple[str, str]] = []
        input_files = 0
        bytes_moved = 0
        landed_ids: List[str] = []
        staged_paths: List[Tuple[str, str]] = []
        for datacenter in self.producing_datacenters(hour.category):
            staging = self._staging[datacenter]
            for path in staging.glob_files(staging_path(datacenter, hour)):
                input_files += 1
                staged_paths.append((datacenter, path))
                file_messages = decode_messages(staging.open_bytes(path))
                file_ids = tracer.ids_for_path(path)
                try:
                    for check in self._checks:
                        check(path, file_messages)
                except SanityCheckError as exc:
                    quarantined.append((exc.path, exc.reason))
                    registry.counter(obs_names.MOVER_CHECK_FAILURES,
                                     datacenter=datacenter,
                                     category=hour.category).inc()
                    for trace_id in file_ids:
                        tracer.record(trace_id,
                                      obs_names.SPAN_MOVER_QUARANTINE,
                                      self._trace_now(tracer, trace_id),
                                      path=path, reason=exc.reason)
                    continue
                messages.extend(file_messages)
                bytes_moved += sum(len(m) for m in file_messages)
                for trace_id in file_ids:
                    tracer.record(trace_id, obs_names.SPAN_MOVER_DEMUX,
                                  self._trace_now(tracer, trace_id),
                                  path=path, datacenter=datacenter)
                landed_ids.extend(file_ids)

        # Merge many small files into a few big ones, then slide atomically.
        incoming_dir = hour.path(root=INCOMING_ROOT)
        output_files = self._write_merged(incoming_dir, messages)
        final_dir = hour.path(root=LOGS_ROOT)
        if self._warehouse.exists(final_dir):
            self._warehouse.delete(final_dir, recursive=True)
        self._warehouse.rename(incoming_dir, final_dir)
        self._record_landed(hour, final_dir, landed_ids)

        if delete_staged:
            for datacenter, path in staged_paths:
                self._staging[datacenter].delete(path)

        result = MoveResult(hour=hour, messages_moved=len(messages),
                            input_files=input_files,
                            output_files=output_files,
                            quarantined=quarantined)
        registry.counter(obs_names.MOVER_HOURS_MOVED,
                         category=hour.category).inc()
        registry.counter(obs_names.MOVER_FILES_MOVED,
                         category=hour.category).inc(input_files)
        registry.counter(obs_names.MOVER_FILES_WRITTEN,
                         category=hour.category).inc(output_files)
        registry.counter(obs_names.MOVER_MESSAGES_MOVED,
                         category=hour.category).inc(len(messages))
        registry.counter(obs_names.MOVER_BYTES_MOVED,
                         category=hour.category).inc(bytes_moved)
        self.moves.append(result)
        return result

    def move_ready_hours(self, hours: Sequence[LogHour]) -> List[MoveResult]:
        """Move every hour in ``hours`` whose barrier is satisfied."""
        results = []
        for hour in hours:
            if self.hour_ready(hour):
                results.append(self.move_hour(hour))
        return results

    # -- internals ---------------------------------------------------------
    def _trace_now(self, tracer, trace_id: str) -> int:
        """Span timestamp: the mover's clock, else the trace's latest time.

        A clock-less mover (unit tests moving synthetic files) still
        produces well-ordered traces; it just contributes zero latency.
        """
        if self._clock is not None:
            return self._clock.now()
        spans = tracer.spans(trace_id)
        return max((s.end_ms for s in spans), default=0)

    def _record_landed(self, hour: LogHour, final_dir: str,
                       trace_ids: List[str]) -> None:
        """Close out traces at the atomic slide and observe latency."""
        tracer = get_default_tracer()
        registry = get_default_registry()
        for trace_id in trace_ids:
            now = self._trace_now(tracer, trace_id)
            tracer.record(trace_id, obs_names.SPAN_WAREHOUSE_LAND, now,
                          directory=final_dir)
            latency = tracer.end_to_end_ms(trace_id)
            if latency is not None:
                registry.histogram(
                    obs_names.PIPELINE_DELIVERY_LATENCY,
                    category=hour.category).observe(latency)

    def _write_merged(self, directory: str, messages: List[bytes]) -> int:
        """Write messages as a small number of large framed files."""
        self._warehouse.mkdirs(directory)
        if not messages:
            return 0
        chunks: List[List[bytes]] = [[]]
        size = 0
        for message in messages:
            if size >= self._target_file_bytes and chunks[-1]:
                chunks.append([])
                size = 0
            chunks[-1].append(message)
            size += len(message)
        for i, chunk in enumerate(chunks):
            path = f"{directory}/part-{i:05d}"
            self._warehouse.create(path, encode_messages(chunk),
                                   codec=self._codec)
        return len(chunks)
