"""The log mover: staging clusters → main data warehouse.

§2: "Another process is responsible for moving these logs from the
per-datacenter staging clusters into the main Hadoop data warehouse. It
applies certain sanity checks and transformations, such as merging many
small files into a few big ones ... it ensures that by the time logs are
made available in the main data warehouse, all datacenters that produce a
given log category have transferred their logs. Once all of this is done,
the log mover pipeline atomically slides an hour's worth of logs into the
main data warehouse."

The atomic slide is implemented by writing merged files into a hidden
``/_incoming`` directory and renaming the whole per-hour directory into
``/logs/<category>/...`` in one namespace operation.

Exactly-once hardening: staged frames may carry a delivery envelope
(origin host + per-daemon sequence number, see
:mod:`repro.scribe.message`). The mover strips envelopes before writing
to the warehouse -- analytics readers see raw messages, unchanged -- and
dedups on the ``(origin, seq)`` identity, so aggregator WAL replays and
lost-ack resends land exactly once even when the duplicate shows up in a
different hour. ``move_hour`` is also *idempotent*: it clears any
half-written ``/_incoming`` debris from a previous crashed run, updates
its dedup ledger only after staged inputs are deleted (the commit
point), and -- given a :class:`~repro.faults.retry.RetryPolicy` --
retries through staging-HDFS outages with backoff. Crash windows between
the delete/rename and rename/cleanup steps are exposed as fault sites
``logmover.<category>.pre_rename`` / ``.pre_cleanup`` so tests can prove
a re-run converges.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.clock import LogicalClock
from repro.faults.injector import KIND_CRASH, InjectedCrash, fault_point
from repro.faults.retry import RetryPolicy
from repro.hdfs.layout import (
    LOGS_ROOT,
    LogHour,
    quarantine_path,
    staging_path,
)
from repro.hdfs.namenode import HDFS, HDFSUnavailableError
from repro.logmover.checks import DEFAULT_CHECKS, SanityCheck, SanityCheckError
from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry
from repro.obs.trace import get_default_tracer
from repro.scribe.aggregator import decode_messages, encode_messages
from repro.scribe.message import decode_envelope

logger = logging.getLogger(__name__)

INCOMING_ROOT = "/_incoming"

#: The ``(origin host, sequence number)`` identity the mover dedups on.
MessageIdentity = Tuple[str, int]


class IncompleteHourError(Exception):
    """Raised when a producing datacenter has not yet transferred its logs."""


@dataclass
class MoveResult:
    """Outcome of moving one hour of one category."""

    hour: LogHour
    messages_moved: int
    input_files: int
    output_files: int
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    quarantined_messages: int = 0
    #: Warehouse paths the quarantined staging files were preserved at
    #: (parallel to ``quarantined``), so operators can inspect/replay.
    quarantined_to: List[str] = field(default_factory=list)
    duplicates_skipped: int = 0
    #: Logical instant the hour was published (None for clock-less movers).
    #: The data-quality auditor derives per-hour freshness lag from it.
    moved_at_ms: Optional[int] = None

    @property
    def merge_ratio(self) -> float:
        """Input files per output file (the small-file merge factor)."""
        if self.output_files == 0:
            return 0.0
        return self.input_files / self.output_files


class LogMover:
    """Moves per-hour log directories from staging clusters to the warehouse.

    ``producers`` maps each category to the datacenters that produce it;
    categories not listed are assumed to be produced by every datacenter.
    ``retry_policy`` makes :meth:`move_hour` ride through staging/warehouse
    outages (``HDFSUnavailableError``) with bounded backoff on the logical
    clock instead of failing the hour outright.
    """

    def __init__(self, staging_clusters: Dict[str, HDFS], warehouse: HDFS,
                 producers: Optional[Dict[str, Sequence[str]]] = None,
                 checks: Optional[List[SanityCheck]] = None,
                 target_file_bytes: int = 256 * 1024,
                 codec: str = "zlib",
                 clock: Optional[LogicalClock] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 columnar_categories: Optional[Sequence[str]] = None) -> None:
        if not staging_clusters:
            raise ValueError("need at least one staging cluster")
        self._staging = dict(staging_clusters)
        self._warehouse = warehouse
        self._producers = dict(producers or {})
        self._checks = list(DEFAULT_CHECKS if checks is None else checks)
        self._target_file_bytes = target_file_bytes
        self._codec = codec
        # Timestamps trace spans and the end-to-end latency histogram;
        # without a clock, spans fall back to each trace's latest time.
        self._clock = clock
        self._retry_policy = retry_policy
        # Categories whose hours get a columnar segment written beside
        # the raw files right after the atomic slide. Raw files remain
        # authoritative; a segment that fails to build is skipped with a
        # warning and the hour serves row-at-a-time scans as before.
        self._columnar_categories = frozenset(columnar_categories or ())
        # Committed (origin, seq) identities per hour. An identity enters
        # the ledger only once its staged inputs are deleted, so a crash
        # anywhere before that point leaves the ledger describing exactly
        # what a re-run may treat as already landed.
        self._landed_seqs: Dict[LogHour, Set[MessageIdentity]] = {}
        self.moves: List[MoveResult] = []

    # -- completeness barrier -------------------------------------------
    def producing_datacenters(self, category: str) -> List[str]:
        """Datacenters expected to stage data for a category."""
        declared = self._producers.get(category)
        if declared is not None:
            return sorted(declared)
        return sorted(self._staging)

    def hour_ready(self, hour: LogHour) -> bool:
        """True when every producing datacenter has staged data for ``hour``."""
        for datacenter in self.producing_datacenters(hour.category):
            staging = self._staging[datacenter]
            directory = staging_path(datacenter, hour)
            if not staging.glob_files(directory):
                return False
        return True

    def hour_has_data(self, hour: LogHour) -> bool:
        """True when at least one datacenter has staged data for ``hour``.

        Quiet hours may legitimately leave some datacenters empty; the
        operational pattern is to wait for :meth:`hour_ready` up to a
        deadline, then move whatever :meth:`hour_has_data` shows with
        ``require_complete=False``.
        """
        return any(
            self._staging[dc].glob_files(staging_path(dc, hour))
            for dc in self.producing_datacenters(hour.category)
        )

    # -- delivery ledger -------------------------------------------------
    def landed_identities(
            self, hour: Optional[LogHour] = None) -> FrozenSet[MessageIdentity]:
        """Committed ``(origin, seq)`` identities, for one hour or all.

        This is the audit surface the chaos soak checks conservation
        against: every identity a daemon accepted must be here, dropped
        at the daemon, or quarantined -- exactly once.
        """
        if hour is not None:
            return frozenset(self._landed_seqs.get(hour, set()))
        out: Set[MessageIdentity] = set()
        for identities in self._landed_seqs.values():
            out |= identities
        return frozenset(out)

    # -- the move ----------------------------------------------------------
    def move_hour(self, hour: LogHour, require_complete: bool = True,
                  delete_staged: bool = True) -> MoveResult:
        """Merge, check, dedup, and atomically publish one hour.

        With a retry policy, transient ``HDFSUnavailableError`` from
        staging or warehouse is retried with backoff; the single-attempt
        body is idempotent, so a retry after a partial failure converges.
        """
        attempt = self._attempt_once(hour, require_complete, delete_staged)
        if self._retry_policy is None:
            return attempt()
        return self._retry_policy.call(
            attempt,
            site=f"logmover.{hour.category}.move_hour",
            clock=self._clock,
            retry_on=(HDFSUnavailableError,),
        )

    def _attempt_once(self, hour: LogHour, require_complete: bool,
                      delete_staged: bool) -> Callable[[], MoveResult]:
        """Bind one move attempt as a thunk for the retry policy."""
        def attempt() -> MoveResult:
            return self._move_hour_once(hour, require_complete, delete_staged)
        return attempt

    def _move_hour_once(self, hour: LogHour, require_complete: bool,
                        delete_staged: bool) -> MoveResult:
        """One complete move attempt (the body of :meth:`move_hour`)."""
        if require_complete and not self.hour_ready(hour):
            missing = [
                dc for dc in self.producing_datacenters(hour.category)
                if not self._staging[dc].glob_files(staging_path(dc, hour))
            ]
            raise IncompleteHourError(
                f"{hour} not transferred by datacenters: {missing}"
            )

        registry = get_default_registry()
        tracer = get_default_tracer()
        messages: List[bytes] = []
        quarantined: List[Tuple[str, str]] = []
        quarantined_to: List[str] = []
        quarantined_messages = 0
        # Per-attempt accumulators: counters flush to the registry only
        # once the attempt succeeds, so a RetryPolicy retry after a
        # failure at the rename step cannot recount the aborted
        # attempt's duplicates and quarantines.
        duplicates_skipped = 0
        check_failures: Dict[str, int] = {}
        input_files = 0
        bytes_moved = 0
        landed_ids: List[str] = []
        staged_paths: List[Tuple[str, str]] = []
        # Identities committed by OTHER hours: a resend that slipped past
        # an hour boundary must not land twice. This hour's own ledger is
        # deliberately excluded -- a re-move rebuilds the hour from
        # scratch (replace semantics), so its previous commit must not
        # suppress the rebuild.
        landed_elsewhere: Set[MessageIdentity] = set()
        for other_hour, identities in self._landed_seqs.items():
            if other_hour != hour:
                landed_elsewhere |= identities
        seen: Set[MessageIdentity] = set()
        hour_identities: Set[MessageIdentity] = set()
        for datacenter in self.producing_datacenters(hour.category):
            staging = self._staging[datacenter]
            for path in staging.glob_files(staging_path(datacenter, hour)):
                input_files += 1
                staged_paths.append((datacenter, path))
                raw = staging.open_bytes(path)
                file_frames = decode_messages(raw)
                file_ids = tracer.ids_for_path(path)
                try:
                    for check in self._checks:
                        check(path, file_frames)
                except SanityCheckError as exc:
                    quarantined.append((exc.path, exc.reason))
                    quarantined_to.append(
                        self._preserve_quarantined(datacenter, path, raw,
                                                   hour))
                    quarantined_messages += len(file_frames)
                    check_failures[datacenter] = \
                        check_failures.get(datacenter, 0) + 1
                    for trace_id in file_ids:
                        tracer.record(trace_id,
                                      obs_names.SPAN_MOVER_QUARANTINE,
                                      self._trace_now(tracer, trace_id),
                                      path=path, reason=exc.reason)
                    continue
                for frame in file_frames:
                    origin, seq, payload = decode_envelope(frame)
                    if origin is not None:
                        identity = (origin, seq)
                        if identity in seen or identity in landed_elsewhere:
                            duplicates_skipped += 1
                            continue
                        seen.add(identity)
                        hour_identities.add(identity)
                    messages.append(payload)
                    bytes_moved += len(payload)
                for trace_id in file_ids:
                    tracer.record(trace_id, obs_names.SPAN_MOVER_DEMUX,
                                  self._trace_now(tracer, trace_id),
                                  path=path, datacenter=datacenter)
                landed_ids.extend(file_ids)

        # Merge many small files into a few big ones, then slide
        # atomically. Debris from a previous crashed attempt is cleared
        # first so the re-run starts from a clean incoming directory.
        incoming_dir = hour.path(root=INCOMING_ROOT)
        if self._warehouse.exists(incoming_dir):
            self._warehouse.delete(incoming_dir, recursive=True)
        file_counts = self._write_merged(incoming_dir, messages)
        output_files = len(file_counts)
        final_dir = hour.path(root=LOGS_ROOT)
        if self._warehouse.exists(final_dir):
            self._warehouse.delete(final_dir, recursive=True)
        self._crash_point(f"logmover.{hour.category}.pre_rename")
        self._warehouse.rename(incoming_dir, final_dir)
        self._crash_point(f"logmover.{hour.category}.pre_cleanup")
        self._record_landed(hour, final_dir, landed_ids)
        if hour.category in self._columnar_categories and messages:
            self._build_segment(hour, final_dir, messages, file_counts)

        if delete_staged:
            for datacenter, path in staged_paths:
                self._staging[datacenter].delete(path)
            # Commit point: inputs are gone, so the landed identities are
            # durable facts a future hour's dedup may rely on.
            self._landed_seqs[hour] = hour_identities

        result = MoveResult(hour=hour, messages_moved=len(messages),
                            input_files=input_files,
                            output_files=output_files,
                            quarantined=quarantined,
                            quarantined_messages=quarantined_messages,
                            quarantined_to=quarantined_to,
                            duplicates_skipped=duplicates_skipped,
                            moved_at_ms=(self._clock.now()
                                         if self._clock is not None
                                         else None))
        if duplicates_skipped:
            registry.counter(obs_names.MOVER_DUPLICATES_SKIPPED,
                             category=hour.category).inc(duplicates_skipped)
        for datacenter, failures in sorted(check_failures.items()):
            registry.counter(obs_names.MOVER_CHECK_FAILURES,
                             datacenter=datacenter,
                             category=hour.category).inc(failures)
        if quarantined_to:
            registry.counter(obs_names.MOVER_QUARANTINED_FILES,
                             category=hour.category).inc(len(quarantined_to))
        registry.counter(obs_names.MOVER_HOURS_MOVED,
                         category=hour.category).inc()
        registry.counter(obs_names.MOVER_FILES_MOVED,
                         category=hour.category).inc(input_files)
        registry.counter(obs_names.MOVER_FILES_WRITTEN,
                         category=hour.category).inc(output_files)
        registry.counter(obs_names.MOVER_MESSAGES_MOVED,
                         category=hour.category).inc(len(messages))
        registry.counter(obs_names.MOVER_BYTES_MOVED,
                         category=hour.category).inc(bytes_moved)
        self.moves.append(result)
        return result

    def move_ready_hours(self, hours: Sequence[LogHour]) -> List[MoveResult]:
        """Move every hour in ``hours`` whose barrier is satisfied."""
        results = []
        for hour in hours:
            if self.hour_ready(hour):
                results.append(self.move_hour(hour))
        return results

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _crash_point(site: str) -> None:
        """Die mid-move if a crash fault is armed at ``site``.

        The crash is counted (``logmover_crashes_total``) *before*
        raising: a crashed process can't report its own death afterward,
        and the monitor's ``mover_crash`` alert keys off this counter.
        """
        rule = fault_point(site)
        if rule is not None and rule.kind == KIND_CRASH:
            get_default_registry().counter(obs_names.MOVER_CRASHES,
                                           site=site).inc()
            raise InjectedCrash(f"log mover crashed at {site}")

    def _preserve_quarantined(self, datacenter: str, path: str,
                              raw: bytes, hour: LogHour) -> str:
        """Copy one quarantined staging file into the warehouse.

        Quarantine is an accounted *sink*, not a loss: the staged bytes
        survive at ``/quarantine/<category>/<hour>/<dc>-<name>`` after
        staged cleanup, recoverable byte-for-byte for operators to
        inspect and replay. ``overwrite=True`` keeps the copy idempotent
        -- a retry or re-move of the hour re-preserves the same file.
        """
        filename = path.rsplit("/", 1)[-1]
        dest = quarantine_path(datacenter, hour, filename)
        self._warehouse.create(dest, raw, codec=self._codec, overwrite=True)
        return dest

    def _trace_now(self, tracer, trace_id: str) -> int:
        """Span timestamp: the mover's clock, else the trace's latest time.

        A clock-less mover (unit tests moving synthetic files) still
        produces well-ordered traces; it just contributes zero latency.
        """
        if self._clock is not None:
            return self._clock.now()
        spans = tracer.spans(trace_id)
        return max((s.end_ms for s in spans), default=0)

    def _record_landed(self, hour: LogHour, final_dir: str,
                       trace_ids: List[str]) -> None:
        """Close out traces at the atomic slide and observe latency."""
        tracer = get_default_tracer()
        registry = get_default_registry()
        for trace_id in trace_ids:
            now = self._trace_now(tracer, trace_id)
            tracer.record(trace_id, obs_names.SPAN_WAREHOUSE_LAND, now,
                          directory=final_dir)
            latency = tracer.end_to_end_ms(trace_id)
            if latency is not None:
                registry.histogram(
                    obs_names.PIPELINE_DELIVERY_LATENCY,
                    category=hour.category).observe(latency)

    def _write_merged(self, directory: str,
                      messages: List[bytes]) -> List[int]:
        """Write messages as a small number of large framed files.

        Returns the per-file message counts (in ``part-NNNNN`` order) so
        the segment builder can record which rows each raw file holds.
        """
        self._warehouse.mkdirs(directory)
        if not messages:
            return []
        chunks: List[List[bytes]] = [[]]
        size = 0
        for message in messages:
            if size >= self._target_file_bytes and chunks[-1]:
                chunks.append([])
                size = 0
            chunks[-1].append(message)
            size += len(message)
        for i, chunk in enumerate(chunks):
            path = f"{directory}/part-{i:05d}"
            self._warehouse.create(path, encode_messages(chunk),
                                   codec=self._codec)
        return [len(chunk) for chunk in chunks]

    def _build_segment(self, hour: LogHour, final_dir: str,
                       messages: List[bytes],
                       file_counts: List[int]) -> None:
        """Compact the just-published hour into a columnar segment.

        Runs after the atomic slide, so a crash here (or a decode
        failure on a non-client-event payload) leaves the published raw
        hour intact and merely without a segment; a re-move or the Oink
        compaction job rebuilds it.
        """
        from repro.core.event import ClientEvent
        from repro.warehouse.segment import write_hour_segment

        try:
            events = [ClientEvent.from_bytes(m) for m in messages]
        except Exception as exc:
            logger.warning("columnar segment skipped for %s: %s", hour, exc)
            return
        sources = [(f"{final_dir}/part-{i:05d}", count)
                   for i, count in enumerate(file_counts)]
        write_hour_segment(self._warehouse, final_dir, events, sources,
                           built_at_ms=(self._clock.now()
                                        if self._clock is not None else 0))
