"""Log mover: staging-to-warehouse pipeline with an atomic hourly slide."""

from repro.logmover.checks import (
    DEFAULT_CHECKS,
    SanityCheck,
    SanityCheckError,
    check_max_message_size,
    check_no_empty_messages,
    check_nonempty,
)
from repro.logmover.mover import (
    INCOMING_ROOT,
    IncompleteHourError,
    LogMover,
    MoveResult,
)

__all__ = [
    "DEFAULT_CHECKS",
    "SanityCheck",
    "SanityCheckError",
    "check_max_message_size",
    "check_no_empty_messages",
    "check_nonempty",
    "INCOMING_ROOT",
    "IncompleteHourError",
    "LogMover",
    "MoveResult",
]
