"""Log mover: staging-to-warehouse pipeline with an atomic hourly slide."""

from repro.logmover.checks import (
    DEFAULT_CHECKS,
    SanityCheck,
    SanityCheckError,
    check_max_message_size,
    check_no_empty_messages,
    check_nonempty,
)
from repro.logmover.mover import (
    INCOMING_ROOT,
    IncompleteHourError,
    LogMover,
    MoveResult,
)
from repro.logmover.sharded import ShardedLogMover
from repro.logmover.streaming import (
    BatchResult,
    PollResult,
    StreamingMover,
)

__all__ = [
    "ShardedLogMover",
    "BatchResult",
    "PollResult",
    "StreamingMover",
    "DEFAULT_CHECKS",
    "SanityCheck",
    "SanityCheckError",
    "check_max_message_size",
    "check_no_empty_messages",
    "check_nonempty",
    "INCOMING_ROOT",
    "IncompleteHourError",
    "LogMover",
    "MoveResult",
]
