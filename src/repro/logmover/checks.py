"""Sanity checks the log mover applies before publishing an hour of logs.

§2: the mover "applies certain sanity checks and transformations, such as
merging many small files into a few big ones". Checks are small callables
so deployments can add their own; each receives the decoded messages of
one staging file and raises :class:`SanityCheckError` to quarantine it.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

Message = bytes
SanityCheck = Callable[[str, Sequence[Message]], None]


class SanityCheckError(Exception):
    """Raised by a check to reject one staging file."""

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason


def check_nonempty(path: str, messages: Sequence[Message]) -> None:
    """A staging file with zero records indicates an aggregator bug."""
    if not messages:
        raise SanityCheckError(path, "empty staging file")


def check_no_empty_messages(path: str, messages: Sequence[Message]) -> None:
    """Zero-length messages are always corruption in our formats."""
    for i, message in enumerate(messages):
        if not message:
            raise SanityCheckError(path, f"empty message at index {i}")


def check_max_message_size(limit: int = 1 << 20) -> SanityCheck:
    """Build a check rejecting messages above ``limit`` bytes."""

    def check(path: str, messages: Sequence[Message]) -> None:
        for i, message in enumerate(messages):
            if len(message) > limit:
                raise SanityCheckError(
                    path, f"message {i} is {len(message)} bytes (> {limit})"
                )

    return check


DEFAULT_CHECKS: List[SanityCheck] = [
    check_nonempty,
    check_no_empty_messages,
    check_max_message_size(),
]
