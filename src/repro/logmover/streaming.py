"""Streaming micro-batch landing with event-time watermarks (§6).

The paper lands data hourly and names real-time delivery as the open
frontier ("towards real-time processing"). :class:`StreamingMover` is
that path: instead of waiting for an hour to close, it lands small
frequent micro-batches from the per-datacenter staging clusters into the
warehouse's per-hour directories, so data is *queryable minutes after it
was logged* while the hourly contract (one merged, checked, deduped
directory per hour) still holds once the hour is **sealed**.

Protocol per hour directory ``/logs/<category>/YYYY/MM/DD/HH``:

* **micro-batches** -- every ``batch_interval_ms`` the mover collects
  whatever each *reachable* datacenter has staged for the hour, applies
  the same sanity checks (quarantined files are preserved under
  ``/quarantine/...``, exactly like the hourly mover), strips envelopes
  and dedups on ``(origin, seq)``, then publishes one ``batch-NNNNN``
  file via write-to-``/_incoming`` + atomic rename. Identities commit
  at the rename (the durable publish), so a retry after a staged-cleanup
  failure dedups instead of double-landing.
* **watermark** -- per category, ``min`` over producing datacenters of
  that datacenter's *progress*: ``now - watermark_delay_ms`` while its
  staging cluster is reachable, frozen at the last live value during an
  outage. A frozen datacenter therefore holds the watermark back, and an
  unreachable staging cluster can never cause a premature seal.
* **seal** -- when the watermark passes the hour's end, the hour's batch
  files are merged into a few large ``part-NNNNN`` files (the §2
  small-file merge) staged in ``/_incoming`` and slid into place with an
  atomic directory rename, optionally followed by a columnar segment.
* **late re-open** -- staged data arriving for a sealed hour (a durable
  aggregator restarting with an old write-ahead buffer, say) lands as a
  fresh batch beside the sealed part files and clears the seal; the next
  poll re-seals via the same replace-semantics merge. Re-opens are
  counted (``streaming_late_reopens_total``) and surface through the
  data-quality auditor as ``late`` verdicts while the data is in flight.

Crash windows mirror the hourly mover's and are exposed as fault sites
``logmover.<category>.batch.pre_rename`` / ``.batch.pre_cleanup`` /
``.seal.pre_rename`` so the chaos soak can prove a re-poll converges.

Audit surface: :meth:`landed_identities` and :attr:`moves` match the
hourly :class:`~repro.logmover.mover.LogMover`, with one *cumulative*
:class:`MoveResult` per hour (updated in place as batches land), so the
chaos conservation audit and the PR 6 data-quality auditor work on a
streaming pipeline unchanged.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.clock import MILLIS_PER_HOUR, MILLIS_PER_MINUTE, LogicalClock
from repro.hdfs.layout import (
    LOGS_ROOT,
    STAGING_ROOT,
    LogHour,
    data_files,
    hour_for_millis,
    millis_for_hour,
    parse_hour_path,
    quarantine_path,
    staging_path,
)
from repro.hdfs.namenode import HDFS, HDFSUnavailableError
from repro.logmover.checks import DEFAULT_CHECKS, SanityCheck, SanityCheckError
from repro.logmover.mover import (
    INCOMING_ROOT,
    LogMover,
    MessageIdentity,
    MoveResult,
)
from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry
from repro.scribe.aggregator import decode_messages, encode_messages
from repro.scribe.message import decode_envelope

logger = logging.getLogger(__name__)

#: Default micro-batch cadence: five logical minutes.
DEFAULT_BATCH_INTERVAL_MS = 5 * MILLIS_PER_MINUTE
#: Default watermark delay: how far event time may trail a *live*
#: staging cluster before the mover considers an hour complete.
DEFAULT_WATERMARK_DELAY_MS = 2 * MILLIS_PER_MINUTE


@dataclass
class BatchResult:
    """One committed micro-batch (or batch-sized cleanup) for one hour."""

    hour: LogHour
    batch_index: Optional[int]
    messages_landed: int
    duplicates_skipped: int = 0
    quarantined_files: int = 0
    #: True when this batch landed into a previously sealed hour.
    reopened: bool = False


@dataclass
class PollResult:
    """Everything one :meth:`StreamingMover.poll` call did."""

    category: str
    now_ms: int
    watermark_ms: int
    batches: List[BatchResult] = field(default_factory=list)
    sealed: List[LogHour] = field(default_factory=list)

    @property
    def messages_landed(self) -> int:
        """Messages committed across every batch this poll landed."""
        return sum(b.messages_landed for b in self.batches)


@dataclass
class _HourState:
    """Committed per-hour streaming state."""

    hour: LogHour
    #: Committed batch count; ``batch-<n>`` files below this index are
    #: published, anything at or above it is crash debris.
    batches: int = 0
    sealed: bool = False
    seals: int = 0
    reopens: int = 0
    #: Committed ``(origin, seq)`` identities for the hour. Unlike the
    #: hourly mover, the hour's *own* ledger participates in dedup: a
    #: committed batch's staged inputs may already be deleted, so a late
    #: resend of a landed identity must be suppressed, not re-landed.
    identities: Set[MessageIdentity] = field(default_factory=set)
    #: The cumulative MoveResult exposed through ``moves``.
    result: Optional[MoveResult] = None


class StreamingMover:
    """Micro-batch mover: staged files → per-hour batches → sealed hours.

    Constructor arguments mirror :class:`~repro.logmover.mover.LogMover`
    where they overlap; ``clock`` is required because watermarks are a
    function of logical time.
    """

    def __init__(self, staging_clusters: Dict[str, HDFS], warehouse: HDFS,
                 clock: LogicalClock,
                 producers: Optional[Dict[str, Sequence[str]]] = None,
                 checks: Optional[List[SanityCheck]] = None,
                 target_file_bytes: int = 256 * 1024,
                 codec: str = "zlib",
                 batch_interval_ms: int = DEFAULT_BATCH_INTERVAL_MS,
                 watermark_delay_ms: int = DEFAULT_WATERMARK_DELAY_MS,
                 columnar_categories: Optional[Sequence[str]] = None) -> None:
        if not staging_clusters:
            raise ValueError("need at least one staging cluster")
        if batch_interval_ms <= 0 or watermark_delay_ms < 0:
            raise ValueError("bad batch interval or watermark delay")
        self._staging = dict(staging_clusters)
        self._warehouse = warehouse
        self._clock = clock
        self._producers = dict(producers or {})
        self._checks = list(DEFAULT_CHECKS if checks is None else checks)
        self._target_file_bytes = target_file_bytes
        self._codec = codec
        self._batch_interval_ms = batch_interval_ms
        self._watermark_delay_ms = watermark_delay_ms
        self._columnar_categories = frozenset(columnar_categories or ())
        self._states: Dict[LogHour, _HourState] = {}
        #: (category, datacenter) -> last observed progress (ms). Frozen
        #: while the datacenter's staging cluster is unreachable.
        self._progress: Dict[Tuple[str, str], int] = {}
        #: category -> earliest logical instant the next batch may land.
        self._next_batch_ms: Dict[str, int] = {}
        self.moves: List[MoveResult] = []

    @property
    def batch_interval_ms(self) -> int:
        """The configured micro-batch cadence."""
        return self._batch_interval_ms

    # -- audit surface (mirrors LogMover) --------------------------------
    def producing_datacenters(self, category: str) -> List[str]:
        """Datacenters expected to stage data for a category."""
        declared = self._producers.get(category)
        if declared is not None:
            return sorted(declared)
        return sorted(self._staging)

    def landed_identities(
            self, hour: Optional[LogHour] = None) -> FrozenSet[MessageIdentity]:
        """Committed ``(origin, seq)`` identities, for one hour or all."""
        if hour is not None:
            state = self._states.get(hour)
            return frozenset(state.identities if state else ())
        out: Set[MessageIdentity] = set()
        for state in self._states.values():
            out |= state.identities
        return frozenset(out)

    def sealed(self, hour: LogHour) -> bool:
        """Has the hour been sealed (and not re-opened since)?"""
        state = self._states.get(hour)
        return state.sealed if state else False

    def hours_sealed(self) -> List[LogHour]:
        """Every hour currently in the sealed state, sorted."""
        return sorted(h for h, s in self._states.items() if s.sealed)

    def late_reopens(self) -> int:
        """Total sealed-hour re-opens across all hours."""
        return sum(s.reopens for s in self._states.values())

    def unsealed_hours(self) -> List[LogHour]:
        """Hours that landed at least one batch but are not sealed."""
        return sorted(h for h, s in self._states.items()
                      if s.batches > 0 and not s.sealed)

    # -- watermarks ------------------------------------------------------
    def watermark(self, category: str) -> int:
        """The category's event-time watermark (ms since the epoch).

        ``min`` over producing datacenters of each one's progress; a
        datacenter never yet observed live contributes 0, so nothing
        seals before every producer has been seen at least once.
        """
        return min((self._progress.get((category, dc), 0)
                    for dc in self.producing_datacenters(category)),
                   default=0)

    def _advance_watermark(self, category: str, now: int,
                           live: Dict[str, bool]) -> int:
        registry = get_default_registry()
        for datacenter in self.producing_datacenters(category):
            if live.get(datacenter):
                self._progress[(category, datacenter)] = \
                    now - self._watermark_delay_ms
        watermark = self.watermark(category)
        registry.gauge(obs_names.STREAMING_WATERMARK_LAG,
                       category=category).set(max(0, now - watermark))
        return watermark

    def _staging_live(self, datacenter: str) -> bool:
        """Probe the datacenter's staging write path.

        Reads never fail in the simulated HDFS; outages surface on the
        mutation path. ``mkdirs`` on the staging root is an idempotent
        mutation, so it is an honest liveness probe: if it raises, batch
        cleanup (the ``delete`` of staged inputs) would raise too.
        """
        try:
            self._staging[datacenter].mkdirs(f"{STAGING_ROOT}/{datacenter}")
        except HDFSUnavailableError:
            return False
        return True

    # -- the poll --------------------------------------------------------
    def poll(self, category: str, force: bool = False) -> PollResult:
        """One streaming turn: land due micro-batches, advance the
        watermark, seal (or re-seal) every hour the watermark passed.

        Batches land at most every ``batch_interval_ms`` unless
        ``force=True``; the watermark and sealing always run, so a quiet
        poll still closes hours out.
        """
        now = self._clock.now()
        result = PollResult(category=category, now_ms=now, watermark_ms=0)
        live = {dc: self._staging_live(dc)
                for dc in self.producing_datacenters(category)}
        if force or now >= self._next_batch_ms.get(category, 0):
            self._next_batch_ms[category] = now + self._batch_interval_ms
            for hour in self._staged_hours(category, live):
                batch = self._land_batch(hour, live)
                if batch is not None:
                    result.batches.append(batch)
        result.watermark_ms = self._advance_watermark(category, now, live)
        for hour, state in sorted(self._states.items()):
            if (hour.category == category and not state.sealed
                    and state.batches > 0
                    and millis_for_hour(hour) + MILLIS_PER_HOUR
                    <= result.watermark_ms):
                self._seal_hour(state)
                result.sealed.append(hour)
        return result

    def _staged_hours(self, category: str,
                      live: Dict[str, bool]) -> List[LogHour]:
        """Every hour with staged data in a reachable datacenter."""
        hours: Set[LogHour] = set()
        for datacenter, ok in live.items():
            if not ok:
                continue
            staging = self._staging[datacenter]
            prefix = f"{STAGING_ROOT}/{datacenter}/{category}"
            for path in staging.glob_files(prefix):
                hour = parse_hour_path(path.rsplit("/", 1)[0])
                if hour is not None:
                    hours.add(hour)
        return sorted(hours)

    # -- micro-batch landing ---------------------------------------------
    def _land_batch(self, hour: LogHour,
                    live: Dict[str, bool]) -> Optional[BatchResult]:
        """Land one micro-batch for one hour from every reachable DC."""
        state = self._state_for(hour)
        registry = get_default_registry()
        final_dir = hour.path(root=LOGS_ROOT)
        incoming_path = (f"{hour.path(root=INCOMING_ROOT)}"
                         f"/batch-{state.batches:05d}")
        # Clear debris from a crashed previous attempt: an uncommitted
        # incoming file, or (belt and braces) a final batch file at or
        # above the committed counter.
        if self._warehouse.exists(incoming_path):
            self._warehouse.delete(incoming_path)
        for path in self._warehouse.glob_files(final_dir):
            name = path.rsplit("/", 1)[-1]
            if name.startswith("batch-") and \
                    int(name.split("-", 1)[1]) >= state.batches:
                self._warehouse.delete(path)

        landed_elsewhere: Set[MessageIdentity] = set()
        for other, other_state in self._states.items():
            if other != hour:
                landed_elsewhere |= other_state.identities
        seen: Set[MessageIdentity] = set()
        messages: List[bytes] = []
        batch_identities: Set[MessageIdentity] = set()
        staged_paths: List[Tuple[str, str]] = []
        duplicates = 0
        quarantined: List[Tuple[str, str]] = []
        quarantined_to: List[str] = []
        quarantined_messages = 0
        check_failures: Dict[str, int] = {}
        input_files = 0
        for datacenter in self.producing_datacenters(hour.category):
            if not live.get(datacenter):
                continue  # frozen watermark keeps the hour open for it
            staging = self._staging[datacenter]
            for path in staging.glob_files(staging_path(datacenter, hour)):
                input_files += 1
                staged_paths.append((datacenter, path))
                raw = staging.open_bytes(path)
                file_frames = decode_messages(raw)
                try:
                    for check in self._checks:
                        check(path, file_frames)
                except SanityCheckError as exc:
                    quarantined.append((exc.path, exc.reason))
                    quarantined_to.append(self._preserve_quarantined(
                        datacenter, path, raw, hour))
                    quarantined_messages += len(file_frames)
                    check_failures[datacenter] = \
                        check_failures.get(datacenter, 0) + 1
                    continue
                for frame in file_frames:
                    origin, seq, payload = decode_envelope(frame)
                    if origin is not None:
                        identity = (origin, seq)
                        if (identity in seen
                                or identity in state.identities
                                or identity in landed_elsewhere):
                            duplicates += 1
                            continue
                        seen.add(identity)
                        batch_identities.add(identity)
                    messages.append(payload)
        if not staged_paths:
            return None

        reopened = state.sealed and bool(messages)
        batch_index: Optional[int] = None
        if messages:
            self._warehouse.create(incoming_path, encode_messages(messages),
                                   codec=self._codec)
            LogMover._crash_point(
                f"logmover.{hour.category}.batch.pre_rename")
            self._warehouse.mkdirs(final_dir)
            final_path = f"{final_dir}/batch-{state.batches:05d}"
            self._warehouse.rename(incoming_path, final_path)
            # Commit point: the rename is the durable publish, so the
            # identities (and batch counter) become facts *now* -- a
            # failure during staged cleanup must dedup, not re-land.
            batch_index = state.batches
            state.batches += 1
            state.identities |= batch_identities
            result_row = self._result_for(state)
            result_row.messages_moved += len(messages)
            result_row.moved_at_ms = self._clock.now()
            if reopened:
                state.sealed = False
                state.reopens += 1
                registry.counter(obs_names.STREAMING_LATE_REOPENS,
                                 category=hour.category).inc()
            registry.counter(obs_names.STREAMING_BATCHES_LANDED,
                             category=hour.category).inc()
            registry.counter(obs_names.MOVER_MESSAGES_MOVED,
                             category=hour.category).inc(len(messages))
            registry.counter(obs_names.MOVER_BYTES_MOVED,
                             category=hour.category).inc(
                                 sum(len(m) for m in messages))
        LogMover._crash_point(f"logmover.{hour.category}.batch.pre_cleanup")
        for datacenter, path in staged_paths:
            self._staging[datacenter].delete(path)

        # Cleanup-side accounting: staged inputs are counted by the
        # attempt that actually deletes them, so a crash between publish
        # and cleanup never double-counts a quarantined file.
        result_row = self._result_for(state)
        result_row.input_files += input_files
        result_row.quarantined.extend(quarantined)
        result_row.quarantined_to.extend(quarantined_to)
        result_row.quarantined_messages += quarantined_messages
        result_row.duplicates_skipped += duplicates
        if duplicates:
            registry.counter(obs_names.MOVER_DUPLICATES_SKIPPED,
                             category=hour.category).inc(duplicates)
        for datacenter, failures in sorted(check_failures.items()):
            registry.counter(obs_names.MOVER_CHECK_FAILURES,
                             datacenter=datacenter,
                             category=hour.category).inc(failures)
        if quarantined_to:
            registry.counter(obs_names.MOVER_QUARANTINED_FILES,
                             category=hour.category).inc(len(quarantined_to))
        registry.counter(obs_names.MOVER_FILES_MOVED,
                         category=hour.category).inc(input_files)
        return BatchResult(hour=hour, batch_index=batch_index,
                           messages_landed=len(messages),
                           duplicates_skipped=duplicates,
                           quarantined_files=len(quarantined),
                           reopened=reopened)

    def _preserve_quarantined(self, datacenter: str, path: str,
                              raw: bytes, hour: LogHour) -> str:
        """Copy one quarantined staging file into ``/quarantine/...``."""
        filename = path.rsplit("/", 1)[-1]
        dest = quarantine_path(datacenter, hour, filename)
        self._warehouse.create(dest, raw, codec=self._codec, overwrite=True)
        return dest

    def _result_for(self, state: _HourState) -> MoveResult:
        """The hour's cumulative MoveResult, created on first use.

        One result per hour, mutated in place, keeps both audit
        consumers honest: the chaos audit sums over ``moves`` without
        double counting, and the data-quality auditor's last-per-hour
        lookup sees the hour's full cumulative state.
        """
        if state.result is None:
            state.result = MoveResult(hour=state.hour, messages_moved=0,
                                      input_files=0, output_files=0,
                                      moved_at_ms=self._clock.now())
            self.moves.append(state.result)
        return state.result

    def _state_for(self, hour: LogHour) -> _HourState:
        state = self._states.get(hour)
        if state is None:
            state = _HourState(hour=hour)
            self._states[hour] = state
        return state

    # -- sealing ---------------------------------------------------------
    def _seal_hour(self, state: _HourState) -> None:
        """Finalize the hour: merge batches into part files atomically.

        Idempotent and crash-convergent: debris in ``/_incoming`` is
        rebuilt from the still-published hour, and the one
        unrecoverable-looking window (final directory deleted, merged
        directory not yet renamed -- a warehouse hiccup between the two
        namespace operations) is repaired by the recovery branch that
        renames the surviving merged directory into place.
        """
        hour = state.hour
        final_dir = hour.path(root=LOGS_ROOT)
        incoming_dir = hour.path(root=INCOMING_ROOT)
        registry = get_default_registry()
        if not self._warehouse.is_dir(final_dir) and \
                self._warehouse.is_dir(incoming_dir):
            # Recovery: a previous seal lost the race between delete and
            # rename; the merged directory holds the hour's full content.
            self._warehouse.rename(incoming_dir, final_dir)
        else:
            messages: List[bytes] = []
            for path in sorted(data_files(self._warehouse, final_dir)):
                messages.extend(
                    decode_messages(self._warehouse.open_bytes(path)))
            if self._warehouse.exists(incoming_dir):
                self._warehouse.delete(incoming_dir, recursive=True)
            file_counts = self._write_merged(incoming_dir, messages)
            LogMover._crash_point(
                f"logmover.{hour.category}.seal.pre_rename")
            self._warehouse.delete(final_dir, recursive=True)
            self._warehouse.rename(incoming_dir, final_dir)
            if state.result is not None:
                state.result.output_files = len(file_counts)
                state.result.moved_at_ms = self._clock.now()
            if hour.category in self._columnar_categories and messages:
                self._build_segment(hour, final_dir, messages, file_counts)
        state.sealed = True
        state.seals += 1
        registry.counter(obs_names.STREAMING_HOURS_SEALED,
                         category=hour.category).inc()
        registry.counter(obs_names.MOVER_HOURS_MOVED,
                         category=hour.category).inc()

    def _write_merged(self, directory: str,
                      messages: List[bytes]) -> List[int]:
        """Write messages as a small number of large framed files."""
        self._warehouse.mkdirs(directory)
        if not messages:
            return []
        chunks: List[List[bytes]] = [[]]
        size = 0
        for message in messages:
            if size >= self._target_file_bytes and chunks[-1]:
                chunks.append([])
                size = 0
            chunks[-1].append(message)
            size += len(message)
        for i, chunk in enumerate(chunks):
            path = f"{directory}/part-{i:05d}"
            self._warehouse.create(path, encode_messages(chunk),
                                   codec=self._codec)
        return [len(chunk) for chunk in chunks]

    def _build_segment(self, hour: LogHour, final_dir: str,
                       messages: List[bytes],
                       file_counts: List[int]) -> None:
        """Compact the just-sealed hour into a columnar segment."""
        from repro.core.event import ClientEvent
        from repro.warehouse.segment import write_hour_segment

        try:
            events = [ClientEvent.from_bytes(m) for m in messages]
        except Exception as exc:
            logger.warning("columnar segment skipped for %s: %s", hour, exc)
            return
        sources = [(f"{final_dir}/part-{i:05d}", count)
                   for i, count in enumerate(file_counts)]
        write_hour_segment(self._warehouse, final_dir, events, sources,
                           built_at_ms=self._clock.now())

    # -- finishing -------------------------------------------------------
    def run_until_sealed(self, category: str, max_steps: int = 240,
                         step_ms: int = MILLIS_PER_MINUTE,
                         on_poll=None) -> List[PollResult]:
        """Advance the clock and poll until every landed hour is sealed
        and no staged data remains. The shutdown path for soaks and
        benchmarks; bounded by ``max_steps`` minutes of logical time.
        """
        results: List[PollResult] = []
        for _ in range(max_steps):
            result = self.poll(category, force=True)
            results.append(result)
            if on_poll is not None:
                on_poll(result)
            live = {dc: self._staging_live(dc)
                    for dc in self.producing_datacenters(category)}
            pending = self._staged_hours(category, live)
            unsealed = [h for h, s in self._states.items()
                        if h.category == category and s.batches > 0
                        and not s.sealed]
            if not pending and not unsealed:
                return results
            self._clock.advance(step_ms)
        raise RuntimeError(
            f"streaming mover failed to drain {category!r} within "
            f"{max_steps} steps")


def hour_for_entry_millis(category: str, millis: int) -> LogHour:
    """The hour an entry logged at ``millis`` belongs to (re-export)."""
    return hour_for_millis(category, millis)
