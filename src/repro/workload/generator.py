"""Seeded synthetic event-stream generation.

Produces a day of :class:`ClientEvent` traffic with the gross statistics
of the paper's workload: diurnal volume, power-law per-user activity,
Markov session structure per client, a signup funnel for new users, and
verbose per-event ``event_details`` payloads (the verbosity that makes
raw client event logs ~50x larger than session sequences).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.clock import MILLIS_PER_HOUR, MILLIS_PER_MINUTE, MILLIS_PER_SECOND
from repro.core.event import CLIENT_EVENTS_CATEGORY, ClientEvent, EventInitiator
from repro.hdfs.layout import LogHour, millis_for_hour
from repro.hdfs.namenode import HDFS
from repro.workload.behavior import (
    MarkovBehavior,
    build_browsing_behavior,
    build_signup_behavior,
)
from repro.workload.population import UserPopulation, UserProfile

#: Relative traffic weight per hour of day (diurnal shape).
DIURNAL = (2, 1, 1, 1, 1, 2, 3, 5, 7, 8, 8, 8,
           9, 9, 9, 8, 8, 9, 10, 10, 9, 7, 5, 3)


@dataclass
class DayWorkload:
    """One generated day: the events plus generation-time ground truth."""

    date: Tuple[int, int, int]
    events: List[ClientEvent]
    sessions_generated: int
    funnel_entries: int

    @property
    def num_events(self) -> int:
        """Total events generated for the day."""
        return len(self.events)


class WorkloadGenerator:
    """Deterministic generator over a :class:`UserPopulation`."""

    def __init__(self, num_users: int = 200, seed: int = 0,
                 sessions_per_user: float = 2.0,
                 details_verbosity: int = 6,
                 multi_device_fraction: float = 0.0) -> None:
        """``multi_device_fraction`` gives that share of users a second
        client (e.g. web by day, iphone by night). Their concurrent
        sessions are what the legacy join-by-user-id pipeline merges
        incorrectly (§3.1); the unified format keeps them apart via
        distinct session ids."""
        if not 0.0 <= multi_device_fraction <= 1.0:
            raise ValueError("multi_device_fraction must be in [0, 1]")
        self.seed = seed
        self.population = UserPopulation(num_users, seed=seed)
        self._sessions_per_user = sessions_per_user
        self._verbosity = details_verbosity
        self._multi_device = multi_device_fraction
        self._browsing: Dict[str, MarkovBehavior] = {}
        self._signup: Dict[str, MarkovBehavior] = {}

    # -- behavior lookup -------------------------------------------------
    def _browsing_model(self, client: str) -> MarkovBehavior:
        if client not in self._browsing:
            self._browsing[client] = build_browsing_behavior(client)
        return self._browsing[client]

    def _signup_model(self, client: str) -> MarkovBehavior:
        if client not in self._signup:
            self._signup[client] = build_signup_behavior(client)
        return self._signup[client]

    # -- generation --------------------------------------------------------
    def generate_day(self, year: int, month: int, day: int) -> DayWorkload:
        """Generate one calendar day of traffic."""
        rng = random.Random(f"{self.seed}:{year:04d}-{month:02d}-{day:02d}")
        day_start = millis_for_hour(
            LogHour(CLIENT_EVENTS_CATEGORY, year, month, day, 0)
        )
        events: List[ClientEvent] = []
        sessions = 0
        funnel_entries = 0

        from repro.workload.population import CLIENTS

        for user in self.population:
            expected = self._sessions_per_user * min(user.activity, 10.0) / 2.0
            num_sessions = _poisson(rng, expected)
            did_signup = False
            secondary = None
            if self._multi_device and rng.random() < self._multi_device:
                others = [c for c, __ in CLIENTS if c != user.client]
                secondary = rng.choice(others)
            for k in range(num_sessions):
                start = day_start + _diurnal_offset_ms(rng)
                client = user.client
                if secondary is not None and rng.random() < 0.4:
                    client = secondary
                if user.is_new and not did_signup:
                    model = self._signup_model(client)
                    did_signup = True
                    funnel_entries += 1
                else:
                    model = self._browsing_model(client)
                session_events = self._emit_session(
                    rng, user, model, start, session_index=k,
                    date=(year, month, day),
                )
                if session_events:
                    events.append(session_events[0])
                    events.extend(session_events[1:])
                    sessions += 1

        # Logs arrive only partially time-ordered (§2): shuffle lightly
        # within the day to mimic aggregator interleaving.
        events.sort(key=lambda e: (e.timestamp // (10 * MILLIS_PER_MINUTE),
                                   e.user_id))
        return DayWorkload(date=(year, month, day), events=events,
                           sessions_generated=sessions,
                           funnel_entries=funnel_entries)

    def _emit_session(self, rng: random.Random, user: UserProfile,
                      model: MarkovBehavior, start_ms: int,
                      session_index: int,
                      date: Tuple[int, int, int]) -> List[ClientEvent]:
        names = model.sample(rng)
        if not names:
            return []
        session_id = (f"{user.user_id:08d}-{date[0]:04d}{date[1]:02d}"
                      f"{date[2]:02d}-{session_index:02d}")
        events: List[ClientEvent] = []
        timestamp = start_ms
        for i, name in enumerate(names):
            if i:
                timestamp += _inter_event_gap_ms(rng)
            initiator = (EventInitiator.CLIENT_APP
                         if rng.random() < 0.06
                         else EventInitiator.CLIENT_USER)
            events.append(ClientEvent.make(
                name, user_id=user.user_id, session_id=session_id,
                ip=user.ip, timestamp=timestamp, initiator=initiator,
                details=self._details(rng, name),
                country=user.country, logged_in=user.logged_in,
            ))
        return events

    def _details(self, rng: random.Random, name: str) -> Dict[str, str]:
        """Verbose event-specific key-value payload.

        "the event details field holds event-specific details as key-value
        pairs ... the id of the profile clicked on ... the target URL,
        rank in the result list" (§3.2).
        """
        details: Dict[str, str] = {}
        action = name.rsplit(":", 1)[1]
        if action in ("impression", "view"):
            details["tweet_id"] = str(rng.randint(10 ** 15, 10 ** 16))
            details["author_id"] = str(rng.randint(1, 10 ** 9))
            details["position"] = str(rng.randint(0, 50))
        elif action in ("click", "profile_click", "expand", "submit"):
            details["target_id"] = str(rng.randint(1, 10 ** 9))
            details["target_url"] = (
                f"https://twitter.com/intent/{action}/"
                f"{rng.randint(10 ** 9, 10 ** 10)}"
            )
            details["rank"] = str(rng.randint(0, 20))
        elif action == "query":
            details["raw_query"] = " ".join(
                rng.choice(_QUERY_TERMS) for __ in range(rng.randint(1, 4))
            )
            details["result_count"] = str(rng.randint(0, 500))
        elif action in ("follow", "favorite", "reply", "retweet"):
            details["target_user_id"] = str(rng.randint(1, 10 ** 9))
        # Common envelope fields every client attaches.
        for i in range(self._verbosity):
            details[f"ctx_{i}"] = format(rng.getrandbits(48), "012x")
        details["client_version"] = f"4.{rng.randint(0, 9)}.{rng.randint(0, 20)}"
        details["lang"] = rng.choice(("en", "ja", "pt", "es", "de", "fr"))
        return details


_QUERY_TERMS = ("news", "sports", "music", "election", "weather", "tech",
                "movie", "football", "earthquake", "olympics")


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's algorithm; adequate for small lambda."""
    if lam <= 0:
        return 0
    import math

    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def _diurnal_offset_ms(rng: random.Random) -> int:
    hour = rng.choices(range(24), weights=DIURNAL)[0]
    return (hour * MILLIS_PER_HOUR
            + rng.randint(0, MILLIS_PER_HOUR - 1))


def _inter_event_gap_ms(rng: random.Random) -> int:
    """Gap between consecutive events: ~1 s to a few minutes, always under
    the 30-minute session cutoff."""
    gap = rng.lognormvariate(1.8, 1.1)  # median ~6 s
    seconds = max(0.5, min(gap, 8 * 60))
    return int(seconds * MILLIS_PER_SECOND)


def load_warehouse_day(warehouse: HDFS, workload: DayWorkload,
                       events_per_file: int = 2_000,
                       codec: str = "zlib") -> str:
    """Deposit a generated day into warehouse layout (as the mover would)."""
    from repro.core.builder import write_day_events

    year, month, day = workload.date
    return write_day_events(warehouse, workload.events, year, month, day,
                            events_per_file=events_per_file, codec=codec)
