"""Markov user-behavior models over the standard client event namespace.

The transition structure is hand-crafted to reproduce the statistical
properties the paper's analyses depend on:

- impressions dominate clicks (realistic CTR/FTR, §4.1);
- strong local sequential dependence (n-gram perplexity falls with n, §5.4);
- planted "activity collocates" -- e.g. a search query is almost always
  followed by a results impression (PMI/LLR surface them, §5.4);
- a multi-step signup funnel with per-stage abandonment (§5.3);
- a consistent design language: the same pages/sections/actions exist on
  every client, so "an impression means the same thing, whether on the
  web client or the iPhone" (§3.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.names import EventName
from repro.core.namespace import ViewHierarchy

END = "__end__"

#: The tree every client implements (consistent design language, §3.2).
STANDARD_TREE: Dict = {
    "home": {
        "timeline": {
            "stream": {
                "tweet": ["impression", "click", "expand"],
                "avatar": ["profile_click"],
                "retweet_button": ["click"],
            },
        },
        "mentions": {
            "stream": {
                "tweet": ["impression", "click"],
                "avatar": ["profile_click"],
            },
        },
        "suggestions": {
            "who_to_follow": {
                "user_card": ["impression", "click", "follow"],
            },
        },
    },
    "search": {
        "": {
            "search_box": {
                "input": ["query"],
            },
            "results": {
                "result": ["impression", "click"],
            },
        },
    },
    "profile": {
        "": {
            "header": {
                "follow_button": ["click", "impression"],
            },
            "tweets": {
                "tweet": ["impression", "click"],
            },
        },
    },
    "discover": {
        "trends": {
            "trend_list": {
                "trend": ["impression", "click"],
            },
        },
    },
    "tweet_detail": {
        "": {
            "detail": {
                "tweet": ["impression", "reply", "favorite"],
                "avatar": ["profile_click"],
            },
        },
    },
    "signup": {
        "step_credentials": {"form": {"fields": ["view", "submit"]}},
        "step_interests": {"form": {"fields": ["view", "submit"]}},
        "step_suggestions": {"form": {"fields": ["view", "submit"]}},
        "step_import": {"form": {"fields": ["view", "submit"]}},
        "step_confirm": {"form": {"fields": ["view", "submit"]}},
    },
}


def standard_hierarchy(client: str) -> ViewHierarchy:
    """The standard view hierarchy instantiated for one client."""
    return ViewHierarchy(client, STANDARD_TREE)


def _name(client: str, page: str, section: str, component: str,
          element: str, action: str) -> str:
    return str(EventName(client, page, section, component, element, action))


@dataclass
class MarkovBehavior:
    """A Markov model over event names with an END state.

    Mostly first-order; ``context_transitions`` optionally overrides the
    next-state distribution for specific (previous, current) pairs,
    giving the stream genuine second-order structure (a trigram model
    then beats a bigram on held-out sessions, the §5.4 "decaying
    influence of earlier actions").
    """

    client: str
    transitions: Dict[str, List[Tuple[str, float]]]
    initial: List[Tuple[str, float]]
    context_transitions: Dict[Tuple[str, str],
                              List[Tuple[str, float]]] = field(
        default_factory=dict)

    def sample(self, rng: random.Random, max_events: int = 200) -> List[str]:
        """Draw one session's event-name sequence."""
        sequence: List[str] = []
        previous: Optional[str] = None
        state = _draw(rng, self.initial)
        while state != END and len(sequence) < max_events:
            sequence.append(state)
            options = self.context_transitions.get((previous, state)) \
                if previous is not None else None
            if options is None:
                options = self.transitions.get(state)
            if not options:
                break
            previous = state
            state = _draw(rng, options)
        return sequence

    def states(self) -> List[str]:
        """All event names the model can emit."""
        out = {name for name, __ in self.initial if name != END}
        for state, options in self.transitions.items():
            out.add(state)
            out.update(name for name, __ in options if name != END)
        out.discard(END)
        return sorted(out)


def _draw(rng: random.Random, options: Sequence[Tuple[str, float]]) -> str:
    total = sum(weight for __, weight in options)
    roll = rng.random() * total
    cumulative = 0.0
    for value, weight in options:
        cumulative += weight
        if roll < cumulative:
            return value
    return options[-1][0]


def build_browsing_behavior(client: str,
                            second_order: bool = False) -> MarkovBehavior:
    """The main browsing model for returning users of one client.

    With ``second_order`` a few transitions depend on the previous TWO
    events: a second consecutive search-result impression triples the
    click rate (users click after scanning a couple of results), and a
    click right after a profile visit strongly returns home. Off by
    default to keep the base workload exactly first-order.
    """
    c = client
    tweet_imp = _name(c, "home", "timeline", "stream", "tweet", "impression")
    tweet_click = _name(c, "home", "timeline", "stream", "tweet", "click")
    tweet_expand = _name(c, "home", "timeline", "stream", "tweet", "expand")
    avatar_click = _name(c, "home", "timeline", "stream", "avatar",
                         "profile_click")
    retweet = _name(c, "home", "timeline", "stream", "retweet_button",
                    "click")
    mention_imp = _name(c, "home", "mentions", "stream", "tweet",
                        "impression")
    mention_click = _name(c, "home", "mentions", "stream", "tweet", "click")
    mention_avatar = _name(c, "home", "mentions", "stream", "avatar",
                           "profile_click")
    wtf_imp = _name(c, "home", "suggestions", "who_to_follow", "user_card",
                    "impression")
    wtf_click = _name(c, "home", "suggestions", "who_to_follow", "user_card",
                      "click")
    wtf_follow = _name(c, "home", "suggestions", "who_to_follow",
                       "user_card", "follow")
    query = _name(c, "search", "", "search_box", "input", "query")
    result_imp = _name(c, "search", "", "results", "result", "impression")
    result_click = _name(c, "search", "", "results", "result", "click")
    profile_follow = _name(c, "profile", "", "header", "follow_button",
                           "click")
    profile_follow_imp = _name(c, "profile", "", "header", "follow_button",
                               "impression")
    profile_tweet_imp = _name(c, "profile", "", "tweets", "tweet",
                              "impression")
    profile_tweet_click = _name(c, "profile", "", "tweets", "tweet", "click")
    trend_imp = _name(c, "discover", "trends", "trend_list", "trend",
                      "impression")
    trend_click = _name(c, "discover", "trends", "trend_list", "trend",
                        "click")
    detail_imp = _name(c, "tweet_detail", "", "detail", "tweet",
                       "impression")
    detail_reply = _name(c, "tweet_detail", "", "detail", "tweet", "reply")
    detail_fav = _name(c, "tweet_detail", "", "detail", "tweet", "favorite")
    detail_avatar = _name(c, "tweet_detail", "", "detail", "avatar",
                          "profile_click")

    transitions: Dict[str, List[Tuple[str, float]]] = {
        # Timeline browsing: long impression runs with occasional clicks.
        tweet_imp: [(tweet_imp, 55), (tweet_click, 6), (tweet_expand, 4),
                    (avatar_click, 2), (retweet, 2), (mention_imp, 5),
                    (wtf_imp, 6), (query, 4), (trend_imp, 3), (END, 13)],
        tweet_click: [(detail_imp, 70), (tweet_imp, 20), (END, 10)],
        tweet_expand: [(detail_imp, 55), (tweet_imp, 35), (END, 10)],
        avatar_click: [(profile_tweet_imp, 55), (profile_follow_imp, 35),
                       (END, 10)],
        retweet: [(tweet_imp, 85), (END, 15)],
        # Mentions tab.
        mention_imp: [(mention_imp, 50), (mention_click, 8),
                      (mention_avatar, 4), (tweet_imp, 20), (END, 18)],
        mention_click: [(detail_imp, 70), (mention_imp, 20), (END, 10)],
        mention_avatar: [(profile_tweet_imp, 60), (profile_follow_imp, 30),
                         (END, 10)],
        # Who-to-follow: the paper's canonical CTR/FTR feature.
        wtf_imp: [(wtf_imp, 40), (wtf_click, 7), (wtf_follow, 5),
                  (tweet_imp, 30), (END, 18)],
        wtf_click: [(profile_tweet_imp, 45), (profile_follow_imp, 35),
                    (wtf_imp, 12), (END, 8)],
        wtf_follow: [(wtf_imp, 60), (tweet_imp, 28), (END, 12)],
        # Search: "query then results impression" is the planted collocate.
        query: [(result_imp, 92), (query, 4), (END, 4)],
        result_imp: [(result_imp, 45), (result_click, 14), (query, 8),
                     (tweet_imp, 15), (END, 18)],
        result_click: [(detail_imp, 45), (profile_tweet_imp, 25),
                       (result_imp, 20), (END, 10)],
        # Profile visits; follow-through.
        profile_tweet_imp: [(profile_tweet_imp, 45),
                            (profile_tweet_click, 8),
                            (profile_follow_imp, 15), (tweet_imp, 18),
                            (END, 14)],
        profile_tweet_click: [(detail_imp, 60), (profile_tweet_imp, 28),
                              (END, 12)],
        profile_follow_imp: [(profile_follow, 22), (profile_tweet_imp, 48),
                             (END, 30)],
        profile_follow: [(tweet_imp, 55), (profile_tweet_imp, 30),
                         (END, 15)],
        # Discover.
        trend_imp: [(trend_imp, 45), (trend_click, 14), (tweet_imp, 22),
                    (END, 19)],
        trend_click: [(result_imp, 62), (trend_imp, 22), (END, 16)],
        # Tweet detail: expansions lead to profile views (§4.1's example
        # navigation question).
        detail_imp: [(detail_reply, 6), (detail_fav, 9),
                     (detail_avatar, 14), (tweet_imp, 40), (END, 31)],
        detail_reply: [(tweet_imp, 65), (END, 35)],
        detail_fav: [(tweet_imp, 60), (detail_avatar, 12), (END, 28)],
        detail_avatar: [(profile_tweet_imp, 70), (profile_follow_imp, 20),
                        (END, 10)],
    }
    initial = [(tweet_imp, 62), (mention_imp, 12), (query, 9),
               (trend_imp, 7), (wtf_imp, 6), (profile_tweet_imp, 4)]
    context: Dict[Tuple[str, str], List[Tuple[str, float]]] = {}
    if second_order:
        # After scanning two results in a row, users click far more.
        context[(result_imp, result_imp)] = [
            (result_click, 45), (result_imp, 25), (query, 8),
            (tweet_imp, 10), (END, 12)]
        # A timeline click arriving from the mentions tab goes back there.
        context[(mention_imp, mention_click)] = [
            (mention_imp, 70), (detail_imp, 20), (END, 10)]
        # Deep impression runs get "stickier" the longer they run.
        context[(tweet_imp, tweet_imp)] = [
            (tweet_imp, 70), (tweet_click, 5), (tweet_expand, 3),
            (wtf_imp, 4), (query, 3), (END, 15)]
    return MarkovBehavior(client=c, transitions=transitions,
                          initial=initial, context_transitions=context)


#: Ordered signup-funnel stage templates; instantiate per client with
#: :func:`signup_funnel_stages`.
_FUNNEL_PAGES = ("step_credentials", "step_interests", "step_suggestions",
                 "step_import", "step_confirm")

#: Per-stage continuation probability (the funnel's abandonment profile).
FUNNEL_CONTINUE = (0.82, 0.74, 0.80, 0.62, 0.90)


def signup_funnel_stages(client: str) -> List[str]:
    """The submit events that mark completion of each funnel stage."""
    return [_name(client, "signup", page, "form", "fields", "submit")
            for page in _FUNNEL_PAGES]


def build_signup_behavior(client: str) -> MarkovBehavior:
    """The signup-flow model for new users: view -> submit per stage, with
    abandonment between stages (§5.3's funnel)."""
    transitions: Dict[str, List[Tuple[str, float]]] = {}
    views = [_name(client, "signup", page, "form", "fields", "view")
             for page in _FUNNEL_PAGES]
    submits = signup_funnel_stages(client)
    for i, (view, submit) in enumerate(zip(views, submits)):
        continue_p = FUNNEL_CONTINUE[i]
        transitions[view] = [(submit, continue_p), (END, 1.0 - continue_p)]
        if i + 1 < len(views):
            transitions[submit] = [(views[i + 1], 0.97), (END, 0.03)]
        else:
            # Completing signup drops the user onto the home timeline.
            home = _name(client, "home", "timeline", "stream", "tweet",
                         "impression")
            transitions[submit] = [(home, 0.9), (END, 0.1)]
            transitions[home] = [(home, 0.7), (END, 0.3)]
    return MarkovBehavior(client=client, transitions=transitions,
                          initial=[(views[0], 1.0)])
