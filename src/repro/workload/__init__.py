"""Synthetic workload: population, behavior models, event generation."""

from repro.workload.population import (
    CLIENTS,
    COUNTRIES,
    UserPopulation,
    UserProfile,
)
from repro.workload.behavior import (
    END,
    FUNNEL_CONTINUE,
    MarkovBehavior,
    STANDARD_TREE,
    build_browsing_behavior,
    build_signup_behavior,
    signup_funnel_stages,
    standard_hierarchy,
)
from repro.workload.generator import (
    DayWorkload,
    WorkloadGenerator,
    load_warehouse_day,
)
from repro.workload.simulate import SimulatedDay, WarehouseSimulation

__all__ = [
    "CLIENTS",
    "COUNTRIES",
    "UserPopulation",
    "UserProfile",
    "END",
    "FUNNEL_CONTINUE",
    "MarkovBehavior",
    "STANDARD_TREE",
    "build_browsing_behavior",
    "build_signup_behavior",
    "signup_funnel_stages",
    "standard_hierarchy",
    "SimulatedDay",
    "WarehouseSimulation",
    "DayWorkload",
    "WorkloadGenerator",
    "load_warehouse_day",
]
