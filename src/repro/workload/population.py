"""Synthetic user population.

Stands in for Twitter's user base: per-user country, preferred client,
logged-in status, and a power-law activity level (a small fraction of
users generates most events, which is what gives event-frequency
histograms the skew the dictionary's variable-length coding exploits).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

COUNTRIES: Tuple[Tuple[str, float], ...] = (
    ("us", 0.40), ("jp", 0.12), ("uk", 0.10), ("br", 0.09),
    ("in", 0.08), ("de", 0.06), ("fr", 0.05), ("id", 0.05),
    ("ca", 0.03), ("au", 0.02),
)

CLIENTS: Tuple[Tuple[str, float], ...] = (
    ("web", 0.45), ("iphone", 0.25), ("android", 0.20), ("ipad", 0.10),
)


@dataclass(frozen=True)
class UserProfile:
    """One synthetic user."""

    user_id: int
    country: str
    client: str
    logged_in: bool
    activity: float      # relative session-count multiplier (power-law)
    is_new: bool         # new users go through the signup funnel
    ip: str


class UserPopulation:
    """A deterministic population of :class:`UserProfile` objects."""

    def __init__(self, num_users: int, seed: int = 0,
                 new_user_fraction: float = 0.12,
                 logged_out_fraction: float = 0.15) -> None:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        rng = random.Random(seed)
        self.users: List[UserProfile] = []
        for uid in range(1, num_users + 1):
            # Pareto-ish activity: most users light, few heavy.
            activity = min(rng.paretovariate(1.5), 50.0)
            self.users.append(UserProfile(
                user_id=uid,
                country=_weighted_choice(rng, COUNTRIES),
                client=_weighted_choice(rng, CLIENTS),
                logged_in=rng.random() >= logged_out_fraction,
                activity=activity,
                is_new=rng.random() < new_user_fraction,
                ip=_synthetic_ip(rng),
            ))

    def __len__(self) -> int:
        return len(self.users)

    def __iter__(self):
        return iter(self.users)

    def by_country(self) -> Dict[str, List[UserProfile]]:
        """Users grouped by country."""
        out: Dict[str, List[UserProfile]] = {}
        for user in self.users:
            out.setdefault(user.country, []).append(user)
        return out

    def new_users(self) -> List[UserProfile]:
        """Users who will go through the signup funnel."""
        return [user for user in self.users if user.is_new]


def _weighted_choice(rng: random.Random,
                     table: Sequence[Tuple[str, float]]) -> str:
    roll = rng.random() * sum(weight for __, weight in table)
    cumulative = 0.0
    for value, weight in table:
        cumulative += weight
        if roll < cumulative:
            return value
    return table[-1][0]


def _synthetic_ip(rng: random.Random) -> str:
    return (f"{rng.randint(1, 223)}.{rng.randint(0, 255)}."
            f"{rng.randint(0, 255)}.{rng.randint(1, 254)}")
