"""Multi-day warehouse simulation: the whole stack as one object.

Gluing together what the individual examples do by hand: generate days of
traffic, optionally push them through the Scribe delivery path, run the
log mover, build session sequences, compute rollups, and feed BirdBrain.
Benchmarks, the CLI, and downstream users drive the stack through this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analytics.dashboard import BirdBrain, DailySummary, summarize_day
from repro.core.builder import BuildResult, SessionSequenceBuilder
from repro.core.dictionary import EventDictionary
from repro.core.event import CLIENT_EVENTS_CATEGORY
from repro.core.sequences import SessionSequenceRecord
from repro.hdfs.layout import hours_of_day
from repro.hdfs.namenode import HDFS
from repro.logmover.mover import LogMover
from repro.oink.rollups import RollupJob, RollupResult
from repro.scribe.cluster import ScribeDeployment
from repro.scribe.message import CategoryConfig, LogEntry
from repro.workload.generator import (
    DayWorkload,
    WorkloadGenerator,
    load_warehouse_day,
)

Date = Tuple[int, int, int]


@dataclass
class SimulatedDay:
    """Everything one simulated day produced."""

    date: Date
    workload: DayWorkload
    build: BuildResult
    summary: DailySummary
    rollups: Optional[RollupResult] = None


class WarehouseSimulation:
    """Drives the full pipeline over consecutive days.

    With ``through_scribe`` each day's events travel the real delivery
    path (daemons → aggregators → staging → log mover); otherwise they
    are deposited directly in warehouse layout (faster, byte-identical
    destination)."""

    def __init__(self, num_users: int = 300, seed: int = 0,
                 start: Date = (2012, 3, 1),
                 users_growth_per_day: int = 0,
                 through_scribe: bool = False,
                 datacenters: Tuple[str, ...] = ("east", "west"),
                 compute_rollups: bool = False,
                 build_index: bool = False,
                 block_size: int = 16 * 1024) -> None:
        self.start = start
        self.seed = seed
        self._num_users = num_users
        self._growth = users_growth_per_day
        self._through_scribe = through_scribe
        self._compute_rollups = compute_rollups
        # §2: the mover pipeline also "build[s] any necessary indexes";
        # with build_index each day gets an Elephant Twin index over its
        # client event logs, at /indexes/client_events/YYYY/MM/DD.
        self._build_index = build_index
        self._datacenter_names = list(datacenters)
        self.warehouse = HDFS(block_size=block_size, name="warehouse")
        self.builder = SessionSequenceBuilder(self.warehouse)
        self.board = BirdBrain()
        self.days: Dict[Date, SimulatedDay] = {}

    # -- driving ----------------------------------------------------------
    def run_days(self, num_days: int) -> List[SimulatedDay]:
        """Simulate ``num_days`` consecutive days from ``start``."""
        results = []
        for offset in range(num_days):
            results.append(self.run_day(self._date_at(offset),
                                        day_index=len(self.days)))
        return results

    def run_day(self, date: Date, day_index: int = 0) -> SimulatedDay:
        """Generate, deliver, build, and summarize one calendar day."""
        users = self._num_users + self._growth * day_index
        generator = WorkloadGenerator(num_users=users,
                                      seed=self.seed + day_index)
        workload = generator.generate_day(*date)

        if self._through_scribe:
            self._deliver_via_scribe(workload, date)
        else:
            load_warehouse_day(self.warehouse, workload)

        build = self.builder.run(*date)
        dictionary = self.builder.load_dictionary(*date)
        records = list(self.builder.iter_sequences(*date))
        summary = summarize_day(date, records, dictionary)
        self.board.add_day(summary)

        rollups = None
        if self._compute_rollups:
            rollups = RollupJob(self.warehouse).run(*date)

        if self._build_index:
            from repro.elephanttwin.index import Indexer, event_name_terms
            from repro.pig.loaders import ClientEventsLoader

            loader = ClientEventsLoader(self.warehouse, *date)
            Indexer(self.warehouse, event_name_terms).build(
                loader.input_format(), self.index_dir(date))

        day = SimulatedDay(date=date, workload=workload, build=build,
                           summary=summary, rollups=rollups)
        self.days[date] = day
        return day

    # -- access -----------------------------------------------------------
    @staticmethod
    def index_dir(date: Date) -> str:
        """Warehouse directory of one day's Elephant Twin index."""
        year, month, day = date
        return f"/indexes/client_events/{year:04d}/{month:02d}/{day:02d}"

    def index(self, date: Date):
        """The day's Elephant Twin index (requires build_index=True)."""
        from repro.elephanttwin.index import Indexer

        return Indexer.load(self.warehouse, self.index_dir(date))

    def dictionary(self, date: Date) -> EventDictionary:
        """The day's event dictionary."""
        return self.builder.load_dictionary(*date)

    def records(self, date: Date) -> List[SessionSequenceRecord]:
        """The day's materialized session-sequence records."""
        return list(self.builder.iter_sequences(*date))

    def dates(self) -> List[Date]:
        """Days simulated so far, sorted."""
        return sorted(self.days)

    # -- internals ---------------------------------------------------------
    def _date_at(self, offset: int) -> Date:
        from datetime import date as _date, timedelta

        when = _date(*self.start) + timedelta(days=offset)
        return (when.year, when.month, when.day)

    def _deliver_via_scribe(self, workload: DayWorkload,
                            date: Date) -> None:
        deployment = ScribeDeployment(self._datacenter_names, num_hosts=4,
                                      num_aggregators=2,
                                      durable_aggregators=True,
                                      seed=self.seed)
        deployment.categories.register(
            CategoryConfig(CLIENT_EVENTS_CATEGORY, max_file_records=500))
        datacenters = list(deployment.datacenters.values())
        for event in sorted(workload.events, key=lambda e: e.timestamp):
            deployment.clock.advance_to(event.timestamp)
            datacenter = datacenters[event.user_id % len(datacenters)]
            datacenter.log_from(
                event.user_id,
                LogEntry(CLIENT_EVENTS_CATEGORY, event.to_bytes()),
                wrap=True)
        deployment.flush_all()
        mover = LogMover(
            {name: dc.staging
             for name, dc in deployment.datacenters.items()},
            self.warehouse, clock=deployment.clock)
        for day_offset in (0, 1):  # sessions spill past midnight
            year, month, day = self._shift(date, day_offset)
            for hour in hours_of_day(CLIENT_EVENTS_CATEGORY, year, month,
                                     day):
                if mover.hour_has_data(hour):
                    mover.move_hour(hour, require_complete=False)

    @staticmethod
    def _shift(date: Date, days: int) -> Date:
        from datetime import date as _date, timedelta

        when = _date(*date) + timedelta(days=days)
        return (when.year, when.month, when.day)
