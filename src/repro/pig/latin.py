"""A Pig Latin interpreter for the dialect the paper's scripts use.

§5.2 shows the canonical script::

    define CountClientEvents CountClientEvents('$EVENTS');
    raw = load '/session_sequences/$DATE/' using SessionSequencesLoader();
    generated = foreach raw generate CountClientEvents(symbols);
    grouped = group generated all;
    count = foreach grouped generate SUM(generated);
    dump count;

This module parses and executes exactly that shape (plus FILTER, GROUP
BY, FLATTEN, DISTINCT, LIMIT, and the COUNT variant §5.2 mentions),
compiling onto the same plan/executor as the fluent API -- so scripts get
real MR job boundaries and honest counters.

Bindings are injected by the host: ``loaders`` maps loader names to
factories called with the quoted path plus any arguments; ``udfs`` maps
UDF names to factories called with the DEFINE arguments. ``$VARIABLES``
are substituted textually before parsing, as Pig's parameter substitution
does.

Semantics notes (documented divergences kept small):

- ``SUM(x)`` sums the group's values; ``COUNT(x)`` counts the non-null,
  non-zero values, which is what makes the paper's "replacement of SUM by
  COUNT" return sessions-containing-the-event when the generated value is
  a per-session match count.
- Field references resolve against row attributes, with ``symbols`` as
  an alias for a session-sequence record's ``session_sequence`` (the
  paper's name for that column) and ``*`` for the whole row.
"""

from __future__ import annotations

import re

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.pig.relation import PigRelation, PigServer


class PigLatinError(Exception):
    """Raised for parse or execution errors in a script."""


_STATEMENT_RE = re.compile(r"[^;]+;", re.DOTALL)

_DEFINE_RE = re.compile(
    r"^define\s+(?P<alias>\w+)\s+(?P<udf>\w+)\s*\((?P<args>[^)]*)\)$",
    re.IGNORECASE)
_LOAD_RE = re.compile(
    r"^(?P<alias>\w+)\s*=\s*load\s+'(?P<path>[^']*)'"
    r"(\s+using\s+(?P<loader>\w+)\s*\((?P<args>[^)]*)\))?$",
    re.IGNORECASE)
_FOREACH_RE = re.compile(
    r"^(?P<alias>\w+)\s*=\s*foreach\s+(?P<src>\w+)\s+generate\s+"
    r"(?P<expr>.+)$",
    re.IGNORECASE)
_FILTER_RE = re.compile(
    r"^(?P<alias>\w+)\s*=\s*filter\s+(?P<src>\w+)\s+by\s+(?P<expr>.+)$",
    re.IGNORECASE)
_GROUP_ALL_RE = re.compile(
    r"^(?P<alias>\w+)\s*=\s*group\s+(?P<src>\w+)\s+all$", re.IGNORECASE)
_GROUP_BY_RE = re.compile(
    r"^(?P<alias>\w+)\s*=\s*group\s+(?P<src>\w+)\s+by\s+(?P<field>\w+)$",
    re.IGNORECASE)
_DISTINCT_RE = re.compile(
    r"^(?P<alias>\w+)\s*=\s*distinct\s+(?P<src>\w+)$", re.IGNORECASE)
_LIMIT_RE = re.compile(
    r"^(?P<alias>\w+)\s*=\s*limit\s+(?P<src>\w+)\s+(?P<n>\d+)$",
    re.IGNORECASE)
_DUMP_RE = re.compile(r"^dump\s+(?P<alias>\w+)$", re.IGNORECASE)
_STORE_RE = re.compile(
    r"^store\s+(?P<alias>\w+)\s+into\s+'(?P<path>[^']*)'"
    r"(\s+using\s+(?P<storer>\w+)\s*\((?P<args>[^)]*)\))?$",
    re.IGNORECASE)

_CALL_RE = re.compile(r"^(?P<fn>\w+)\s*\((?P<arg>[^)]*)\)$")

LoaderFactory = Callable[..., Any]
UdfFactory = Callable[..., Callable[[Any], Any]]


@dataclass
class ScriptResult:
    """Everything a script run produced."""

    dumps: List[List[Any]] = field(default_factory=list)
    aliases: Dict[str, PigRelation] = field(default_factory=dict)

    @property
    def last_dump(self) -> List[Any]:
        """Rows of the script's final DUMP (error if none)."""
        if not self.dumps:
            raise PigLatinError("script contained no DUMP statement")
        return self.dumps[-1]


class PigLatinInterpreter:
    """Parses and runs one script against a :class:`PigServer`."""

    def __init__(self, server: PigServer,
                 loaders: Optional[Dict[str, LoaderFactory]] = None,
                 udfs: Optional[Dict[str, UdfFactory]] = None,
                 variables: Optional[Dict[str, str]] = None,
                 stores: Optional[Dict[str, Callable]] = None) -> None:
        """``stores`` maps storer names to ``factory(path, *args)``
        callables returning a ``store(rows)`` function. A STORE without
        USING requires a binding named ``default``."""
        self._server = server
        self._loaders = dict(loaders or {})
        self._udf_factories = dict(udfs or {})
        self._variables = dict(variables or {})
        self._stores = dict(stores or {})
        self._defined: Dict[str, Callable[[Any], Any]] = {}
        self._aliases: Dict[str, PigRelation] = {}

    # -- public ------------------------------------------------------------
    def run(self, script: str) -> ScriptResult:
        """Execute a whole script; returns its dumps and aliases."""
        result = ScriptResult()
        for statement in self._statements(script):
            dumped = self._execute(statement)
            if dumped is not None:
                result.dumps.append(dumped)
        result.aliases = dict(self._aliases)
        return result

    # -- parsing ----------------------------------------------------------
    def _statements(self, script: str) -> List[str]:
        text = self._substitute(script)
        # strip -- comments (line-wise, like Pig)
        lines = []
        for line in text.splitlines():
            comment = line.find("--")
            lines.append(line[:comment] if comment >= 0 else line)
        text = "\n".join(lines)
        out = []
        for match in _STATEMENT_RE.finditer(text):
            statement = " ".join(match.group(0)[:-1].split())
            if statement:
                out.append(statement)
        return out

    def _substitute(self, text: str) -> str:
        def replace(match: "re.Match[str]") -> str:
            name = match.group(1)
            if name not in self._variables:
                raise PigLatinError(f"undefined parameter ${name}")
            return self._variables[name]

        return re.sub(r"\$(\w+)", replace, text)

    # -- execution ---------------------------------------------------------
    def _execute(self, statement: str) -> Optional[List[Any]]:
        match = _DEFINE_RE.match(statement)
        if match:
            self._do_define(match.group("alias"), match.group("udf"),
                            match.group("args"))
            return None
        match = _LOAD_RE.match(statement)
        if match:
            self._do_load(match.group("alias"), match.group("path"),
                          match.group("loader"), match.group("args"))
            return None
        match = _FOREACH_RE.match(statement)
        if match:
            self._do_foreach(match.group("alias"), match.group("src"),
                             match.group("expr"))
            return None
        match = _FILTER_RE.match(statement)
        if match:
            self._do_filter(match.group("alias"), match.group("src"),
                            match.group("expr"))
            return None
        match = _GROUP_ALL_RE.match(statement)
        if match:
            self._aliases[match.group("alias")] = \
                self._relation(match.group("src")).group_all()
            return None
        match = _GROUP_BY_RE.match(statement)
        if match:
            field_name = match.group("field")
            self._aliases[match.group("alias")] = \
                self._relation(match.group("src")).group_by(
                    lambda row, f=field_name: _resolve_field(row, f))
            return None
        match = _DISTINCT_RE.match(statement)
        if match:
            self._aliases[match.group("alias")] = \
                self._relation(match.group("src")).distinct()
            return None
        match = _LIMIT_RE.match(statement)
        if match:
            self._aliases[match.group("alias")] = \
                self._relation(match.group("src")).limit(
                    int(match.group("n")))
            return None
        match = _DUMP_RE.match(statement)
        if match:
            return self._relation(match.group("alias")).dump()
        match = _STORE_RE.match(statement)
        if match:
            self._do_store(match.group("alias"), match.group("path"),
                           match.group("storer"), match.group("args"))
            return None
        raise PigLatinError(f"cannot parse statement: {statement!r}")

    # -- statement handlers ------------------------------------------------
    def _do_define(self, alias: str, udf_name: str, args_text: str) -> None:
        factory = self._udf_factories.get(udf_name)
        if factory is None:
            raise PigLatinError(f"unknown UDF {udf_name!r} in DEFINE")
        self._defined[alias] = factory(*_parse_args(args_text))

    def _do_load(self, alias: str, path: str, loader_name: Optional[str],
                 args_text: Optional[str]) -> None:
        if loader_name is None:
            raise PigLatinError(
                f"LOAD '{path}' needs USING <loader> in this dialect")
        factory = self._loaders.get(loader_name)
        if factory is None:
            raise PigLatinError(f"unknown loader {loader_name!r}")
        loader = factory(path, *_parse_args(args_text or ""))
        self._aliases[alias] = self._server.load(loader)

    def _do_foreach(self, alias: str, src: str, expr: str) -> None:
        relation = self._relation(src)
        expr = expr.strip()
        flatten_match = re.match(r"^flatten\s*\((?P<inner>.+)\)$", expr,
                                 re.IGNORECASE)
        if flatten_match:
            fn = self._expression(flatten_match.group("inner"))
            self._aliases[alias] = relation.flatten(
                lambda row: list(fn(row)), description=f"flatten:{src}")
            return
        fn = self._expression(expr)
        self._aliases[alias] = relation.foreach(fn,
                                                description=f"foreach:{src}")

    def _do_filter(self, alias: str, src: str, expr: str) -> None:
        fn = self._expression(expr)
        self._aliases[alias] = self._relation(src).filter(
            lambda row: bool(fn(row)), description=f"filter:{src}")

    def _do_store(self, alias: str, path: str,
                  storer_name: Optional[str],
                  args_text: Optional[str]) -> None:
        name = storer_name or "default"
        factory = self._stores.get(name)
        if factory is None:
            raise PigLatinError(f"unknown storer {name!r} in STORE")
        store = factory(path, *_parse_args(args_text or ""))
        store(self._relation(alias).dump())

    # -- expression compilation ------------------------------------------
    def _expression(self, text: str) -> Callable[[Any], Any]:
        """Compile ``Udf(field)``, ``SUM(field)``, ``COUNT(field)``, or a
        bare field reference into a row function."""
        text = text.strip()
        call = _CALL_RE.match(text)
        if call:
            fn_name = call.group("fn")
            arg = call.group("arg").strip()
            if fn_name.upper() == "SUM":
                return lambda group: sum(
                    _group_value(item, arg) for item in _bag_of(group))
            if fn_name.upper() == "COUNT":
                # counts non-null, non-zero values: the §5.2 variant
                return lambda group: sum(
                    1 for item in _bag_of(group) if _group_value(item, arg))
            udf = self._defined.get(fn_name)
            if udf is None:
                raise PigLatinError(
                    f"UDF {fn_name!r} used before DEFINE")
            if arg in ("", "*"):
                return udf
            return lambda row, f=arg: udf(_resolve_field(row, f))
        # bare field reference
        return lambda row, f=text: _resolve_field(row, f)

    def _relation(self, alias: str) -> PigRelation:
        try:
            return self._aliases[alias]
        except KeyError as exc:
            raise PigLatinError(f"unknown alias {alias!r}") from exc


def _parse_args(text: str) -> List[str]:
    """Parse a comma-separated list of 'quoted' arguments."""
    text = text.strip()
    if not text:
        return []
    out = []
    for part in text.split(","):
        part = part.strip()
        if len(part) >= 2 and part[0] == "'" and part[-1] == "'":
            out.append(part[1:-1])
        elif part:
            out.append(part)
    return out


def _resolve_field(row: Any, name: str) -> Any:
    """Resolve a field reference against a row."""
    if name == "*":
        return row
    if hasattr(row, name):
        return getattr(row, name)
    # the paper's scripts call a session sequence's string 'symbols'
    if name == "symbols" and hasattr(row, "session_sequence"):
        return row.session_sequence
    if isinstance(row, dict) and name in row:
        return row[name]
    if isinstance(row, dict) and name == "group":
        return row.get("group")
    # FOREACH after GROUP often names the pre-group alias: the bag
    if isinstance(row, dict) and "bag" in row:
        return row["bag"]
    raise PigLatinError(f"cannot resolve field {name!r} on {type(row).__name__}")


def _group_value(item: Any, arg: str) -> Any:
    """Resolve an aggregate's argument against one bag item.

    In Pig, ``SUM(generated)`` names the pre-group relation; when our bag
    items are the generated scalars themselves, the name resolves to the
    item. When items are structured rows, resolve the field normally.
    """
    if arg in ("", "*"):
        return item
    try:
        return _resolve_field(item, arg)
    except PigLatinError:
        return item


def _bag_of(group: Any) -> Sequence[Any]:
    if isinstance(group, dict) and "bag" in group:
        return group["bag"]
    raise PigLatinError("SUM/COUNT expects a grouped relation")


def standard_bindings(warehouse, dictionary=None) -> Dict[str, Dict]:
    """The loader and UDF bindings the paper's scripts need.

    Loaders parse the date out of the quoted path
    (``/session_sequences/2012/03/10/``); UDFs receive their DEFINE
    arguments plus the day's dictionary.
    """
    from repro.analytics.counting import CountClientEvents, SessionsWithEvent
    from repro.analytics.funnel import ClientEventsFunnel
    from repro.pig.loaders import ClientEventsLoader, SessionSequencesLoader

    def parse_date(path: str):
        parts = [p for p in path.split("/") if p]
        try:
            year, month, day = (int(parts[-3]), int(parts[-2]),
                                int(parts[-1]))
        except (ValueError, IndexError) as exc:
            raise PigLatinError(
                f"path {path!r} must end in YYYY/MM/DD") from exc
        return year, month, day

    loaders = {
        "SessionSequencesLoader": lambda path: SessionSequencesLoader(
            warehouse, *parse_date(path)),
        "ClientEventsLoader": lambda path: ClientEventsLoader(
            warehouse, *parse_date(path)),
    }
    def json_storage(path: str):
        import json as _json

        def store(rows):
            def plain(row):
                if hasattr(row, "to_dict"):
                    return row.to_dict()
                return row

            payload = "\n".join(_json.dumps(plain(r), sort_keys=True,
                                             default=str)
                                 for r in rows).encode("utf-8")
            warehouse.create(path, payload, codec="zlib", overwrite=True)

        return store

    stores = {"JsonStorage": json_storage, "default": json_storage}

    udfs = {}
    if dictionary is not None:
        udfs = {
            "CountClientEvents": lambda pattern: CountClientEvents(
                pattern, dictionary),
            "SessionsWithEvent": lambda pattern: SessionsWithEvent(
                pattern, dictionary),
            "ClientEventsFunnel": lambda *stages: ClientEventsFunnel(
                list(stages), dictionary),
        }
    return {"loaders": loaders, "udfs": udfs, "stores": stores}
