"""Pig-like dataflow layer compiled onto the MapReduce engine."""

from repro.pig.plan import (
    DistinctNode,
    FilterNode,
    FlattenNode,
    ForeachNode,
    GroupAllNode,
    GroupNode,
    JoinNode,
    LimitNode,
    LoadNode,
    OrderNode,
    UnionNode,
)
from repro.pig.relation import PigRelation, PigServer
from repro.pig.executor import PlanError, PlanExecutor
from repro.pig.loaders import (
    ClientEventsLoader,
    FramedMessagesLoader,
    InMemoryLoader,
    SessionSequencesLoader,
)
from repro.pig.udf import EvalFunc, UDFRegistry
from repro.pig.latin import (
    PigLatinError,
    PigLatinInterpreter,
    ScriptResult,
    standard_bindings,
)

__all__ = [
    "DistinctNode",
    "FilterNode",
    "FlattenNode",
    "ForeachNode",
    "GroupAllNode",
    "GroupNode",
    "JoinNode",
    "LimitNode",
    "LoadNode",
    "OrderNode",
    "UnionNode",
    "PigRelation",
    "PigServer",
    "PlanError",
    "PlanExecutor",
    "ClientEventsLoader",
    "FramedMessagesLoader",
    "InMemoryLoader",
    "SessionSequencesLoader",
    "EvalFunc",
    "UDFRegistry",
    "PigLatinError",
    "PigLatinInterpreter",
    "ScriptResult",
    "standard_bindings",
]
