"""UDF support: the DEFINE mechanism and an EvalFunc base class.

Pig scripts at Twitter retain "the full expressiveness of Java ... through
a library of custom UDFs" (§3). Here a UDF is any callable; `EvalFunc`
gives parameterized UDFs the two-phase construction Pig's DEFINE provides
(constructor args at definition time, row at call time), and
:class:`UDFRegistry` plays the role of the DEFINE statement.
"""

from __future__ import annotations

from typing import Any, Callable, Dict


class EvalFunc:
    """Base class for parameterized row UDFs.

    Subclasses implement :meth:`exec` (named after Pig's EvalFunc.exec).
    Instances are callable so they drop into ``foreach`` directly.
    """

    def exec(self, row: Any) -> Any:  # noqa: A003 - Pig's name
        """Evaluate the UDF on one row (subclasses implement)."""
        raise NotImplementedError

    def __call__(self, row: Any) -> Any:
        return self.exec(row)


class UDFRegistry:
    """Named UDF definitions: ``define('CountClientEvents', udf)``."""

    def __init__(self) -> None:
        self._udfs: Dict[str, Callable] = {}

    def define(self, name: str, udf: Callable) -> Callable:
        """Register a UDF under a script-visible name."""
        if not callable(udf):
            raise TypeError(f"UDF {name!r} is not callable")
        self._udfs[name] = udf
        return udf

    def lookup(self, name: str) -> Callable:
        """The UDF registered under ``name`` (KeyError if absent)."""
        try:
            return self._udfs[name]
        except KeyError as exc:
            raise KeyError(f"UDF not defined: {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._udfs

    def names(self):
        """All registered UDF names, sorted."""
        return sorted(self._udfs)
