"""UDF support: the DEFINE mechanism and an EvalFunc base class.

Pig scripts at Twitter retain "the full expressiveness of Java ... through
a library of custom UDFs" (§3). Here a UDF is any callable; `EvalFunc`
gives parameterized UDFs the two-phase construction Pig's DEFINE provides
(constructor args at definition time, row at call time), and
:class:`UDFRegistry` plays the role of the DEFINE statement.
"""

from __future__ import annotations

from typing import Any, Callable, Dict


class EvalFunc:
    """Base class for parameterized row UDFs.

    Subclasses implement :meth:`exec` (named after Pig's EvalFunc.exec).
    Instances are callable so they drop into ``foreach`` directly.
    """

    def exec(self, row: Any) -> Any:  # noqa: A003 - Pig's name
        """Evaluate the UDF on one row (subclasses implement)."""
        raise NotImplementedError

    def __call__(self, row: Any) -> Any:
        return self.exec(row)


class EventNameFilter(EvalFunc):
    """Boolean UDF: does a client event's name match an event pattern?

    Carries an ``index_lookup`` hint -- ``("event", pattern)`` -- so the
    plan executor can push the selection down to an Elephant Twin index
    when one covers the loaded data. Picklable (pattern re-compiled on
    unpickle) so filtered plans run on the ``processes`` backend.
    """

    #: Columns this predicate reads (projection-pruning declaration).
    columns_read = ("event_name",)

    def __init__(self, pattern: str) -> None:
        from repro.core.names import EventPattern
        from repro.warehouse.predicates import EventPatternPredicate

        self.pattern = pattern
        self._matcher = EventPattern(pattern)
        #: Pushdown hint consumed by :class:`repro.pig.executor.PlanExecutor`.
        self.index_lookup = ("event", pattern)
        #: Zone-map hint: prunes columnar blocks the pattern provably misses.
        self.column_predicate = EventPatternPredicate(pattern)

    def exec(self, row: Any) -> bool:  # noqa: A003 - Pig's name
        """True when the row's event name matches the pattern."""
        return self._matcher.matches(row.event_name)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_matcher"]
        return state

    def __setstate__(self, state: dict) -> None:
        from repro.core.names import EventPattern

        self.__dict__.update(state)
        self._matcher = EventPattern(self.pattern)


class UserEventsFilter(EvalFunc):
    """Boolean UDF: does a client event belong to one user?

    ``index_lookup`` is ``("user", str(user_id))``: the user field is
    indexed by exact term, no pattern expansion.
    """

    #: Columns this predicate reads (projection-pruning declaration).
    columns_read = ("user_id",)

    def __init__(self, user_id: int) -> None:
        from repro.warehouse.predicates import EqPredicate

        self.user_id = int(user_id)
        #: Pushdown hint consumed by :class:`repro.pig.executor.PlanExecutor`.
        self.index_lookup = ("user", str(self.user_id))
        #: Zone-map hint: min/max + bloom on the user_id column.
        self.column_predicate = EqPredicate("user_id", self.user_id)

    def exec(self, row: Any) -> bool:  # noqa: A003 - Pig's name
        """True when the row's user_id equals the target user."""
        return row.user_id == self.user_id


class UDFRegistry:
    """Named UDF definitions: ``define('CountClientEvents', udf)``."""

    def __init__(self) -> None:
        self._udfs: Dict[str, Callable] = {}

    def define(self, name: str, udf: Callable) -> Callable:
        """Register a UDF under a script-visible name."""
        if not callable(udf):
            raise TypeError(f"UDF {name!r} is not callable")
        self._udfs[name] = udf
        return udf

    def lookup(self, name: str) -> Callable:
        """The UDF registered under ``name`` (KeyError if absent)."""
        try:
            return self._udfs[name]
        except KeyError as exc:
            raise KeyError(f"UDF not defined: {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._udfs

    def names(self):
        """All registered UDF names, sorted."""
        return sorted(self._udfs)
