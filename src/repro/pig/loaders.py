"""Pig loaders over warehouse data.

"A custom Pig loader abstracts over details of the physical layout of
session sequences, transparently parsing each field in the tuple and
handling decompression" (§5.2). The same pattern serves the raw client
event logs; Elephant-Bird-derived readers do the record decoding.
"""

from __future__ import annotations

import posixpath
from typing import Any, List, Optional, Sequence

from repro.core.event import CLIENT_EVENTS_CATEGORY, ClientEvent
from repro.core.sequences import SessionSequenceRecord
from repro.hdfs.layout import LogHour, data_files, day_path, sequences_day_path
from repro.hdfs.namenode import HDFS
from repro.mapreduce.inputformats import FileInputFormat, InMemoryInputFormat
from repro.thriftlike.codegen import ThriftFileFormat

_EVENT_FORMAT = ThriftFileFormat(ClientEvent)
_SEQUENCE_FORMAT = ThriftFileFormat(SessionSequenceRecord)


class ClientEventsLoader:
    """LOAD '/logs/client_events/<date>' USING ClientEventsLoader().

    Rows are :class:`ClientEvent` structs. Load a whole day or a list of
    specific hours.
    """

    def __init__(self, warehouse: HDFS, year: int, month: int, day: int,
                 hours: Optional[Sequence[int]] = None,
                 category: str = CLIENT_EVENTS_CATEGORY) -> None:
        self._warehouse = warehouse
        self._category = category
        self._year, self._month, self._day = year, month, day
        self._hours = list(hours) if hours is not None else None

    def paths(self) -> List[str]:
        """The warehouse data files this loader covers (index partitions
        beside the data are never rows)."""
        if self._hours is None:
            directory = day_path(self._category, self._year, self._month,
                                 self._day)
            return data_files(self._warehouse, directory)
        out: List[str] = []
        for hour in self._hours:
            log_hour = LogHour(self._category, self._year, self._month,
                               self._day, hour)
            out.extend(data_files(self._warehouse, log_hour.path()))
        return out

    def hour_dirs(self) -> List[str]:
        """The hour directories holding the covered data files, sorted."""
        return sorted({posixpath.dirname(path) for path in self.paths()})

    def input_format(self) -> FileInputFormat:
        """Block-per-split input format over the covered files."""
        return FileInputFormat(self._warehouse, self.paths(),
                               _EVENT_FORMAT.decode)

    def indexed_input_format(self, value: str, field: str = "event"
                             ) -> Optional[Any]:
        """Pushdown plan: the covered files filtered through their
        Elephant Twin index partitions.

        Discovers committed per-hour partitions beside the loaded data
        and merges the requested field's postings across them. For the
        ``event`` field ``value`` is an event *pattern* expanded against
        the indexed term universe; other fields match ``value`` exactly.
        Returns None when no partition exists (caller falls back to the
        full scan) -- hours without a partition still flow through the
        returned format as must-scan splits, so pushdown never changes
        query results.
        """
        from repro.elephanttwin.buildjob import WarehouseIndex
        from repro.elephanttwin.inputformat import IndexedInputFormat

        warehouse_index = WarehouseIndex.discover(self._warehouse,
                                                  self.hour_dirs())
        if not warehouse_index:
            return None
        index = warehouse_index.field(field)
        if field == "event":
            from repro.core.names import EventPattern

            matcher = EventPattern(value)
            terms = [t for t in index.terms() if matcher.matches(t)]
        else:
            terms = [value]
        return IndexedInputFormat(self.input_format(), index, terms,
                                  field=field)

    def columnar_input_format(self, base: Optional[Any] = None,
                              projection: Optional[Sequence[str]] = None,
                              predicates: Sequence[Any] = ()
                              ) -> Optional[Any]:
        """Vectorized plan: the covered files served from their per-hour
        columnar segments where committed ones exist.

        ``base`` is the split source being wrapped (defaults to the full
        scan; the executor passes its index-pushdown format here so
        Elephant Twin prunes splits before zone maps prune blocks).
        Returns None when no hour has a committed segment -- the caller
        keeps its raw plan, and hours with stale or missing segments
        inside a returned format still scan raw splits unchanged.
        """
        from repro.mapreduce.inputformats import ColumnarInputFormat
        from repro.warehouse.segment import ColumnarSegment

        if not any(ColumnarSegment.load(self._warehouse, d) is not None
                   for d in self.hour_dirs()):
            return None
        return ColumnarInputFormat(self._warehouse,
                                   base or self.input_format(),
                                   projection=projection,
                                   predicates=predicates)


class SessionSequencesLoader:
    """LOAD '/session_sequences/$DATE' USING SessionSequencesLoader().

    Rows are :class:`SessionSequenceRecord` structs: user_id, session_id,
    ip, session_sequence (unicode string), duration.
    """

    def __init__(self, warehouse: HDFS, year: int, month: int,
                 day: int) -> None:
        self._warehouse = warehouse
        self._year, self._month, self._day = year, month, day

    def paths(self) -> List[str]:
        """The day's session-sequence part files (index partitions
        excluded)."""
        directory = sequences_day_path(self._year, self._month, self._day)
        return data_files(self._warehouse, directory)

    def input_format(self) -> FileInputFormat:
        """Block-per-split input format over the sequence store."""
        return FileInputFormat(self._warehouse, self.paths(),
                               _SEQUENCE_FORMAT.decode)


class FramedMessagesLoader:
    """Loader over raw framed message files (bytes rows)."""

    def __init__(self, fs: HDFS, directory: str) -> None:
        from repro.scribe.aggregator import decode_messages

        self._fs = fs
        self._directory = directory
        self._decode = decode_messages

    def input_format(self) -> FileInputFormat:
        """Input format yielding raw framed message bytes."""
        return FileInputFormat.over_directory(self._fs, self._directory,
                                              self._decode)


class InMemoryLoader:
    """Loader over in-memory rows (tests, small tables like `users`)."""

    def __init__(self, rows: Sequence[Any],
                 records_per_split: int = 10_000) -> None:
        self._rows = list(rows)
        self._per_split = records_per_split

    def input_format(self) -> InMemoryInputFormat:
        """Input format over the in-memory rows."""
        return InMemoryInputFormat(self._rows, self._per_split)
