"""Pig loaders over warehouse data.

"A custom Pig loader abstracts over details of the physical layout of
session sequences, transparently parsing each field in the tuple and
handling decompression" (§5.2). The same pattern serves the raw client
event logs; Elephant-Bird-derived readers do the record decoding.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.core.event import CLIENT_EVENTS_CATEGORY, ClientEvent
from repro.core.sequences import SessionSequenceRecord
from repro.hdfs.layout import LogHour, day_path, sequences_day_path
from repro.hdfs.namenode import HDFS
from repro.mapreduce.inputformats import FileInputFormat, InMemoryInputFormat
from repro.thriftlike.codegen import ThriftFileFormat

_EVENT_FORMAT = ThriftFileFormat(ClientEvent)
_SEQUENCE_FORMAT = ThriftFileFormat(SessionSequenceRecord)


class ClientEventsLoader:
    """LOAD '/logs/client_events/<date>' USING ClientEventsLoader().

    Rows are :class:`ClientEvent` structs. Load a whole day or a list of
    specific hours.
    """

    def __init__(self, warehouse: HDFS, year: int, month: int, day: int,
                 hours: Optional[Sequence[int]] = None,
                 category: str = CLIENT_EVENTS_CATEGORY) -> None:
        self._warehouse = warehouse
        self._category = category
        self._year, self._month, self._day = year, month, day
        self._hours = list(hours) if hours is not None else None

    def paths(self) -> List[str]:
        """The warehouse files this loader covers."""
        if self._hours is None:
            directory = day_path(self._category, self._year, self._month,
                                 self._day)
            return self._warehouse.glob_files(directory)
        out: List[str] = []
        for hour in self._hours:
            log_hour = LogHour(self._category, self._year, self._month,
                               self._day, hour)
            out.extend(self._warehouse.glob_files(log_hour.path()))
        return out

    def input_format(self) -> FileInputFormat:
        """Block-per-split input format over the covered files."""
        return FileInputFormat(self._warehouse, self.paths(),
                               _EVENT_FORMAT.decode)


class SessionSequencesLoader:
    """LOAD '/session_sequences/$DATE' USING SessionSequencesLoader().

    Rows are :class:`SessionSequenceRecord` structs: user_id, session_id,
    ip, session_sequence (unicode string), duration.
    """

    def __init__(self, warehouse: HDFS, year: int, month: int,
                 day: int) -> None:
        self._warehouse = warehouse
        self._year, self._month, self._day = year, month, day

    def paths(self) -> List[str]:
        """The day's session-sequence part files."""
        directory = sequences_day_path(self._year, self._month, self._day)
        return self._warehouse.glob_files(directory)

    def input_format(self) -> FileInputFormat:
        """Block-per-split input format over the sequence store."""
        return FileInputFormat(self._warehouse, self.paths(),
                               _SEQUENCE_FORMAT.decode)


class FramedMessagesLoader:
    """Loader over raw framed message files (bytes rows)."""

    def __init__(self, fs: HDFS, directory: str) -> None:
        from repro.scribe.aggregator import decode_messages

        self._fs = fs
        self._directory = directory
        self._decode = decode_messages

    def input_format(self) -> FileInputFormat:
        """Input format yielding raw framed message bytes."""
        return FileInputFormat.over_directory(self._fs, self._directory,
                                              self._decode)


class InMemoryLoader:
    """Loader over in-memory rows (tests, small tables like `users`)."""

    def __init__(self, rows: Sequence[Any],
                 records_per_split: int = 10_000) -> None:
        self._rows = list(rows)
        self._per_split = records_per_split

    def input_format(self) -> InMemoryInputFormat:
        """Input format over the in-memory rows."""
        return InMemoryInputFormat(self._rows, self._per_split)
