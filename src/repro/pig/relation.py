"""The fluent relation API: how scripts build logical plans.

A :class:`PigRelation` wraps a plan node; every method returns a new
relation with one more operator, so scripts read like Pig Latin::

    raw = pig.load(SessionSequencesLoader(warehouse, date))
    generated = raw.foreach(lambda r: count_udf(r.session_sequence))
    total = generated.group_all().foreach(lambda g: sum(g["bag"]))
    result = total.dump()
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.pig.plan import (
    DistinctNode,
    FilterNode,
    FlattenNode,
    ForeachNode,
    GroupAllNode,
    GroupNode,
    JoinNode,
    LimitNode,
    LoadNode,
    OrderNode,
    UnionNode,
)


class PigRelation:
    """One named step of a dataflow; immutable."""

    def __init__(self, server: "PigServer", node: Any) -> None:
        self._server = server
        self.node = node

    # -- per-row operators (fused map-side) ---------------------------------
    def foreach(self, fn: Callable[[Any], Any],
                description: str = "foreach") -> "PigRelation":
        """FOREACH ... GENERATE fn(row)."""
        return PigRelation(self._server,
                           ForeachNode(self.node, fn, description))

    def flatten(self, fn: Callable[[Any], List[Any]],
                description: str = "flatten") -> "PigRelation":
        """FOREACH ... GENERATE FLATTEN(fn(row))."""
        return PigRelation(self._server,
                           FlattenNode(self.node, fn, description))

    def filter(self, predicate: Callable[[Any], bool],
               description: str = "filter") -> "PigRelation":
        """FILTER ... BY predicate(row)."""
        return PigRelation(self._server,
                           FilterNode(self.node, predicate, description))

    def filter_events(self, pattern: str) -> "PigRelation":
        """FILTER client events BY an event-name pattern.

        Sugar for ``filter(EventNameFilter(pattern))``: the UDF carries
        an index-pushdown hint, so when the loaded data has Elephant Twin
        partitions the executor swaps the full scan for a selective one
        (same rows, fewer map tasks).
        """
        from repro.pig.udf import EventNameFilter

        return self.filter(EventNameFilter(pattern),
                           description=f"filter_events[{pattern}]")

    # -- shuffle operators -------------------------------------------------
    def group_by(self, key_fn: Callable[[Any], Any],
                 description: str = "group") -> "PigRelation":
        """GROUP ... BY key. Rows become {"group": key, "bag": [rows]}."""
        return PigRelation(self._server,
                           GroupNode(self.node, key_fn, description))

    def group_all(self) -> "PigRelation":
        """GROUP ... ALL: one row {"group": "all", "bag": [rows]}."""
        return PigRelation(self._server, GroupAllNode(self.node))

    def join(self, other: "PigRelation",
             left_key: Callable[[Any], Any],
             right_key: Callable[[Any], Any],
             description: str = "join") -> "PigRelation":
        """JOIN self BY left_key, other BY right_key.

        Output rows are {"key": k, "left": row, "right": row} for every
        matching pair (inner join).
        """
        return PigRelation(self._server,
                           JoinNode(self.node, other.node, left_key,
                                    right_key, description))

    def distinct(self) -> "PigRelation":
        """DISTINCT (rows must be hashable)."""
        return PigRelation(self._server, DistinctNode(self.node))

    def order_by(self, key_fn: Callable[[Any], Any],
                 reverse: bool = False) -> "PigRelation":
        """ORDER ... BY key."""
        return PigRelation(self._server,
                           OrderNode(self.node, key_fn, reverse))

    def limit(self, count: int) -> "PigRelation":
        """LIMIT count."""
        return PigRelation(self._server, LimitNode(self.node, count))

    def union(self, other: "PigRelation") -> "PigRelation":
        """UNION of two relations."""
        return PigRelation(self._server, UnionNode(self.node, other.node))

    # -- actions ----------------------------------------------------------
    def dump(self) -> List[Any]:
        """Execute the plan and return the rows (Pig's DUMP)."""
        return self._server.execute(self.node)

    def count(self) -> int:
        """Execute and return the row count."""
        return len(self.dump())


class PigServer:
    """Entry point owning the executor and its jobtracker.

    ``backend`` / ``max_workers`` select the MapReduce execution backend
    (``"serial"``, ``"threads"``, ``"processes"``) for every job the
    server's plans compile into; None defers to the tracker's default.
    """

    def __init__(self, tracker: Optional[Any] = None,
                 intermediate_records_per_split: int = 10_000,
                 backend: Optional[str] = None,
                 max_workers: Optional[int] = None) -> None:
        from repro.mapreduce.jobtracker import JobTracker

        self.tracker = tracker or JobTracker()
        self._per_split = intermediate_records_per_split
        self._backend = backend
        self._max_workers = max_workers

    def load(self, loader: Any) -> PigRelation:
        """LOAD ... USING loader."""
        return PigRelation(self, LoadNode(loader))

    def from_rows(self, rows: List[Any]) -> PigRelation:
        """Relation over in-memory rows (tests/tools)."""
        from repro.pig.loaders import InMemoryLoader

        return PigRelation(self, LoadNode(InMemoryLoader(rows)))

    def execute(self, node: Any) -> List[Any]:
        """Execute a plan node through a fresh executor."""
        from repro.pig.executor import PlanExecutor

        executor = PlanExecutor(self.tracker, self._per_split,
                                backend=self._backend,
                                max_workers=self._max_workers)
        return executor.execute(node)
