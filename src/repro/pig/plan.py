"""Logical plan nodes for the Pig-like dataflow layer.

"Production jobs and ad hoc queries are performed mostly using Pig, a
high-level dataflow language that compiles into physical plans that are
executed on Hadoop" (§3). We reproduce the same architecture: scripts
build a logical plan of relational operators; the executor in
:mod:`repro.pig.executor` compiles pipelined segments into MapReduce jobs,
with one job per shuffle boundary (group/cogroup/join/distinct/order),
exactly as Pig's MR compiler does. That preserved structure is what makes
mapper counts and shuffle volumes honest in the benchmarks.

Rows are arbitrary Python objects; structural operators produce dicts
(``{"group": key, "bag": [rows]}``) mirroring Pig's group semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List

Row = Any
RowFn = Callable[[Row], Row]
FlatMapFn = Callable[[Row], List[Row]]
Predicate = Callable[[Row], bool]
KeyFn = Callable[[Row], Any]


@dataclass(frozen=True)
class LoadNode:
    """LOAD: a loader supplying an input format over HDFS files."""

    loader: Any  # must expose .input_format() -> FileInputFormat

    description: str = "load"


@dataclass(frozen=True)
class ForeachNode:
    """FOREACH ... GENERATE: per-row transformation (map-side, fused)."""

    child: Any
    fn: RowFn
    description: str = "foreach"


@dataclass(frozen=True)
class FlattenNode:
    """FOREACH ... GENERATE FLATTEN: one row to many (map-side, fused)."""

    child: Any
    fn: FlatMapFn
    description: str = "flatten"


@dataclass(frozen=True)
class FilterNode:
    """FILTER BY: per-row predicate (map-side, fused)."""

    child: Any
    predicate: Predicate
    description: str = "filter"


@dataclass(frozen=True)
class GroupNode:
    """GROUP BY: shuffle boundary producing {"group", "bag"} rows."""

    child: Any
    key_fn: KeyFn
    description: str = "group"


@dataclass(frozen=True)
class GroupAllNode:
    """GROUP ALL: single-group shuffle used before global aggregates."""

    child: Any
    description: str = "group_all"


@dataclass(frozen=True)
class JoinNode:
    """JOIN: equijoin of two relations (shuffle boundary)."""

    left: Any
    right: Any
    left_key: KeyFn
    right_key: KeyFn
    description: str = "join"


@dataclass(frozen=True)
class DistinctNode:
    """DISTINCT: duplicate elimination (shuffle boundary)."""

    child: Any
    description: str = "distinct"


@dataclass(frozen=True)
class OrderNode:
    """ORDER BY: global sort (shuffle boundary)."""

    child: Any
    key_fn: KeyFn
    reverse: bool = False
    description: str = "order"


@dataclass(frozen=True)
class LimitNode:
    """LIMIT: truncation (applied after its child materializes)."""

    child: Any
    count: int
    description: str = "limit"


@dataclass(frozen=True)
class UnionNode:
    """UNION: bag union of two relations."""

    left: Any
    right: Any
    description: str = "union"


PlanNode = Any

#: Nodes that force a shuffle (and therefore their own MR job).
SHUFFLE_NODES = (GroupNode, GroupAllNode, JoinNode, DistinctNode, OrderNode)

#: Nodes fused into the mapper of the next downstream job.
MAP_SIDE_NODES = (ForeachNode, FlattenNode, FilterNode)
