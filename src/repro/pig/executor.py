"""Compiles logical plans into MapReduce jobs and runs them.

Compilation follows Pig's MR compiler shape:

- chains of FOREACH/FLATTEN/FILTER fuse into the mapper of the next job
  downstream (early projection/filtering before the shuffle, which is the
  §4.1 optimization "the early projection and filtering keeps the amount
  of data shuffling to a reasonable amount");
- every GROUP/JOIN/DISTINCT/ORDER runs as its own MR job;
- a plan that ends in map-side operators runs one final map-only job.

Intermediate relations feed the next job through
:class:`InMemoryInputFormat` (standing in for the temporary HDFS files
real Pig writes between jobs).

Mappers and reducers are module-level callables (not closures) so that
compiled jobs can run on the engine's ``processes`` backend whenever the
script's own row functions are picklable; scripts built from lambdas
still work everywhere else and simply fall back to threads.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.mapreduce.engine import run_job
from repro.mapreduce.inputformats import InMemoryInputFormat
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.jobtracker import JobTracker
from repro.pig.plan import (
    MAP_SIDE_NODES,
    DistinctNode,
    FilterNode,
    FlattenNode,
    ForeachNode,
    GroupAllNode,
    GroupNode,
    JoinNode,
    LimitNode,
    LoadNode,
    OrderNode,
    UnionNode,
)


class PlanError(Exception):
    """Raised for malformed plans."""


class PlanExecutor:
    """Executes one logical plan against the MR engine.

    ``backend`` / ``max_workers`` select the engine execution backend
    for every compiled job; None defers to the tracker's default.
    """

    def __init__(self, tracker: JobTracker,
                 intermediate_records_per_split: int = 10_000,
                 backend: Optional[str] = None,
                 max_workers: Optional[int] = None) -> None:
        self._tracker = tracker
        self._per_split = intermediate_records_per_split
        self._backend = backend
        self._max_workers = max_workers

    def _run_job(self, job: MapReduceJob):
        """Run one compiled job on the configured backend."""
        return run_job(job, self._tracker, backend=self._backend,
                       max_workers=self._max_workers)

    # -- public -----------------------------------------------------------
    def execute(self, node: Any) -> List[Any]:
        """Evaluate a plan node to its rows, running MR jobs as needed."""
        rows, pending = self._execute(node)
        if pending:
            # Trailing map-side operators: run one final map-only job.
            rows = self._run_map_only("final", rows, pending)
        return rows

    # -- recursive compilation -------------------------------------------
    def _execute(self, node: Any) -> Tuple[List[Any], List[Any]]:
        """Evaluate ``node``; returns (rows, pending_map_ops).

        ``pending_map_ops`` are fused map-side operators not yet applied;
        a downstream shuffle folds them into its mapper, or
        :meth:`execute` runs them in a final map-only job.
        """
        if isinstance(node, LoadNode):
            return [], [node]

        if isinstance(node, MAP_SIDE_NODES):
            rows, pending = self._execute(node.child)
            return rows, pending + [node]

        if isinstance(node, LimitNode):
            rows = self.execute(node.child)
            return rows[:node.count], []

        if isinstance(node, UnionNode):
            left = self.execute(node.left)
            right = self.execute(node.right)
            return left + right, []

        if isinstance(node, GroupNode):
            return self._run_shuffle(node, key_fn=node.key_fn,
                                     reducer=_group_reducer), []

        if isinstance(node, GroupAllNode):
            return self._run_shuffle(node, key_fn=_key_all,
                                     reducer=_group_reducer,
                                     num_reducers=1), []

        if isinstance(node, DistinctNode):
            return self._run_shuffle(node, key_fn=_identity,
                                     reducer=_distinct_reducer), []

        if isinstance(node, OrderNode):
            rows = self._run_shuffle(node, key_fn=_key_zero,
                                     reducer=_collect_reducer,
                                     num_reducers=1)
            return sorted(rows, key=node.key_fn, reverse=node.reverse), []

        if isinstance(node, JoinNode):
            return self._run_join(node), []

        raise PlanError(f"unknown plan node: {node!r}")

    # -- job construction ------------------------------------------------
    @staticmethod
    def _scan_hints(map_ops: List[Any]) -> Tuple[Optional[Tuple[str, ...]],
                                                 Tuple[Any, ...]]:
        """(projection, column predicates) for a fused map-side chain.

        Projection pruning: walks the chain accumulating the columns
        each operator declares it reads (``columns_read`` on filter
        predicates and foreach/flatten row functions). The walk stops at
        the first row-shape-changing operator -- columns it does not
        read can never be read downstream. A chain that ends with raw
        rows still flowing (or any operator without a declaration)
        needs the full row, so projection is None.

        Predicate pushdown: filter predicates carrying a
        ``column_predicate`` hint (a ``repro.warehouse.predicates``
        instance) are collected for zone-map pruning. Filters commute
        with scan planning, so collection continues past unhinted
        filters, exactly like the index-pushdown walk.
        """
        needed: set = set()
        predicates: List[Any] = []
        full = False
        for op in map_ops:
            if isinstance(op, FilterNode):
                hint = getattr(op.predicate, "column_predicate", None)
                if hint is not None:
                    predicates.append(hint)
                columns = getattr(op.predicate, "columns_read", None)
                if columns is None:
                    full = True
                else:
                    needed.update(columns)
                continue
            if isinstance(op, (ForeachNode, FlattenNode)):
                columns = getattr(op.fn, "columns_read", None)
                if columns is None:
                    full = True
                else:
                    needed.update(columns)
                break
            break  # pragma: no cover - plan builder prevents this
        else:
            full = True  # raw rows flow to the shuffle/output untransformed
        projection = None if full else tuple(sorted(needed))
        return projection, tuple(predicates)

    @staticmethod
    def _load_input_format(load: LoadNode, map_ops: List[Any]) -> Any:
        """The load's input format, with index and columnar pushdown.

        Index pushdown walks the fused map-side chain looking for a
        filter whose predicate carries an ``index_lookup`` hint (e.g.
        :class:`repro.pig.udf.EventNameFilter`). Filters commute with
        split selection, so the scan continues past unhinted filters and
        stops at the first row-shape-changing operator. When the loader
        can serve the hint (``indexed_input_format``) and an index
        partition exists, the selective format replaces the full scan;
        the filter itself still runs, so rows are identical either way.

        The chosen format (indexed or full) is then wrapped in the
        loader's columnar format when the chain declares a projection or
        pushes column predicates (:meth:`_scan_hints`) and segments
        exist -- composing the two prunings: index drops splits, zone
        maps drop blocks within the survivors.
        """
        base: Any = None
        for op in map_ops:
            if not isinstance(op, FilterNode):
                break
            lookup = getattr(op.predicate, "index_lookup", None)
            if lookup is None:
                continue
            make = getattr(load.loader, "indexed_input_format", None)
            if make is None:
                break
            field, value = lookup
            base = make(value, field=field)
            break
        if base is None:
            base = load.loader.input_format()
        projection, predicates = PlanExecutor._scan_hints(map_ops)
        if projection is not None or predicates:
            make_columnar = getattr(load.loader, "columnar_input_format",
                                    None)
            if make_columnar is not None:
                columnar = make_columnar(base=base, projection=projection,
                                         predicates=predicates)
                if columnar is not None:
                    return columnar
        return base

    def _input_for(self, child: Any) -> Tuple[Any, List[Any]]:
        """Input format + fused map ops for one upstream pipeline."""
        rows, pending = self._execute(child)
        if pending and isinstance(pending[0], LoadNode):
            load, map_ops = pending[0], pending[1:]
            return self._load_input_format(load, map_ops), map_ops
        return (InMemoryInputFormat(rows, self._per_split), pending)

    def _run_shuffle(self, node: Any, key_fn: Callable[[Any], Any],
                     reducer: Callable, num_reducers: int = 4) -> List[Any]:
        input_format, map_ops = self._input_for(node.child)
        mapper = _ShuffleMapper(_FusedTransform(map_ops), key_fn)
        job = MapReduceJob(name=node.description, input_format=input_format,
                           mapper=mapper, reducer=reducer,
                           num_reducers=num_reducers)
        result = self._run_job(job)
        return [value for __, value in result.output]

    def _run_join(self, node: JoinNode) -> List[Any]:
        left_format, left_ops = self._input_for(node.left)
        right_format, right_ops = self._input_for(node.right)
        union = _TaggedUnionInputFormat(left_format, right_format)
        mapper = _JoinMapper(_FusedTransform(left_ops),
                             _FusedTransform(right_ops),
                             node.left_key, node.right_key)
        job = MapReduceJob(name=node.description, input_format=union,
                           mapper=mapper, reducer=_join_reducer)
        result = self._run_job(job)
        return [value for __, value in result.output]

    def _run_map_only(self, name: str, rows: List[Any],
                      pending: List[Any]) -> List[Any]:
        if pending and isinstance(pending[0], LoadNode):
            map_ops = pending[1:]
            input_format = self._load_input_format(pending[0], map_ops)
        else:
            input_format = InMemoryInputFormat(rows, self._per_split)
            map_ops = pending
        mapper = _MapOnlyMapper(_FusedTransform(map_ops))
        job = MapReduceJob(name=name, input_format=input_format,
                           mapper=mapper, reducer=None)
        result = self._run_job(job)
        return [value for __, value in result.output]


class _TaggedSplit:
    """A split of one side of a tagged union (keeps byte accounting)."""

    def __init__(self, tag: int, split: Any) -> None:
        self.tag = tag
        self.split = split
        self.length_bytes = split.length_bytes


class _TaggedUnionInputFormat:
    """Presents two input formats as one, tagging records by side."""

    def __init__(self, left: Any, right: Any) -> None:
        self._left = left
        self._right = right

    def splits(self) -> List[_TaggedSplit]:
        return ([_TaggedSplit(0, s) for s in self._left.splits()]
                + [_TaggedSplit(1, s) for s in self._right.splits()])

    def read_split(self, tagged: _TaggedSplit) -> List[Any]:
        side = self._left if tagged.tag == 0 else self._right
        return [(tagged.tag, r) for r in side.read_split(tagged.split)]


class _FusedTransform:
    """Picklable fusion of a map-side operator chain into one transform.

    (A class rather than a closure so compiled mappers can cross process
    boundaries when the plan's row functions are themselves picklable.)
    """

    def __init__(self, map_ops: List[Any]) -> None:
        self.map_ops = list(map_ops)

    def __call__(self, record: Any) -> List[Any]:
        rows = [record]
        for op in self.map_ops:
            if isinstance(op, ForeachNode):
                rows = [op.fn(row) for row in rows]
            elif isinstance(op, FlattenNode):
                rows = [out for row in rows for out in op.fn(row)]
            elif isinstance(op, FilterNode):
                rows = [row for row in rows if op.predicate(row)]
            else:  # pragma: no cover - plan builder prevents this
                raise PlanError(f"non-fusable op in pipeline: {op!r}")
        return rows


class _ShuffleMapper:
    """Mapper of a shuffle job: transform each record, emit keyed rows."""

    def __init__(self, transform: _FusedTransform,
                 key_fn: Callable[[Any], Any]) -> None:
        self.transform = transform
        self.key_fn = key_fn

    def __call__(self, record: Any, ctx: TaskContext) -> None:
        for row in self.transform(record):
            ctx.emit(self.key_fn(row), row)


class _JoinMapper:
    """Mapper of a join job: key each side's rows, tagged by side."""

    def __init__(self, left_transform: _FusedTransform,
                 right_transform: _FusedTransform,
                 left_key: Callable[[Any], Any],
                 right_key: Callable[[Any], Any]) -> None:
        self.left_transform = left_transform
        self.right_transform = right_transform
        self.left_key = left_key
        self.right_key = right_key

    def __call__(self, tagged: Tuple[int, Any], ctx: TaskContext) -> None:
        tag, record = tagged
        if tag == 0:
            for row in self.left_transform(record):
                ctx.emit(self.left_key(row), (0, row))
        else:
            for row in self.right_transform(record):
                ctx.emit(self.right_key(row), (1, row))


class _MapOnlyMapper:
    """Mapper of a trailing map-only job: transform and emit rows."""

    def __init__(self, transform: _FusedTransform) -> None:
        self.transform = transform

    def __call__(self, record: Any, ctx: TaskContext) -> None:
        for row in self.transform(record):
            ctx.emit(None, row)


def _key_all(row: Any) -> str:
    """GROUP ALL key function: every row to the single group."""
    return "all"


def _identity(row: Any) -> Any:
    """DISTINCT key function: the row is its own key."""
    return row


def _key_zero(row: Any) -> int:
    """ORDER key function: one partition collects everything."""
    return 0


def _join_reducer(key: Any, values: List[Tuple[int, Any]],
                  ctx: TaskContext) -> None:
    lefts = [row for tag, row in values if tag == 0]
    rights = [row for tag, row in values if tag == 1]
    for lrow in lefts:
        for rrow in rights:
            ctx.emit(key, {"key": key, "left": lrow, "right": rrow})


def _group_reducer(key: Any, values: List[Any], ctx: TaskContext) -> None:
    ctx.emit(key, {"group": key, "bag": values})


def _distinct_reducer(key: Any, values: List[Any], ctx: TaskContext) -> None:
    ctx.emit(key, values[0])


def _collect_reducer(key: Any, values: List[Any], ctx: TaskContext) -> None:
    for value in values:
        ctx.emit(key, value)
