"""Deterministic fault injection for the §2 delivery pipeline.

The paper claims the Scribe→mover pipeline is "robust with respect to
transient failures"; this module makes that claim testable. A
:class:`FaultPlan` is a seeded list of :class:`FaultRule` entries, each
naming an injection *site* (an fnmatch pattern over dotted site names such
as ``hdfs.staging-east.write`` or ``aggregator.east-agg-000.receive``), a
fault *kind*, and an optional logical-time window. Instrumented components
call :func:`fault_point` at their named sites; when no injector is
installed the call is a cheap no-op, so production paths pay nothing.

The injector never *performs* the failure itself -- it only reports which
rule fired. Each call site translates the rule's kind into its local
failure mode (``HDFSUnavailableError``, an aggregator crash, a ZooKeeper
session expiry, a dropped send, a mover process crash). That keeps fault
semantics next to the code they break and avoids import cycles.

Every fired rule increments ``faults_injected_total{site=,kind=}`` so soak
runs can prove the plan actually exercised its failure windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from random import Random
from typing import List, Optional

from repro.clock import LogicalClock
from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry

#: Fault kinds understood by the instrumented call sites.
KIND_UNAVAILABLE = "unavailable"   # HDFS namenode outage window
KIND_CRASH = "crash"               # process crash (aggregator or mover)
KIND_ERROR = "error"               # transient send failure (nothing delivered)
KIND_ACK_LOST = "ack_lost"         # delivered, but the ack is lost (duplicate!)
KIND_EXPIRE_SESSION = "expire_session"  # ZooKeeper session expiry

VALID_KINDS = frozenset({
    KIND_UNAVAILABLE, KIND_CRASH, KIND_ERROR, KIND_ACK_LOST,
    KIND_EXPIRE_SESSION,
})


class InjectedFault(Exception):
    """A transient failure injected by a :class:`FaultInjector`."""


class InjectedCrash(InjectedFault):
    """An injected process crash: the surrounding operation dies mid-way.

    Raised by crash-window sites (e.g. the log mover between its
    delete/rename/delete-staged steps). Harnesses treat it as process
    death: catch it at the top level and re-run the operation, exactly as
    an operator would restart the crashed process.
    """


@dataclass
class FaultRule:
    """One failure to inject: where, what, when, and how often.

    ``site`` is an fnmatch pattern over dotted site names. ``start_ms`` /
    ``end_ms`` bound the logical-time window in which the rule is armed
    (``None`` means unbounded on that side). ``probability`` draws from
    the injector's seeded RNG, ``after_calls`` skips the first N matching
    calls, and ``max_fires`` retires the rule after it has fired N times
    -- together they express both "flaky with rate p" and "exactly the
    Kth operation fails" deterministically.
    """

    site: str
    kind: str
    start_ms: Optional[int] = None
    end_ms: Optional[int] = None
    probability: float = 1.0
    after_calls: int = 0
    max_fires: Optional[int] = None
    calls_seen: int = field(default=0, repr=False)
    fires: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def matches_site(self, site: str) -> bool:
        """True when ``site`` falls under this rule's pattern."""
        return fnmatchcase(site, self.site)

    def in_window(self, now_ms: int) -> bool:
        """True when the logical time lies inside the rule's window."""
        if self.start_ms is not None and now_ms < self.start_ms:
            return False
        if self.end_ms is not None and now_ms >= self.end_ms:
            return False
        return True

    @property
    def exhausted(self) -> bool:
        """True once the rule has fired ``max_fires`` times."""
        return self.max_fires is not None and self.fires >= self.max_fires


class FaultPlan:
    """An ordered collection of :class:`FaultRule` entries."""

    def __init__(self, rules: Optional[List[FaultRule]] = None) -> None:
        self.rules: List[FaultRule] = list(rules or [])

    def add(self, site: str, kind: str, **kwargs) -> FaultRule:
        """Append a rule (keyword args forward to :class:`FaultRule`)."""
        rule = FaultRule(site=site, kind=kind, **kwargs)
        self.rules.append(rule)
        return rule

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.rules)} rule(s))"


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named sites under a logical clock.

    Probability draws come from one seeded ``random.Random``, so a given
    (plan, seed, call sequence) always injects the same faults -- the
    property that makes chaos soaks replayable bug reports.
    """

    def __init__(self, plan: FaultPlan, clock: Optional[LogicalClock] = None,
                 seed: int = 0) -> None:
        self.plan = plan
        self._clock = clock
        self._rng = Random(seed)
        self.enabled = True
        self.injected_total = 0

    def check(self, site: str) -> Optional[FaultRule]:
        """Return the first armed rule firing at ``site``, if any.

        The matched rule's counters advance even when the probability draw
        declines to fire, keeping ``after_calls`` deterministic.
        """
        if not self.enabled:
            return None
        now_ms = self._clock.now() if self._clock is not None else 0
        for rule in self.plan.rules:
            if rule.exhausted or not rule.matches_site(site):
                continue
            if not rule.in_window(now_ms):
                continue
            rule.calls_seen += 1
            if rule.calls_seen <= rule.after_calls:
                continue
            if rule.probability < 1.0 and \
                    self._rng.random() >= rule.probability:
                continue
            rule.fires += 1
            self.injected_total += 1
            get_default_registry().counter(
                obs_names.FAULTS_INJECTED, site=site, kind=rule.kind).inc()
            return rule
        return None

    def disable(self) -> None:
        """Stop injecting (used to drain a soak run cleanly)."""
        self.enabled = False


# -- process-wide default (mirrors the obs registry/tracer pattern) --------
_default_injector: Optional[FaultInjector] = None


def get_default_injector() -> Optional[FaultInjector]:
    """The process-wide injector, or None when fault injection is off."""
    return _default_injector


def set_default_injector(injector: Optional[FaultInjector]) -> None:
    """Install (or, with None, remove) the process-wide injector."""
    global _default_injector
    _default_injector = injector


def fault_point(site: str) -> Optional[FaultRule]:
    """Consult the default injector at a named site (no-op when absent)."""
    injector = _default_injector
    if injector is None:
        return None
    return injector.check(site)
