"""The chaos soak: prove zero-loss/zero-duplicate delivery under faults.

``repro chaos --seed S --hours N`` drives a two-datacenter Scribe
deployment through N hours of traffic while a seeded
:class:`~repro.faults.injector.FaultPlan` injects the §2 failure
catalogue -- a staging-HDFS outage window, an aggregator crash with a
durable write-ahead buffer, lost sends, lost *acks* (the duplicate
generator), ZooKeeper session expiries, and log-mover crashes between
its delete/rename/cleanup steps. At the end it audits conservation:

    accepted == landed + dropped + quarantined

with *landed* counted two independent ways -- unique payloads actually
readable in the warehouse, and the mover's committed ``(origin, seq)``
ledger checked against every daemon's issued sequence range. Identical
seeds give identical storms, so a failing run is a replayable bug
report.

``repro chaos --partition`` runs the overload-survival variant over a
*sharded* warehouse: three categories at different QoS tiers land
through a :class:`~repro.logmover.sharded.ShardedLogMover` while the
storm partitions one datacenter's daemons from their aggregators
(exercising the known-down cool-down), takes out the other datacenter's
staging cluster long enough to drive aggregator backpressure and
bulk-tier QoS shedding, and kills a single warehouse *shard* across an
hour boundary so that shard's move defers to the final sweep while the
other shards' hours land on time. The audit generalizes per category:
payload conservation must balance against each category's recorded
drops, the sequence ledger must equal issued identities minus dropped
ones, and critical-tier traffic must land complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.faults.injector import (
    KIND_ACK_LOST,
    KIND_CRASH,
    KIND_ERROR,
    KIND_EXPIRE_SESSION,
    KIND_UNAVAILABLE,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    get_default_injector,
    set_default_injector,
)
from repro.core.event import ClientEvent
from repro.core.sessionizer import Sessionizer
from repro.faults.retry import RetryExhaustedError, RetryPolicy
from repro.hdfs.layout import LOGS_ROOT, hour_for_millis
from repro.logmover.mover import LogMover
from repro.logmover.sharded import ShardedLogMover
from repro.logmover.streaming import StreamingMover
from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry
from repro.obs.monitor import (
    DataQualityAuditor,
    PipelineMonitor,
    VERDICT_COMPLETE,
    standard_rules,
)
from repro.scribe.aggregator import decode_messages
from repro.scribe.cluster import ScribeDeployment
from repro.scribe.message import CategoryConfig, LogEntry, decode_envelope
from repro.scribe.qos import QOS_BULK, QOS_CRITICAL, QOS_STANDARD

#: The category the soak logs under.
CHAOS_CATEGORY = "chaos_events"

HOUR_MS = 3_600_000
MINUTE_MS = 60_000

#: Traffic slices per simulated hour.
SLICES_PER_HOUR = 12
#: Entries each daemon logs per slice.
ENTRIES_PER_SLICE = 4
#: How many times a crashed hour move is restarted before giving up.
MAX_MOVE_RESTARTS = 5

#: Streaming soak: the datacenter whose aggregators are held down across
#: the hour-0 seal (their WALs keep that hour's tail), and the hour-1
#: slice at which operators "notice" and restart them -- well after the
#: watermark sealed hour 0, so the replay is genuinely late data.
STREAM_HELD_DC = "east"
STREAM_HOLD_RESTART_SLICE = 3

#: Streaming soak sessionization: each daemon rotates its session id
#: every SESSION_SLICES slices (so sessions end mid-run and close as the
#: watermark passes), and the inactivity gap is wide enough that the
#: held-datacenter WAL replay -- the hour-0 tail slice, 4 minutes after
#: that session's last on-time event -- extends a session that closed at
#: the hour-0 seal, forcing a genuine incremental *re-open*.
SESSION_SLICES = 3
CHAOS_SESSION_GAP_MS = 10 * MINUTE_MS

#: Event names the streaming soak cycles through (exercises every rollup
#: level with more than one client / page / action).
CHAOS_EVENT_NAMES = (
    "web:home:main:stream:tweet:impression",
    "web:home:main:stream:tweet:favorite",
    "iphone:profile:header:card:avatar:click",
    "android:home:main:stream:retweet:click",
)
CHAOS_COUNTRIES = ("us", "jp", "de")

#: Partition soak: warehouse shard count, and the traffic mix as
#: (category, QoS tier, entries per daemon per slice). The three
#: categories hash to three *distinct* shards of the four, so losing the
#: bulk category's shard cannot touch the other categories' hours.
PARTITION_SHARDS = 4
PARTITION_CATEGORIES = (
    ("chaos_revenue", QOS_CRITICAL, 1),
    (CHAOS_CATEGORY, QOS_STANDARD, 2),
    ("chaos_ads", QOS_BULK, 4),
)
#: The category whose warehouse shard the partition storm takes down.
PARTITION_SHARD_LOSS_CATEGORY = "chaos_ads"
#: Small bulk staging files, so the 20-minute staging outage stacks
#: enough disk-buffered rolls to cross the aggregators' backpressure
#: threshold (two buffered files) while the outage is still on.
PARTITION_BULK_FILE_RECORDS = 10


@dataclass
class ChaosReport:
    """Outcome of one chaos soak, with the conservation audit."""

    seed: int
    hours: int
    accepted: int = 0
    landed: int = 0
    dropped: int = 0
    quarantined: int = 0
    duplicates_skipped: int = 0
    faults_injected: int = 0
    retry_attempts: int = 0
    mover_restarts: int = 0
    alerts_fired: int = 0
    alerts_resolved: int = 0
    alerts_unresolved: int = 0
    #: Streaming-mode accounting (zero on hourly soaks).
    streaming: bool = False
    batches_landed: int = 0
    hours_sealed: int = 0
    late_reopens: int = 0
    #: Incremental consumer accounting (streaming soaks only): sessions
    #: closed/re-opened by the seal-driven sessionizer, rollup days
    #: materialized, and correction deltas applied on late re-seals.
    sessions_closed: int = 0
    sessions_reopened: int = 0
    rollup_days: int = 0
    rollup_corrections: int = 0
    #: Partition-soak accounting (zero elsewhere): warehouse shard count,
    #: boundary moves deferred by a shard loss, aggregator backpressure
    #: episodes, and entries shed by QoS sampling.
    partition: bool = False
    shards: int = 0
    moves_deferred: int = 0
    backpressure_engaged: int = 0
    qos_sampled: int = 0
    hour_verdicts: Dict[str, str] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    #: The live monitor when the soak ran with ``monitor=True`` (not
    #: serialized; carries the series/audit/alert state for rendering).
    monitor: Optional[PipelineMonitor] = None

    @property
    def ok(self) -> bool:
        """True when every conservation and coverage check held."""
        return not self.violations

    def summary(self) -> str:
        """A one-screen human-readable account of the run."""
        variant = (" (streaming)" if self.streaming
                   else " (partition)" if self.partition else "")
        lines = [
            f"chaos soak{variant}: "
            f"seed={self.seed} hours={self.hours} "
            f"{'PASS' if self.ok else 'FAIL'}",
            f"  accepted={self.accepted} landed={self.landed} "
            f"dropped={self.dropped} quarantined={self.quarantined}",
            f"  faults_injected={self.faults_injected} "
            f"retry_attempts={self.retry_attempts} "
            f"duplicates_skipped={self.duplicates_skipped} "
            f"mover_restarts={self.mover_restarts}",
        ]
        if self.partition:
            lines.append(
                f"  shards={self.shards} "
                f"moves_deferred={self.moves_deferred} "
                f"backpressure_engaged={self.backpressure_engaged} "
                f"qos_sampled={self.qos_sampled}")
        if self.streaming:
            lines.append(
                f"  batches_landed={self.batches_landed} "
                f"hours_sealed={self.hours_sealed} "
                f"late_reopens={self.late_reopens}")
            lines.append(
                f"  sessions_closed={self.sessions_closed} "
                f"sessions_reopened={self.sessions_reopened} "
                f"rollup_days={self.rollup_days} "
                f"rollup_corrections={self.rollup_corrections}")
        if self.monitor is not None:
            complete = sum(1 for v in self.hour_verdicts.values()
                           if v == VERDICT_COMPLETE)
            lines.append(
                f"  alerts_fired={self.alerts_fired} "
                f"alerts_resolved={self.alerts_resolved} "
                f"alerts_unresolved={self.alerts_unresolved} "
                f"hours_complete={complete}/{len(self.hour_verdicts)}")
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


def default_chaos_plan(seed: int, hours: int) -> FaultPlan:
    """The standard storm for an N-hour soak.

    Deterministic must-haves (the acceptance faults) are armed with
    probability 1 and bounded fire counts: one staging-HDFS outage
    window, one aggregator crash, and one mover crash at each of the two
    crash sites. Probabilistic noise -- flaky sends, lost acks, session
    expiries -- is windowed to end well before each hour boundary so the
    boundary drain always runs fault-free. ``seed`` only shifts *which*
    probabilistic calls fire (via the injector's RNG); the plan's shape
    is the same for every seed.
    """
    plan = FaultPlan()
    # -- deterministic acceptance faults (hour 0) -----------------------
    plan.add("hdfs.staging-east.write", KIND_UNAVAILABLE,
             start_ms=10 * MINUTE_MS, end_ms=40 * MINUTE_MS)
    plan.add("aggregator.east-agg-000.receive", KIND_CRASH,
             start_ms=15 * MINUTE_MS, end_ms=40 * MINUTE_MS, max_fires=1)
    plan.add(f"logmover.{CHAOS_CATEGORY}.pre_rename", KIND_CRASH,
             max_fires=1)
    plan.add(f"logmover.{CHAOS_CATEGORY}.pre_cleanup", KIND_CRASH,
             max_fires=1)
    # A second outage on the other datacenter once the soak is long
    # enough to have a second hour.
    if hours >= 2:
        plan.add("hdfs.staging-west.write", KIND_UNAVAILABLE,
                 start_ms=HOUR_MS + 12 * MINUTE_MS,
                 end_ms=HOUR_MS + 35 * MINUTE_MS)
    # -- probabilistic noise, windowed inside each hour -----------------
    for h in range(hours):
        start = h * HOUR_MS
        plan.add("daemon.west-host-*.send", KIND_ERROR,
                 start_ms=start + 2 * MINUTE_MS,
                 end_ms=start + 50 * MINUTE_MS, probability=0.05)
        plan.add("daemon.east-host-*.send", KIND_ACK_LOST,
                 start_ms=start + 2 * MINUTE_MS,
                 end_ms=start + 50 * MINUTE_MS, probability=0.04,
                 max_fires=4)
        plan.add("zk.session.*", KIND_EXPIRE_SESSION,
                 start_ms=start + 2 * MINUTE_MS,
                 end_ms=start + 50 * MINUTE_MS, probability=0.02,
                 max_fires=2)
    return plan


def streaming_chaos_plan(seed: int, hours: int) -> FaultPlan:
    """The storm for a streaming soak: the hourly plan's outages and
    aggregator crash, plus crashes armed *inside* the micro-batch
    protocol -- between a batch's write and its rename, between the
    rename and staged cleanup, and before the seal's atomic slide.
    Probabilistic noise ends earlier (minute 44) so the held-aggregator
    late-data scenario at the last slice of hour 0 is deterministic.
    """
    plan = FaultPlan()
    plan.add("hdfs.staging-east.write", KIND_UNAVAILABLE,
             start_ms=10 * MINUTE_MS, end_ms=40 * MINUTE_MS)
    plan.add("aggregator.east-agg-000.receive", KIND_CRASH,
             start_ms=15 * MINUTE_MS, end_ms=40 * MINUTE_MS, max_fires=1)
    plan.add(f"logmover.{CHAOS_CATEGORY}.batch.pre_rename", KIND_CRASH,
             max_fires=1)
    plan.add(f"logmover.{CHAOS_CATEGORY}.batch.pre_cleanup", KIND_CRASH,
             max_fires=1)
    plan.add(f"logmover.{CHAOS_CATEGORY}.seal.pre_rename", KIND_CRASH,
             max_fires=1)
    if hours >= 2:
        plan.add("hdfs.staging-west.write", KIND_UNAVAILABLE,
                 start_ms=HOUR_MS + 12 * MINUTE_MS,
                 end_ms=HOUR_MS + 35 * MINUTE_MS)
    for h in range(hours):
        start = h * HOUR_MS
        plan.add("daemon.west-host-*.send", KIND_ERROR,
                 start_ms=start + 2 * MINUTE_MS,
                 end_ms=start + 44 * MINUTE_MS, probability=0.05)
        plan.add("daemon.east-host-*.send", KIND_ACK_LOST,
                 start_ms=start + 2 * MINUTE_MS,
                 end_ms=start + 44 * MINUTE_MS, probability=0.04,
                 max_fires=4)
        plan.add("zk.session.*", KIND_EXPIRE_SESSION,
                 start_ms=start + 2 * MINUTE_MS,
                 end_ms=start + 44 * MINUTE_MS, probability=0.02,
                 max_fires=2)
    return plan


def partition_chaos_plan(seed: int, hours: int, shard: int) -> FaultPlan:
    """The storm for the sharded-warehouse overload soak.

    Three deterministic acceptance windows in hour 0: a full network
    partition of the east daemons from their aggregators (every send
    lost, minute 10-26 -- the known-down cool-down must bound the retry
    bill), a west staging-HDFS outage (minute 30-50 -- aggregator rolls
    stack on the local-disk buffer until backpressure engages and west
    daemons start shedding sampled bulk traffic), and an outage of one
    warehouse *shard* spanning the hour-0 boundary (minute 55-70 -- the
    boundary move of the category living on that shard exhausts its
    retries and defers to the final sweep while the other shards' hours
    land on time). Hour 1 adds the crash-coverage faults: both east
    aggregators crash once (WAL replay on restart) and the mover crashes
    once mid-publish. Light ack-loss and ZooKeeper-expiry noise rides on
    top, windowed clear of the backpressure phase.
    """
    plan = FaultPlan()
    # -- hour 0: the three overload windows -----------------------------
    plan.add("daemon.east-host-*.send", KIND_ERROR,
             start_ms=10 * MINUTE_MS, end_ms=26 * MINUTE_MS)
    plan.add("hdfs.staging-west.write", KIND_UNAVAILABLE,
             start_ms=30 * MINUTE_MS, end_ms=50 * MINUTE_MS)
    plan.add(f"hdfs.warehouse-shard-{shard}.write", KIND_UNAVAILABLE,
             start_ms=55 * MINUTE_MS, end_ms=70 * MINUTE_MS)
    # -- crash coverage (hour 1, after the overload windows) ------------
    plan.add("aggregator.east-agg-000.receive", KIND_CRASH,
             start_ms=HOUR_MS + 6 * MINUTE_MS,
             end_ms=HOUR_MS + 20 * MINUTE_MS, max_fires=1)
    plan.add("aggregator.east-agg-001.receive", KIND_CRASH,
             start_ms=HOUR_MS + 6 * MINUTE_MS,
             end_ms=HOUR_MS + 20 * MINUTE_MS, max_fires=1)
    plan.add(f"logmover.{CHAOS_CATEGORY}.pre_rename", KIND_CRASH,
             max_fires=1)
    # -- probabilistic noise, clear of the backpressure window ----------
    for h in range(hours):
        start = h * HOUR_MS
        plan.add("daemon.west-host-*.send", KIND_ACK_LOST,
                 start_ms=start + 2 * MINUTE_MS,
                 end_ms=start + 26 * MINUTE_MS, probability=0.04,
                 max_fires=4)
        plan.add("zk.session.*", KIND_EXPIRE_SESSION,
                 start_ms=start + 2 * MINUTE_MS,
                 end_ms=start + 50 * MINUTE_MS, probability=0.02,
                 max_fires=2)
    return plan


def run_partition_chaos(seed: int, hours: int = 2) -> ChaosReport:
    """Run the sharded-warehouse overload soak and return its report.

    Same east/west topology as :func:`run_chaos`, but the warehouse is a
    :class:`~repro.hdfs.sharded.ShardedHDFS` of
    :data:`PARTITION_SHARDS` shards behind a
    :class:`~repro.logmover.sharded.ShardedLogMover`, and every daemon
    logs all three :data:`PARTITION_CATEGORIES` each slice -- critical,
    standard, and bulk tiers on three distinct shards. The mover runs
    its serial backend here: per-shard movers retry with backoff on the
    shared logical clock, and a deterministic storm needs those clock
    advances in one thread (the parallel backend is exercised by the
    sharded-mover tests and the scale-out benchmark).

    On top of :func:`_audit`'s per-category conservation, the report
    must show the overload machinery actually engaged: backpressure
    fired, only the bulk tier was sampled, the critical category landed
    complete, and the shard loss deferred (exactly) the lost shard's
    boundary move to the final sweep.
    """
    if hours < 2:
        raise ValueError("the partition soak needs at least two hours "
                         "(the shard outage spans the hour-0 boundary)")
    report = ChaosReport(seed=seed, hours=hours, partition=True,
                         shards=PARTITION_SHARDS)
    policy = RetryPolicy(max_attempts=5, base_delay_ms=100,
                         max_delay_ms=5_000, seed=seed)
    deployment = ScribeDeployment(
        ["east", "west"], num_hosts=3, num_aggregators=2,
        durable_aggregators=True, seed=seed, retry_policy=policy,
        warehouse_shards=PARTITION_SHARDS)
    for category, tier, __ in PARTITION_CATEGORIES:
        deployment.categories.register(CategoryConfig(
            category=category, codec="zlib",
            max_file_records=(PARTITION_BULK_FILE_RECORDS
                              if tier == QOS_BULK else 50),
            qos=tier))
    clock = deployment.clock
    staging_clusters = {name: dc.staging
                        for name, dc in deployment.datacenters.items()}
    mover = ShardedLogMover(staging_clusters, deployment.warehouse,
                            backend="serial", clock=clock,
                            retry_policy=policy)
    shard = deployment.warehouse.shard_index(PARTITION_SHARD_LOSS_CATEGORY)
    plan = partition_chaos_plan(seed, hours, shard)
    injector = FaultInjector(plan, clock=clock, seed=seed)
    previous = get_default_injector()
    set_default_injector(injector)
    registry = get_default_registry()
    sent_payloads: Dict[str, List[bytes]] = {
        category: [] for category, __, __ in PARTITION_CATEGORIES}
    counter = 0
    try:
        for h in range(hours):
            hour_start = h * HOUR_MS
            for s in range(SLICES_PER_HOUR):
                target = hour_start + 2 * MINUTE_MS + s * 4 * MINUTE_MS
                if clock.now() < target:
                    clock.advance(target - clock.now())
                for dc in deployment.datacenters.values():
                    for daemon in dc.daemons:
                        for category, __, per_slice in PARTITION_CATEGORIES:
                            for _ in range(per_slice):
                                payload = (f"{category}:"
                                           f"{counter:06d}").encode()
                                counter += 1
                                sent_payloads[category].append(payload)
                                daemon.log(LogEntry(category, payload))
                    if s >= 2:
                        _restart_dead(deployment)
            boundary = (h + 1) * HOUR_MS
            if clock.now() < boundary:
                clock.advance(boundary - clock.now())
            _drain(deployment)
            for category, __, __ in PARTITION_CATEGORIES:
                hour = hour_for_millis(category, hour_start)
                if mover.hour_has_data(hour):
                    restarts, deferred = _move_or_defer(mover, hour)
                    report.mover_restarts += restarts
                    report.moves_deferred += deferred
        # Final sweep, fault-free: deferred hours (the lost shard's) and
        # any backoff spillover land now.
        injector.disable()
        _drain(deployment)
        for h in range(hours + 1):
            for category, __, __ in PARTITION_CATEGORIES:
                hour = hour_for_millis(category, h * HOUR_MS)
                if mover.hour_has_data(hour):
                    report.mover_restarts += _move_with_restarts(mover,
                                                                 hour)
    finally:
        set_default_injector(previous)

    _audit(report, deployment, mover, plan, sent_payloads, faults=True)
    report.faults_injected = injector.injected_total
    report.retry_attempts = int(registry.total(obs_names.RETRY_ATTEMPTS))
    report.duplicates_skipped = sum(r.duplicates_skipped
                                    for r in mover.moves)
    report.backpressure_engaged = int(
        registry.total(obs_names.BACKPRESSURE_ENGAGED))
    report.qos_sampled = int(registry.total(obs_names.QOS_SAMPLED))
    _check_partition(report, deployment, registry, plan)
    return report


def run_chaos(seed: int, hours: int = 2, monitor: bool = False,
              faults: bool = True,
              quiet_hours: Optional[Set[int]] = None,
              streaming: bool = False) -> ChaosReport:
    """Run the soak and return its audited report.

    The deployment is two datacenters (east/west) of three hosts and two
    durable aggregators each, sharing one retry policy; hours are moved
    at each boundary after a full drain, and a final sweep catches any
    backoff spillover into the trailing hour.

    ``monitor=True`` attaches a :class:`PipelineMonitor` (standard rule
    set) that ticks after every traffic slice and hour boundary, and the
    audit additionally asserts alert coverage: on a faulted run every
    injected outage/crash class must fire -- and later resolve -- its
    alert; on a fault-free run (``faults=False``) any fired alert is a
    false positive and fails the soak. ``quiet_hours`` suppresses
    traffic during the given absolute hour indices (the seasonal-rule
    demo knob; it also disables the false-positive check, since a quiet
    hour legitimately fires the seasonal deviation alert).

    ``streaming=True`` replaces the hourly boundary moves with a
    :class:`StreamingMover` polled after every traffic slice (one-minute
    micro-batches, two-minute watermark delay), arms the streaming plan
    (crashes mid-micro-batch and mid-seal), and holds one datacenter's
    aggregators down across the hour-0 seal so their WAL replay lands as
    genuinely late data -- re-opening the sealed hour through the
    replace-semantics path. The monitor is always attached: the audit
    additionally asserts that every landed hour ends sealed, that the
    late re-open happened, and that the ``completeness`` alert fired on
    the ``late`` verdict and later resolved.
    """
    if hours < 1:
        raise ValueError("need at least one hour")
    quiet = quiet_hours or set()
    if streaming:
        monitor = True
    report = ChaosReport(seed=seed, hours=hours, streaming=streaming)
    policy = RetryPolicy(max_attempts=5, base_delay_ms=100,
                         max_delay_ms=5_000, seed=seed)
    deployment = ScribeDeployment(
        ["east", "west"], num_hosts=3, num_aggregators=2,
        durable_aggregators=True, seed=seed, retry_policy=policy)
    deployment.categories.register(CategoryConfig(
        category=CHAOS_CATEGORY, codec="zlib", max_file_records=50))
    clock = deployment.clock
    staging_clusters = {name: dc.staging
                        for name, dc in deployment.datacenters.items()}
    incremental: Optional["IncrementalPipeline"] = None
    if streaming:
        from repro.oink.incremental import IncrementalPipeline

        mover = StreamingMover(
            staging_clusters, deployment.warehouse, clock,
            batch_interval_ms=MINUTE_MS,
            watermark_delay_ms=2 * MINUTE_MS)
        plan = streaming_chaos_plan(seed, hours) if faults else FaultPlan()
        incremental = IncrementalPipeline(
            deployment.warehouse, category=CHAOS_CATEGORY,
            inactivity_gap_ms=CHAOS_SESSION_GAP_MS)
    else:
        mover = LogMover(
            staging_clusters, warehouse=deployment.warehouse,
            clock=clock, retry_policy=policy)
        plan = default_chaos_plan(seed, hours) if faults else FaultPlan()
    injector = FaultInjector(plan, clock=clock, seed=seed)
    previous = get_default_injector()
    set_default_injector(injector)
    registry = get_default_registry()
    pipeline_monitor: Optional[PipelineMonitor] = None
    if monitor:
        daemons = [d for dc in deployment.datacenters.values()
                   for d in dc.daemons]
        pipeline_monitor = PipelineMonitor(
            auditor=DataQualityAuditor(mover, daemons=daemons),
            rules=standard_rules(),
            max_samples=max(2048, (hours + 1) * (SLICES_PER_HOUR + 2)))
        report.monitor = pipeline_monitor
    sent_payloads: List[bytes] = []
    counter = 0
    try:
        if streaming:
            _stream_traffic(report, deployment, mover, pipeline_monitor,
                            clock, hours, quiet, sent_payloads,
                            faults=faults, incremental=incremental)

            def on_tail_poll(poll) -> None:
                incremental.observe_poll(poll)
                if pipeline_monitor is not None:
                    pipeline_monitor.tick(clock.now())

            # Drain the tail fault-free, then keep polling until every
            # landed hour is sealed and no staged data remains.
            injector.disable()
            _drain(deployment)
            mover.run_until_sealed(CHAOS_CATEGORY, on_poll=on_tail_poll)
        else:
            for h in range(hours):
                hour_start = h * HOUR_MS
                for s in range(SLICES_PER_HOUR):
                    target = (hour_start + 2 * MINUTE_MS
                              + s * 4 * MINUTE_MS)
                    if clock.now() < target:
                        clock.advance(target - clock.now())
                    for dc in deployment.datacenters.values():
                        for daemon in dc.daemons:
                            if h in quiet:
                                break  # a suppressed-traffic hour
                            for _ in range(ENTRIES_PER_SLICE):
                                payload = f"m{counter:06d}".encode()
                                counter += 1
                                sent_payloads.append(payload)
                                daemon.log(LogEntry(CHAOS_CATEGORY,
                                                    payload))
                        # Operators restart crashed aggregators promptly;
                        # the restart replays the durable WAL.
                        if s >= 2:
                            _restart_dead(deployment)
                    if pipeline_monitor is not None:
                        pipeline_monitor.tick(clock.now())
                boundary = (h + 1) * HOUR_MS
                if clock.now() < boundary:
                    clock.advance(boundary - clock.now())
                _drain(deployment)
                hour = hour_for_millis(CHAOS_CATEGORY, hour_start)
                if mover.hour_has_data(hour):
                    report.mover_restarts += _move_with_restarts(mover,
                                                                 hour)
                if pipeline_monitor is not None:
                    pipeline_monitor.tick(clock.now())
            # Backoff during the last hour can spill a few receives past
            # the final boundary; sweep every hour with staged data.
            injector.disable()
            _drain(deployment)
            for h in range(hours + 1):
                hour = hour_for_millis(CHAOS_CATEGORY, h * HOUR_MS)
                if mover.hour_has_data(hour):
                    report.mover_restarts += _move_with_restarts(mover,
                                                                 hour)
        if pipeline_monitor is not None:
            # Cooldown ticks: monitoring outlives the traffic, so event
            # alerts (failovers, mover crashes) get their quiet samples
            # and resolve before the coverage audit inspects them.
            pipeline_monitor.tick(clock.now())
            for _ in range(4):
                clock.advance(MINUTE_MS)
                pipeline_monitor.tick(clock.now())
    finally:
        set_default_injector(previous)

    _audit(report, deployment, mover, plan, sent_payloads,
           faults=faults, quiet_hours=quiet)
    report.faults_injected = injector.injected_total
    report.retry_attempts = int(registry.total(obs_names.RETRY_ATTEMPTS))
    report.duplicates_skipped = sum(r.duplicates_skipped
                                    for r in mover.moves)
    if streaming:
        report.batches_landed = int(
            registry.total(obs_names.STREAMING_BATCHES_LANDED))
        report.hours_sealed = len(mover.hours_sealed())
        report.late_reopens = mover.late_reopens()
        _check_streaming(report, mover, faults=faults,
                         quiet_hours=quiet)
        _check_incremental(report, deployment, mover, incremental,
                           faults=faults, quiet_hours=quiet)
    return report


# -- orchestration helpers -------------------------------------------------
def _restart_dead(deployment: ScribeDeployment) -> None:
    """Restart every crashed aggregator (WAL replay happens in start)."""
    for dc in deployment.datacenters.values():
        for aggregator in dc.aggregators.values():
            if not aggregator.alive:
                aggregator.start()


def _drain(deployment: ScribeDeployment) -> None:
    """Push every buffered message through to staging HDFS.

    Restarts dead aggregators, then alternates daemon and aggregator
    flushes until daemon buffers, aggregator pending buckets, and
    disk-outage buffers are all empty. Runs at hour boundaries, outside
    every noise window, so a handful of rounds always converges.
    """
    _restart_dead(deployment)
    for _ in range(8):
        for dc in deployment.datacenters.values():
            for daemon in dc.daemons:
                daemon.flush()
            for aggregator in dc.aggregators.values():
                aggregator.flush()
        if _fully_drained(deployment):
            return


def _fully_drained(deployment: ScribeDeployment) -> bool:
    """True when no message is buffered anywhere short of staging."""
    for dc in deployment.datacenters.values():
        if any(d.buffered for d in dc.daemons):
            return False
        for aggregator in dc.aggregators.values():
            if (aggregator.pending_messages or
                    aggregator.disk_buffered_files or
                    aggregator.wal_depth):
                return False
    return True


def _move_with_restarts(mover: LogMover, hour) -> int:
    """Move one hour, restarting through injected mover crashes.

    Returns the number of restarts. The move body is idempotent, so a
    re-run after a crash between any two steps converges on the same
    published hour.
    """
    restarts = 0
    for _ in range(MAX_MOVE_RESTARTS):
        try:
            mover.move_hour(hour, require_complete=False)
            return restarts
        except InjectedCrash:
            restarts += 1
    raise RuntimeError(f"mover failed to converge on {hour} after "
                       f"{MAX_MOVE_RESTARTS} restarts")


def _move_or_defer(mover: ShardedLogMover, hour) -> Tuple[int, int]:
    """Move one hour through crashes, or defer it on a shard outage.

    Returns ``(restarts, deferred)``. Injected mover crashes are
    restarted exactly as in :func:`_move_with_restarts`; a
    :class:`~repro.faults.retry.RetryExhaustedError` means the hour's
    warehouse shard stayed down through the whole retry budget -- the
    operational answer is to leave the hour staged and let a later sweep
    land it, which is what ``deferred=1`` reports.
    """
    restarts = 0
    for _ in range(MAX_MOVE_RESTARTS):
        try:
            mover.move_hour(hour, require_complete=False)
            return restarts, 0
        except InjectedCrash:
            restarts += 1
        except RetryExhaustedError:
            return restarts, 1
    raise RuntimeError(f"mover failed to converge on {hour} after "
                       f"{MAX_MOVE_RESTARTS} restarts")


def _chaos_event(counter: int, user_id: int, session_id: str,
                 timestamp: int) -> bytes:
    """One unique encoded ClientEvent of streaming-soak traffic.

    ``event_details`` carries the global counter so every payload's
    bytes are distinct -- the conservation audit compares payload sets.
    """
    event = ClientEvent.make(
        CHAOS_EVENT_NAMES[counter % len(CHAOS_EVENT_NAMES)],
        user_id=user_id, session_id=session_id,
        ip=f"10.0.{user_id}.1", timestamp=timestamp,
        details={"n": str(counter)},
        country=CHAOS_COUNTRIES[counter % len(CHAOS_COUNTRIES)],
        logged_in=bool(counter % 2))
    return event.to_bytes()


def _stream_traffic(report: ChaosReport, deployment: ScribeDeployment,
                    mover: StreamingMover,
                    pipeline_monitor: Optional[PipelineMonitor],
                    clock, hours: int, quiet: Set[int],
                    sent_payloads: List[bytes], faults: bool,
                    incremental=None) -> None:
    """Drive the streaming soak: traffic, faults, and per-slice polls.

    Same traffic shape as the hourly soak (12 slices per hour), but the
    mover is polled after every slice instead of at hour boundaries, and
    the payloads are encoded :class:`ClientEvent`\\ s: one user per
    daemon, whose session id rotates every :data:`SESSION_SLICES` slices
    so the incremental sessionizer continuously closes sessions mid-run.
    Every successful poll feeds ``incremental`` (when given).

    On faulted multi-hour runs the held-datacenter scenario is armed:
    every aggregator in ``STREAM_HELD_DC`` is crashed right after the
    last hour-0 slice reached them -- their durable write-ahead buffers
    keep that slice -- and stays down until hour 1's
    ``STREAM_HOLD_RESTART_SLICE``, well past the hour-0 seal, so the
    replay re-opens a sealed hour as genuinely late data *and* extends
    an already-closed session (the replayed slice lies within
    :data:`CHAOS_SESSION_GAP_MS` of its session's last on-time event),
    forcing an incremental session re-open plus a rollup correction.
    """
    held: Set[str] = set()
    hold_armed = faults and hours >= 2 and 0 not in quiet
    counter = 0
    user_ids = {daemon.host: index + 1
                for index, daemon in enumerate(
                    d for dc in deployment.datacenters.values()
                    for d in dc.daemons)}
    for h in range(hours):
        hour_start = h * HOUR_MS
        for s in range(SLICES_PER_HOUR):
            target = hour_start + 2 * MINUTE_MS + s * 4 * MINUTE_MS
            if clock.now() < target:
                clock.advance(target - clock.now())
            block = (h * SLICES_PER_HOUR + s) // SESSION_SLICES
            if h not in quiet:
                for dc in deployment.datacenters.values():
                    for daemon in dc.daemons:
                        user_id = user_ids[daemon.host]
                        session_id = f"{daemon.host}-b{block:03d}"
                        for _ in range(ENTRIES_PER_SLICE):
                            payload = _chaos_event(
                                counter, user_id, session_id,
                                timestamp=clock.now())
                            counter += 1
                            sent_payloads.append(payload)
                            daemon.log(LogEntry(CHAOS_CATEGORY, payload))
            if hold_armed and h == 0 and s == SLICES_PER_HOUR - 1:
                held = _hold_datacenter(deployment, STREAM_HELD_DC)
            if held and h >= 1 and s >= STREAM_HOLD_RESTART_SLICE:
                held = set()  # operators finally notice; WALs replay
            _stream_drain(deployment, held)
            restarts, poll = _poll_with_restarts(mover)
            report.mover_restarts += restarts
            if incremental is not None:
                incremental.observe_poll(poll)
            if pipeline_monitor is not None:
                pipeline_monitor.tick(clock.now())


def _hold_datacenter(deployment: ScribeDeployment, name: str) -> Set[str]:
    """Deliver daemon backlogs, then crash the datacenter's aggregators.

    The crash lands after delivery but before the aggregators roll to
    staging, so the just-logged slice survives only in their durable
    write-ahead buffers -- the late-data generator for the streaming
    soak. Returns the crashed aggregator names (the hold set).
    """
    dc = deployment.datacenters[name]
    for daemon in dc.daemons:
        daemon.flush()
    held: Set[str] = set()
    for agg_name, aggregator in dc.aggregators.items():
        if aggregator.alive:
            aggregator.crash()
        held.add(agg_name)
    return held


def _stream_drain(deployment: ScribeDeployment, held: Set[str]) -> None:
    """One best-effort push toward staging between micro-batch polls.

    Unlike the boundary :func:`_drain`, this runs *inside* noise windows
    and makes no completeness promise: whatever stays stuck simply rides
    into a later micro-batch. Aggregators named in ``held`` are left
    down and unflushed -- nobody has restarted them yet.
    """
    for dc in deployment.datacenters.values():
        for name, aggregator in dc.aggregators.items():
            if not aggregator.alive and name not in held:
                aggregator.start()
    for _ in range(2):
        for dc in deployment.datacenters.values():
            for daemon in dc.daemons:
                daemon.flush()
            for name, aggregator in dc.aggregators.items():
                if name not in held:
                    aggregator.flush()


def _poll_with_restarts(mover: StreamingMover,
                        category: str = CHAOS_CATEGORY):
    """Poll the streaming mover once, restarting through injected
    crashes; returns ``(restarts, poll_result)``. ``force=True``
    because a crashed attempt already consumed the batch interval; its
    restart must be allowed to land immediately. Only the *successful*
    poll's result is returned, so downstream consumers (the incremental
    sessionizer/rollup) observe committed seals only.
    """
    restarts = 0
    for _ in range(MAX_MOVE_RESTARTS):
        try:
            return restarts, mover.poll(category, force=True)
        except InjectedCrash:
            restarts += 1
    raise RuntimeError(f"streaming mover failed to converge after "
                       f"{MAX_MOVE_RESTARTS} restarts")


# -- the audit -------------------------------------------------------------
def _audit(report: ChaosReport, deployment: ScribeDeployment,
           mover: LogMover, plan: FaultPlan,
           sent_payloads: Union[List[bytes], Dict[str, List[bytes]]],
           faults: bool = True,
           quiet_hours: Optional[Set[int]] = None) -> None:
    """Check conservation, uniqueness, fault and alert coverage.

    ``sent_payloads`` is per category (a bare list means everything went
    through :data:`CHAOS_CATEGORY`). Each category's missing payloads
    must balance exactly against the drops its daemons recorded for that
    category -- on a drop-free soak that degenerates to "every accepted
    payload landed", and on the partition soak it pins the QoS sheds to
    the categories that were allowed to shed.
    """
    daemons = [d for dc in deployment.datacenters.values()
               for d in dc.daemons]
    report.accepted = sum(d.stats.accepted for d in daemons)
    report.dropped = sum(d.stats.dropped for d in daemons)
    report.quarantined = sum(r.quarantined_messages for r in mover.moves)
    if isinstance(sent_payloads, list):
        sent_payloads = {CHAOS_CATEGORY: sent_payloads}

    # Landed payloads, read back from the warehouse like a consumer
    # would, category by category.
    warehouse = deployment.warehouse
    report.landed = 0
    for category in sorted(sent_payloads):
        landed_payloads: List[bytes] = []
        root = f"{LOGS_ROOT}/{category}"
        if warehouse.is_dir(root):
            for path in warehouse.glob_files(root):
                for frame_bytes in decode_messages(
                        warehouse.open_bytes(path)):
                    origin, __, payload = decode_envelope(frame_bytes)
                    if origin is not None:
                        report.violations.append(
                            f"unstripped envelope in warehouse file {path}")
                    landed_payloads.append(payload)
        report.landed += len(landed_payloads)

        if len(set(landed_payloads)) != len(landed_payloads):
            dupes = len(landed_payloads) - len(set(landed_payloads))
            report.violations.append(
                f"{dupes} duplicate {category} payload(s) in the "
                f"warehouse")
        expected = set(sent_payloads[category])
        missing = expected - set(landed_payloads)
        extra = set(landed_payloads) - expected
        dropped_here = sum(
            counts.dropped
            for daemon in daemons
            for (cat, __), counts in daemon.hour_ledger().items()
            if cat == category)
        if len(missing) != dropped_here:
            report.violations.append(
                f"{len(missing)} accepted {category} payload(s) never "
                f"landed but its daemons recorded {dropped_here} "
                f"drop(s) (e.g. {sorted(missing)[:3]})")
        if extra:
            report.violations.append(
                f"{len(extra)} unexpected {category} payload(s) landed")
    if report.accepted != (report.landed + report.dropped +
                           report.quarantined):
        report.violations.append(
            f"conservation broken: accepted={report.accepted} != "
            f"landed={report.landed} + dropped={report.dropped} + "
            f"quarantined={report.quarantined}")

    # Sequence audit: the mover's committed ledger must cover exactly the
    # sequence ranges the daemons issued, minus the identities the
    # daemons themselves dropped (QoS sheds, drop-oldest evictions) --
    # an accounted drop must never land, an undropped identity must.
    issued: Set[Tuple[str, int]] = set()
    dropped_ids: Set[Tuple[str, int]] = set()
    for daemon in daemons:
        issued |= {(daemon.host, s) for s in range(daemon.next_seq)}
        dropped_ids |= daemon.dropped_identities()
    ledger = set(mover.landed_identities())
    expected_ledger = issued - dropped_ids
    if ledger != expected_ledger:
        report.violations.append(
            f"sequence ledger mismatch: "
            f"{len(expected_ledger - ledger)} issued undropped "
            f"identities unledgered, {len(ledger - expected_ledger)} "
            f"ledgered identities dropped or never issued")

    # Coverage: the acceptance faults must actually have fired.
    if faults:
        _check_coverage(report, plan)
    if report.monitor is not None:
        _check_alerts(report, plan, faults=faults,
                      quiet_hours=quiet_hours or set())


#: Injected fault classes mapped to the alert each must fire: site
#: prefix, fault kind, alert rule name.
_ALERT_EXPECTATIONS = (
    ("hdfs.", KIND_UNAVAILABLE, "staging_outage"),
    ("aggregator.", KIND_CRASH, "aggregator_failover"),
    ("logmover.", KIND_CRASH, "mover_crash"),
)


def _check_alerts(report: ChaosReport, plan: FaultPlan, faults: bool,
                  quiet_hours: Set[int]) -> None:
    """Audit the monitor itself against the injected storm.

    Faulted runs must show zero false *negatives* (every outage/crash
    class fired its alert, one episode per distinct outage window) and
    no stuck alerts; fault-free runs must show zero false *positives*.
    The per-hour verdicts must also agree with the conservation audit:
    a conserved, fully-landed run is ``complete`` across the board.
    """
    monitor = report.monitor
    engine = monitor.engine
    report.alerts_fired = len(engine.history())
    report.alerts_resolved = sum(1 for a in engine.history()
                                 if not a.active)
    report.alerts_unresolved = len(engine.active())

    if faults:
        for prefix, kind, alert_name in _ALERT_EXPECTATIONS:
            fired_rules = [rule for rule in plan.rules
                           if rule.site.startswith(prefix)
                           and rule.kind == kind and rule.fires]
            if not fired_rules:
                continue
            # Each outage window is a separate firing episode; crashes
            # inside one inter-tick interval may share an episode.
            required = len(fired_rules) if kind == KIND_UNAVAILABLE else 1
            if engine.fired(alert_name) < required:
                report.violations.append(
                    f"alert coverage gap: {len(fired_rules)} fired "
                    f"{kind} fault(s) at {prefix}* but "
                    f"{alert_name!r} fired {engine.fired(alert_name)} "
                    f"episode(s) (need {required})")
            for episode in engine.episodes(alert_name):
                if episode.active:
                    report.violations.append(
                        f"alert {alert_name!r} never resolved after "
                        f"recovery (fired at {episode.fired_at_ms}ms)")
    elif not quiet_hours and report.alerts_fired:
        names = sorted({a.rule for a in engine.history()})
        report.violations.append(
            f"false positive: {report.alerts_fired} alert episode(s) "
            f"({', '.join(names)}) fired on a fault-free run")

    # Verdict agreement with the conservation audit.
    audits = monitor.audits
    for audit in audits:
        label = (f"{audit.hour.category}/{audit.hour.date_str}/"
                 f"{audit.hour.hour:02d}")
        report.hour_verdicts[label] = audit.verdict
        if not audit.conserved:
            report.violations.append(
                f"hour audit not conserved for {label}: "
                f"accepted={audit.accepted} landed={audit.landed} "
                f"dropped={audit.dropped} "
                f"quarantined={audit.quarantined} "
                f"outstanding={audit.outstanding}")
    sums = {
        "accepted": sum(a.accepted for a in audits),
        "landed": sum(a.landed for a in audits),
        "dropped": sum(a.dropped for a in audits),
        "quarantined": sum(a.quarantined for a in audits),
    }
    totals = {"accepted": report.accepted, "landed": report.landed,
              "dropped": report.dropped,
              "quarantined": report.quarantined}
    for key, value in sums.items():
        if value != totals[key]:
            report.violations.append(
                f"verdicts disagree with conservation audit: per-hour "
                f"{key} sums to {value}, run total is {totals[key]}")
    if not report.violations:
        bad = [label for label, verdict in report.hour_verdicts.items()
               if verdict != VERDICT_COMPLETE]
        if bad:
            report.violations.append(
                f"conserved run left non-complete verdicts: {bad}")


def _check_streaming(report: ChaosReport, mover: StreamingMover,
                     faults: bool, quiet_hours: Set[int]) -> None:
    """Streaming-only acceptance: sealing and the late-data path.

    Every hour that landed batches must end sealed (the hourly contract
    survives micro-batching), and on a faulted multi-hour run the
    held-datacenter replay must actually have re-opened a sealed hour
    and driven the ``completeness`` alert through a fire/resolve cycle.
    """
    unsealed = [str(hour) for hour in mover.unsealed_hours()]
    if unsealed:
        report.violations.append(
            f"streaming left hour(s) unsealed: {unsealed}")
    if not (faults and report.hours >= 2 and 0 not in quiet_hours):
        return
    if report.late_reopens < 1:
        report.violations.append(
            "streaming late-data scenario never re-opened a sealed hour")
    engine = report.monitor.engine if report.monitor is not None else None
    if engine is not None:
        if engine.fired("completeness") < 1:
            report.violations.append(
                "late re-open never fired the completeness alert")
        for episode in engine.episodes("completeness"):
            if episode.active:
                report.violations.append(
                    f"completeness alert never resolved after the late "
                    f"data landed (fired at {episode.fired_at_ms}ms)")


def _check_incremental(report: ChaosReport, deployment: ScribeDeployment,
                       mover: StreamingMover, incremental,
                       faults: bool, quiet_hours: Set[int]) -> None:
    """The batch-vs-incremental parity audit (streaming soaks only).

    After a final ``finish()`` (every open session closes), the
    seal-driven incremental consumer must agree with a from-scratch
    daily batch rebuild over the warehouse's final contents:

    * the closed-session multiset equals the batch
      :class:`Sessionizer`'s output over *all* landed events (same gap),
      and each closed session was attributed to exactly one day;
    * each day's materialized ``level-*.json`` files are byte-identical
      to a :class:`RollupJob` rebuild of that day into a scratch root.

    On faulted multi-hour runs the held-datacenter replay must also
    have exercised the correction machinery: at least one session
    re-open and one rollup correction delta.
    """
    from repro.oink.rollups import ROLLUPS_ROOT, RollupJob, rollup_day_dir

    incremental.finish()
    sessionizer = incremental.sessionizer
    report.sessions_closed = sessionizer.closed_total
    report.sessions_reopened = sessionizer.reopened_total
    report.rollup_days = len(incremental.rollup.days())
    report.rollup_corrections = incremental.rollup.corrections

    # -- session parity ---------------------------------------------------
    warehouse = deployment.warehouse
    all_events: List[ClientEvent] = []
    root = f"{LOGS_ROOT}/{CHAOS_CATEGORY}"
    if warehouse.is_dir(root):
        for path in sorted(warehouse.glob_files(root)):
            for payload in decode_messages(warehouse.open_bytes(path)):
                all_events.append(ClientEvent.from_bytes(payload))
    batch = Sessionizer(sessionizer.inactivity_gap_ms)

    def signature(user_id, session_id, events):
        return (user_id, session_id,
                tuple(event.to_bytes() for event in events))

    batch_sigs = sorted(signature(s.user_id, s.session_id, s.events)
                        for s in batch.sessionize(all_events))
    closed = sessionizer.closed_sessions()
    incr_sigs = sorted(signature(*c.key, c.session.events)
                       for c in closed)
    if batch_sigs != incr_sigs:
        only_batch = len(set(batch_sigs) - set(incr_sigs))
        only_incr = len(set(incr_sigs) - set(batch_sigs))
        report.violations.append(
            f"session parity broken: batch rebuild found "
            f"{len(batch_sigs)} session(s), incremental closed "
            f"{len(incr_sigs)} ({only_batch} batch-only, "
            f"{only_incr} incremental-only)")
    by_day_total = sum(len(rows) for rows
                       in sessionizer.closed_by_day().values())
    if by_day_total != len(closed):
        report.violations.append(
            f"session day attribution broken: {len(closed)} closed "
            f"session(s) attributed {by_day_total} time(s) across days")

    # -- rollup parity ----------------------------------------------------
    days = sorted({(h.year, h.month, h.day)
                   for h in mover.hours_sealed()})
    if days != incremental.rollup.days():
        report.violations.append(
            f"rollup coverage broken: sealed days {days}, "
            f"incremental materialized {incremental.rollup.days()}")
    rebuild_root = "/rollups_rebuild"
    rebuild_job = RollupJob(warehouse, category=CHAOS_CATEGORY,
                            root=rebuild_root)
    for day in days:
        rebuild_job.run(*day)
        live_dir = rollup_day_dir(*day, root=ROLLUPS_ROOT)
        rebuilt_dir = rollup_day_dir(*day, root=rebuild_root)
        for path in sorted(warehouse.glob_files(rebuilt_dir)):
            live_path = path.replace(rebuilt_dir, live_dir, 1)
            if (not warehouse.exists(live_path)
                    or warehouse.open_bytes(live_path)
                    != warehouse.open_bytes(path)):
                report.violations.append(
                    f"rollup parity broken: {live_path} differs from "
                    f"batch rebuild")

    # -- correction-machinery coverage ------------------------------------
    if faults and report.hours >= 2 and 0 not in quiet_hours:
        if report.sessions_reopened < 1:
            report.violations.append(
                "late replay never re-opened a closed session")
        if report.rollup_corrections < 1:
            report.violations.append(
                "late re-seal never applied a rollup correction delta")


def _check_partition(report: ChaosReport, deployment: ScribeDeployment,
                     registry, plan: FaultPlan) -> None:
    """Partition-soak acceptance: the overload machinery must engage.

    Conservation alone would hold trivially if the storm never bit; this
    check pins the scenario. The east partition must have fired (the
    cool-down's trigger), a staging outage must have pushed at least one
    aggregator into backpressure and daemons must have honored it, QoS
    sampling must have shed bulk traffic and *only* bulk traffic, the
    critical category must land complete, and the warehouse shard loss
    must have fired and deferred exactly the lost shard's boundary move.
    """
    def fired(site_prefix: str) -> bool:
        return any(rule.fires for rule in plan.rules
                   if rule.site.startswith(site_prefix))

    if not fired("daemon.east-host-"):
        report.violations.append(
            "partition coverage gap: the east daemon partition never "
            "fired")
    if not fired("hdfs.warehouse-shard-"):
        report.violations.append(
            "partition coverage gap: the warehouse shard outage never "
            "fired")
    if report.backpressure_engaged < 1:
        report.violations.append(
            "staging outage never pushed an aggregator into backpressure")
    if registry.total(obs_names.BACKPRESSURE_HONORED) < 1:
        report.violations.append(
            "no daemon ever honored a backpressure signal")
    if report.qos_sampled < 1:
        report.violations.append(
            "overload never shed a sampled bulk entry")
    for labels, metric in registry.series(obs_names.QOS_SAMPLED):
        if labels.get("tier") != QOS_BULK and metric.value:
            report.violations.append(
                f"QoS sampling shed {int(metric.value)} entr(ies) of "
                f"protected tier {labels.get('tier')!r} "
                f"(category {labels.get('category')!r})")
    critical = [category for category, tier, __ in PARTITION_CATEGORIES
                if tier == QOS_CRITICAL]
    daemons = [d for dc in deployment.datacenters.values()
               for d in dc.daemons]
    for category in critical:
        dropped = sum(counts.dropped
                      for daemon in daemons
                      for (cat, __), counts in daemon.hour_ledger().items()
                      if cat == category)
        if dropped:
            report.violations.append(
                f"critical category {category} dropped {dropped} "
                f"entr(ies) under overload")
    if report.moves_deferred != 1:
        report.violations.append(
            f"shard loss should defer exactly the lost shard's boundary "
            f"move; {report.moves_deferred} move(s) deferred")


def _check_coverage(report: ChaosReport, plan: FaultPlan) -> None:
    """Fail the run if a deterministic acceptance fault never fired."""
    required: Dict[str, str] = {
        KIND_UNAVAILABLE: "HDFS outage window",
        KIND_CRASH: "process crash",
    }
    fired_kinds = {rule.kind for rule in plan.rules if rule.fires}
    for kind, label in required.items():
        if kind not in fired_kinds:
            report.violations.append(
                f"fault coverage gap: no {label} ({kind}) fired")
    mover_sites = [rule for rule in plan.rules
                   if rule.site.startswith("logmover.")]
    if not any(rule.fires for rule in mover_sites):
        report.violations.append(
            "fault coverage gap: no mover crash fired")
    agg_sites = [rule for rule in plan.rules
                 if rule.site.startswith("aggregator.")]
    if not any(rule.fires for rule in agg_sites):
        report.violations.append(
            "fault coverage gap: no aggregator crash fired")
