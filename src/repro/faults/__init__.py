"""Deterministic fault injection and retry policies.

The pipeline's delivery guarantees (§2's "robust with respect to
transient failures") are only claims until something breaks on purpose.
This package provides the machinery to break things reproducibly:

- :mod:`repro.faults.injector` -- a seeded :class:`FaultInjector`
  evaluating a :class:`FaultPlan` of rules against named fault sites
  threaded through HDFS, the aggregators, the daemons, ZooKeeper, and
  the log mover;
- :mod:`repro.faults.retry` -- the shared :class:`RetryPolicy`
  (bounded exponential backoff with deterministic jitter on the logical
  clock) used by daemon sends, aggregator disk-buffer replay, and the
  log mover;
- :mod:`repro.faults.chaos` -- the end-to-end chaos soak behind
  ``repro chaos``, asserting zero-loss/zero-duplicate conservation
  under a seeded storm of outages, crashes, and lost acks.
"""

from repro.faults.injector import (
    KIND_ACK_LOST,
    KIND_CRASH,
    KIND_ERROR,
    KIND_EXPIRE_SESSION,
    KIND_UNAVAILABLE,
    VALID_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    fault_point,
    get_default_injector,
    set_default_injector,
)
from repro.faults.retry import RetryExhaustedError, RetryPolicy

__all__ = [
    "KIND_ACK_LOST",
    "KIND_CRASH",
    "KIND_ERROR",
    "KIND_EXPIRE_SESSION",
    "KIND_UNAVAILABLE",
    "VALID_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "fault_point",
    "get_default_injector",
    "set_default_injector",
    "RetryExhaustedError",
    "RetryPolicy",
]
