"""Bounded exponential backoff with deterministic jitter.

Every recovery path in the pipeline -- the daemon's failover resend, the
aggregator's disk-buffer replay, the mover's re-publish -- shares one
:class:`RetryPolicy` rather than growing its own ad-hoc loop. Delays are
logical (driven by :class:`~repro.clock.LogicalClock`), and jitter comes
from the policy's seed, so a retried simulation is bit-for-bit replayable.

Attempts are observable: each retry increments
``retry_attempts_total{site=}``.
"""

from __future__ import annotations

from random import Random
from typing import Callable, List, Optional, Tuple, Type

from repro.clock import LogicalClock
from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry


class RetryExhaustedError(Exception):
    """All attempts failed; carries the last underlying error."""

    def __init__(self, site: str, attempts: int,
                 last_error: BaseException) -> None:
        super().__init__(
            f"{site}: {attempts} attempt(s) failed; last: {last_error!r}")
        self.site = site
        self.attempts = attempts
        self.last_error = last_error


class RetryPolicy:
    """Bounded exponential backoff: ``base * multiplier^n``, capped, jittered.

    ``jitter`` is the fraction of each delay drawn from the seeded RNG
    (0.0 disables it). The policy object is reusable; the delay schedule
    for a given call depends only on the seed and the number of prior
    jitter draws, which a fixed call order makes deterministic.
    """

    def __init__(self, max_attempts: int = 5, base_delay_ms: int = 100,
                 max_delay_ms: int = 60_000, multiplier: float = 2.0,
                 jitter: float = 0.5, seed: int = 0) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if base_delay_ms < 0 or max_delay_ms < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay_ms = base_delay_ms
        self.max_delay_ms = max_delay_ms
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = Random(seed)

    def delay_ms(self, attempt: int) -> int:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        raw = self.base_delay_ms * (self.multiplier ** (attempt - 1))
        capped = min(raw, float(self.max_delay_ms))
        if self.jitter:
            capped *= 1.0 - self.jitter * self._rng.random()
        return int(capped)

    def delays(self) -> List[int]:
        """The full backoff schedule (one delay per possible retry)."""
        return [self.delay_ms(n) for n in range(1, self.max_attempts)]

    def call(self, fn: Callable[[], object], *, site: str,
             clock: Optional[LogicalClock] = None,
             retry_on: Tuple[Type[BaseException], ...] = (Exception,),
             on_retry: Optional[Callable[[int, BaseException],
                                         None]] = None) -> object:
        """Run ``fn`` with retries; returns its result or raises.

        Exceptions outside ``retry_on`` propagate immediately (an injected
        crash must kill the caller, not be absorbed by backoff). When all
        ``max_attempts`` fail, raises :class:`RetryExhaustedError`.
        """
        registry = get_default_registry()
        last: BaseException
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on as exc:
                last = exc
                if attempt == self.max_attempts:
                    raise RetryExhaustedError(site, attempt, exc) from exc
                delay = self.delay_ms(attempt)
                if clock is not None and delay:
                    clock.advance(delay)
                registry.counter(obs_names.RETRY_ATTEMPTS, site=site).inc()
                if on_retry is not None:
                    on_retry(attempt, exc)
        raise AssertionError("unreachable")  # pragma: no cover
