"""Input formats: how files on (simulated) HDFS become map-task splits.

One split is produced per file block, matching the Hadoop behaviour that
makes raw client-event queries "routinely spawn tens of thousands of
mappers" (§4.1): the number of map tasks is proportional to the number of
blocks of input data. Splits of the same file divide its records evenly.

Elephant Twin integrates here: §6 says its indexing framework "integrates
with Hadoop at the level of InputFormats", which is why
:class:`repro.elephanttwin.inputformat.IndexedInputFormat` *wraps* a
:class:`FileInputFormat` (same ``splits()``/``read_split()`` surface, not
a subclass) and transparently drops splits the index proves cannot match
a selection predicate -- while passing splits the index has never seen
through as must-scan work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence

from repro.hdfs.namenode import HDFS


@dataclass(frozen=True)
class InputSplit:
    """One map task's slice of the input: a record range of one file."""

    path: str
    index: int
    start_record: int
    end_record: int
    length_bytes: int

    @property
    def num_records(self) -> int:
        """Records assigned to this split."""
        return self.end_record - self.start_record


class FileInputFormat:
    """Block-per-split input over a set of files.

    ``decode`` turns one file's (decompressed) bytes into a record list;
    the default treats the file as framed opaque messages.
    """

    def __init__(self, fs: HDFS, paths: Sequence[str],
                 decode: Callable[[bytes], List[Any]]) -> None:
        self.fs = fs
        self.paths = list(paths)
        self.decode = decode
        self._cache: dict = {}

    @classmethod
    def over_directory(cls, fs: HDFS, directory: str,
                       decode: Callable[[bytes], List[Any]]) -> "FileInputFormat":
        """All data files under a directory prefix (index files excluded:
        an ``_index/`` partition beside the data is never job input)."""
        from repro.hdfs.layout import data_files

        return cls(fs, data_files(fs, directory), decode)

    # -- planning ----------------------------------------------------------
    def splits(self) -> List[InputSplit]:
        """One split per block of each input file."""
        out: List[InputSplit] = []
        for path in self.paths:
            status = self.fs.status(path)
            records = self._records_of(path)
            blocks = max(status.block_count, 1)
            per_split = -(-len(records) // blocks) if records else 0
            bytes_per_split = -(-status.length // blocks)
            for i in range(blocks):
                start = min(i * per_split, len(records))
                end = min((i + 1) * per_split, len(records))
                # Trailing blocks can overrun the file when block_count
                # exceeds ceil(length / bytes_per_split); clamp to >= 0
                # so no split ever reports negative scan bytes.
                out.append(InputSplit(
                    path=path, index=i, start_record=start, end_record=end,
                    length_bytes=max(0, min(
                        bytes_per_split,
                        status.length - i * bytes_per_split)),
                ))
        return out

    # -- reading ----------------------------------------------------------
    def read_split(self, split: InputSplit) -> List[Any]:
        """The records of one split (decoding the file on first touch)."""
        records = self._records_of(split.path)
        return records[split.start_record:split.end_record]

    def _records_of(self, path: str) -> List[Any]:
        if path not in self._cache:
            self._cache[path] = self.decode(self.fs.open_bytes(path))
        return self._cache[path]

    def __getstate__(self) -> dict:
        # Decoded-record caches stay process-local: shipping them to
        # pool workers would dwarf the job payload, and workers rebuild
        # exactly the entries their splits touch.
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state


class InMemoryInputFormat:
    """Splits over already-materialized records (for tests and tools)."""

    def __init__(self, records: Sequence[Any],
                 records_per_split: int = 1000) -> None:
        if records_per_split <= 0:
            raise ValueError("records_per_split must be positive")
        self._records = list(records)
        self._per_split = records_per_split

    def splits(self) -> List[InputSplit]:
        """Fixed-size splits over the in-memory records."""
        out = []
        n = len(self._records)
        count = max(-(-n // self._per_split), 1)
        for i in range(count):
            start = i * self._per_split
            end = min((i + 1) * self._per_split, n)
            out.append(InputSplit(path="<memory>", index=i,
                                  start_record=start, end_record=end,
                                  length_bytes=0))
        return out

    def read_split(self, split: InputSplit) -> List[Any]:
        """The records of one split."""
        return self._records[split.start_record:split.end_record]
