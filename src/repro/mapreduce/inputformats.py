"""Input formats: how files on (simulated) HDFS become map-task splits.

One split is produced per file block, matching the Hadoop behaviour that
makes raw client-event queries "routinely spawn tens of thousands of
mappers" (§4.1): the number of map tasks is proportional to the number of
blocks of input data. Splits of the same file divide its records evenly.

Elephant Twin integrates here: §6 says its indexing framework "integrates
with Hadoop at the level of InputFormats", which is why
:class:`repro.elephanttwin.inputformat.IndexedInputFormat` *wraps* a
:class:`FileInputFormat` (same ``splits()``/``read_split()`` surface, not
a subclass) and transparently drops splits the index proves cannot match
a selection predicate -- while passing splits the index has never seen
through as must-scan work.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.hdfs.namenode import HDFS
from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry


@dataclass(frozen=True)
class InputSplit:
    """One map task's slice of the input: a record range of one file."""

    path: str
    index: int
    start_record: int
    end_record: int
    length_bytes: int

    @property
    def num_records(self) -> int:
        """Records assigned to this split."""
        return self.end_record - self.start_record


class FileInputFormat:
    """Block-per-split input over a set of files.

    ``decode`` turns one file's (decompressed) bytes into a record list;
    the default treats the file as framed opaque messages.
    """

    def __init__(self, fs: HDFS, paths: Sequence[str],
                 decode: Callable[[bytes], List[Any]]) -> None:
        self.fs = fs
        self.paths = list(paths)
        self.decode = decode
        self._cache: dict = {}

    @classmethod
    def over_directory(cls, fs: HDFS, directory: str,
                       decode: Callable[[bytes], List[Any]]) -> "FileInputFormat":
        """All data files under a directory prefix (index files excluded:
        an ``_index/`` partition beside the data is never job input)."""
        from repro.hdfs.layout import data_files

        return cls(fs, data_files(fs, directory), decode)

    # -- planning ----------------------------------------------------------
    def splits(self) -> List[InputSplit]:
        """One split per block of each input file."""
        out: List[InputSplit] = []
        for path in self.paths:
            status = self.fs.status(path)
            records = self._records_of(path)
            blocks = max(status.block_count, 1)
            per_split = -(-len(records) // blocks) if records else 0
            bytes_per_split = -(-status.length // blocks)
            for i in range(blocks):
                start = min(i * per_split, len(records))
                end = min((i + 1) * per_split, len(records))
                # Trailing blocks can overrun the file when block_count
                # exceeds ceil(length / bytes_per_split); clamp to >= 0
                # so no split ever reports negative scan bytes.
                out.append(InputSplit(
                    path=path, index=i, start_record=start, end_record=end,
                    length_bytes=max(0, min(
                        bytes_per_split,
                        status.length - i * bytes_per_split)),
                ))
        return out

    # -- reading ----------------------------------------------------------
    def read_split(self, split: InputSplit) -> List[Any]:
        """The records of one split (decoding the file on first touch)."""
        records = self._records_of(split.path)
        return records[split.start_record:split.end_record]

    def _records_of(self, path: str) -> List[Any]:
        if path not in self._cache:
            self._cache[path] = self.decode(self.fs.open_bytes(path))
        return self._cache[path]

    def __getstate__(self) -> dict:
        # Decoded-record caches stay process-local: shipping them to
        # pool workers would dwarf the job payload, and workers rebuild
        # exactly the entries their splits touch.
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state


@dataclass(frozen=True)
class ColumnarBlockSplit:
    """One map task's slice of a columnar segment: a row range of one
    block. ``length_bytes`` is the split's share of the *projected*
    columns' encoded bytes -- what a vectorized read actually decodes,
    and what the engine's input-bytes counter therefore reports."""

    segment_dir: str
    block: int
    start_row: int
    end_row: int
    length_bytes: int

    @property
    def path(self) -> str:
        """The segment directory, in the common split interface slot."""
        return self.segment_dir

    @property
    def index(self) -> int:
        """The block ordinal, in the common split interface slot."""
        return self.block

    @property
    def num_records(self) -> int:
        """Rows assigned to this split."""
        return self.end_row - self.start_row


def _merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    merged: List[Tuple[int, int]] = []
    for lo, hi in sorted(ranges):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


class ColumnarInputFormat:
    """Vectorized scan over columnar segments, raw files as fallback.

    Wraps any base input format over warehouse hour files (a plain
    :class:`FileInputFormat` or an Elephant Twin ``IndexedInputFormat``
    -- composition point: the index prunes whole *splits* first, zone
    maps then prune *blocks* within the survivors). Per hour directory,
    the base's surviving splits are remapped onto the committed segment
    when every surviving raw file is still covered by it (recorded
    length/block-count match the live file); otherwise the hour's
    splits pass through untouched and are scanned row-at-a-time, so
    late-landing or regrown files cost speed, never rows.

    ``projection`` names the columns map functions will read (None =
    all columns, reconstructing full, byte-identical ``ClientEvent``
    records). ``predicates`` are zone-map hints from
    ``repro.warehouse.predicates``: a block is skipped only when a
    predicate *proves* it empty -- surviving rows still flow through
    the query's own filters, keeping answers byte-identical.
    """

    def __init__(self, fs: HDFS, base,
                 projection: Optional[Sequence[str]] = None,
                 predicates: Sequence = ()) -> None:
        self.fs = fs
        self.base = base
        self.projection = (tuple(sorted(set(projection)))
                           if projection is not None else None)
        self.predicates = tuple(predicates)
        #: Blocks zone maps proved empty (reporting; metric-mirrored).
        self.blocks_pruned = 0
        #: Projected bytes of those pruned blocks.
        self.pruned_bytes = 0
        #: Base splits passed through for row-at-a-time scanning.
        self.raw_splits = 0
        #: Block splits served from segments.
        self.columnar_splits = 0
        self._segments: Dict[str, Any] = {}

    def _segment_for(self, hour_dir: str):
        if hour_dir not in self._segments:
            from repro.warehouse.segment import ColumnarSegment

            self._segments[hour_dir] = ColumnarSegment.load(self.fs, hour_dir)
        return self._segments[hour_dir]

    def _block_pruned(self, segment, block: int) -> bool:
        for predicate in self.predicates:
            meta = segment.columns.get(predicate.column)
            if meta is None:
                continue
            zone = segment.zone(predicate.column, block)
            values = segment.column_values(predicate.column)
            if not predicate.block_may_match(zone, values):
                return True
        return False

    # -- planning ----------------------------------------------------------
    def splits(self) -> List[Any]:
        """Base splits remapped to block splits, zone-pruned.

        Per hour directory (in base-split order): every surviving raw
        split becomes a global row range against the segment; ranges
        are merged; blocks overlapping a range survive zone-map tests
        or are pruned (``columnar_blocks_pruned_total``); survivors are
        emitted clipped to the merged ranges, so an Elephant
        Twin-pruned split's rows are never resurrected by whole-block
        reads.
        """
        base_splits = self.base.splits()
        groups: Dict[str, List[InputSplit]] = {}
        for split in base_splits:
            groups.setdefault(posixpath.dirname(split.path), []).append(split)
        out: List[Any] = []
        blocks_pruned = pruned_bytes = raw_count = columnar_count = 0
        for hour_dir, hour_splits in groups.items():
            segment = self._segment_for(hour_dir)
            paths = {split.path for split in hour_splits}
            if segment is None or not all(segment.covers(p) for p in paths):
                out.extend(hour_splits)
                raw_count += len(hour_splits)
                continue
            ranges = []
            for split in hour_splits:
                row_range = segment.split_row_range(split.path, split.index)
                if row_range is not None and row_range[1] > row_range[0]:
                    ranges.append(row_range)
            for block in range(segment.num_blocks):
                block_lo, block_hi = segment.block_range(block)
                overlaps = [(max(lo, block_lo), min(hi, block_hi))
                            for lo, hi in _merge_ranges(ranges)
                            if lo < block_hi and hi > block_lo]
                if not overlaps:
                    continue
                size = segment.block_bytes(block, self.projection)
                if self._block_pruned(segment, block):
                    blocks_pruned += 1
                    pruned_bytes += size
                    continue
                span = max(block_hi - block_lo, 1)
                for lo, hi in overlaps:
                    out.append(ColumnarBlockSplit(
                        segment_dir=segment.directory, block=block,
                        start_row=lo, end_row=hi,
                        length_bytes=max(1, size * (hi - lo) // span)))
                    columnar_count += 1
        self.blocks_pruned = blocks_pruned
        self.pruned_bytes = pruned_bytes
        self.raw_splits = raw_count
        self.columnar_splits = columnar_count
        registry = get_default_registry()
        registry.counter(obs_names.COLUMNAR_BLOCKS_PRUNED).inc(blocks_pruned)
        registry.counter(obs_names.COLUMNAR_BYTES_PRUNED).inc(pruned_bytes)
        return out

    # -- reading ----------------------------------------------------------
    def read_split(self, split) -> List[Any]:
        """Materialize a block split's projected rows (or delegate raw
        splits to the base format)."""
        if isinstance(split, ColumnarBlockSplit):
            segment = self._segment_for(posixpath.dirname(split.segment_dir))
            return segment.materialize(split.block, split.start_row,
                                       split.end_row, self.projection)
        return self.base.read_split(split)


class InMemoryInputFormat:
    """Splits over already-materialized records (for tests and tools)."""

    def __init__(self, records: Sequence[Any],
                 records_per_split: int = 1000) -> None:
        if records_per_split <= 0:
            raise ValueError("records_per_split must be positive")
        self._records = list(records)
        self._per_split = records_per_split

    def splits(self) -> List[InputSplit]:
        """Fixed-size splits over the in-memory records."""
        out = []
        n = len(self._records)
        count = max(-(-n // self._per_split), 1)
        for i in range(count):
            start = i * self._per_split
            end = min((i + 1) * self._per_split, n)
            out.append(InputSplit(path="<memory>", index=i,
                                  start_record=start, end_record=end,
                                  length_bytes=0))
        return out

    def read_split(self, split: InputSplit) -> List[Any]:
        """The records of one split."""
        return self._records[split.start_record:split.end_record]
