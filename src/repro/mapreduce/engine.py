"""The local MapReduce execution engine.

Executes jobs faithfully to the Hadoop dataflow -- map over splits,
per-task combine, hash-partition, sort, reduce -- with exact accounting of
records, bytes scanned, and shuffle volume. Execution is sequential (this
is a simulator, not a cluster); the :class:`CostModel` translates counts
into the parallel latency a real cluster would see.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry
from repro.mapreduce.counters import (
    Counters,
    GROUP_IO,
    GROUP_TASK,
    INPUT_BYTES,
    INPUT_RECORDS,
    MAP_TASKS,
    OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_OUTPUT_RECORDS,
    REDUCE_TASKS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
)
from repro.mapreduce.job import JobResult, MapReduceJob, TaskContext
from repro.mapreduce.jobtracker import JobTracker


def sizeof(value: Any) -> int:
    """Approximate serialized size of a key or value, in bytes."""
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if value is None:
        return 1
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(sizeof(v) for v in value)
    if isinstance(value, dict):
        return 4 + sum(sizeof(k) + sizeof(v) for k, v in value.items())
    if hasattr(value, "to_bytes") and callable(value.to_bytes):
        try:
            return len(value.to_bytes())
        except TypeError:
            pass
    return 16  # opaque object


def run_job(job: MapReduceJob,
            tracker: Optional[JobTracker] = None) -> JobResult:
    """Execute one job and return its output and counters.

    Besides the returned :class:`Counters`, every run is bridged into the
    process-wide metrics registry: the job's counters become
    ``mapreduce_<group>_<name>_total{job=...}`` counters and its real
    execution time lands in the ``mapreduce_job_wall_time_seconds``
    histogram.
    """
    started = time.perf_counter()
    counters = Counters()
    splits = job.input_format.splits()
    partitions: List[List[Tuple[Any, Any]]] = [
        [] for __ in range(job.num_reducers)
    ]

    # -- map phase ---------------------------------------------------------
    for split in splits:
        emitted = _run_map_task(job, split, counters)

        if job.reducer is None:
            partitions[0].extend(emitted)
            continue

        if job.combiner is not None:
            emitted = _combine(job, emitted, counters)

        for key, value in emitted:
            counters.increment(GROUP_IO, SHUFFLE_RECORDS)
            counters.increment(GROUP_IO, SHUFFLE_BYTES,
                               sizeof(key) + sizeof(value))
            partitions[hash(key) % job.num_reducers].append((key, value))

    # -- reduce phase ------------------------------------------------------
    output: List[Tuple[Any, Any]] = []
    if job.reducer is None:
        output = partitions[0]
    else:
        for partition in partitions:
            if not partition and len(splits) == 0:
                continue
            counters.increment(GROUP_TASK, REDUCE_TASKS)
            ctx = TaskContext(counters)
            grouped = _group_sorted(partition)
            counters.increment(GROUP_IO, REDUCE_INPUT_GROUPS, len(grouped))
            for key, values in grouped:
                job.reducer(key, values, ctx)
            reduced = ctx.drain()
            counters.increment(GROUP_IO, REDUCE_OUTPUT_RECORDS, len(reduced))
            output.extend(reduced)

    if tracker is not None:
        tracker.record(job.name, counters)
    _bridge_counters(job.name, counters,
                     time.perf_counter() - started)
    return JobResult(name=job.name, output=output, counters=counters)


def _bridge_counters(job_name: str, counters: Counters,
                     wall_time_s: float) -> None:
    """Mirror one job's counters and wall time into the registry."""
    registry = get_default_registry()
    registry.counter(obs_names.MAPREDUCE_JOBS, job=job_name).inc()
    registry.histogram(obs_names.MAPREDUCE_JOB_WALL_TIME,
                       job=job_name).observe(wall_time_s)
    for group, name, value in counters:
        registry.counter(
            f"{obs_names.MAPREDUCE_COUNTER_PREFIX}{group}_{name}_total",
            job=job_name).inc(value)


class TaskFailedError(Exception):
    """A task exhausted its attempts; the job fails (Hadoop semantics)."""


def _run_map_task(job: MapReduceJob, split: Any,
                  counters: Counters) -> List[Tuple[Any, Any]]:
    """Execute one map task with Hadoop-style retry on failure.

    A failed attempt's partial output is discarded (tasks are idempotent
    units); only the successful attempt's records and emissions count.
    """
    last_error: Optional[Exception] = None
    for attempt in range(job.max_task_attempts):
        counters.increment(GROUP_TASK, MAP_TASKS)
        counters.increment(GROUP_IO, INPUT_BYTES, split.length_bytes)
        ctx = TaskContext(counters)
        try:
            records = job.input_format.read_split(split)
            for record in records:
                job.mapper(record, ctx)
        except Exception as exc:  # noqa: BLE001 - any task error retries
            counters.increment(GROUP_TASK, "map_task_failures")
            last_error = exc
            continue
        counters.increment(GROUP_IO, INPUT_RECORDS, len(records))
        emitted = ctx.drain()
        counters.increment(GROUP_IO, OUTPUT_RECORDS, len(emitted))
        return emitted
    raise TaskFailedError(
        f"map task over {split!r} failed {job.max_task_attempts} "
        f"attempt(s): {last_error}"
    ) from last_error


def _combine(job: MapReduceJob, emitted: List[Tuple[Any, Any]],
             counters: Counters) -> List[Tuple[Any, Any]]:
    """Run the combiner over one map task's output."""
    ctx = TaskContext(counters)
    for key, values in _group_sorted(emitted):
        job.combiner(key, values, ctx)
    return ctx.drain()


def _group_sorted(pairs: List[Tuple[Any, Any]]) -> List[Tuple[Any, List[Any]]]:
    """Group pairs by key in sorted key order (the shuffle's sort-merge)."""
    grouped: Dict[Any, List[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    return sorted(grouped.items(), key=lambda kv: repr(kv[0]))
