"""The local MapReduce execution engine.

Executes jobs faithfully to the Hadoop dataflow -- map over splits,
per-task combine, stable hash-partition, sort, reduce -- with exact
accounting of records, bytes scanned, and shuffle volume.  Execution is
delegated to a pluggable backend (:mod:`repro.mapreduce.backends`):
``serial`` runs on the calling thread, ``threads`` and ``processes``
fan tasks out over :mod:`concurrent.futures` pools.  Per-task
:class:`Counters` are merged deterministically at each phase barrier, so
counter totals, tracker accounting, and output are identical across
backends; the :class:`CostModel` still translates counts into the
parallel latency a real cluster would see.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Tuple

from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry
from repro.mapreduce.backends import (  # noqa: F401 - re-exported API
    BACKEND_NAMES,
    ExecutionBackend,
    MapTaskResult,
    ProcessPoolBackend,
    ReduceTaskResult,
    SerialBackend,
    TaskFailedError,
    ThreadPoolBackend,
    prepare_backend,
    sizeof,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.jobtracker import JobTracker


def run_job(job: MapReduceJob,
            tracker: Optional[JobTracker] = None,
            backend: Optional[str] = None,
            max_workers: Optional[int] = None) -> JobResult:
    """Execute one job and return its output and counters.

    ``backend`` selects how tasks execute: ``"serial"`` (default),
    ``"threads"``, or ``"processes"``; ``max_workers`` sizes the pool.
    When ``backend`` is None the tracker's configured default applies.
    Output, counter totals, and tracker accounting are identical across
    backends: per-task counters merge at the phase barrier in task
    order, and partitioning is content-stable
    (:mod:`repro.mapreduce.partition`), not ``hash()``-salted.

    Besides the returned :class:`Counters`, every run is bridged into the
    process-wide metrics registry: the job's counters become
    ``mapreduce_<group>_<name>_total{job=...}`` counters, its real
    execution time lands in ``mapreduce_job_wall_time_seconds``, each
    task's execution and queue-wait times land in
    ``mapreduce_task_wall_time_seconds`` / ``_queue_wait_seconds``
    (labelled by phase), and ``mapreduce_workers`` gauges the pool size.
    """
    started = time.perf_counter()
    if tracker is not None:
        if backend is None:
            backend = tracker.backend
        if max_workers is None:
            max_workers = tracker.max_workers
    counters = Counters()
    splits = job.input_format.splits()
    registry = get_default_registry()
    output: List[Tuple[Any, Any]] = []

    with prepare_backend(job, backend, max_workers) as engine_backend:
        registry.gauge(obs_names.MAPREDUCE_WORKERS, job=job.name,
                       backend=engine_backend.name).set(engine_backend.workers)

        # -- map phase: one task per split, merged in split order ---------
        num_partitions = 1 if job.reducer is None else job.num_reducers
        partitions: List[List[Tuple[Any, Any]]] = [
            [] for __ in range(num_partitions)
        ]
        for result in engine_backend.run_map_phase(job, splits):
            counters.merge(result.counters)
            for partition, pairs in zip(partitions, result.partitions):
                partition.extend(pairs)
            _observe_task(registry, job.name, "map", result)

        # -- reduce phase: one task per partition, merged in order --------
        if job.reducer is None:
            output = partitions[0]
        else:
            # With zero input splits there is nothing to reduce; with any
            # input, even empty partitions run a (counted) reduce task,
            # exactly as the serial engine always has.
            units = [(i, partition)
                     for i, partition in enumerate(partitions)
                     if splits or partition]
            for result in engine_backend.run_reduce_phase(job, units):
                counters.merge(result.counters)
                output.extend(result.output)
                _observe_task(registry, job.name, "reduce", result)

    wall_time_s = time.perf_counter() - started
    if tracker is not None:
        tracker.record(job.name, counters, backend=engine_backend.name,
                       workers=engine_backend.workers,
                       wall_time_s=wall_time_s)
    _bridge_counters(job.name, counters, wall_time_s)
    return JobResult(name=job.name, output=output, counters=counters)


def _observe_task(registry, job_name: str, phase: str, result) -> None:
    """Record one task's wall time and queue wait into the registry."""
    registry.histogram(obs_names.MAPREDUCE_TASK_WALL_TIME, job=job_name,
                       phase=phase).observe(result.wall_time_s)
    registry.histogram(obs_names.MAPREDUCE_TASK_QUEUE_WAIT, job=job_name,
                       phase=phase).observe(result.queue_wait_s)


def _bridge_counters(job_name: str, counters: Counters,
                     wall_time_s: float) -> None:
    """Mirror one job's counters and wall time into the registry."""
    registry = get_default_registry()
    registry.counter(obs_names.MAPREDUCE_JOBS, job=job_name).inc()
    registry.histogram(obs_names.MAPREDUCE_JOB_WALL_TIME,
                       job=job_name).observe(wall_time_s)
    for group, name, value in counters:
        registry.counter(
            f"{obs_names.MAPREDUCE_COUNTER_PREFIX}{group}_{name}_total",
            job=job_name).inc(value)
