"""MapReduce job definitions.

A job is an input format plus a mapper, an optional combiner, and an
optional reducer. Mappers and reducers emit through a context object so
the engine can do exact I/O accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.mapreduce.counters import Counters


class TaskContext:
    """Collects a task's emitted pairs and exposes counters."""

    def __init__(self, counters: Counters) -> None:
        self.counters = counters
        self._emitted: List[Tuple[Any, Any]] = []

    def emit(self, key: Any, value: Any) -> None:
        """Emit one (key, value) pair from the task."""
        self._emitted.append((key, value))

    def drain(self) -> List[Tuple[Any, Any]]:
        """Take and clear the task's emitted pairs."""
        emitted, self._emitted = self._emitted, []
        return emitted


Mapper = Callable[[Any, TaskContext], None]
Reducer = Callable[[Any, List[Any], TaskContext], None]
Combiner = Callable[[Any, List[Any], TaskContext], None]


@dataclass
class MapReduceJob:
    """Declarative description of one job.

    ``mapper(record, ctx)`` emits intermediate pairs; ``reducer(key,
    values, ctx)`` emits output pairs. A map-only job (reducer=None)
    outputs the mapper's pairs directly. ``combiner`` runs per map task to
    pre-aggregate, shrinking shuffle volume the way Pig's algebraic
    aggregations do.
    """

    name: str
    input_format: Any
    mapper: Mapper
    reducer: Optional[Reducer] = None
    combiner: Optional[Combiner] = None
    num_reducers: int = 4
    #: Hadoop-style task retry: a map task that raises is re-executed up
    #: to this many times before the whole job fails.
    max_task_attempts: int = 1

    def __post_init__(self) -> None:
        if self.num_reducers <= 0:
            raise ValueError("num_reducers must be positive")
        if self.max_task_attempts <= 0:
            raise ValueError("max_task_attempts must be positive")


@dataclass
class JobResult:
    """Output pairs plus counters and the tracker's task accounting."""

    name: str
    output: List[Tuple[Any, Any]]
    counters: Counters

    def output_dict(self) -> dict:
        """Output pairs as a dict (last value wins per key)."""
        return dict(self.output)

    def sorted_output(self) -> List[Tuple[Any, Any]]:
        """Output pairs sorted by key representation."""
        return sorted(self.output, key=lambda kv: repr(kv[0]))
