"""Simulated Hadoop MapReduce: jobs, splits, engine, backends, jobtracker."""

from repro.mapreduce.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    prepare_backend,
)
from repro.mapreduce.counters import (
    Counters,
    GROUP_IO,
    GROUP_TASK,
    INPUT_BYTES,
    INPUT_RECORDS,
    MAP_TASKS,
    OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_OUTPUT_RECORDS,
    REDUCE_TASKS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    SPLITS_SKIPPED,
)
from repro.mapreduce.inputformats import (
    FileInputFormat,
    InMemoryInputFormat,
    InputSplit,
)
from repro.mapreduce.job import JobResult, MapReduceJob, TaskContext
from repro.mapreduce.jobtracker import CostModel, JobRun, JobTracker
from repro.mapreduce.engine import TaskFailedError, run_job, sizeof
from repro.mapreduce.partition import (
    serialize_key,
    stable_hash,
    stable_partition,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "prepare_backend",
    "serialize_key",
    "stable_hash",
    "stable_partition",
    "Counters",
    "GROUP_IO",
    "GROUP_TASK",
    "INPUT_BYTES",
    "INPUT_RECORDS",
    "MAP_TASKS",
    "OUTPUT_RECORDS",
    "REDUCE_INPUT_GROUPS",
    "REDUCE_OUTPUT_RECORDS",
    "REDUCE_TASKS",
    "SHUFFLE_BYTES",
    "SHUFFLE_RECORDS",
    "SPLITS_SKIPPED",
    "FileInputFormat",
    "InMemoryInputFormat",
    "InputSplit",
    "JobResult",
    "MapReduceJob",
    "TaskContext",
    "CostModel",
    "JobRun",
    "JobTracker",
    "TaskFailedError",
    "run_job",
    "sizeof",
]
