"""Stable key partitioning for the shuffle.

The engine originally used ``hash(key) % num_reducers``.  For strings
(and anything containing them) :func:`hash` is salted per interpreter by
``PYTHONHASHSEED``, so partition assignment -- and therefore output
order and any per-partition accounting -- changed between runs, and
would disagree *between worker processes* of a parallel backend.  This
module replaces it with a content-defined scheme: keys are serialized to
a canonical byte string and hashed with ``zlib.crc32``, which depends
only on the key's value.  The same key lands on the same partition in
every process, on every run, under every hash seed.

The canonical serialization is type-tagged and length-prefixed so
distinct keys cannot collide structurally (``("a", "b")`` vs
``("ab",)``), and sets are serialized in sorted-bytes order so the
iteration-order instability of hashed containers cannot leak in.  Like
built-in ``hash``, it honours Python's equality invariant: keys that
compare equal across types (``1 == 1.0 == True``, ``{1} ==
frozenset({1})``) serialize identically, so they always land on the
same partition and reduce as one group.
"""

from __future__ import annotations

import zlib
from typing import Any

__all__ = ["serialize_key", "stable_hash", "stable_partition"]


def serialize_key(key: Any) -> bytes:
    """Canonical byte serialization of a shuffle key.

    Deterministic across interpreter restarts, hash seeds, and
    processes; structurally unambiguous via type tags and length
    prefixes.
    """
    out = bytearray()
    _serialize(key, out)
    return bytes(out)


def _serialize(value: Any, out: bytearray) -> None:
    if value is None:
        out += b"N;"
    elif isinstance(value, int):  # bool included: True == 1 must co-hash
        out += b"i%d;" % int(value)
    elif isinstance(value, float):
        if value.is_integer():  # 2.0 == 2 must co-hash
            out += b"i%d;" % int(value)
        else:
            out += b"f" + repr(value).encode("ascii") + b";"
    elif isinstance(value, str):
        data = value.encode("utf-8", "surrogatepass")
        out += b"s%d:" % len(data)
        out += data
    elif isinstance(value, (bytes, bytearray)):
        out += b"b%d:" % len(value)
        out += bytes(value)
    elif isinstance(value, tuple):
        out += b"("
        for item in value:
            _serialize(item, out)
        out += b")"
    elif isinstance(value, list):
        out += b"["
        for item in value:
            _serialize(item, out)
        out += b"]"
    elif isinstance(value, (set, frozenset)):
        # Sort by serialized bytes: hashed-container iteration order is
        # exactly the instability this module exists to remove.
        out += b"{"
        for chunk in sorted(serialize_key(item) for item in value):
            out += chunk
        out += b"}"
    else:
        _serialize_opaque(value, out)


def _serialize_opaque(value: Any, out: bytearray) -> None:
    """Fallback for struct-like keys: type name + value bytes/repr."""
    tag = type(value).__name__.encode("utf-8")
    to_bytes = getattr(value, "to_bytes", None)
    if callable(to_bytes):
        try:
            data = to_bytes()
        except TypeError:
            data = None
        if data is not None:
            out += b"o%d:" % len(tag)
            out += tag
            out += b"%d:" % len(data)
            out += data
            return
    data = repr(value).encode("utf-8", "surrogatepass")
    out += b"r%d:" % len(tag)
    out += tag
    out += b"%d:" % len(data)
    out += data


def stable_hash(key: Any) -> int:
    """A 32-bit content hash of a key, stable across processes/runs."""
    return zlib.crc32(serialize_key(key)) & 0xFFFFFFFF


def stable_partition(key: Any, num_partitions: int) -> int:
    """The reduce partition a key belongs to (stable across processes)."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    return stable_hash(key) % num_partitions
