"""The jobtracker: task bookkeeping and a task startup-cost model.

§4.1: session-reconstruction jobs "routinely spawned tens of thousands of
mappers and clogged our Hadoop jobtracker"; §4.2 notes "Hadoop tasks have
relatively high startup costs, and we would like to avoid this overhead".
The tracker records every task each job launches and converts the counts
into a simulated wall-clock cost so benchmarks can compare query plans on
the same axis the paper argues about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.mapreduce.counters import (
    Counters,
    GROUP_IO,
    GROUP_TASK,
    INPUT_BYTES,
    MAP_TASKS,
    REDUCE_TASKS,
    SHUFFLE_BYTES,
)


@dataclass
class CostModel:
    """Converts counter totals into simulated milliseconds.

    Defaults are loosely calibrated to the 2012-era numbers the paper
    implies: ~1 s of task startup (JVM spawn + scheduling), scan
    throughput ~50 MB/s per task, shuffle ~20 MB/s.
    """

    task_startup_ms: float = 1000.0
    jobtracker_ms_per_task: float = 50.0  # serialized dispatch/track cost
    scan_ms_per_byte: float = 1.0 / (50 * 1024 * 1024 / 1000)
    shuffle_ms_per_byte: float = 1.0 / (20 * 1024 * 1024 / 1000)
    slots: int = 100  # cluster-wide parallel task slots

    def simulated_ms(self, counters: Counters) -> float:
        """Simulated job latency given full parallelism up to ``slots``.

        Task startup parallelizes across slots (one wave at a time), but
        the jobtracker dispatches and tracks tasks serially -- the
        "clogged our Hadoop jobtracker" effect that makes a
        tens-of-thousands-of-mappers job slow regardless of cluster size.
        """
        map_tasks = counters.get(GROUP_TASK, MAP_TASKS)
        reduce_tasks = counters.get(GROUP_TASK, REDUCE_TASKS)
        tasks = map_tasks + reduce_tasks
        waves = -(-tasks // self.slots) if tasks else 0
        startup = waves * self.task_startup_ms
        tracking = tasks * self.jobtracker_ms_per_task
        scan = counters.get(GROUP_IO, INPUT_BYTES) * self.scan_ms_per_byte
        shuffle = counters.get(GROUP_IO, SHUFFLE_BYTES) * self.shuffle_ms_per_byte
        # Scan and shuffle parallelize across slots too.
        parallel = max(min(tasks, self.slots), 1)
        return startup + tracking + (scan + shuffle) / parallel


@dataclass
class JobRun:
    """One completed job's record in the tracker."""

    job_name: str
    map_tasks: int
    reduce_tasks: int
    input_records: int
    input_bytes: int
    shuffle_records: int
    shuffle_bytes: int
    simulated_ms: float
    #: Execution backend the engine actually used (after any fallback).
    backend: str = "serial"
    #: Worker-pool size the engine ran with.
    workers: int = 1
    #: Real (not simulated) wall-clock execution time of the job.
    wall_time_s: float = 0.0


class JobTracker:
    """Accumulates :class:`JobRun` entries across a benchmark session.

    ``backend`` / ``max_workers`` set the default execution backend for
    every job run against this tracker; ``run_job`` arguments override
    them per job.  Simulated-latency accounting depends only on counter
    totals, so it is identical across backends by construction.
    """

    def __init__(self, cost_model: Optional[CostModel] = None,
                 backend: str = "serial",
                 max_workers: Optional[int] = None) -> None:
        self.cost_model = cost_model or CostModel()
        self.backend = backend
        self.max_workers = max_workers
        self.runs: List[JobRun] = []

    def record(self, job_name: str, counters: Counters,
               backend: str = "serial", workers: int = 1,
               wall_time_s: float = 0.0) -> JobRun:
        """Record one finished job's counters as a :class:`JobRun`."""
        from repro.mapreduce.counters import (
            INPUT_RECORDS,
            SHUFFLE_RECORDS,
        )

        run = JobRun(
            job_name=job_name,
            map_tasks=counters.get(GROUP_TASK, MAP_TASKS),
            reduce_tasks=counters.get(GROUP_TASK, REDUCE_TASKS),
            input_records=counters.get(GROUP_IO, INPUT_RECORDS),
            input_bytes=counters.get(GROUP_IO, INPUT_BYTES),
            shuffle_records=counters.get(GROUP_IO, SHUFFLE_RECORDS),
            shuffle_bytes=counters.get(GROUP_IO, SHUFFLE_BYTES),
            simulated_ms=self.cost_model.simulated_ms(counters),
            backend=backend,
            workers=workers,
            wall_time_s=wall_time_s,
        )
        self.runs.append(run)
        return run

    # -- aggregate views -------------------------------------------------
    def total_map_tasks(self) -> int:
        """Map tasks spawned across all recorded runs."""
        return sum(run.map_tasks for run in self.runs)

    def total_simulated_ms(self) -> float:
        """Summed simulated latency across all recorded runs."""
        return sum(run.simulated_ms for run in self.runs)

    def last(self) -> Optional[JobRun]:
        """The most recent run, or None."""
        return self.runs[-1] if self.runs else None
