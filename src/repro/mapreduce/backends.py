"""Execution backends: how the engine's tasks actually run.

The engine plans a job as map tasks (one per input split) and reduce
tasks (one per partition); a backend decides where those tasks execute:

- ``serial`` runs tasks in order on the calling thread -- the classic
  single-core engine;
- ``threads`` fans tasks out over a :class:`ThreadPoolExecutor`
  (overlaps I/O-ish work; mapper CPU stays GIL-bound);
- ``processes`` fans tasks out over a :class:`ProcessPoolExecutor` for
  real multi-core speedup.

Determinism contract: every task runs against its *own*
:class:`Counters`, and the engine merges per-task results **in task
order at the phase barrier**, so counter totals, tracker accounting, and
output order are identical across all three backends regardless of
completion order.  Partitioning uses :mod:`repro.mapreduce.partition`,
which is stable across worker processes under randomized
``PYTHONHASHSEED``.

The process pool requires the whole job (mapper, combiner, reducer,
input format) to be picklable.  :func:`prepare_backend` probes that with
``pickle.dumps`` up front; closure-based jobs get a clear warning and
fall back to the thread backend, so ``backend="processes"`` is always
safe to request.  The job payload is pickled once and shipped via pool
initializer; per-task traffic is just splits and partition data.

Both map *and* reduce tasks travel in contiguous chunks (one pool work
unit per chunk) to amortize scheduling and pickling, and phases of at
most :data:`INLINE_PHASE_TASKS` tasks run inline on the calling thread:
for a tiny job the pool's dispatch overhead costs more than the
parallelism could save, so a pooled backend on a small job is no worse
than ``serial`` while reporting its own name unchanged.
"""

from __future__ import annotations

import pickle
import os
import time
import warnings
from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.mapreduce.counters import (
    Counters,
    GROUP_IO,
    GROUP_TASK,
    INPUT_BYTES,
    INPUT_RECORDS,
    MAP_TASKS,
    OUTPUT_RECORDS,
    REDUCE_INPUT_GROUPS,
    REDUCE_OUTPUT_RECORDS,
    REDUCE_TASKS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
)
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.partition import stable_partition

#: The backend names ``run_job`` accepts.
BACKEND_NAMES = ("serial", "threads", "processes")

#: Phases with at most this many tasks run inline on pooled backends:
#: pool dispatch (scheduling, pickling, result transfer) would dominate.
INLINE_PHASE_TASKS = 4


class TaskFailedError(Exception):
    """A task exhausted its attempts; the job fails (Hadoop semantics)."""


def default_worker_count() -> int:
    """Worker-pool size when the caller does not pass ``max_workers``."""
    return min(8, os.cpu_count() or 1)


def sizeof(value: Any) -> int:
    """Approximate serialized size of a key or value, in bytes."""
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if value is None:
        return 1
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(sizeof(v) for v in value)
    if isinstance(value, dict):
        return 4 + sum(sizeof(k) + sizeof(v) for k, v in value.items())
    if hasattr(value, "to_bytes") and callable(value.to_bytes):
        try:
            return len(value.to_bytes())
        except TypeError:
            pass
    return 16  # opaque object


# ---------------------------------------------------------------------------
# Task results and module-level task runners (picklable work units).
# ---------------------------------------------------------------------------


@dataclass
class MapTaskResult:
    """One finished map task: per-reducer pairs plus its own accounting."""

    index: int
    partitions: List[List[Tuple[Any, Any]]]
    counters: Counters
    wall_time_s: float
    queue_wait_s: float


@dataclass
class ReduceTaskResult:
    """One finished reduce task: output pairs plus its own accounting."""

    index: int
    output: List[Tuple[Any, Any]]
    counters: Counters
    wall_time_s: float
    queue_wait_s: float


def run_map_task(job: MapReduceJob, split: Any, index: int,
                 submitted_at: Optional[float] = None) -> MapTaskResult:
    """Execute one map task: read, map (with retries), combine, partition.

    Runs against a private :class:`Counters` so tasks can execute
    concurrently; the engine merges results in task order.
    """
    started = time.monotonic()
    queue_wait = max(0.0, started - submitted_at) if submitted_at else 0.0
    counters = Counters()
    emitted = _map_attempts(job, split, counters)
    if job.reducer is None:
        partitions = [emitted]
    else:
        if job.combiner is not None:
            emitted = _combine(job, emitted, counters)
        partitions = [[] for __ in range(job.num_reducers)]
        for key, value in emitted:
            counters.increment(GROUP_IO, SHUFFLE_RECORDS)
            counters.increment(GROUP_IO, SHUFFLE_BYTES,
                               sizeof(key) + sizeof(value))
            partitions[stable_partition(key, job.num_reducers)].append(
                (key, value))
    return MapTaskResult(index=index, partitions=partitions,
                         counters=counters,
                         wall_time_s=time.monotonic() - started,
                         queue_wait_s=queue_wait)


def run_reduce_task(job: MapReduceJob, index: int,
                    partition: List[Tuple[Any, Any]],
                    submitted_at: Optional[float] = None) -> ReduceTaskResult:
    """Execute one reduce task over one partition's pairs."""
    started = time.monotonic()
    queue_wait = max(0.0, started - submitted_at) if submitted_at else 0.0
    counters = Counters()
    counters.increment(GROUP_TASK, REDUCE_TASKS)
    ctx = TaskContext(counters)
    grouped = _group_sorted(partition)
    counters.increment(GROUP_IO, REDUCE_INPUT_GROUPS, len(grouped))
    for key, values in grouped:
        job.reducer(key, values, ctx)
    reduced = ctx.drain()
    counters.increment(GROUP_IO, REDUCE_OUTPUT_RECORDS, len(reduced))
    return ReduceTaskResult(index=index, output=reduced, counters=counters,
                            wall_time_s=time.monotonic() - started,
                            queue_wait_s=queue_wait)


def _map_attempts(job: MapReduceJob, split: Any,
                  counters: Counters) -> List[Tuple[Any, Any]]:
    """Hadoop-style retry: a failed attempt's partial output is discarded
    (tasks are idempotent units); only the successful attempt's records
    and emissions count."""
    last_error: Optional[Exception] = None
    for attempt in range(job.max_task_attempts):
        counters.increment(GROUP_TASK, MAP_TASKS)
        counters.increment(GROUP_IO, INPUT_BYTES, split.length_bytes)
        ctx = TaskContext(counters)
        try:
            records = job.input_format.read_split(split)
            for record in records:
                job.mapper(record, ctx)
        except Exception as exc:  # noqa: BLE001 - any task error retries
            counters.increment(GROUP_TASK, "map_task_failures")
            last_error = exc
            continue
        counters.increment(GROUP_IO, INPUT_RECORDS, len(records))
        emitted = ctx.drain()
        counters.increment(GROUP_IO, OUTPUT_RECORDS, len(emitted))
        return emitted
    raise TaskFailedError(
        f"map task over {split!r} failed {job.max_task_attempts} "
        f"attempt(s): {last_error}"
    ) from last_error


def _combine(job: MapReduceJob, emitted: List[Tuple[Any, Any]],
             counters: Counters) -> List[Tuple[Any, Any]]:
    """Run the combiner over one map task's output."""
    ctx = TaskContext(counters)
    for key, values in _group_sorted(emitted):
        job.combiner(key, values, ctx)
    return ctx.drain()


def _group_sorted(pairs: List[Tuple[Any, Any]]) -> List[Tuple[Any, List[Any]]]:
    """Group pairs by key in sorted key order (the shuffle's sort-merge)."""
    grouped: Dict[Any, List[Any]] = defaultdict(list)
    for key, value in pairs:
        grouped[key].append(value)
    return sorted(grouped.items(), key=lambda kv: repr(kv[0]))


def _run_map_chunk(job: MapReduceJob,
                   chunk: Sequence[Tuple[int, Any]],
                   submitted_at: float) -> List[MapTaskResult]:
    """Run a contiguous chunk of map tasks inside one pool work unit.

    Chunking amortizes scheduling/pickling overhead and keeps splits of
    the same file on the same worker (so its decode cache is reused).
    """
    return [run_map_task(job, split, index, submitted_at)
            for index, split in chunk]


def _run_reduce_chunk(job: MapReduceJob,
                      chunk: Sequence[Tuple[int, List[Tuple[Any, Any]]]],
                      submitted_at: float) -> List[ReduceTaskResult]:
    """Run a contiguous chunk of reduce tasks inside one pool work unit.

    Mirrors :func:`_run_map_chunk`: one pickled message per chunk instead
    of one per partition, so small partitions don't each pay the pool's
    round-trip overhead.
    """
    return [run_reduce_task(job, index, partition, submitted_at)
            for index, partition in chunk]


# -- process-pool worker side ----------------------------------------------
# The job is pickled once in the parent and installed per worker via the
# pool initializer; tasks then reference it by this module-level global,
# so per-task messages carry only splits / partition data.
_WORKER_JOB: Optional[MapReduceJob] = None


def _process_worker_init(payload: bytes) -> None:
    """Pool initializer: unpickle the job once per worker process."""
    global _WORKER_JOB
    _WORKER_JOB = pickle.loads(payload)


def _process_run_map_chunk(chunk: Sequence[Tuple[int, Any]],
                           submitted_at: float) -> List[MapTaskResult]:
    """Worker-side map chunk runner against the installed job."""
    return _run_map_chunk(_WORKER_JOB, chunk, submitted_at)


def _process_run_reduce_chunk(chunk: Sequence[Tuple[int, List[Tuple[Any, Any]]]],
                              submitted_at: float) -> List[ReduceTaskResult]:
    """Worker-side reduce chunk runner against the installed job."""
    return _run_reduce_chunk(_WORKER_JOB, chunk, submitted_at)


# ---------------------------------------------------------------------------
# Backends.
# ---------------------------------------------------------------------------


class ExecutionBackend:
    """Interface: run a job's map / reduce phases, results in task order.

    Backends are context managers; pooled backends open their pool on
    first use and tear it down on exit, so both phases of one job share
    one pool (and, for processes, one shipped job payload).
    """

    #: Backend name as reported to the tracker and the metrics gauge.
    name = "serial"
    #: Number of workers executing tasks.
    workers = 1

    def run_map_phase(self, job: MapReduceJob,
                      splits: Sequence[Any]) -> List[MapTaskResult]:
        """Execute one map task per split; results in split order."""
        raise NotImplementedError

    def run_reduce_phase(self, job: MapReduceJob,
                         units: Sequence[Tuple[int, List[Tuple[Any, Any]]]],
                         ) -> List[ReduceTaskResult]:
        """Execute one reduce task per (index, partition) unit, in order."""
        raise NotImplementedError

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


class SerialBackend(ExecutionBackend):
    """Tasks run in order on the calling thread (the classic engine)."""

    name = "serial"
    workers = 1

    def run_map_phase(self, job, splits):
        """Execute map tasks sequentially in split order."""
        return [run_map_task(job, split, i)
                for i, split in enumerate(splits)]

    def run_reduce_phase(self, job, units):
        """Execute reduce tasks sequentially in partition order."""
        return [run_reduce_task(job, index, partition)
                for index, partition in units]


class _PoolBackend(ExecutionBackend):
    """Shared chunking/ordering logic for the two pooled backends."""

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self._pool = None

    # subclasses provide:
    def _make_pool(self):
        raise NotImplementedError

    def _submit_map_chunk(self, pool, job, chunk):
        raise NotImplementedError

    def _submit_reduce_chunk(self, pool, job, chunk):
        raise NotImplementedError

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def __exit__(self, *exc_info: Any) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def run_map_phase(self, job, splits):
        """Fan map tasks out over the pool; merge back in split order."""
        indexed = list(enumerate(splits))
        if not indexed:
            return []
        if len(indexed) <= INLINE_PHASE_TASKS:
            # Too small to pay pool dispatch for; identical results
            # either way (tasks still run against private Counters).
            return _run_map_chunk(job, indexed, time.monotonic())
        pool = self._ensure_pool()
        chunks = _chunk(indexed, self.workers * 2)
        futures = [self._submit_map_chunk(pool, job, chunk)
                   for chunk in chunks]
        results = [result for future in futures for result in future.result()]
        results.sort(key=lambda r: r.index)
        return results

    def run_reduce_phase(self, job, units):
        """Fan reduce-task chunks out over the pool; merge in partition
        order."""
        units = list(units)
        if not units:
            return []
        if len(units) <= INLINE_PHASE_TASKS:
            return _run_reduce_chunk(job, units, time.monotonic())
        pool = self._ensure_pool()
        chunks = _chunk(units, self.workers * 2)
        futures = [self._submit_reduce_chunk(pool, job, chunk)
                   for chunk in chunks]
        results = [result for future in futures for result in future.result()]
        results.sort(key=lambda r: r.index)
        return results


class ThreadPoolBackend(_PoolBackend):
    """Tasks run on a thread pool (shared memory; CPU stays GIL-bound)."""

    name = "threads"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="mr-worker")

    def _submit_map_chunk(self, pool, job, chunk):
        return pool.submit(_run_map_chunk, job, chunk, time.monotonic())

    def _submit_reduce_chunk(self, pool, job, chunk):
        return pool.submit(_run_reduce_chunk, job, chunk, time.monotonic())


class ProcessPoolBackend(_PoolBackend):
    """Tasks run on a process pool (true multi-core parallelism).

    The job payload is pickled once and installed per worker by the pool
    initializer; task messages carry only splits and partition data.
    """

    name = "processes"

    def __init__(self, workers: int, payload: bytes) -> None:
        super().__init__(workers)
        self._payload = payload

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.workers,
                                   initializer=_process_worker_init,
                                   initargs=(self._payload,))

    def _submit_map_chunk(self, pool, job, chunk):
        return pool.submit(_process_run_map_chunk, chunk, time.monotonic())

    def _submit_reduce_chunk(self, pool, job, chunk):
        return pool.submit(_process_run_reduce_chunk, chunk,
                           time.monotonic())


def _chunk(items: List[Any], n_chunks: int) -> List[List[Any]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, even chunks."""
    n_chunks = max(1, min(len(items), n_chunks))
    base, extra = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        if size:
            chunks.append(items[start:start + size])
        start += size
    return chunks


def prepare_backend(job: MapReduceJob, backend: Optional[str],
                    max_workers: Optional[int]) -> ExecutionBackend:
    """Resolve a backend name to a ready :class:`ExecutionBackend`.

    ``"processes"`` is probed for pickle-ability first: jobs built from
    closures (or over unpicklable input formats) cannot cross a process
    boundary, so they fall back to ``"threads"`` with a clear warning
    rather than failing deep inside the pool.
    """
    name = backend or "serial"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
    if name == "serial":
        return SerialBackend()
    workers = max_workers or default_worker_count()
    if name == "threads":
        return ThreadPoolBackend(workers)
    try:
        payload = pickle.dumps(job)
    except Exception as exc:  # noqa: BLE001 - any pickling failure
        warnings.warn(
            f"job {job.name!r} cannot run on the 'processes' backend: "
            f"{exc!r}. The mapper/combiner/reducer and input format must "
            f"be picklable (module-level functions or callable classes, "
            f"not closures/lambdas); falling back to 'threads'.",
            RuntimeWarning, stacklevel=3)
        return ThreadPoolBackend(workers)
    return ProcessPoolBackend(workers, payload)
