"""Hadoop-style job counters.

Counters are the measurement instrument of the reproduction: the paper's
performance argument for session sequences is about *how many mappers are
spawned*, *how many bytes are brute-force scanned*, and *how much data is
shuffled* for the group-by, and those are exactly what the engine counts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


def _int_dict() -> "defaultdict[str, int]":
    # Module-level factory (not a lambda) so Counters pickles: parallel
    # backends ship per-task counters back across process boundaries.
    return defaultdict(int)


class Counters:
    """Nested (group, name) -> int counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, Dict[str, int]] = defaultdict(_int_dict)

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to one (group, name) counter."""
        self._counts[group][name] += amount

    def get(self, group: str, name: str) -> int:
        """Current value of one counter (0 if never incremented)."""
        return self._counts.get(group, {}).get(name, 0)

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one."""
        for group, names in other._counts.items():
            for name, amount in names.items():
                self._counts[group][name] += amount

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Plain nested-dict view of all counters."""
        return {group: dict(names) for group, names in self._counts.items()}

    def __iter__(self) -> Iterator[Tuple[str, str, int]]:
        for group in sorted(self._counts):
            for name in sorted(self._counts[group]):
                yield group, name, self._counts[group][name]

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"


# Canonical counter names used by the engine.
GROUP_TASK = "task"
MAP_TASKS = "map_tasks"
REDUCE_TASKS = "reduce_tasks"

GROUP_IO = "io"
INPUT_RECORDS = "map_input_records"
INPUT_BYTES = "map_input_bytes"
OUTPUT_RECORDS = "map_output_records"
SHUFFLE_RECORDS = "shuffle_records"
SHUFFLE_BYTES = "shuffle_bytes"
REDUCE_INPUT_GROUPS = "reduce_input_groups"
REDUCE_OUTPUT_RECORDS = "reduce_output_records"
SPLITS_SKIPPED = "splits_skipped_by_index"
