"""Wire protocols: binary (fixed-width) and compact (varint/zigzag).

Both protocols share the same abstract reader/writer interface, so a struct
serialized with either can be skipped field-by-field without knowing its
schema -- the property that gives Thrift messages forward compatibility.
"""

from __future__ import annotations

import io
import struct as _struct
from typing import Tuple

from repro.thriftlike.types import ProtocolError, TType


class ProtocolWriter:
    """Abstract writer. Subclasses encode primitives onto a byte buffer."""

    def __init__(self) -> None:
        self._buf = io.BytesIO()

    def getvalue(self) -> bytes:
        """Return the bytes written so far."""
        return self._buf.getvalue()

    # -- framing -----------------------------------------------------------
    def write_struct_begin(self) -> None:
        """Mark the start of a struct's fields."""
        pass

    def write_struct_end(self) -> None:
        """Mark the end of a struct's fields."""
        pass

    def write_field(self, fid: int, ttype: TType) -> None:
        """Write a field header (id + wire type)."""
        raise NotImplementedError

    def write_field_stop(self) -> None:
        """Write the end-of-struct marker."""
        raise NotImplementedError

    # -- primitives --------------------------------------------------------
    def write_bool(self, value: bool) -> None:
        """Write a boolean value."""
        raise NotImplementedError

    def write_byte(self, value: int) -> None:
        """Write a signed 8-bit integer."""
        raise NotImplementedError

    def write_i16(self, value: int) -> None:
        """Write a signed 16-bit integer."""
        raise NotImplementedError

    def write_i32(self, value: int) -> None:
        """Write a signed 32-bit integer."""
        raise NotImplementedError

    def write_i64(self, value: int) -> None:
        """Write a signed 64-bit integer."""
        raise NotImplementedError

    def write_double(self, value: float) -> None:
        """Write a 64-bit IEEE-754 float."""
        raise NotImplementedError

    def write_string(self, value) -> None:
        """Write a length-prefixed string (or bytes)."""
        raise NotImplementedError

    def write_collection_begin(self, ttype: TType, size: int) -> None:
        """Write a list/set header (element type + size)."""
        raise NotImplementedError

    def write_map_begin(self, ktype: TType, vtype: TType, size: int) -> None:
        """Write a map header (key type, value type, size)."""
        raise NotImplementedError


class ProtocolReader:
    """Abstract reader over a bytes object."""

    def __init__(self, data: bytes) -> None:
        self._buf = io.BytesIO(data)

    def _read_exact(self, n: int) -> bytes:
        data = self._buf.read(n)
        if len(data) != n:
            raise ProtocolError(f"truncated read: wanted {n}, got {len(data)}")
        return data

    def at_end(self) -> bool:
        """True when every byte of the input has been consumed."""
        pos = self._buf.tell()
        more = self._buf.read(1)
        self._buf.seek(pos)
        return not more

    # -- framing -----------------------------------------------------------
    def read_struct_begin(self) -> None:
        """Consume the start of a struct, if any framing exists."""
        pass

    def read_struct_end(self) -> None:
        """Consume the end of a struct, if any framing exists."""
        pass

    def read_field(self) -> Tuple[int, TType]:
        """Return ``(fid, ttype)``; ttype == STOP signals end of struct."""
        raise NotImplementedError

    # -- primitives --------------------------------------------------------
    def read_bool(self) -> bool:
        """Read a boolean value."""
        raise NotImplementedError

    def read_byte(self) -> int:
        """Read a signed 8-bit integer."""
        raise NotImplementedError

    def read_i16(self) -> int:
        """Read a signed 16-bit integer."""
        raise NotImplementedError

    def read_i32(self) -> int:
        """Read a signed 32-bit integer."""
        raise NotImplementedError

    def read_i64(self) -> int:
        """Read a signed 64-bit integer."""
        raise NotImplementedError

    def read_double(self) -> float:
        """Read a 64-bit IEEE-754 float."""
        raise NotImplementedError

    def read_string(self) -> str:
        """Read a length-prefixed UTF-8 string."""
        raise NotImplementedError

    def read_binary(self) -> bytes:
        """Read a length-prefixed byte string."""
        raise NotImplementedError

    def read_collection_begin(self) -> Tuple[TType, int]:
        """Read a list/set header; returns (element type, size)."""
        raise NotImplementedError

    def read_map_begin(self) -> Tuple[TType, TType, int]:
        """Read a map header; returns (key type, value type, size)."""
        raise NotImplementedError

    # -- schema-free skipping ----------------------------------------------
    def skip(self, ttype: TType) -> None:
        """Consume and discard a value of type ``ttype``."""
        if ttype is TType.BOOL:
            self.read_bool()
        elif ttype is TType.BYTE:
            self.read_byte()
        elif ttype is TType.I16:
            self.read_i16()
        elif ttype is TType.I32:
            self.read_i32()
        elif ttype is TType.I64:
            self.read_i64()
        elif ttype is TType.DOUBLE:
            self.read_double()
        elif ttype is TType.STRING:
            self.read_binary()
        elif ttype is TType.STRUCT:
            self.read_struct_begin()
            while True:
                __, ftype = self.read_field()
                if ftype is TType.STOP:
                    break
                self.skip(ftype)
            self.read_struct_end()
        elif ttype in (TType.LIST, TType.SET):
            etype, size = self.read_collection_begin()
            for __ in range(size):
                self.skip(etype)
        elif ttype is TType.MAP:
            ktype, vtype, size = self.read_map_begin()
            for __ in range(size):
                self.skip(ktype)
                self.skip(vtype)
        else:
            raise ProtocolError(f"cannot skip type {ttype}")


# ---------------------------------------------------------------------------
# Binary protocol: fixed-width big-endian fields, like TBinaryProtocol.
# ---------------------------------------------------------------------------


class BinaryProtocolWriter(ProtocolWriter):
    """Fixed-width big-endian encoding (Thrift's TBinaryProtocol)."""

    def write_field(self, fid: int, ttype: TType) -> None:
        self._buf.write(_struct.pack(">bh", int(ttype), fid))

    def write_field_stop(self) -> None:
        self._buf.write(_struct.pack(">b", int(TType.STOP)))

    def write_bool(self, value: bool) -> None:
        self._buf.write(_struct.pack(">b", 1 if value else 0))

    def write_byte(self, value: int) -> None:
        self._buf.write(_struct.pack(">b", value))

    def write_i16(self, value: int) -> None:
        self._buf.write(_struct.pack(">h", value))

    def write_i32(self, value: int) -> None:
        self._buf.write(_struct.pack(">i", value))

    def write_i64(self, value: int) -> None:
        self._buf.write(_struct.pack(">q", value))

    def write_double(self, value: float) -> None:
        self._buf.write(_struct.pack(">d", value))

    def write_string(self, value) -> None:
        data = value.encode("utf-8") if isinstance(value, str) else value
        self._buf.write(_struct.pack(">i", len(data)))
        self._buf.write(data)

    def write_collection_begin(self, ttype: TType, size: int) -> None:
        self._buf.write(_struct.pack(">bi", int(ttype), size))

    def write_map_begin(self, ktype: TType, vtype: TType, size: int) -> None:
        self._buf.write(_struct.pack(">bbi", int(ktype), int(vtype), size))


class BinaryProtocolReader(ProtocolReader):
    """Reader matching :class:`BinaryProtocolWriter`."""

    def read_field(self) -> Tuple[int, TType]:
        raw = self._read_exact(1)
        ttype = _to_ttype(raw[0])
        if ttype is TType.STOP:
            return 0, TType.STOP
        (fid,) = _struct.unpack(">h", self._read_exact(2))
        return fid, ttype

    def read_bool(self) -> bool:
        return self._read_exact(1)[0] != 0

    def read_byte(self) -> int:
        (v,) = _struct.unpack(">b", self._read_exact(1))
        return v

    def read_i16(self) -> int:
        (v,) = _struct.unpack(">h", self._read_exact(2))
        return v

    def read_i32(self) -> int:
        (v,) = _struct.unpack(">i", self._read_exact(4))
        return v

    def read_i64(self) -> int:
        (v,) = _struct.unpack(">q", self._read_exact(8))
        return v

    def read_double(self) -> float:
        (v,) = _struct.unpack(">d", self._read_exact(8))
        return v

    def read_binary(self) -> bytes:
        (n,) = _struct.unpack(">i", self._read_exact(4))
        if n < 0:
            raise ProtocolError(f"negative string length {n}")
        return self._read_exact(n)

    def read_string(self) -> str:
        return self.read_binary().decode("utf-8")

    def read_collection_begin(self) -> Tuple[TType, int]:
        raw = self._read_exact(5)
        ttype = _to_ttype(raw[0])
        (size,) = _struct.unpack(">i", raw[1:])
        if size < 0:
            raise ProtocolError(f"negative collection size {size}")
        return ttype, size

    def read_map_begin(self) -> Tuple[TType, TType, int]:
        raw = self._read_exact(6)
        ktype = _to_ttype(raw[0])
        vtype = _to_ttype(raw[1])
        (size,) = _struct.unpack(">i", raw[2:])
        if size < 0:
            raise ProtocolError(f"negative map size {size}")
        return ktype, vtype, size


# ---------------------------------------------------------------------------
# Compact protocol: varints, zigzag ints, delta-encoded field ids.
# ---------------------------------------------------------------------------


def write_varint(buf: io.BytesIO, value: int) -> None:
    """Encode an unsigned integer as a base-128 varint."""
    if value < 0:
        raise ProtocolError("varint value must be non-negative")
    while True:
        towrite = value & 0x7F
        value >>= 7
        if value:
            buf.write(bytes((towrite | 0x80,)))
        else:
            buf.write(bytes((towrite,)))
            return


def read_varint(read_exact) -> int:
    """Decode a base-128 varint using a ``read_exact(n)`` callable."""
    result = 0
    shift = 0
    while True:
        byte = read_exact(1)[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 70:
            raise ProtocolError("varint too long")


def zigzag(value: int) -> int:
    """Map a signed int to unsigned so small magnitudes stay small."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) ^ -(value & 1)


class CompactProtocolWriter(ProtocolWriter):
    """Varint/zigzag encoding with delta-compressed field ids.

    Field headers are one byte when the field-id delta from the previous
    field is small, which is the common case for densely-numbered structs
    like :class:`repro.core.event.ClientEvent`.
    """

    def __init__(self) -> None:
        super().__init__()
        self._last_fid = [0]

    def write_struct_begin(self) -> None:
        self._last_fid.append(0)

    def write_struct_end(self) -> None:
        self._last_fid.pop()

    def write_field(self, fid: int, ttype: TType) -> None:
        delta = fid - self._last_fid[-1]
        if 0 < delta <= 15:
            self._buf.write(bytes(((delta << 4) | int(ttype),)))
        else:
            self._buf.write(bytes((int(ttype),)))
            write_varint(self._buf, zigzag(fid))
        self._last_fid[-1] = fid

    def write_field_stop(self) -> None:
        self._buf.write(b"\x00")

    def write_bool(self, value: bool) -> None:
        self._buf.write(b"\x01" if value else b"\x00")

    def write_byte(self, value: int) -> None:
        self._buf.write(_struct.pack(">b", value))

    def write_i16(self, value: int) -> None:
        write_varint(self._buf, zigzag(value))

    def write_i32(self, value: int) -> None:
        write_varint(self._buf, zigzag(value))

    def write_i64(self, value: int) -> None:
        write_varint(self._buf, zigzag(value))

    def write_double(self, value: float) -> None:
        self._buf.write(_struct.pack(">d", value))

    def write_string(self, value) -> None:
        data = value.encode("utf-8") if isinstance(value, str) else value
        write_varint(self._buf, len(data))
        self._buf.write(data)

    def write_collection_begin(self, ttype: TType, size: int) -> None:
        self._buf.write(bytes((int(ttype),)))
        write_varint(self._buf, size)

    def write_map_begin(self, ktype: TType, vtype: TType, size: int) -> None:
        self._buf.write(bytes((int(ktype), int(vtype))))
        write_varint(self._buf, size)


class CompactProtocolReader(ProtocolReader):
    """Reader matching :class:`CompactProtocolWriter`."""

    def __init__(self, data: bytes) -> None:
        super().__init__(data)
        self._last_fid = [0]

    def read_struct_begin(self) -> None:
        self._last_fid.append(0)

    def read_struct_end(self) -> None:
        self._last_fid.pop()

    def read_field(self) -> Tuple[int, TType]:
        header = self._read_exact(1)[0]
        if header == 0:
            return 0, TType.STOP
        ttype = _to_ttype(header & 0x0F)
        delta = header >> 4
        if delta:
            fid = self._last_fid[-1] + delta
        else:
            fid = unzigzag(read_varint(self._read_exact))
        self._last_fid[-1] = fid
        return fid, ttype

    def read_bool(self) -> bool:
        return self._read_exact(1)[0] != 0

    def read_byte(self) -> int:
        (v,) = _struct.unpack(">b", self._read_exact(1))
        return v

    def read_i16(self) -> int:
        return unzigzag(read_varint(self._read_exact))

    def read_i32(self) -> int:
        return unzigzag(read_varint(self._read_exact))

    def read_i64(self) -> int:
        return unzigzag(read_varint(self._read_exact))

    def read_double(self) -> float:
        (v,) = _struct.unpack(">d", self._read_exact(8))
        return v

    def read_binary(self) -> bytes:
        n = read_varint(self._read_exact)
        return self._read_exact(n)

    def read_string(self) -> str:
        return self.read_binary().decode("utf-8")

    def read_collection_begin(self) -> Tuple[TType, int]:
        ttype = _to_ttype(self._read_exact(1)[0])
        size = read_varint(self._read_exact)
        return ttype, size

    def read_map_begin(self) -> Tuple[TType, TType, int]:
        raw = self._read_exact(2)
        size = read_varint(self._read_exact)
        return _to_ttype(raw[0]), _to_ttype(raw[1]), size


def _to_ttype(raw: int) -> TType:
    try:
        return TType(raw)
    except ValueError as exc:
        raise ProtocolError(f"unknown wire type {raw}") from exc


PROTOCOLS = {
    "binary": (BinaryProtocolWriter, BinaryProtocolReader),
    "compact": (CompactProtocolWriter, CompactProtocolReader),
}


def writer_for(protocol: str) -> ProtocolWriter:
    """Instantiate a writer by protocol name (``binary`` or ``compact``)."""
    try:
        return PROTOCOLS[protocol][0]()
    except KeyError as exc:
        raise ProtocolError(f"unknown protocol {protocol!r}") from exc


def reader_for(protocol: str, data: bytes) -> ProtocolReader:
    """Instantiate a reader by protocol name over ``data``."""
    try:
        return PROTOCOLS[protocol][1](data)
    except KeyError as exc:
        raise ProtocolError(f"unknown protocol {protocol!r}") from exc
