"""Thrift-like serialization: types, wire protocols, structs, record I/O."""

from repro.thriftlike.types import (
    FieldSpec,
    ProtocolError,
    ThriftError,
    TType,
    ValidationError,
    elem,
)
from repro.thriftlike.protocol import (
    BinaryProtocolReader,
    BinaryProtocolWriter,
    CompactProtocolReader,
    CompactProtocolWriter,
    reader_for,
    writer_for,
)
from repro.thriftlike.struct import ThriftStruct
from repro.thriftlike.proto import ProtoField, ProtoMessage
from repro.thriftlike.codegen import (
    ThriftFileFormat,
    frame,
    iter_frames,
    record_reader,
    record_writer,
)

__all__ = [
    "FieldSpec",
    "ProtocolError",
    "ThriftError",
    "TType",
    "ValidationError",
    "elem",
    "BinaryProtocolReader",
    "BinaryProtocolWriter",
    "CompactProtocolReader",
    "CompactProtocolWriter",
    "reader_for",
    "writer_for",
    "ThriftStruct",
    "ProtoField",
    "ProtoMessage",
    "ThriftFileFormat",
    "frame",
    "iter_frames",
    "record_reader",
    "record_writer",
]
