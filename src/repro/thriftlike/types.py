"""Type system for the Thrift-like serialization framework.

Mirrors Apache Thrift's wire-type model: every serialized field carries a
numeric field id and a type tag, which is what makes messages extensible --
a reader that does not know a field id can skip the value because the type
tag tells it how long the value is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional


class TType(enum.IntEnum):
    """Wire type tags, numerically compatible with Apache Thrift."""

    STOP = 0
    BOOL = 2
    BYTE = 3
    DOUBLE = 4
    I16 = 6
    I32 = 8
    I64 = 10
    STRING = 11
    STRUCT = 12
    MAP = 13
    SET = 14
    LIST = 15


_INT_TYPES = frozenset({TType.BYTE, TType.I16, TType.I32, TType.I64})

_INT_BOUNDS = {
    TType.BYTE: (-(2 ** 7), 2 ** 7 - 1),
    TType.I16: (-(2 ** 15), 2 ** 15 - 1),
    TType.I32: (-(2 ** 31), 2 ** 31 - 1),
    TType.I64: (-(2 ** 63), 2 ** 63 - 1),
}


class ThriftError(Exception):
    """Base error for the serialization framework."""


class ProtocolError(ThriftError):
    """Raised on malformed wire data."""


class ValidationError(ThriftError):
    """Raised when a value does not conform to its declared field type."""


@dataclass(frozen=True)
class FieldSpec:
    """Declarative description of one struct field.

    ``key`` and ``value`` describe element types for containers: for a LIST
    or SET, ``value`` is the element spec; for a MAP, both are used. For a
    STRUCT field, ``struct_cls`` names the nested struct class.
    """

    fid: int
    name: str
    ttype: TType
    required: bool = False
    default: Any = None
    key: Optional["FieldSpec"] = None
    value: Optional["FieldSpec"] = None
    struct_cls: Any = None

    def __post_init__(self) -> None:
        if self.fid < 1 or self.fid > 32767:
            raise ValidationError(
                f"field id must be in [1, 32767], got {self.fid}"
            )
        if self.ttype in (TType.LIST, TType.SET) and self.value is None:
            raise ValidationError(
                f"container field {self.name!r} needs an element spec"
            )
        if self.ttype is TType.MAP and (self.key is None or self.value is None):
            raise ValidationError(
                f"map field {self.name!r} needs key and value specs"
            )
        if self.ttype is TType.STRUCT and self.struct_cls is None:
            raise ValidationError(
                f"struct field {self.name!r} needs struct_cls"
            )


def elem(ttype: TType, struct_cls: Any = None,
         key: Optional[FieldSpec] = None,
         value: Optional[FieldSpec] = None) -> FieldSpec:
    """Build an anonymous element spec for container members."""
    return FieldSpec(fid=1, name="<elem>", ttype=ttype, struct_cls=struct_cls,
                     key=key, value=value)


def check_value(spec: FieldSpec, value: Any) -> None:
    """Validate ``value`` against ``spec``; raise :class:`ValidationError`.

    The check is shallow-typed but recursive through containers, so an
    ill-typed element nested inside a map of lists is still rejected before
    it reaches the wire.
    """
    ttype = spec.ttype
    if ttype is TType.BOOL:
        if not isinstance(value, bool):
            raise ValidationError(f"{spec.name}: expected bool, got {type(value).__name__}")
    elif ttype in _INT_TYPES:
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValidationError(f"{spec.name}: expected int, got {type(value).__name__}")
        lo, hi = _INT_BOUNDS[ttype]
        if not lo <= value <= hi:
            raise ValidationError(
                f"{spec.name}: {value} out of range for {ttype.name}"
            )
    elif ttype is TType.DOUBLE:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"{spec.name}: expected float, got {type(value).__name__}")
    elif ttype is TType.STRING:
        if not isinstance(value, (str, bytes)):
            raise ValidationError(f"{spec.name}: expected str/bytes, got {type(value).__name__}")
    elif ttype is TType.STRUCT:
        if not isinstance(value, spec.struct_cls):
            raise ValidationError(
                f"{spec.name}: expected {spec.struct_cls.__name__}, "
                f"got {type(value).__name__}"
            )
    elif ttype is TType.LIST:
        if not isinstance(value, (list, tuple)):
            raise ValidationError(f"{spec.name}: expected list, got {type(value).__name__}")
        for item in value:
            check_value(spec.value, item)
    elif ttype is TType.SET:
        if not isinstance(value, (set, frozenset)):
            raise ValidationError(f"{spec.name}: expected set, got {type(value).__name__}")
        for item in value:
            check_value(spec.value, item)
    elif ttype is TType.MAP:
        if not isinstance(value, dict):
            raise ValidationError(f"{spec.name}: expected dict, got {type(value).__name__}")
        for k, v in value.items():
            check_value(spec.key, k)
            check_value(spec.value, v)
    else:  # pragma: no cover - exhaustive over TType
        raise ValidationError(f"{spec.name}: unsupported type {ttype}")
