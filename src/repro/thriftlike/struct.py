"""Declarative Thrift-like structs with schema evolution.

A struct class declares a ``FIELDS`` tuple of :class:`FieldSpec`. Instances
carry only the declared attributes. Serialization writes set fields tagged
by field id; deserialization skips unknown field ids, so old readers accept
messages from newer writers (forward compatibility) and new readers fill
missing fields with defaults (backward compatibility) -- the property the
paper relies on for letting log messages "gradually evolve over time".
"""

from __future__ import annotations

from typing import Any, Dict, Tuple, Type, TypeVar

from repro.thriftlike.protocol import (
    ProtocolReader,
    ProtocolWriter,
    reader_for,
    writer_for,
)
from repro.thriftlike.types import (
    FieldSpec,
    TType,
    ValidationError,
    check_value,
)

T = TypeVar("T", bound="ThriftStruct")


class ThriftStruct:
    """Base class for declarative structs.

    Subclasses set ``FIELDS: Tuple[FieldSpec, ...]``. Construction accepts
    keyword arguments by field name; missing optional fields take their
    declared default, missing required fields raise at validation time.
    """

    FIELDS: Tuple[FieldSpec, ...] = ()

    def __init__(self, **kwargs: Any) -> None:
        specs = self.field_map()
        unknown = set(kwargs) - set(specs)
        if unknown:
            raise ValidationError(
                f"{type(self).__name__}: unknown fields {sorted(unknown)}"
            )
        for name, spec in specs.items():
            if name in kwargs:
                setattr(self, name, kwargs[name])
            else:
                default = spec.default
                if callable(default):
                    default = default()
                setattr(self, name, default)

    # -- introspection -------------------------------------------------
    @classmethod
    def field_map(cls) -> Dict[str, FieldSpec]:
        """name -> :class:`FieldSpec` for this struct class."""
        cached = cls.__dict__.get("_field_map")
        if cached is None:
            cached = {spec.name: spec for spec in cls.FIELDS}
            if len(cached) != len(cls.FIELDS):
                raise ValidationError(f"{cls.__name__}: duplicate field names")
            fids = {spec.fid for spec in cls.FIELDS}
            if len(fids) != len(cls.FIELDS):
                raise ValidationError(f"{cls.__name__}: duplicate field ids")
            cls._field_map = cached
        return cached

    @classmethod
    def fid_map(cls) -> Dict[int, FieldSpec]:
        """field id -> :class:`FieldSpec` for this struct class."""
        cached = cls.__dict__.get("_fid_map")
        if cached is None:
            cached = {spec.fid: spec for spec in cls.FIELDS}
            cls._fid_map = cached
        return cached

    def validate(self) -> None:
        """Check required fields are set and values match declared types."""
        for spec in self.FIELDS:
            value = getattr(self, spec.name)
            if value is None:
                if spec.required:
                    raise ValidationError(
                        f"{type(self).__name__}.{spec.name} is required"
                    )
                continue
            check_value(spec, value)

    # -- serialization ---------------------------------------------------
    def write(self, writer: ProtocolWriter) -> None:
        """Validate and write the struct's set fields to a protocol writer."""
        self.validate()
        writer.write_struct_begin()
        for spec in self.FIELDS:
            value = getattr(self, spec.name)
            if value is None:
                continue
            writer.write_field(spec.fid, spec.ttype)
            _write_value(writer, spec, value)
        writer.write_field_stop()
        writer.write_struct_end()

    def to_bytes(self, protocol: str = "compact") -> bytes:
        """Serialize with the named protocol (default compact)."""
        writer = writer_for(protocol)
        self.write(writer)
        return writer.getvalue()

    @classmethod
    def read(cls: Type[T], reader: ProtocolReader) -> T:
        """Read a struct from a protocol reader, skipping unknown fields."""
        obj = cls()
        fid_map = cls.fid_map()
        reader.read_struct_begin()
        while True:
            fid, ttype = reader.read_field()
            if ttype is TType.STOP:
                break
            spec = fid_map.get(fid)
            if spec is None or spec.ttype is not ttype:
                # Unknown or retyped field: skip for forward compatibility.
                reader.skip(ttype)
                continue
            setattr(obj, spec.name, _read_value(reader, spec))
        reader.read_struct_end()
        obj.validate()
        return obj

    @classmethod
    def from_bytes(cls: Type[T], data: bytes, protocol: str = "compact") -> T:
        """Deserialize with the named protocol (default compact)."""
        return cls.read(reader_for(protocol, data))

    # -- conveniences ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict view (recursing into nested structs and containers)."""
        out: Dict[str, Any] = {}
        for spec in self.FIELDS:
            out[spec.name] = _to_plain(getattr(self, spec.name))
        return out

    def replace(self: T, **kwargs: Any) -> T:
        """Return a copy with the given fields replaced."""
        merged = {spec.name: getattr(self, spec.name) for spec in self.FIELDS}
        merged.update(kwargs)
        return type(self)(**merged)

    def __eq__(self, other: Any) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(
            getattr(self, spec.name) == getattr(other, spec.name)
            for spec in self.FIELDS
        )

    def __hash__(self) -> int:
        return hash(
            (type(self),)
            + tuple(_hashable(getattr(self, spec.name)) for spec in self.FIELDS)
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{spec.name}={getattr(self, spec.name)!r}"
            for spec in self.FIELDS
            if getattr(self, spec.name) is not None
        )
        return f"{type(self).__name__}({parts})"


def _hashable(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_hashable(v) for v in value)
    return value


def _to_plain(value: Any) -> Any:
    if isinstance(value, ThriftStruct):
        return value.to_dict()
    if isinstance(value, (list, tuple)):
        return [_to_plain(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return {_to_plain(v) for v in value}
    if isinstance(value, dict):
        return {k: _to_plain(v) for k, v in value.items()}
    return value


def _write_value(writer: ProtocolWriter, spec: FieldSpec, value: Any) -> None:
    ttype = spec.ttype
    if ttype is TType.BOOL:
        writer.write_bool(value)
    elif ttype is TType.BYTE:
        writer.write_byte(value)
    elif ttype is TType.I16:
        writer.write_i16(value)
    elif ttype is TType.I32:
        writer.write_i32(value)
    elif ttype is TType.I64:
        writer.write_i64(value)
    elif ttype is TType.DOUBLE:
        writer.write_double(float(value))
    elif ttype is TType.STRING:
        writer.write_string(value)
    elif ttype is TType.STRUCT:
        value.write(writer)
    elif ttype in (TType.LIST, TType.SET):
        items = sorted(value, key=repr) if ttype is TType.SET else value
        writer.write_collection_begin(spec.value.ttype, len(items))
        for item in items:
            _write_value(writer, spec.value, item)
    elif ttype is TType.MAP:
        writer.write_map_begin(spec.key.ttype, spec.value.ttype, len(value))
        for k in sorted(value, key=repr):
            _write_value(writer, spec.key, k)
            _write_value(writer, spec.value, value[k])
    else:  # pragma: no cover - exhaustive
        raise ValidationError(f"unsupported type {ttype}")


def _read_value(reader: ProtocolReader, spec: FieldSpec) -> Any:
    ttype = spec.ttype
    if ttype is TType.BOOL:
        return reader.read_bool()
    if ttype is TType.BYTE:
        return reader.read_byte()
    if ttype is TType.I16:
        return reader.read_i16()
    if ttype is TType.I32:
        return reader.read_i32()
    if ttype is TType.I64:
        return reader.read_i64()
    if ttype is TType.DOUBLE:
        return reader.read_double()
    if ttype is TType.STRING:
        return reader.read_string()
    if ttype is TType.STRUCT:
        return spec.struct_cls.read(reader)
    if ttype in (TType.LIST, TType.SET):
        etype, size = reader.read_collection_begin()
        items = []
        for __ in range(size):
            if etype is spec.value.ttype:
                items.append(_read_value(reader, spec.value))
            else:
                reader.skip(etype)
        return set(items) if ttype is TType.SET else items
    if ttype is TType.MAP:
        ktype, vtype, size = reader.read_map_begin()
        out = {}
        for __ in range(size):
            if ktype is spec.key.ttype and vtype is spec.value.ttype:
                key = _read_value(reader, spec.key)
                out[key] = _read_value(reader, spec.value)
            else:
                reader.skip(ktype)
                reader.skip(vtype)
        return out
    raise ValidationError(f"unsupported type {ttype}")  # pragma: no cover
