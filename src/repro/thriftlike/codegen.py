"""Elephant-Bird-style record I/O derived from struct definitions.

The paper's Elephant Bird "automatically generates Hadoop record readers
and writers for arbitrary Protocol Buffer and Thrift messages". Here the
same role is played by :func:`record_writer` / :func:`record_reader`, which
derive framed readers/writers from any :class:`ThriftStruct` subclass, and
by :class:`ThriftFileFormat`, which the MapReduce input formats use.

Frames are length-prefixed (varint) so a reader can step through a byte
stream record-by-record without consulting the schema.
"""

from __future__ import annotations

import io
from typing import Callable, Iterable, Iterator, List, Type, TypeVar

from repro.thriftlike.protocol import read_varint, write_varint
from repro.thriftlike.struct import ThriftStruct
from repro.thriftlike.types import ProtocolError

T = TypeVar("T", bound=ThriftStruct)


def frame(payload: bytes) -> bytes:
    """Length-prefix a record payload."""
    buf = io.BytesIO()
    write_varint(buf, len(payload))
    buf.write(payload)
    return buf.getvalue()


def iter_frames(data: bytes) -> Iterator[bytes]:
    """Yield record payloads from a concatenation of frames."""
    buf = io.BytesIO(data)

    def read_exact(n: int) -> bytes:
        chunk = buf.read(n)
        if len(chunk) != n:
            raise ProtocolError("truncated frame")
        return chunk

    while True:
        probe = buf.read(1)
        if not probe:
            return
        buf.seek(-1, io.SEEK_CUR)
        size = read_varint(read_exact)
        yield read_exact(size)


def record_writer(struct_cls: Type[T],
                  protocol: str = "compact") -> Callable[[Iterable[T]], bytes]:
    """Return a function serializing an iterable of structs to framed bytes."""

    def write(records: Iterable[T]) -> bytes:
        buf = io.BytesIO()
        for record in records:
            if not isinstance(record, struct_cls):
                raise TypeError(
                    f"expected {struct_cls.__name__}, got {type(record).__name__}"
                )
            buf.write(frame(record.to_bytes(protocol)))
        return buf.getvalue()

    return write


def record_reader(struct_cls: Type[T],
                  protocol: str = "compact") -> Callable[[bytes], Iterator[T]]:
    """Return a function deserializing framed bytes to structs."""

    def read(data: bytes) -> Iterator[T]:
        for payload in iter_frames(data):
            yield struct_cls.from_bytes(payload, protocol)

    return read


class ThriftFileFormat:
    """A file format bundling the derived reader/writer for one struct type.

    This is the unit the simulated Hadoop stack consumes: input formats call
    :meth:`decode` on a block's bytes, output channels call :meth:`encode`.
    """

    def __init__(self, struct_cls: Type[T], protocol: str = "compact") -> None:
        self.struct_cls = struct_cls
        self.protocol = protocol
        self._write = record_writer(struct_cls, protocol)
        self._read = record_reader(struct_cls, protocol)

    def encode(self, records: Iterable[T]) -> bytes:
        """Serialize records to framed bytes."""
        return self._write(records)

    def decode(self, data: bytes) -> List[T]:
        """Deserialize framed bytes to a record list."""
        return list(self._read(data))

    def iter_decode(self, data: bytes) -> Iterator[T]:
        """Lazily deserialize framed bytes to records."""
        return self._read(data)

    # The derived reader/writer are closures, so pickle by construction
    # arguments instead -- input formats built on this must cross
    # process boundaries for the parallel MapReduce backend.
    def __getstate__(self) -> dict:
        return {"struct_cls": self.struct_cls, "protocol": self.protocol}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["struct_cls"], state["protocol"])

    def __repr__(self) -> str:
        return (f"ThriftFileFormat({self.struct_cls.__name__}, "
                f"protocol={self.protocol!r})")
