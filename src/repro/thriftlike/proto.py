"""A Protocol-Buffers-style wire format (§3's other serialization).

"Protocol Buffers and Thrift are two language-neutral data interchange
formats that provide compact encoding of structured data ... Elephant
Bird ... automatically generates Hadoop record readers and writers for
arbitrary Protocol Buffer and Thrift messages."

This module implements the protobuf wire encoding -- tag = (field_number
<< 3 | wire_type), varint / 64-bit / length-delimited wire types, unknown
fields skipped -- with the same declarative-class ergonomics as
:class:`repro.thriftlike.struct.ThriftStruct`. Because messages expose
``to_bytes``/``from_bytes``, the Elephant-Bird record I/O in
:mod:`repro.thriftlike.codegen` works on them unchanged, which is the
point: the record-reader generation is format-agnostic.

Supported field kinds: ``int64``/``uint64``/``sint64`` (varint, with
zigzag for sint), ``bool``, ``double`` (64-bit), ``string``/``bytes``
(length-delimited), ``message`` (nested, length-delimited), and
``repeated`` variants of each (unpacked encoding).
"""

from __future__ import annotations

import io
import struct as _struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Type, TypeVar

from repro.thriftlike.protocol import read_varint, unzigzag, write_varint, zigzag
from repro.thriftlike.types import ProtocolError, ValidationError

# protobuf wire types
_WT_VARINT = 0
_WT_64BIT = 1
_WT_LENGTH = 2
_WT_32BIT = 5

_KIND_WIRETYPE = {
    "int64": _WT_VARINT,
    "uint64": _WT_VARINT,
    "sint64": _WT_VARINT,
    "bool": _WT_VARINT,
    "double": _WT_64BIT,
    "string": _WT_LENGTH,
    "bytes": _WT_LENGTH,
    "message": _WT_LENGTH,
}

M = TypeVar("M", bound="ProtoMessage")


@dataclass(frozen=True)
class ProtoField:
    """One declared field of a message."""

    number: int
    name: str
    kind: str
    repeated: bool = False
    message_cls: Any = None

    def __post_init__(self) -> None:
        if self.kind not in _KIND_WIRETYPE:
            raise ValidationError(f"unknown field kind {self.kind!r}")
        if not 1 <= self.number <= 536_870_911:
            raise ValidationError(
                f"field number out of range: {self.number}")
        if 19_000 <= self.number <= 19_999:
            raise ValidationError(
                f"field number {self.number} is reserved")
        if self.kind == "message" and self.message_cls is None:
            raise ValidationError(
                f"message field {self.name!r} needs message_cls")

    @property
    def wire_type(self) -> int:
        """The protobuf wire type for this field's kind."""
        return _KIND_WIRETYPE[self.kind]


class ProtoMessage:
    """Base class for declarative protobuf-style messages.

    Subclasses set ``FIELDS: Tuple[ProtoField, ...]``. All fields are
    optional (proto3 semantics): scalars default to a zero value, which
    is -- like proto3 -- not emitted on the wire; repeated fields default
    to an empty list.
    """

    FIELDS: Tuple[ProtoField, ...] = ()

    _DEFAULTS = {
        "int64": 0, "uint64": 0, "sint64": 0, "bool": False,
        "double": 0.0, "string": "", "bytes": b"", "message": None,
    }

    def __init__(self, **kwargs: Any) -> None:
        specs = self.field_map()
        unknown = set(kwargs) - set(specs)
        if unknown:
            raise ValidationError(
                f"{type(self).__name__}: unknown fields {sorted(unknown)}")
        for name, spec in specs.items():
            if name in kwargs:
                setattr(self, name, kwargs[name])
            elif spec.repeated:
                setattr(self, name, [])
            else:
                setattr(self, name, self._DEFAULTS[spec.kind])

    @classmethod
    def field_map(cls) -> Dict[str, ProtoField]:
        """name -> :class:`ProtoField` for this message class."""
        cached = cls.__dict__.get("_field_map")
        if cached is None:
            cached = {spec.name: spec for spec in cls.FIELDS}
            numbers = {spec.number for spec in cls.FIELDS}
            if len(numbers) != len(cls.FIELDS):
                raise ValidationError(
                    f"{cls.__name__}: duplicate field numbers")
            cls._field_map = cached
        return cached

    # -- encoding ----------------------------------------------------------
    def to_bytes(self, protocol: Optional[str] = None) -> bytes:
        """Serialize. ``protocol`` is accepted (and ignored) so the
        Elephant-Bird record writers can treat Thrift structs and proto
        messages uniformly."""
        buf = io.BytesIO()
        for spec in self.FIELDS:
            value = getattr(self, spec.name)
            if spec.repeated:
                for item in value:
                    _write_field(buf, spec, item)
            else:
                if value == self._DEFAULTS[spec.kind] or value is None:
                    continue  # proto3: defaults are absent on the wire
                _write_field(buf, spec, value)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls: Type[M], data: bytes,
                   protocol: Optional[str] = None) -> M:
        """Decode a message, skipping unknown fields."""
        message = cls()
        buf = io.BytesIO(data)

        def read_exact(n: int) -> bytes:
            chunk = buf.read(n)
            if len(chunk) != n:
                raise ProtocolError("truncated proto message")
            return chunk

        by_number = {spec.number: spec for spec in cls.FIELDS}
        while True:
            probe = buf.read(1)
            if not probe:
                break
            buf.seek(-1, io.SEEK_CUR)
            tag = read_varint(read_exact)
            number, wire_type = tag >> 3, tag & 0x7
            spec = by_number.get(number)
            if spec is None or spec.wire_type != wire_type:
                _skip(buf, read_exact, wire_type)
                continue
            value = _read_field(read_exact, spec)
            if spec.repeated:
                getattr(message, spec.name).append(value)
            else:
                setattr(message, spec.name, value)
        return message

    # -- conveniences ------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(getattr(self, s.name) == getattr(other, s.name)
                   for s in self.FIELDS)

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash(self.to_bytes())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{s.name}={getattr(self, s.name)!r}" for s in self.FIELDS
            if getattr(self, s.name) not in (self._DEFAULTS[s.kind], []))
        return f"{type(self).__name__}({parts})"


def _write_field(buf: io.BytesIO, spec: ProtoField, value: Any) -> None:
    write_varint(buf, (spec.number << 3) | spec.wire_type)
    kind = spec.kind
    if kind in ("int64", "uint64"):
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValidationError(f"{spec.name}: expected int")
        if kind == "uint64" and value < 0:
            raise ValidationError(f"{spec.name}: uint64 must be >= 0")
        write_varint(buf, value & 0xFFFFFFFFFFFFFFFF)
    elif kind == "sint64":
        write_varint(buf, zigzag(value))
    elif kind == "bool":
        write_varint(buf, 1 if value else 0)
    elif kind == "double":
        buf.write(_struct.pack("<d", value))
    elif kind == "string":
        data = value.encode("utf-8")
        write_varint(buf, len(data))
        buf.write(data)
    elif kind == "bytes":
        write_varint(buf, len(value))
        buf.write(value)
    elif kind == "message":
        payload = value.to_bytes()
        write_varint(buf, len(payload))
        buf.write(payload)


def _read_field(read_exact, spec: ProtoField) -> Any:
    kind = spec.kind
    if kind in ("int64", "uint64"):
        raw = read_varint(read_exact)
        if kind == "int64" and raw >= 1 << 63:
            raw -= 1 << 64
        return raw
    if kind == "sint64":
        return unzigzag(read_varint(read_exact))
    if kind == "bool":
        return read_varint(read_exact) != 0
    if kind == "double":
        (value,) = _struct.unpack("<d", read_exact(8))
        return value
    if kind == "string":
        length = read_varint(read_exact)
        return read_exact(length).decode("utf-8")
    if kind == "bytes":
        length = read_varint(read_exact)
        return read_exact(length)
    if kind == "message":
        length = read_varint(read_exact)
        return spec.message_cls.from_bytes(read_exact(length))
    raise ProtocolError(f"unreadable kind {kind}")  # pragma: no cover


def _skip(buf: io.BytesIO, read_exact, wire_type: int) -> None:
    if wire_type == _WT_VARINT:
        read_varint(read_exact)
    elif wire_type == _WT_64BIT:
        read_exact(8)
    elif wire_type == _WT_LENGTH:
        length = read_varint(read_exact)
        read_exact(length)
    elif wire_type == _WT_32BIT:
        read_exact(4)
    else:
        raise ProtocolError(f"unknown wire type {wire_type}")
