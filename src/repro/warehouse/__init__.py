"""Columnar "mega-table" warehouse segments (ROADMAP item 1).

Landed client-event hours are compacted into per-hour ``_columnar/``
segment directories beside the raw files: one block-structured file per
column, encoded with dictionary / varint-zigzag / delta codings built on
``repro.thriftlike``'s compact-protocol primitives, each block carrying
a min/max + bloom zone map. The MapReduce layer reads them through
``repro.mapreduce.inputformats.ColumnarInputFormat``, which materializes
only projected columns and prunes blocks by pushed predicates before
touching block bytes -- with byte-identical query answers as the
invariant (raw files stay authoritative; segments are a cache).
"""

from repro.warehouse.predicates import (  # noqa: F401
    EqPredicate,
    EventPatternPredicate,
    InPredicate,
    PatternPredicate,
    RangePredicate,
)
from repro.warehouse.segment import (  # noqa: F401
    ColumnarSegment,
    build_day_segments,
    compact_hour,
    segment_status,
    write_hour_segment,
)
