"""Per-block zone maps: min/max plus a small bloom filter.

A zone map answers "might this block contain value v?" without touching
the block's payload bytes. Min/max handles range predicates; the bloom
filter catches point lookups that fall inside the range but are absent
(a user id between the block's min and max user ids, say). Hashing is
``blake2b``-based so pruning decisions are identical across processes --
Python's builtin ``hash`` is salted per interpreter and must never leak
into an on-disk structure.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional

#: Hash functions per bloom entry (double hashing: h1 + i*h2).
BLOOM_HASHES = 3
#: Bits per distinct value (bloom sizing); floor of 64 bits.
BLOOM_BITS_PER_VALUE = 8
_MIN_BLOOM_BITS = 64


def _bloom_key(value) -> bytes:
    # Type-tagged so 1 and "1" hash differently, mirroring the
    # content-stable partitioner's equality discipline.
    return f"{type(value).__name__}:{value}".encode("utf-8")


def _bloom_indexes(value, bits: int) -> List[int]:
    digest = hashlib.blake2b(_bloom_key(value), digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "big")
    h2 = int.from_bytes(digest[8:], "big") | 1
    return [(h1 + i * h2) % bits for i in range(BLOOM_HASHES)]


@dataclass(frozen=True)
class ZoneMap:
    """Summary of one column block: present-value count, min/max, bloom."""

    count: int
    lo: Optional[object]
    hi: Optional[object]
    bloom: bytes

    @classmethod
    def build(cls, values: Iterable) -> "ZoneMap":
        """Summarize one block's values (Nones excluded from all three
        statistics; mixed-type blocks keep the bloom, drop the range)."""
        present = [v for v in values if v is not None]
        if not present:
            return cls(count=0, lo=None, hi=None, bloom=b"")
        distinct = set(present)
        bits = max(_MIN_BLOOM_BITS, BLOOM_BITS_PER_VALUE * len(distinct))
        field = bytearray(-(-bits // 8))
        for value in distinct:
            for index in _bloom_indexes(value, bits):
                field[index // 8] |= 1 << (index % 8)
        try:
            lo, hi = min(present), max(present)
        except TypeError:  # mixed types: keep the bloom, drop the range
            lo = hi = None
        return cls(count=len(present), lo=lo, hi=hi, bloom=bytes(field))

    # -- pruning queries (all conservative: True means "might match") ----

    def might_contain(self, value) -> bool:
        """False only when the block provably lacks ``value``."""
        if self.count == 0:
            return False
        if value is None:
            return True
        if self.lo is not None:
            try:
                if value < self.lo or value > self.hi:
                    return False
            except TypeError:
                pass
        if self.bloom:
            bits = len(self.bloom) * 8
            for index in _bloom_indexes(value, bits):
                if not self.bloom[index // 8] >> (index % 8) & 1:
                    return False
        return True

    def overlaps(self, lo, hi) -> bool:
        """False only when [lo, hi] provably misses the block's range."""
        if self.count == 0:
            return False
        if self.lo is None:
            return True
        try:
            if lo is not None and self.hi < lo:
                return False
            if hi is not None and self.lo > hi:
                return False
        except TypeError:
            return True
        return True

    # -- manifest (de)serialization --------------------------------------

    def to_json(self) -> dict:
        """JSON-safe manifest form (bloom hex-encoded)."""
        return {"count": self.count, "lo": self.lo, "hi": self.hi,
                "bloom": self.bloom.hex()}

    @classmethod
    def from_json(cls, data: dict) -> "ZoneMap":
        """Rebuild from :meth:`to_json` output."""
        return cls(count=data["count"], lo=data["lo"], hi=data["hi"],
                   bloom=bytes.fromhex(data["bloom"]))
