"""Column-block encodings built on the compact protocol's primitives.

Each block encodes one column's slice of up to ``block_rows`` values into
a self-contained byte payload:

    varint  n                  -- total values in the block (incl. nulls)
    byte    has_nulls          -- 1 if a presence bitmap follows
    [ceil(n/8) bitmap bytes]   -- bit i set => value i is present
    payload                    -- encoding-specific, present values only

Encodings (all reuse ``write_varint``/``zigzag`` from
``repro.thriftlike.protocol``, the same primitives the compact protocol
serializes structs with):

- ``varint``: zigzag varints -- negative and full 64-bit ints welcome;
- ``delta``:  first value, then zigzag varint deltas (timestamps);
- ``plain``:  length-prefixed UTF-8 strings;
- ``dict``:   distinct strings in first-occurrence order, then varint
  indexes into that dictionary;
- ``bool``:   present values bit-packed 8 per byte.
"""

from __future__ import annotations

import io
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.thriftlike.protocol import (
    read_varint,
    unzigzag,
    write_varint,
    zigzag,
)

__all__ = ["ENCODINGS", "encode_block", "decode_block", "dict_block_values"]


def _pack_bits(flags: Sequence[bool]) -> bytes:
    out = bytearray(-(-len(flags) // 8))
    for i, flag in enumerate(flags):
        if flag:
            out[i // 8] |= 1 << (i % 8)
    return bytes(out)


def _unpack_bits(data: bytes, count: int) -> List[bool]:
    return [bool(data[i // 8] >> (i % 8) & 1) for i in range(count)]


def _reader(data: bytes):
    stream = io.BytesIO(data)

    def read_exact(count: int) -> bytes:
        chunk = stream.read(count)
        if len(chunk) != count:
            raise ValueError("truncated column block")
        return chunk

    return read_exact


# -- payload codecs over the *present* values ----------------------------

def _encode_varint(buf: io.BytesIO, values: Sequence[int]) -> None:
    for value in values:
        write_varint(buf, zigzag(value))


def _decode_varint(read_exact, count: int) -> List[int]:
    return [unzigzag(read_varint(read_exact)) for _ in range(count)]


_I64_MASK = (1 << 64) - 1
_I64_SIGN = 1 << 63


def _wrap_i64(value: int) -> int:
    """Two's-complement wrap into [-2**63, 2**63): keeps deltas between
    extreme i64 values inside zigzag's round-trippable domain."""
    return ((value + _I64_SIGN) & _I64_MASK) - _I64_SIGN


def _encode_delta(buf: io.BytesIO, values: Sequence[int]) -> None:
    previous = 0
    for i, value in enumerate(values):
        step = value if i == 0 else _wrap_i64(value - previous)
        write_varint(buf, zigzag(step))
        previous = value


def _decode_delta(read_exact, count: int) -> List[int]:
    out: List[int] = []
    previous = 0
    for i in range(count):
        step = unzigzag(read_varint(read_exact))
        previous = step if i == 0 else _wrap_i64(previous + step)
        out.append(previous)
    return out


def _write_string(buf: io.BytesIO, value: str) -> None:
    raw = value.encode("utf-8")
    write_varint(buf, len(raw))
    buf.write(raw)


def _read_string(read_exact) -> str:
    length = read_varint(read_exact)
    return read_exact(length).decode("utf-8")


def _encode_plain(buf: io.BytesIO, values: Sequence[str]) -> None:
    for value in values:
        _write_string(buf, value)


def _decode_plain(read_exact, count: int) -> List[str]:
    return [_read_string(read_exact) for _ in range(count)]


def _encode_dict(buf: io.BytesIO, values: Sequence[str]) -> None:
    symbols: Dict[str, int] = {}
    for value in values:
        if value not in symbols:
            symbols[value] = len(symbols)
    write_varint(buf, len(symbols))
    for value in symbols:
        _write_string(buf, value)
    for value in values:
        write_varint(buf, symbols[value])


def _decode_dict(read_exact, count: int) -> List[str]:
    size = read_varint(read_exact)
    table = [_read_string(read_exact) for _ in range(size)]
    return [table[read_varint(read_exact)] for _ in range(count)]


def _encode_bool(buf: io.BytesIO, values: Sequence[bool]) -> None:
    buf.write(_pack_bits([bool(v) for v in values]))


def _decode_bool(read_exact, count: int) -> List[bool]:
    return _unpack_bits(read_exact(-(-count // 8)), count)


_Codec = Tuple[Callable[..., None], Callable[..., list]]

ENCODINGS: Dict[str, _Codec] = {
    "varint": (_encode_varint, _decode_varint),
    "delta": (_encode_delta, _decode_delta),
    "plain": (_encode_plain, _decode_plain),
    "dict": (_encode_dict, _decode_dict),
    "bool": (_encode_bool, _decode_bool),
}


# -- block layer ---------------------------------------------------------

def encode_block(encoding: str, values: Sequence) -> bytes:
    """Encode one column block (``None`` entries become presence-bitmap
    nulls) into a self-contained payload."""
    encode, _ = ENCODINGS[encoding]
    buf = io.BytesIO()
    write_varint(buf, len(values))
    present = [value is not None for value in values]
    if all(present):
        buf.write(b"\x00")
        compact = values
    else:
        buf.write(b"\x01")
        buf.write(_pack_bits(present))
        compact = [value for value in values if value is not None]
    encode(buf, compact)
    return buf.getvalue()


def decode_block(encoding: str, data: bytes) -> list:
    """Inverse of :func:`encode_block`; nulls come back as ``None``."""
    _, decode = ENCODINGS[encoding]
    read_exact = _reader(data)
    count = read_varint(read_exact)
    has_nulls = read_exact(1) != b"\x00"
    if not has_nulls:
        return decode(read_exact, count)
    present = _unpack_bits(read_exact(-(-count // 8)), count)
    compact = iter(decode(read_exact, sum(present)))
    return [next(compact) if flag else None for flag in present]


def dict_block_values(data: bytes) -> Optional[List[str]]:
    """The dictionary of a ``dict``-encoded block, without decoding the
    value indexes -- lets predicate checks peek at block vocabulary."""
    read_exact = _reader(data)
    count = read_varint(read_exact)
    if read_exact(1) != b"\x00":
        read_exact(-(-count // 8))
    size = read_varint(read_exact)
    return [_read_string(read_exact) for _ in range(size)]
