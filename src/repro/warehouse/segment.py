"""Per-hour columnar segments: write, commit, discover, compact.

A segment is a ``_columnar/`` directory beside one hour's raw files:

    .../HH/_columnar/manifest.json     -- layout, zone maps, sources
    .../HH/_columnar/<column>.col      -- concatenated block payloads

``manifest.json`` records, per column, the block list (rows / offset /
length / encoding / zone map) and optionally the column's complete
sorted distinct values (cardinality permitting -- what lets glob
predicates expand to exact terms); and per *source* raw file the row
count, stored length, and HDFS block count at compaction time. Sources
are the correctness anchor: a reader only trusts the segment for a raw
file whose live length/block-count still match the recording, so data
that lands after compaction is scanned raw (speed lost, rows never).

Commit is write-to-``_columnar.tmp`` then rename -- the same atomic
pattern Elephant Twin's ``_index`` partitions use, with injectable
crash sites between the steps.
"""

from __future__ import annotations

import json
import posixpath
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.event import CLIENT_EVENTS_CATEGORY, ClientEvent
from repro.faults.injector import KIND_CRASH, InjectedCrash, fault_point
from repro.hdfs.layout import (
    COLUMNAR_SUBDIR,
    data_files,
    day_path,
    hour_columnar_dir,
    parse_hour_path,
)
from repro.hdfs.namenode import HDFS
from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry
from repro.thriftlike.codegen import ThriftFileFormat
from repro.warehouse.encodings import decode_block, encode_block
from repro.warehouse.zonemap import ZoneMap

FORMAT_VERSION = 1
MANIFEST_FILE = "manifest.json"
#: Rows per column block (the vectorized batch unit).
DEFAULT_BLOCK_ROWS = 512
#: Record a column's complete distinct-value list only up to this
#: cardinality; beyond it, pattern predicates abstain for the column.
VALUES_CARDINALITY_CAP = 4096
#: Storage codec for column files. Offsets/lengths in the manifest and
#: the ``columnar_bytes_decoded_total`` accounting both refer to the
#: *uncompressed* encoding stream.
COLUMN_FILE_CODEC = "zlib"

#: Segment status values reported by :func:`segment_status`.
STATUS_FRESH = "fresh"
STATUS_STALE = "stale"
STATUS_MISSING = "missing"

_EVENT_FORMAT = ThriftFileFormat(ClientEvent)

#: Column order mirrors the struct's field order.
COLUMN_ORDER: Tuple[str, ...] = tuple(
    spec.name for spec in ClientEvent.FIELDS)

#: Per-column kind, driving encoding choice and value representation.
#: ``json`` columns hold an order-preserving JSON rendering of the map
#: field so reconstruction is byte-identical under ``to_bytes``.
COLUMN_KINDS: Dict[str, str] = {
    "event_initiator": "int",
    "event_name": "str",
    "user_id": "int",
    "session_id": "str",
    "ip": "str",
    "timestamp": "int-delta",
    "event_details": "json",
    "country": "str",
    "logged_in": "bool",
}


def tmp_columnar_dir(hour_dir: str) -> str:
    """Build-time staging directory, renamed into place on commit."""
    return f"{hour_dir}/{COLUMNAR_SUBDIR}.tmp"


def _crash_point(site: str) -> None:
    """Injectable crash between build steps (``warehouse.segment.*``)."""
    rule = fault_point(site)
    if rule is not None and rule.kind == KIND_CRASH:
        raise InjectedCrash(f"segment build crashed at {site}")


def _encode_column(kind: str, values: Sequence) -> Tuple[str, bytes]:
    """Pick an encoding for one block of one column and encode it."""
    if kind in ("int", "int-delta"):
        encoding = "delta" if kind == "int-delta" else "varint"
        return encoding, encode_block(encoding, values)
    if kind == "bool":
        return "bool", encode_block("bool", values)
    present = [v for v in values if v is not None]
    if present and 2 * len(set(present)) <= len(present):
        return "dict", encode_block("dict", values)
    return "plain", encode_block("plain", values)


def _details_to_json(details: Dict[str, str]) -> str:
    # Insertion order preserved: the map round-trips to the exact dict,
    # so reconstructed events serialize byte-identically.
    return json.dumps(details or {}, ensure_ascii=False,
                      separators=(",", ":"))


def _column_array(events: Sequence[ClientEvent], name: str) -> list:
    if COLUMN_KINDS[name] == "json":
        return [_details_to_json(getattr(e, name)) for e in events]
    return [getattr(e, name) for e in events]


@dataclass(frozen=True)
class SourceFile:
    """One raw file a segment was compacted from, as recorded at build."""

    path: str
    rows: int
    length: int
    block_count: int


@dataclass(frozen=True)
class ColumnBlock:
    """One block of one column inside its ``.col`` file."""

    rows: int
    offset: int
    length: int
    encoding: str
    zone: ZoneMap


@dataclass
class ColumnMeta:
    """Manifest entry for one column."""

    kind: str
    file: str
    blocks: List[ColumnBlock] = field(default_factory=list)
    #: Complete sorted distinct non-null values (low cardinality only).
    values: Optional[List] = None


class ColumnarSegment:
    """A committed segment: manifest plus lazily-decoded column blocks.

    Decoded blocks and raw column files are cached per process; caches
    are dropped on pickling so shipping a segment into a worker ships
    metadata, not decoded data.
    """

    def __init__(self, fs: HDFS, directory: str, manifest: dict) -> None:
        self._fs = fs
        self.directory = directory
        self.rows: int = manifest["rows"]
        self.block_rows: int = manifest["block_rows"]
        self.sources: List[SourceFile] = [
            SourceFile(**src) for src in manifest["sources"]]
        self.columns: Dict[str, ColumnMeta] = {}
        for name, meta in manifest["columns"].items():
            self.columns[name] = ColumnMeta(
                kind=meta["kind"], file=meta["file"],
                blocks=[ColumnBlock(rows=b["rows"], offset=b["offset"],
                                    length=b["length"],
                                    encoding=b["encoding"],
                                    zone=ZoneMap.from_json(b["zone"]))
                        for b in meta["blocks"]],
                values=meta.get("values"))
        self._file_cache: Dict[str, bytes] = {}
        self._block_cache: Dict[Tuple[str, int], list] = {}

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_file_cache"] = {}
        state["_block_cache"] = {}
        return state

    @classmethod
    def load(cls, fs: HDFS, hour_dir: str) -> Optional["ColumnarSegment"]:
        """The committed segment beside ``hour_dir`` (None if absent).

        A half-written ``_columnar.tmp`` is never consulted.
        """
        directory = hour_columnar_dir(hour_dir)
        manifest_path = f"{directory}/{MANIFEST_FILE}"
        if not fs.is_file(manifest_path):
            return None
        manifest = json.loads(fs.open_bytes(manifest_path).decode("utf-8"))
        if manifest.get("version") != FORMAT_VERSION:
            return None
        return cls(fs, directory, manifest)

    # -- geometry --------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Block count: ``ceil(rows / block_rows)``."""
        return -(-self.rows // self.block_rows) if self.rows else 0

    def block_range(self, block: int) -> Tuple[int, int]:
        """Global row range ``[start, end)`` of one block."""
        start = block * self.block_rows
        return start, min(start + self.block_rows, self.rows)

    def source_range(self, path: str) -> Optional[Tuple[int, int]]:
        """Global row range one recorded source file contributed."""
        start = 0
        for source in self.sources:
            if source.path == path:
                return start, start + source.rows
            start += source.rows
        return None

    def source(self, path: str) -> Optional[SourceFile]:
        """The recorded source-file entry for ``path``, if compacted."""
        for src in self.sources:
            if src.path == path:
                return src
        return None

    def covers(self, path: str) -> bool:
        """True when the live file still matches the compacted recording
        -- the precondition for serving its rows from the segment."""
        source = self.source(path)
        if source is None:
            return False
        try:
            status = self._fs.status(path)
        except Exception:
            return False
        return (status.length == source.length
                and status.block_count == source.block_count)

    def split_row_range(self, path: str,
                        split_index: int) -> Optional[Tuple[int, int]]:
        """Global row range of one raw-file input split, re-derived from
        the recorded row/block counts with FileInputFormat's arithmetic."""
        source = self.source(path)
        base = self.source_range(path)
        if source is None or base is None:
            return None
        blocks = max(source.block_count, 1)
        per_split = -(-source.rows // blocks) if source.rows else 0
        lo = min(split_index * per_split, source.rows)
        hi = min(lo + per_split, source.rows)
        return base[0] + lo, base[0] + hi

    # -- column access ---------------------------------------------------

    def column_values(self, name: str) -> Optional[List]:
        """The column's complete sorted distinct values, if recorded."""
        meta = self.columns.get(name)
        return meta.values if meta is not None else None

    def zone(self, name: str, block: int) -> ZoneMap:
        """One block's zone map for column ``name``."""
        return self.columns[name].blocks[block].zone

    def block_bytes(self, block: int,
                    projection: Optional[Iterable[str]] = None) -> int:
        """Encoded (uncompressed) bytes of one block's projected columns
        -- the unit both pruning and decode accounting are measured in."""
        names = self._projected(projection)
        return sum(self.columns[n].blocks[block].length for n in names)

    def _projected(self, projection: Optional[Iterable[str]]) -> List[str]:
        if projection is None:
            return [n for n in COLUMN_ORDER if n in self.columns]
        wanted = set(projection)
        return [n for n in COLUMN_ORDER if n in self.columns and n in wanted]

    def column_block(self, name: str, block: int) -> list:
        """Decode (with caching) one block of one column.

        Decoded volume lands in ``columnar_bytes_decoded_total`` by
        column -- the metric BENCH_e20 compares against raw-scan volume.
        """
        key = (name, block)
        cached = self._block_cache.get(key)
        if cached is not None:
            return cached
        meta = self.columns[name]
        raw = self._file_cache.get(name)
        if raw is None:
            raw = self._fs.open_bytes(f"{self.directory}/{meta.file}")
            self._file_cache[name] = raw
        info = meta.blocks[block]
        values = decode_block(info.encoding,
                              raw[info.offset:info.offset + info.length])
        get_default_registry().counter(
            obs_names.COLUMNAR_BYTES_DECODED, column=name).inc(info.length)
        self._block_cache[key] = values
        return values

    def materialize(self, block: int, lo: int, hi: int,
                    projection: Optional[Iterable[str]] = None) -> list:
        """Rows ``[lo, hi)`` (global row ids) of one block.

        Full projection reconstructs real :class:`ClientEvent` records
        (byte-identical under ``to_bytes``); a narrower projection
        yields :class:`ProjectedEvent` views carrying only the projected
        columns.
        """
        names = self._projected(projection)
        start, end = self.block_range(block)
        lo, hi = max(lo, start), min(hi, end)
        if hi <= lo:
            return []
        columns = {}
        for name in names:
            values = self.column_block(name, block)[lo - start:hi - start]
            if COLUMN_KINDS.get(name) == "json":
                values = [json.loads(v) if v is not None else None
                          for v in values]
            columns[name] = values
        full = len(names) == len(COLUMN_ORDER)
        rows = []
        for i in range(hi - lo):
            if full:
                rows.append(ClientEvent(
                    **{name: columns[name][i] for name in names}))
            else:
                row = ProjectedEvent()
                for name in names:
                    setattr(row, name, columns[name][i])
                rows.append(row)
        return rows


class ProjectedEvent:
    """A client-event row carrying only the projected columns.

    Reading an unprojected column raises ``AttributeError`` -- loudly,
    because a query touching a column its plan did not declare is a
    planning bug, not a data condition.
    """

    __slots__ = COLUMN_ORDER

    def __getstate__(self) -> dict:
        return {name: getattr(self, name) for name in COLUMN_ORDER
                if hasattr(self, name)}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self.__getstate__().items())
        return f"ProjectedEvent({parts})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProjectedEvent):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.__getstate__().items(),
                                 key=lambda kv: kv[0])))


# -- writing -------------------------------------------------------------

def write_hour_segment(fs: HDFS, hour_dir: str,
                       events: Sequence[ClientEvent],
                       sources: Sequence[Tuple[str, int]],
                       block_rows: int = DEFAULT_BLOCK_ROWS,
                       built_at_ms: int = 0) -> Optional[ColumnarSegment]:
    """Encode ``events`` into a committed segment beside ``hour_dir``.

    ``sources`` lists ``(raw file path, row count)`` in concatenation
    order; live length/block-count are recorded per file so readers can
    detect post-compaction growth. Commit is atomic via ``_columnar.tmp``
    rename. Returns the committed segment (None for an empty hour).
    """
    if not events:
        return None
    started = time.perf_counter()
    tmp = tmp_columnar_dir(hour_dir)
    final = hour_columnar_dir(hour_dir)
    if fs.exists(tmp):
        fs.delete(tmp, recursive=True)

    columns_manifest: Dict[str, dict] = {}
    _crash_point("warehouse.segment.pre_columns")
    for name in COLUMN_ORDER:
        kind = COLUMN_KINDS[name]
        array = _column_array(events, name)
        payload = bytearray()
        blocks = []
        for lo in range(0, len(array), block_rows):
            chunk = array[lo:lo + block_rows]
            encoding, data = _encode_column(kind, chunk)
            blocks.append({
                "rows": len(chunk),
                "offset": len(payload),
                "length": len(data),
                "encoding": encoding,
                "zone": ZoneMap.build(chunk).to_json(),
            })
            payload.extend(data)
        distinct = {v for v in array if v is not None}
        values = (sorted(distinct)
                  if kind in ("str", "json")
                  and len(distinct) <= VALUES_CARDINALITY_CAP else None)
        columns_manifest[name] = {
            "kind": kind,
            "file": f"{name}.col",
            "blocks": blocks,
            "values": values,
        }
        fs.create(f"{tmp}/{name}.col", bytes(payload),
                  codec=COLUMN_FILE_CODEC, overwrite=True)

    source_meta = []
    for path, rows in sources:
        status = fs.status(path)
        source_meta.append({"path": path, "rows": rows,
                            "length": status.length,
                            "block_count": status.block_count})
    manifest = {
        "version": FORMAT_VERSION,
        "rows": len(events),
        "block_rows": block_rows,
        "built_at_ms": built_at_ms,
        "sources": source_meta,
        "columns": columns_manifest,
    }
    _crash_point("warehouse.segment.pre_manifest")
    fs.create(f"{tmp}/{MANIFEST_FILE}",
              json.dumps(manifest, sort_keys=True).encode("utf-8"),
              overwrite=True)
    _crash_point("warehouse.segment.pre_commit")
    if fs.exists(final):
        fs.delete(final, recursive=True)
    _crash_point("warehouse.segment.pre_rename")
    fs.rename(tmp, final)

    hour = parse_hour_path(hour_dir)
    category = hour.category if hour else "adhoc"
    registry = get_default_registry()
    registry.histogram(obs_names.COLUMNAR_ENCODE_SECONDS,
                       category=category).observe(
        time.perf_counter() - started)
    registry.counter(obs_names.COLUMNAR_SEGMENTS_BUILT,
                     category=category).inc()
    return ColumnarSegment.load(fs, hour_dir)


def compact_hour(fs: HDFS, hour_dir: str,
                 block_rows: int = DEFAULT_BLOCK_ROWS,
                 built_at_ms: int = 0) -> Optional[ColumnarSegment]:
    """Decode one hour's raw files and compact them into a segment."""
    paths = data_files(fs, hour_dir)
    if not paths:
        return None
    events: List[ClientEvent] = []
    sources: List[Tuple[str, int]] = []
    for path in paths:
        records = _EVENT_FORMAT.decode(fs.open_bytes(path))
        events.extend(records)
        sources.append((path, len(records)))
    return write_hour_segment(fs, hour_dir, events, sources,
                              block_rows=block_rows,
                              built_at_ms=built_at_ms)


def segment_status(fs: HDFS, hour_dir: str) -> str:
    """``fresh`` / ``stale`` / ``missing`` freshness of one hour's
    segment against the live raw files (same contract as index
    partitions: anything but ``fresh`` means raw files are scanned)."""
    segment = ColumnarSegment.load(fs, hour_dir)
    if segment is None:
        return STATUS_MISSING
    live = data_files(fs, hour_dir)
    if live != [source.path for source in segment.sources]:
        return STATUS_STALE
    if not all(segment.covers(path) for path in live):
        return STATUS_STALE
    return STATUS_FRESH


@dataclass
class DaySegmentBuild:
    """Report of one :func:`build_day_segments` run."""

    category: str
    date: Tuple[int, int, int]
    built: List[str] = field(default_factory=list)
    skipped_fresh: List[str] = field(default_factory=list)
    rows_compacted: int = 0
    wall_time_s: float = 0.0


def hour_dirs_of_day(fs: HDFS, category: str, year: int, month: int,
                     day: int) -> List[str]:
    """Hour directories of one day that hold raw data files."""
    return sorted({posixpath.dirname(path) for path in
                   data_files(fs, day_path(category, year, month, day))})


def build_day_segments(fs: HDFS, year: int, month: int, day: int,
                       category: str = CLIENT_EVENTS_CATEGORY,
                       force: bool = False,
                       block_rows: int = DEFAULT_BLOCK_ROWS,
                       built_at_ms: int = 0) -> DaySegmentBuild:
    """Incrementally compact a day's hours into columnar segments.

    Hours whose segment still matches the live raw files are skipped
    unless ``force`` -- one new hour landing compacts one directory,
    not the day (mirroring the index build's cadence).
    """
    started = time.perf_counter()
    report = DaySegmentBuild(category=category, date=(year, month, day))
    for directory in hour_dirs_of_day(fs, category, year, month, day):
        if not force and segment_status(fs, directory) == STATUS_FRESH:
            report.skipped_fresh.append(directory)
            continue
        segment = compact_hour(fs, directory, block_rows=block_rows,
                               built_at_ms=built_at_ms)
        if segment is not None:
            report.built.append(directory)
            report.rows_compacted += segment.rows
    report.wall_time_s = time.perf_counter() - started
    return report


def day_columnar_input(fs: HDFS, category: str, year: int, month: int,
                       day: int, projection=None, predicates=(),
                       decode=None):
    """A :class:`ColumnarInputFormat` over one day's warehouse files, or
    None when the day holds no data or no hour has a committed segment
    (callers then fall back to their raw input format unchanged)."""
    from repro.mapreduce.inputformats import (
        ColumnarInputFormat,
        FileInputFormat,
    )

    paths = data_files(fs, day_path(category, year, month, day))
    if not paths:
        return None
    hour_dirs = sorted({posixpath.dirname(path) for path in paths})
    if not any(ColumnarSegment.load(fs, d) is not None for d in hour_dirs):
        return None
    base = FileInputFormat(fs, paths, decode or _EVENT_FORMAT.decode)
    return ColumnarInputFormat(fs, base, projection=projection,
                               predicates=predicates)
