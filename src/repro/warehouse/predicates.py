"""Pushed-down column predicates evaluated against zone maps.

These are *hints*, never filters: a predicate may only prune a block it
can prove empty; every surviving block's rows still flow through the
query's own row-level filters, so a too-weak predicate costs speed but
never correctness (the same contract Elephant Twin's index pruning
keeps at the split level). All predicate classes are frozen dataclasses
so they pickle cleanly into process-pool workers.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.warehouse.zonemap import ZoneMap


@dataclass(frozen=True)
class EqPredicate:
    """``column == value``."""

    column: str
    value: object

    def block_may_match(self, zone: ZoneMap,
                        column_values: Optional[Sequence] = None) -> bool:
        """False only when the zone map proves ``value`` absent."""
        return zone.might_contain(self.value)


@dataclass(frozen=True)
class InPredicate:
    """``column in values``."""

    column: str
    values: Tuple[object, ...]

    def block_may_match(self, zone: ZoneMap,
                        column_values: Optional[Sequence] = None) -> bool:
        """False only when the zone map proves every value absent."""
        return any(zone.might_contain(v) for v in self.values)


@dataclass(frozen=True)
class RangePredicate:
    """``lo <= column <= hi`` (either bound may be None)."""

    column: str
    lo: Optional[object] = None
    hi: Optional[object] = None

    def block_may_match(self, zone: ZoneMap,
                        column_values: Optional[Sequence] = None) -> bool:
        """False only when the block's min/max misses ``[lo, hi]``."""
        return zone.overlaps(self.lo, self.hi)


class EventPatternPredicate:
    """``EventPattern(pattern).matches(column)`` -- the six-level
    event-name glob grammar from ``repro.core.names``.

    Expansion works like :class:`PatternPredicate` but with the event
    grammar's matcher, so pushdown agrees exactly with the row filter
    it rides along (``EventNameFilter``). Picklable: the compiled
    matcher is rebuilt on unpickle.
    """

    def __init__(self, pattern: str, column: str = "event_name") -> None:
        from repro.core.names import EventPattern

        self.pattern = pattern
        self.column = column
        self._matcher = EventPattern(pattern)

    def expand(self,
               column_values: Optional[Sequence[str]]) -> Optional[List[str]]:
        """The segment values the pattern matches; None = cannot tell."""
        if column_values is None:
            return None
        return [v for v in column_values
                if isinstance(v, str) and self._matcher.matches(v)]

    def block_may_match(self, zone: ZoneMap,
                        column_values: Optional[Sequence] = None) -> bool:
        """Abstain without a value list; else test the expansion."""
        terms = self.expand(column_values)
        if terms is None:
            return True
        return any(zone.might_contain(t) for t in terms)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_matcher"]
        return state

    def __setstate__(self, state: dict) -> None:
        from repro.core.names import EventPattern

        self.__dict__.update(state)
        self._matcher = EventPattern(self.pattern)

    def __repr__(self) -> str:
        return (f"EventPatternPredicate({self.pattern!r}, "
                f"column={self.column!r})")


@dataclass(frozen=True)
class PatternPredicate:
    """``fnmatch(column, pattern)`` -- the event-name glob family.

    A glob cannot be tested against min/max or a bloom directly, so it
    first expands against the *segment's* complete sorted value list for
    the column (recorded at write time when cardinality permits). With
    the expansion in hand it behaves like :class:`InPredicate`; without
    one (high-cardinality column) it abstains.
    """

    column: str
    pattern: str

    def expand(self,
               column_values: Optional[Sequence[str]]) -> Optional[List[str]]:
        """The segment values the glob matches; None = cannot tell."""
        if column_values is None:
            return None
        matcher = re.compile(fnmatch.translate(self.pattern))
        return [v for v in column_values
                if isinstance(v, str) and matcher.match(v)]

    def block_may_match(self, zone: ZoneMap,
                        column_values: Optional[Sequence] = None) -> bool:
        """Abstain without a value list; else test the expansion."""
        terms = self.expand(column_values)
        if terms is None:
            return True
        # A complete value list that yields zero matches proves *every*
        # block empty for this pattern; otherwise test the expansion.
        return any(zone.might_contain(t) for t in terms)
