"""Reproduction of Twitter's unified logging infrastructure (VLDB 2012).

The package is organised as a stack:

- :mod:`repro.thriftlike` -- Thrift-style serialization (binary and compact
  protocols, declarative structs, schema evolution).
- :mod:`repro.hdfs` -- an in-memory HDFS: namespace, files, blocks, codecs.
- :mod:`repro.scribe` -- Scribe daemons/aggregators plus a simulated
  ZooKeeper used for aggregator discovery and failover.
- :mod:`repro.logmover` -- the staging-to-warehouse log mover pipeline.
- :mod:`repro.mapreduce` -- a local MapReduce engine with exact counters.
- :mod:`repro.pig` -- a small Pig-like dataflow layer compiled onto it.
- :mod:`repro.oink` -- the workflow manager and automatic rollup jobs.
- :mod:`repro.core` -- the paper's contribution: unified client events and
  materialized session sequences.
- :mod:`repro.legacy` -- application-specific logging baselines.
- :mod:`repro.analytics` -- counting, funnels, CTR/FTR, dashboards.
- :mod:`repro.nlp` -- n-gram user modeling, collocations, alignment.
- :mod:`repro.elephanttwin` -- block-level indexing with pushdown.
- :mod:`repro.workload` -- seeded synthetic user-behavior generation.
- :mod:`repro.obs` -- the observability layer: metrics registry,
  pipeline tracing, and Prometheus-style exposition across every stage.
"""

from repro.core.event import ClientEvent, EventInitiator
from repro.core.names import EventName
from repro.core.dictionary import EventDictionary
from repro.core.sessionizer import Sessionizer, Session
from repro.core.sequences import SessionSequenceRecord
from repro.core.builder import SessionSequenceBuilder

__version__ = "1.0.0"

__all__ = [
    "ClientEvent",
    "EventInitiator",
    "EventName",
    "EventDictionary",
    "Sessionizer",
    "Session",
    "SessionSequenceRecord",
    "SessionSequenceBuilder",
    "__version__",
]
