"""Funnel analytics over session sequences (§5.3).

"we have created a UDF for defining funnels:

    define Funnel ClientEventsFunnel('$EVENT1', '$EVENT2', ...);

... the output might be something like

    (0, 490123)
    (1, 297071)
    ...

which tells us how many of the examined sessions entered the funnel,
completed the first stage, etc. This particular UDF translates the funnel
into a regular expression match over the session sequence string."
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.dictionary import EventDictionary
from repro.core.sequences import SessionSequenceRecord
from repro.hdfs.namenode import HDFS
from repro.mapreduce.jobtracker import JobTracker
from repro.pig.loaders import SessionSequencesLoader
from repro.pig.relation import PigServer
from repro.pig.udf import EvalFunc


class ClientEventsFunnel(EvalFunc):
    """Returns how many funnel stages a session completed, in order.

    A session completes stage k when symbols matching stages 1..k appear
    as a subsequence of its sequence string. The check is a single regular
    expression per prefix -- ``S1.*S2.*...Sk`` over symbol classes --
    exactly the translation the paper describes; a non-greedy scan keeps
    it linear in practice.
    """

    def __init__(self, stage_patterns: Sequence[str],
                 dictionary: EventDictionary) -> None:
        if not stage_patterns:
            raise ValueError("funnel needs at least one stage")
        self.stage_patterns = list(stage_patterns)
        classes = [dictionary.symbol_class(p) for p in stage_patterns]
        self._prefix_regexes = [
            re.compile(".*?".join(classes[:k]), re.DOTALL)
            for k in range(1, len(classes) + 1)
        ]

    def exec(self, record: Any) -> int:  # noqa: A003
        """Number of funnel stages this session completed, in order."""
        sequence = (record.session_sequence
                    if isinstance(record, SessionSequenceRecord) else record)
        completed = 0
        for regex in self._prefix_regexes:
            if regex.search(sequence):
                completed += 1
            else:
                break
        return completed


@dataclass
class FunnelReport:
    """Per-stage counts in the paper's output shape."""

    stage_patterns: List[str]
    entered: int                     # sessions examined
    stage_counts: List[int]          # sessions completing stage 1..N

    def rows(self) -> List[Tuple[int, int]]:
        """The paper's ``(stage, count)`` rows; stage 0 = entered."""
        return [(0, self.entered)] + [
            (i + 1, count) for i, count in enumerate(self.stage_counts)
        ]

    def abandonment(self) -> List[float]:
        """Fraction lost at each step (entered -> stage1 -> ... -> stageN)."""
        out: List[float] = []
        previous = self.entered
        for count in self.stage_counts:
            out.append(0.0 if previous == 0 else 1.0 - count / previous)
            previous = count
        return out

    @property
    def completion_rate(self) -> float:
        """Fraction of entered sessions completing every stage."""
        if self.entered == 0:
            return 0.0
        return self.stage_counts[-1] / self.entered


def run_funnel(warehouse: HDFS, date: Tuple[int, int, int],
               stage_patterns: Sequence[str], dictionary: EventDictionary,
               tracker: Optional[JobTracker] = None,
               unique_users: bool = False) -> FunnelReport:
    """Execute the funnel script over one day's session sequences.

    With ``unique_users`` counts are per user, not per session:
    "Translating these figures into the number of users ... is simply a
    matter of applying the unique operator in Pig prior to summing up the
    per-stage counts."
    """
    pig = PigServer(tracker)
    funnel = ClientEventsFunnel(stage_patterns, dictionary)
    year, month, day = date
    raw = pig.load(SessionSequencesLoader(warehouse, year, month, day))
    evaluated = raw.foreach(lambda r: (r.user_id, funnel(r)),
                            description="ClientEventsFunnel")
    if unique_users:
        # Keep each user's deepest funnel penetration.
        evaluated = (
            evaluated.group_by(lambda kv: kv[0], description="by_user")
            .foreach(lambda g: (g["group"], max(v for __, v in g["bag"])),
                     description="deepest_stage")
        )
    rows = evaluated.dump()
    num_stages = len(stage_patterns)
    entered = len(rows)
    stage_counts = [
        sum(1 for __, depth in rows if depth >= k)
        for k in range(1, num_stages + 1)
    ]
    return FunnelReport(stage_patterns=list(stage_patterns),
                        entered=entered, stage_counts=stage_counts)
