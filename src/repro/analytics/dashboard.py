"""BirdBrain: the analytical dashboard feed (§5.1).

"A series of daily jobs generate summary statistics, which feed into our
analytical dashboard called BirdBrain. The dashboard displays the number
of user sessions daily and plotted as a function of time ... We also
provide the ability to drill down by client type (i.e., twitter.com site,
iPhone, Android, etc.) and by (bucketed) session duration."

Besides the paper's session statistics, the dashboard exposes a
*pipeline-health panel* fed from the observability registry: delivery
success rate, daemon backlog, and end-to-end latency percentiles -- the
operational view of §2's "robust with respect to transient failures".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.dictionary import EventDictionary
from repro.core.sequences import SessionSequenceRecord
from repro.obs import names as obs_names
from repro.obs.metrics import MetricsRegistry, get_default_registry

#: Session-duration buckets in seconds (right-open; last is unbounded).
DEFAULT_DURATION_BUCKETS = (0, 30, 60, 300, 900, 1800)

Date = Tuple[int, int, int]


@dataclass
class DailySummary:
    """One day's summary statistics as shown on the dashboard."""

    date: Date
    sessions: int
    events: int
    distinct_users: int
    sessions_by_client: Dict[str, int]
    duration_histogram: Dict[str, int]
    mean_session_events: float

    @property
    def date_str(self) -> str:
        """The date as ``YYYY-MM-DD``."""
        return f"{self.date[0]:04d}-{self.date[1]:02d}-{self.date[2]:02d}"


def bucket_label(duration_s: int, buckets: Sequence[int]) -> str:
    """Human-readable label of the bucket containing ``duration_s``."""
    for low, high in zip(buckets, list(buckets[1:]) + [None]):
        if high is None or duration_s < high:
            if duration_s >= low:
                return f"{low}-{high}s" if high is not None else f"{low}s+"
    return f"{buckets[0]}-{buckets[1]}s"  # durations below the first edge


def summarize_day(date: Date,
                  records: Iterable[SessionSequenceRecord],
                  dictionary: EventDictionary,
                  buckets: Sequence[int] = DEFAULT_DURATION_BUCKETS
                  ) -> DailySummary:
    """Compute one day's dashboard summary from session sequences.

    Everything here needs only the compact store -- "due to their compact
    size, statistics about sessions are easy to compute from the session
    sequences".
    """
    sessions = 0
    events = 0
    users = set()
    by_client: Counter = Counter()
    histogram: Counter = Counter()
    for record in records:
        sessions += 1
        events += record.num_events
        users.add(record.user_id)
        client = record.client(dictionary) or "unknown"
        by_client[client] += 1
        histogram[bucket_label(record.duration, buckets)] += 1
    return DailySummary(
        date=date,
        sessions=sessions,
        events=events,
        distinct_users=len(users),
        sessions_by_client=dict(by_client),
        duration_histogram=dict(histogram),
        mean_session_events=(events / sessions) if sessions else 0.0,
    )


@dataclass
class PipelineHealth:
    """The pipeline-health panel: delivery, backlog, latency at a glance."""

    accepted: int
    sent: int
    staged: int
    landed: int
    dropped: int
    lost_in_crash: int
    backlog: int
    check_failures: int
    latency_count: int
    latency_p50_ms: Optional[float]
    latency_p95_ms: Optional[float]
    latency_p99_ms: Optional[float]
    # Continuous-monitoring section (zero until a PipelineMonitor runs
    # against the registry; defaults keep older callers constructing the
    # panel positionally-by-name working unchanged).
    alerts_active: int = 0
    alerts_fired: int = 0
    alerts_resolved: int = 0
    audits_run: int = 0
    hours_by_verdict: Dict[str, int] = None  # type: ignore[assignment]
    # Incremental sessionization / continuously-updated rollups section
    # (zero unless a streaming pipeline runs an IncrementalPipeline).
    sessions_open: int = 0
    sessions_closed: int = 0
    sessions_reopened: int = 0
    rollup_deltas_applied: int = 0
    rollup_corrections: int = 0
    rollup_correction_lag_p95_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.hours_by_verdict is None:
            self.hours_by_verdict = {}

    @property
    def delivery_rate(self) -> Optional[float]:
        """Fraction of accepted entries that landed in the warehouse."""
        if self.accepted == 0:
            return None
        return self.landed / self.accepted

    @property
    def monitored(self) -> bool:
        """True when continuous monitoring has run against this registry."""
        return bool(self.audits_run or self.alerts_fired
                    or self.alerts_active)

    @property
    def incremental(self) -> bool:
        """True when an incremental pipeline has reported activity."""
        return bool(self.sessions_open or self.sessions_closed
                    or self.rollup_deltas_applied)


def pipeline_health(registry: Optional[MetricsRegistry] = None
                    ) -> PipelineHealth:
    """Compute the pipeline-health panel from the metrics registry.

    Sums each delivery metric across its label sets (hosts, aggregators,
    categories) and merges the per-category end-to-end latency histograms
    into one percentile view.
    """
    if registry is None:
        registry = get_default_registry()
    latency = registry.merged_histogram(obs_names.PIPELINE_DELIVERY_LATENCY)
    correction_lag = registry.merged_histogram(
        obs_names.ROLLUP_CORRECTION_LAG)
    hours_by_verdict = {
        labels.get("verdict", ""): int(metric.value)
        for labels, metric in registry.series(obs_names.QUALITY_HOURS)
        if int(metric.value)
    }
    return PipelineHealth(
        accepted=int(registry.total(obs_names.DAEMON_ACCEPTED)),
        sent=int(registry.total(obs_names.DAEMON_SENT)),
        staged=int(registry.total(obs_names.AGGREGATOR_WRITTEN)),
        landed=int(registry.total(obs_names.MOVER_MESSAGES_MOVED)),
        dropped=int(registry.total(obs_names.DAEMON_DROPPED)),
        lost_in_crash=int(registry.total(obs_names.AGGREGATOR_LOST_IN_CRASH)),
        backlog=int(registry.total(obs_names.DAEMON_BUFFER_DEPTH)),
        check_failures=int(registry.total(obs_names.MOVER_CHECK_FAILURES)),
        latency_count=latency.count,
        latency_p50_ms=latency.percentile(0.5),
        latency_p95_ms=latency.percentile(0.95),
        latency_p99_ms=latency.percentile(0.99),
        alerts_active=int(registry.total(obs_names.ALERTS_ACTIVE)),
        alerts_fired=int(registry.total(obs_names.ALERTS_FIRED)),
        alerts_resolved=int(registry.total(obs_names.ALERTS_RESOLVED)),
        audits_run=int(registry.total(obs_names.QUALITY_AUDITS)),
        hours_by_verdict=hours_by_verdict,
        sessions_open=int(registry.total(
            obs_names.INCREMENTAL_OPEN_SESSIONS)),
        sessions_closed=int(registry.total(
            obs_names.INCREMENTAL_SESSIONS_CLOSED)),
        sessions_reopened=int(registry.total(
            obs_names.INCREMENTAL_SESSIONS_REOPENED)),
        rollup_deltas_applied=int(registry.total(
            obs_names.ROLLUP_DELTAS_APPLIED)),
        rollup_corrections=correction_lag.count,
        rollup_correction_lag_p95_ms=correction_lag.percentile(0.95),
    )


def format_pipeline_health(health: PipelineHealth) -> str:
    """Render the panel as the fixed-width text block the CLI prints."""
    rate = health.delivery_rate
    lines = [
        "pipeline health",
        f"  accepted {health.accepted:>10d}   sent    {health.sent:>10d}",
        f"  staged   {health.staged:>10d}   landed  {health.landed:>10d}",
        f"  backlog  {health.backlog:>10d}   dropped {health.dropped:>10d}",
        f"  lost     {health.lost_in_crash:>10d}   "
        f"quarantined {health.check_failures:>6d}",
        "  delivery rate "
        + (f"{rate:.2%}" if rate is not None else "n/a"),
    ]
    if health.latency_count:
        lines.append(
            f"  e2e latency (ms) p50={health.latency_p50_ms:.0f} "
            f"p95={health.latency_p95_ms:.0f} "
            f"p99={health.latency_p99_ms:.0f} "
            f"(n={health.latency_count})"
        )
    else:
        lines.append("  e2e latency: no traced deliveries")
    if health.monitored:
        lines.append(
            f"  alerts   active {health.alerts_active:d}   "
            f"fired {health.alerts_fired:d}   "
            f"resolved {health.alerts_resolved:d}")
        verdicts = " ".join(
            f"{verdict}={count}" for verdict, count
            in sorted(health.hours_by_verdict.items())) or "none audited"
        lines.append(f"  hours    {verdicts}")
    if health.incremental:
        lines.append(
            f"  sessions open {health.sessions_open:d}   "
            f"closed {health.sessions_closed:d}   "
            f"reopened {health.sessions_reopened:d}")
        correction = (
            f"corrections {health.rollup_corrections:d} "
            f"(lag p95={health.rollup_correction_lag_p95_ms:.0f}ms)"
            if health.rollup_corrections else "corrections 0")
        lines.append(
            f"  rollups  deltas {health.rollup_deltas_applied:d}   "
            + correction)
    return "\n".join(lines)


def format_rollup_panel(warehouse, date: Date, level: int = 1,
                        top_n: int = 5, root: Optional[str] = None) -> str:
    """Render one day's top rollup counts from the materialized tables.

    A day that was never materialized -- or whose materialization is
    mid-commit -- renders as a "no data" panel rather than crashing the
    dashboard (:class:`repro.oink.rollups.MissingRollupError` is caught
    here, not propagated to the renderer).
    """
    from repro.oink.rollups import (
        ROLLUPS_ROOT, MissingRollupError, load_rollups)

    year, month, day = date
    header = f"rollups {year:04d}-{month:02d}-{day:02d} (level {level})"
    try:
        result = load_rollups(warehouse, year, month, day,
                              root=root if root is not None
                              else ROLLUPS_ROOT)
    except MissingRollupError as exc:
        return f"{header}\n  no data ({exc.detail})"
    lines = [header]
    for (name_key, country, status), count in result.top(level, top_n):
        lines.append(f"  {':'.join(name_key):<40s} "
                     f"{country:>8s} {status:>10s} {count:>8d}")
    if len(lines) == 1:
        lines.append("  no events")
    return "\n".join(lines)


class BirdBrain:
    """The dashboard: a time series of :class:`DailySummary` rows."""

    def __init__(self) -> None:
        self._days: Dict[Date, DailySummary] = {}

    def add_day(self, summary: DailySummary) -> None:
        """Add (or replace) one day's summary on the dashboard."""
        self._days[summary.date] = summary

    def day(self, date: Date) -> DailySummary:
        """The stored summary for one date."""
        return self._days[date]

    def dates(self) -> List[Date]:
        """All dates on the dashboard, sorted."""
        return sorted(self._days)

    # -- top-level plots ---------------------------------------------------
    def sessions_over_time(self) -> List[Tuple[Date, int]]:
        """The headline plot: daily user sessions as a function of time."""
        return [(date, self._days[date].sessions) for date in self.dates()]

    def growth_rate(self) -> Optional[float]:
        """Sessions growth from the first to last day (fraction)."""
        series = self.sessions_over_time()
        if len(series) < 2 or series[0][1] == 0:
            return None
        return series[-1][1] / series[0][1] - 1.0

    # -- drill-downs -------------------------------------------------------
    def sessions_by_client(self, date: Date) -> Dict[str, int]:
        """Session counts per client type for one date."""
        return dict(self._days[date].sessions_by_client)

    def duration_histogram(self, date: Date) -> Dict[str, int]:
        """Bucketed session-duration counts for one date."""
        return dict(self._days[date].duration_histogram)

    def client_share_over_time(self, client: str) -> List[Tuple[Date, float]]:
        """Fraction of sessions from one client, per day."""
        out = []
        for date in self.dates():
            summary = self._days[date]
            share = (summary.sessions_by_client.get(client, 0)
                     / summary.sessions) if summary.sessions else 0.0
            out.append((date, share))
        return out
