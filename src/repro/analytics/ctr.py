"""Click-through and follow-through rates (§4.1).

"Examples are queries that involve computing click-through rate (CTR) and
follow-through rate (FTR) for various features in the service: how often
are search results, who-to-follow suggestions, trends, etc. clicked on
within a session, with respect to the number of impressions recorded?
Similarly, what fraction of these events led to new followers? ... it
suffices to know that an impression was followed by a click or follow
event."

Rates are computable from session sequences alone; the optional user
predicate reproduces the ad hoc subsetting data scientists do ("casual
users in the U.K. who are interested in sports").
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.core.dictionary import EventDictionary
from repro.core.sequences import SessionSequenceRecord


@dataclass
class RateReport:
    """Aggregated numerator/denominator with the derived rate."""

    feature: str
    impressions: int
    actions: int
    sessions: int

    @property
    def rate(self) -> float:
        """actions / impressions (0.0 when no impressions)."""
        if self.impressions == 0:
            return 0.0
        return self.actions / self.impressions


class FeatureRates:
    """Computes CTR/FTR-style rates for one feature from sequences."""

    def __init__(self, feature: str, impression_pattern: str,
                 action_pattern: str, dictionary: EventDictionary,
                 followed_within_session: bool = True) -> None:
        self.feature = feature
        self._impressions = re.compile(
            dictionary.symbol_class(impression_pattern))
        self._actions = re.compile(dictionary.symbol_class(action_pattern))
        # When set, an action only counts if some impression precedes it
        # within the session ("an impression was followed by a click").
        self._ordered = followed_within_session

    def measure(self, records: Iterable[SessionSequenceRecord],
                user_filter: Optional[Callable[[SessionSequenceRecord],
                                               bool]] = None) -> RateReport:
        """Aggregate the rate over session records, optionally filtered by user."""
        impressions = 0
        actions = 0
        sessions = 0
        for record in records:
            if user_filter is not None and not user_filter(record):
                continue
            sessions += 1
            sequence = record.session_sequence
            session_impressions = len(self._impressions.findall(sequence))
            impressions += session_impressions
            if self._ordered:
                first = self._impressions.search(sequence)
                if first is None:
                    continue
                actions += len(self._actions.findall(sequence, first.end()))
            else:
                actions += len(self._actions.findall(sequence))
        return RateReport(feature=self.feature, impressions=impressions,
                          actions=actions, sessions=sessions)


def ctr(feature: str, impression_pattern: str, click_pattern: str,
        dictionary: EventDictionary,
        records: Iterable[SessionSequenceRecord],
        user_filter: Optional[Callable] = None) -> RateReport:
    """Click-through rate of a feature over session sequences."""
    rates = FeatureRates(feature, impression_pattern, click_pattern,
                         dictionary)
    return rates.measure(records, user_filter)


def ftr(feature: str, impression_pattern: str, follow_pattern: str,
        dictionary: EventDictionary,
        records: Iterable[SessionSequenceRecord],
        user_filter: Optional[Callable] = None) -> RateReport:
    """Follow-through rate of a feature over session sequences."""
    rates = FeatureRates(feature, impression_pattern, follow_pattern,
                         dictionary)
    return rates.measure(records, user_filter)
