"""Navigation behavior analysis (§4.1).

"Another common class of queries that require only event names involves
navigation behavior analysis, which focuses on how users navigate within
Twitter clients. Examples questions include: How often do users take
advantage of the 'discovery' features? How often do tweet detail
expansions lead to detailed profile views? ... the names alone are
sufficient to answer these questions."
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.core.dictionary import EventDictionary
from repro.core.sequences import SessionSequenceRecord


def transition_counts(records: Iterable[SessionSequenceRecord],
                      dictionary: EventDictionary) -> Counter:
    """Counts of adjacent event-name pairs across all sessions."""
    counts: Counter = Counter()
    for record in records:
        names = record.event_names(dictionary)
        for a, b in zip(names, names[1:]):
            counts[(a, b)] += 1
    return counts


@dataclass
class FollowRate:
    """How often events matching one pattern lead to another."""

    antecedents: int          # sessions-or-events matching the first pattern
    followed: int             # of those, how many were followed by the second

    @property
    def rate(self) -> float:
        """followed / antecedents (0.0 when no antecedents)."""
        if self.antecedents == 0:
            return 0.0
        return self.followed / self.antecedents


def followed_by(records: Iterable[SessionSequenceRecord],
                dictionary: EventDictionary,
                first_pattern: str, second_pattern: str,
                immediately: bool = False) -> FollowRate:
    """Of events matching ``first_pattern``, the fraction followed (later
    in the same session, or immediately next) by ``second_pattern``.

    ``followed_by(records, d, "*:expand", "*:profile:*:*:*:*")``
    answers "how often do tweet detail expansions lead to detailed
    profile views?" (page-level patterns need the full six-component
    form, since short patterns anchor at the client or action level).
    """
    first = re.compile(dictionary.symbol_class(first_pattern))
    second = re.compile(dictionary.symbol_class(second_pattern))
    antecedents = 0
    followed = 0
    for record in records:
        sequence = record.session_sequence
        for match in first.finditer(sequence):
            antecedents += 1
            if immediately:
                nxt = sequence[match.end():match.end() + 1]
                if nxt and second.match(nxt):
                    followed += 1
            else:
                if second.search(sequence, match.end()):
                    followed += 1
    return FollowRate(antecedents=antecedents, followed=followed)


def feature_usage(records: Iterable[SessionSequenceRecord],
                  dictionary: EventDictionary,
                  pattern: str) -> Tuple[int, int]:
    """(sessions using the feature, total sessions).

    ``feature_usage(records, d, "*:discover:*:*:*:*")`` answers "how
    often do users take advantage of the discovery features?" -- at
    session granularity.
    """
    regex = re.compile(dictionary.symbol_class(pattern))
    total = 0
    using = 0
    for record in records:
        total += 1
        if regex.search(record.session_sequence):
            using += 1
    return using, total


def top_transitions(records: Iterable[SessionSequenceRecord],
                    dictionary: EventDictionary,
                    n: int = 20) -> List[Tuple[Tuple[str, str], int]]:
    """Most common adjacent event pairs (the navigation backbone)."""
    return transition_counts(records, dictionary).most_common(n)
