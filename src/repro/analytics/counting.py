"""Event counting over session sequences (§5.2).

The paper's canonical script::

    define CountClientEvents CountClientEvents('$EVENTS');
    raw = load '/session_sequences/$DATE/' using SessionSequencesLoader();
    generated = foreach raw generate CountClientEvents(symbols);
    grouped = group generated all;
    count = foreach grouped generate SUM(generated);

"an arbitrary regular expression can be supplied which is automatically
expanded to include all matching events (via the dictionary) ... Since a
session sequence is simply a unicode string, the UDF translates into
string manipulations after consulting the client event dictionary."
"""

from __future__ import annotations

import operator
import re
from typing import Any, Optional, Tuple

from repro.core.dictionary import EventDictionary
from repro.core.names import EventPattern
from repro.core.sequences import SessionSequenceRecord
from repro.hdfs.namenode import HDFS
from repro.mapreduce.jobtracker import JobTracker
from repro.pig.loaders import ClientEventsLoader, SessionSequencesLoader
from repro.pig.relation import PigServer
from repro.pig.udf import EvalFunc


class CountClientEvents(EvalFunc):
    """Counts occurrences of matching events within one session sequence."""

    def __init__(self, pattern: str, dictionary: EventDictionary) -> None:
        self.pattern = pattern
        self._regex = re.compile(dictionary.symbol_class(pattern))

    def exec(self, record: Any) -> int:  # noqa: A003
        """Count matching events in one session sequence."""
        sequence = _sequence_of(record)
        return len(self._regex.findall(sequence))


class SessionsWithEvent(EvalFunc):
    """1 if the session contains at least one matching event, else 0.

    "A common variant ... returns the number of user sessions that contain
    at least one instance of a particular client event. These analyses are
    useful for understanding what fraction of users take advantage of a
    particular feature."
    """

    def __init__(self, pattern: str, dictionary: EventDictionary) -> None:
        self.pattern = pattern
        self._regex = re.compile(dictionary.symbol_class(pattern))

    def exec(self, record: Any) -> int:  # noqa: A003
        """1 if the session contains a matching event, else 0."""
        return 1 if self._regex.search(_sequence_of(record)) else 0


def _sequence_of(record: Any) -> str:
    if isinstance(record, SessionSequenceRecord):
        return record.session_sequence
    if isinstance(record, str):
        return record
    raise TypeError(f"expected SessionSequenceRecord or str, got "
                    f"{type(record).__name__}")


# ---------------------------------------------------------------------------
# Script-shaped entry points, over sequences and (for comparison) raw logs.
# All row functions are module-level callables (not lambdas) so these
# queries can run on the engine's ``processes`` backend.
# ---------------------------------------------------------------------------


def _sum_bag(group: dict) -> int:
    """SUM over a grouped relation's bag."""
    return sum(group["bag"])


class _MatchFlag:
    """Row UDF: 1 if the event's name matches the pattern, else 0."""

    #: Projection declaration: a columnar scan materializes only this.
    columns_read = ("event_name",)

    def __init__(self, pattern: str) -> None:
        self.matcher = EventPattern(pattern)

    def __call__(self, event: Any) -> int:
        return 1 if self.matcher.matches(event.event_name) else 0


class _SessionMatchFlag:
    """Row UDF: ((user, session), flag) pair for the sessions variant."""

    #: Projection declaration: the three columns the flag pair needs.
    columns_read = ("event_name", "session_id", "user_id")

    def __init__(self, pattern: str) -> None:
        self.matcher = EventPattern(pattern)

    def __call__(self, event: Any) -> Tuple[Tuple[Any, Any], int]:
        return ((event.user_id, event.session_id),
                1 if self.matcher.matches(event.event_name) else 0)


def _session_has_event(group: dict) -> int:
    """1 if any event of the session's bag matched, else 0."""
    return 1 if any(v for __, v in group["bag"]) else 0


_first_of = operator.itemgetter(0)


def count_events_sequences(warehouse: HDFS, date: Tuple[int, int, int],
                           pattern: str, dictionary: EventDictionary,
                           tracker: Optional[JobTracker] = None,
                           mode: str = "sum",
                           backend: Optional[str] = None,
                           max_workers: Optional[int] = None) -> int:
    """The paper's counting script over the session-sequence store.

    ``mode='sum'`` totals event occurrences; ``mode='sessions'`` is the
    COUNT variant (sessions containing the event).  ``backend`` /
    ``max_workers`` select the MapReduce execution backend.
    """
    pig = PigServer(tracker, backend=backend, max_workers=max_workers)
    if mode == "sum":
        udf: EvalFunc = CountClientEvents(pattern, dictionary)
    elif mode == "sessions":
        udf = SessionsWithEvent(pattern, dictionary)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    year, month, day = date
    generated = (
        pig.load(SessionSequencesLoader(warehouse, year, month, day))
        .foreach(udf, description="CountClientEvents")
    )
    grouped = generated.group_all()
    count = grouped.foreach(_sum_bag, description="SUM")
    out = count.dump()
    return out[0] if out else 0


def count_events_raw(warehouse: HDFS, date: Tuple[int, int, int],
                     pattern: str,
                     tracker: Optional[JobTracker] = None,
                     mode: str = "sum",
                     backend: Optional[str] = None,
                     max_workers: Optional[int] = None) -> int:
    """The same query over raw client event logs (the §4.1 baseline).

    Project onto the event name early, filter, then (for the sessions
    variant) group by session to dedupe -- the brute-force plan whose
    scans and group-bys session sequences were built to avoid.
    ``backend`` / ``max_workers`` select the MapReduce execution backend
    (the heavy raw-log scan is where ``"processes"`` pays off).
    """
    pig = PigServer(tracker, backend=backend, max_workers=max_workers)
    year, month, day = date
    raw = pig.load(ClientEventsLoader(warehouse, year, month, day))
    if mode == "sum":
        projected = raw.foreach(_MatchFlag(pattern),
                                description="project_match")
        out = projected.group_all().foreach(_sum_bag,
                                            description="SUM").dump()
        return out[0] if out else 0
    if mode == "sessions":
        flagged = raw.foreach(_SessionMatchFlag(pattern),
                              description="project_session_match")
        per_session = (
            flagged.group_by(_first_of, description="group_session")
            .foreach(_session_has_event, description="session_has_event")
        )
        out = per_session.group_all().foreach(_sum_bag,
                                              description="SUM").dump()
        return out[0] if out else 0
    raise ValueError(f"unknown mode {mode!r}")


def count_events_selective(warehouse: HDFS, date: Tuple[int, int, int],
                           pattern: str,
                           tracker: Optional[JobTracker] = None,
                           backend: Optional[str] = None,
                           max_workers: Optional[int] = None) -> int:
    """Count raw events matching ``pattern`` via Elephant Twin pushdown.

    The §6 "highly-selective query" path: a ``load(...).filter_events``
    plan whose filter carries an index hint, so the executor swaps the
    full day scan for the per-hour index partitions when they exist.
    Without partitions (or with stale ones) the plan degrades to
    scanning exactly the uncovered splits -- the count is identical to
    :func:`count_events_raw` either way.
    """
    pig = PigServer(tracker, backend=backend, max_workers=max_workers)
    year, month, day = date
    rows = (
        pig.load(ClientEventsLoader(warehouse, year, month, day))
        .filter_events(pattern)
        .dump()
    )
    return len(rows)


def events_for_user(warehouse: HDFS, date: Tuple[int, int, int],
                    user_id: int,
                    tracker: Optional[JobTracker] = None,
                    backend: Optional[str] = None,
                    max_workers: Optional[int] = None) -> list:
    """One user's client events for a day, via the ``user`` index field.

    The multi-field payoff: the same per-hour partitions that serve event
    -name selections also serve exact-user retrieval, pruning every split
    the user never touched.
    """
    from repro.pig.udf import UserEventsFilter

    pig = PigServer(tracker, backend=backend, max_workers=max_workers)
    year, month, day = date
    return (
        pig.load(ClientEventsLoader(warehouse, year, month, day))
        .filter(UserEventsFilter(user_id), description=f"user[{user_id}]")
        .dump()
    )
