"""LifeFlow-style session-flow aggregation (§6).

"We are also using advanced visualization techniques [LifeFlow,
Wongsuphasawat et al. 2011] to provide data scientists a visual interface
for exploring sessions -- the hope is that interesting behavioral
patterns will map into distinct visual patterns."

LifeFlow's core data structure is an aggregation of event sequences into
a prefix tree: each node is "all sessions whose first k events share this
prefix", weighted by how many sessions flow through it. We build that
tree from session sequences and render it as text (the simulation's
display surface). Note that, per §4.2's design choice, session sequences
carry no intra-session timestamps, so the tree aggregates order only --
the one LifeFlow feature (mean time-to-event) the compact store cannot
support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.dictionary import EventDictionary
from repro.core.sequences import SessionSequenceRecord


@dataclass
class FlowNode:
    """One prefix-tree node: an event at a depth, with traffic counts."""

    event: str
    depth: int
    sessions: int = 0
    terminations: int = 0          # sessions ending exactly here
    children: Dict[str, "FlowNode"] = field(default_factory=dict)

    def child(self, event: str) -> "FlowNode":
        """The child node for ``event``, created on first use."""
        node = self.children.get(event)
        if node is None:
            node = self.children[event] = FlowNode(event=event,
                                                   depth=self.depth + 1)
        return node

    def sorted_children(self) -> List["FlowNode"]:
        """Children ordered by traffic (heaviest first)."""
        return sorted(self.children.values(),
                      key=lambda n: (-n.sessions, n.event))


class LifeFlowTree:
    """Aggregated flow of many sessions, LifeFlow-style."""

    def __init__(self, max_depth: int = 8,
                 simplify: Optional[Callable[[str], str]] = None) -> None:
        """``simplify`` maps event names to display labels before
        aggregation (e.g. drop the client component so flows merge
        across clients, or keep only the page level)."""
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.root = FlowNode(event="<start>", depth=0)
        self.max_depth = max_depth
        self._simplify = simplify or (lambda name: name)

    # -- building ----------------------------------------------------------
    def add_sequence(self, names: Sequence[str]) -> None:
        """Aggregate one session's event names into the tree."""
        self.root.sessions += 1
        node = self.root
        for i, name in enumerate(names[:self.max_depth]):
            node = node.child(self._simplify(name))
            node.sessions += 1
        if len(names) <= self.max_depth:
            node.terminations += 1

    def add_records(self, records: Iterable[SessionSequenceRecord],
                    dictionary: EventDictionary) -> "LifeFlowTree":
        """Aggregate session-sequence records (decoded via the dictionary)."""
        for record in records:
            self.add_sequence(record.event_names(dictionary))
        return self

    # -- queries ----------------------------------------------------------
    @property
    def total_sessions(self) -> int:
        """How many sessions the tree aggregates."""
        return self.root.sessions

    def dominant_path(self) -> List[str]:
        """The single heaviest flow through the tree."""
        path: List[str] = []
        node = self.root
        while node.children:
            node = node.sorted_children()[0]
            path.append(node.event)
        return path

    def branch_factor(self) -> float:
        """Mean children per internal node: how bushy the behaviour is."""
        internal = 0
        children = 0

        def walk(node: FlowNode) -> None:
            nonlocal internal, children
            if node.children:
                internal += 1
                children += len(node.children)
                for child in node.children.values():
                    walk(child)

        walk(self.root)
        return children / internal if internal else 0.0

    def flows_through(self, prefix: Sequence[str]) -> int:
        """Sessions whose (simplified) events start with ``prefix``."""
        node = self.root
        for event in prefix:
            child = node.children.get(event)
            if child is None:
                return 0
            node = child
        return node.sessions

    # -- rendering ---------------------------------------------------------
    def render(self, min_fraction: float = 0.02,
               max_children: int = 4) -> str:
        """ASCII rendering: one line per node, bar width ∝ traffic.

        Branches carrying less than ``min_fraction`` of the root's
        sessions are elided (LifeFlow's simplification slider).
        """
        lines: List[str] = [f"<start>  [{self.total_sessions} sessions]"]
        threshold = max(self.total_sessions * min_fraction, 1.0)

        def walk(node: FlowNode, indent: str) -> None:
            kept = [c for c in node.sorted_children()
                    if c.sessions >= threshold][:max_children]
            hidden = len(node.children) - len(kept)
            for i, child in enumerate(kept):
                last = (i == len(kept) - 1) and hidden == 0
                branch = "`-" if last else "|-"
                fraction = child.sessions / self.total_sessions
                bar = "#" * max(int(fraction * 30), 1)
                lines.append(
                    f"{indent}{branch} {child.event}  "
                    f"{child.sessions:5d} {bar}")
                walk(child, indent + ("   " if last else "|  "))
            if hidden > 0:
                lines.append(f"{indent}`- ... {hidden} minor branch(es)")

        walk(self.root, "")
        return "\n".join(lines)


def page_level(name: str) -> str:
    """Simplifier keeping only ``page:action`` (merges across clients)."""
    parts = name.split(":")
    return f"{parts[1]}:{parts[5]}"


def action_level(name: str) -> str:
    """Simplifier keeping only the action component."""
    return name.rsplit(":", 1)[1]
