"""Metric time series across days (§5.1's "spot trends").

Each day has its own dictionary (rebuilt daily with the catalog), so a
multi-day metric must re-expand its pattern against every day's
dictionary -- this module hides that, turning a pattern or a
record-metric into a dated series suitable for the BirdBrain plots.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.dictionary import EventDictionary
from repro.core.sequences import SessionSequenceRecord

if TYPE_CHECKING:  # avoid a circular import with repro.workload.simulate
    from repro.workload.simulate import WarehouseSimulation

Date = Tuple[int, int, int]
SeriesPoint = Tuple[Date, float]


@dataclass
class MetricSeries:
    """A named daily series."""

    name: str
    points: List[SeriesPoint]

    def values(self) -> List[float]:
        """The metric values in date order."""
        return [value for __, value in self.points]

    def change(self) -> Optional[float]:
        """Relative change first -> last (None if undefined)."""
        if len(self.points) < 2 or self.points[0][1] == 0:
            return None
        return self.points[-1][1] / self.points[0][1] - 1.0

    def mean(self) -> float:
        """Mean of the series (0.0 when empty)."""
        values = self.values()
        return sum(values) / len(values) if values else 0.0


def event_count_series(simulation: "WarehouseSimulation",
                       pattern: str) -> MetricSeries:
    """Daily occurrences of events matching ``pattern``."""

    def count(records: Sequence[SessionSequenceRecord],
              dictionary: EventDictionary) -> float:
        regex = re.compile(dictionary.symbol_class(pattern))
        return float(sum(len(regex.findall(r.session_sequence))
                         for r in records))

    return _series(simulation, f"count({pattern})", count)


def sessions_with_event_series(simulation: "WarehouseSimulation",
                               pattern: str) -> MetricSeries:
    """Daily count of sessions containing a matching event."""

    def count(records: Sequence[SessionSequenceRecord],
              dictionary: EventDictionary) -> float:
        regex = re.compile(dictionary.symbol_class(pattern))
        return float(sum(1 for r in records
                         if regex.search(r.session_sequence)))

    return _series(simulation, f"sessions_with({pattern})", count)


def rate_series(simulation: "WarehouseSimulation",
                impression_pattern: str, action_pattern: str,
                name: str = "rate") -> MetricSeries:
    """Daily CTR/FTR-style rate (ordered: action after an impression)."""

    def rate(records: Sequence[SessionSequenceRecord],
             dictionary: EventDictionary) -> float:
        impressions_re = re.compile(
            dictionary.symbol_class(impression_pattern))
        actions_re = re.compile(dictionary.symbol_class(action_pattern))
        impressions = 0
        actions = 0
        for record in records:
            sequence = record.session_sequence
            impressions += len(impressions_re.findall(sequence))
            first = impressions_re.search(sequence)
            if first is not None:
                actions += len(actions_re.findall(sequence, first.end()))
        return actions / impressions if impressions else 0.0

    return _series(simulation, name, rate)


def custom_series(simulation: "WarehouseSimulation", name: str,
                  metric: Callable[[Sequence[SessionSequenceRecord],
                                    EventDictionary], float]) -> MetricSeries:
    """Series from an arbitrary per-day metric."""
    return _series(simulation, name, metric)


def _series(simulation: "WarehouseSimulation", name: str,
            metric: Callable[[Sequence[SessionSequenceRecord],
                              EventDictionary], float]) -> MetricSeries:
    points: List[SeriesPoint] = []
    for date in simulation.dates():
        records = simulation.records(date)
        dictionary = simulation.dictionary(date)
        points.append((date, metric(records, dictionary)))
    return MetricSeries(name=name, points=points)
