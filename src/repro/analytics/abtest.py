"""A/B testing over session sequences (§5.3).

"Companies typically run A/B tests to optimize the flow [Kohavi et al.
2007], for example, varying the page layout of a particular step or
number of overall steps to assess the impact on end-to-end metrics."

The harness provides the two halves of that loop:

- deterministic bucket assignment by hashing (user id, experiment name,
  salt) -- users keep their bucket across sessions and days;
- per-bucket metric evaluation over session sequences (any
  record -> float metric: funnel completion, sessions-with-event,
  counts), with a two-proportion z-test for binary metrics.

Everything is stdlib; the normal tail probability uses ``math.erfc``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.sequences import SessionSequenceRecord

Metric = Callable[[SessionSequenceRecord], float]


class Experiment:
    """A named experiment with weighted buckets."""

    def __init__(self, name: str,
                 buckets: Sequence[str] = ("control", "treatment"),
                 weights: Optional[Sequence[float]] = None,
                 salt: str = "") -> None:
        if len(buckets) < 2:
            raise ValueError("an experiment needs at least two buckets")
        if len(set(buckets)) != len(buckets):
            raise ValueError("bucket names must be unique")
        weights = list(weights) if weights is not None else [1.0] * len(buckets)
        if len(weights) != len(buckets) or any(w <= 0 for w in weights):
            raise ValueError("need one positive weight per bucket")
        self.name = name
        self.buckets = list(buckets)
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)
        self._salt = salt

    def assign(self, user_id: int) -> str:
        """Deterministic bucket for one user."""
        digest = hashlib.sha256(
            f"{self.name}:{self._salt}:{user_id}".encode()).digest()
        roll = int.from_bytes(digest[:8], "big") / 2 ** 64
        for bucket, edge in zip(self.buckets, self._cumulative):
            if roll < edge:
                return bucket
        return self.buckets[-1]

    def split(self, records: Iterable[SessionSequenceRecord]
              ) -> Dict[str, List[SessionSequenceRecord]]:
        """Partition session records by their user's bucket."""
        out: Dict[str, List[SessionSequenceRecord]] = {
            bucket: [] for bucket in self.buckets}
        for record in records:
            out[self.assign(record.user_id)].append(record)
        return out


@dataclass
class BucketResult:
    """One bucket's aggregate for a metric."""

    bucket: str
    sessions: int
    total: float

    @property
    def mean(self) -> float:
        """Mean metric value per session in this bucket."""
        return self.total / self.sessions if self.sessions else 0.0


@dataclass
class ABResult:
    """Comparison of a treatment bucket against control."""

    metric_name: str
    control: BucketResult
    treatment: BucketResult
    z_score: float
    p_value: float

    @property
    def lift(self) -> float:
        """Relative change of the treatment mean over control."""
        if self.control.mean == 0:
            return float("inf") if self.treatment.mean > 0 else 0.0
        return self.treatment.mean / self.control.mean - 1.0

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the p-value is below ``alpha``."""
        return self.p_value < alpha


def evaluate_metric(experiment: Experiment,
                    records: Iterable[SessionSequenceRecord],
                    metric: Metric,
                    metric_name: str = "metric") -> Dict[str, BucketResult]:
    """Aggregate a metric per bucket."""
    results = {}
    for bucket, bucket_records in experiment.split(records).items():
        total = sum(metric(record) for record in bucket_records)
        results[bucket] = BucketResult(bucket=bucket,
                                       sessions=len(bucket_records),
                                       total=total)
    return results


def compare_proportions(experiment: Experiment,
                        records: Iterable[SessionSequenceRecord],
                        metric: Metric,
                        treatment: str = "treatment",
                        control: str = "control",
                        metric_name: str = "conversion") -> ABResult:
    """Two-proportion z-test for a binary (0/1) session metric.

    Suitable for "did the session complete the funnel", "did the session
    use feature X" -- the end-to-end metrics §5.3 mentions.
    """
    per_bucket = evaluate_metric(experiment, records, metric, metric_name)
    c = per_bucket[control]
    t = per_bucket[treatment]
    z = _two_proportion_z(c.total, c.sessions, t.total, t.sessions)
    p = _two_sided_p(z)
    return ABResult(metric_name=metric_name, control=c, treatment=t,
                    z_score=z, p_value=p)


def _two_proportion_z(x1: float, n1: int, x2: float, n2: int) -> float:
    if n1 == 0 or n2 == 0:
        return 0.0
    p1, p2 = x1 / n1, x2 / n2
    pooled = (x1 + x2) / (n1 + n2)
    variance = pooled * (1 - pooled) * (1 / n1 + 1 / n2)
    if variance <= 0:
        return 0.0
    return (p2 - p1) / math.sqrt(variance)


def _two_sided_p(z: float) -> float:
    """P(|Z| >= |z|) for standard normal Z."""
    return math.erfc(abs(z) / math.sqrt(2))
