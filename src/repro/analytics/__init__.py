"""Applications over client events and session sequences (§5)."""

from repro.analytics.counting import (
    CountClientEvents,
    SessionsWithEvent,
    count_events_raw,
    count_events_selective,
    count_events_sequences,
    events_for_user,
)
from repro.analytics.funnel import (
    ClientEventsFunnel,
    FunnelReport,
    run_funnel,
)
from repro.analytics.ctr import FeatureRates, RateReport, ctr, ftr
from repro.analytics.navigation import (
    FollowRate,
    feature_usage,
    followed_by,
    top_transitions,
    transition_counts,
)
from repro.analytics.lifeflow import (
    FlowNode,
    LifeFlowTree,
    action_level,
    page_level,
)
from repro.analytics.abtest import (
    ABResult,
    BucketResult,
    Experiment,
    compare_proportions,
    evaluate_metric,
)
from repro.analytics.timeseries import (
    MetricSeries,
    custom_series,
    event_count_series,
    rate_series,
    sessions_with_event_series,
)
from repro.analytics.dashboard import (
    BirdBrain,
    DEFAULT_DURATION_BUCKETS,
    DailySummary,
    PipelineHealth,
    bucket_label,
    format_pipeline_health,
    format_rollup_panel,
    pipeline_health,
    summarize_day,
)

__all__ = [
    "CountClientEvents",
    "SessionsWithEvent",
    "count_events_raw",
    "count_events_selective",
    "count_events_sequences",
    "events_for_user",
    "ClientEventsFunnel",
    "FunnelReport",
    "run_funnel",
    "FeatureRates",
    "RateReport",
    "ctr",
    "ftr",
    "FollowRate",
    "feature_usage",
    "followed_by",
    "top_transitions",
    "transition_counts",
    "FlowNode",
    "LifeFlowTree",
    "action_level",
    "page_level",
    "ABResult",
    "BucketResult",
    "Experiment",
    "compare_proportions",
    "evaluate_metric",
    "MetricSeries",
    "custom_series",
    "event_count_series",
    "rate_series",
    "sessions_with_event_series",
    "BirdBrain",
    "DEFAULT_DURATION_BUCKETS",
    "DailySummary",
    "PipelineHealth",
    "bucket_label",
    "format_pipeline_health",
    "format_rollup_panel",
    "pipeline_health",
    "summarize_day",
]
