"""Command-line interface: drive the pipeline without writing code.

Because the simulated HDFS is in-memory, every invocation is
self-contained: it generates a deterministic workload (from ``--seed``),
runs the pipeline, and answers the query. Identical seeds give identical
answers across invocations.

    python -m repro pipeline --days 3 --users 200
    python -m repro count --pattern '*:profile_click'
    python -m repro funnel --client web
    python -m repro catalog --browse web
    python -m repro report
    python -m repro obs
    python -m repro index query --pattern '*:signup:*:*:*:*'
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analytics.counting import count_events_raw, count_events_sequences
from repro.analytics.funnel import run_funnel
from repro.core.catalog import ClientEventCatalog
from repro.mapreduce.jobtracker import JobTracker
from repro.workload.behavior import signup_funnel_stages
from repro.workload.simulate import WarehouseSimulation


def _parse_date(text: str):
    parts = text.split("-")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError("date must be YYYY-MM-DD")
    return tuple(int(p) for p in parts)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for all subcommands."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--users", type=int, default=300,
                        help="synthetic population size (default 300)")
    common.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    common.add_argument("--date", type=_parse_date, default=(2012, 3, 10),
                        metavar="YYYY-MM-DD",
                        help="simulated calendar day (default 2012-03-10)")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Twitter unified-logging reproduction (VLDB 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, help_text: str):
        return sub.add_parser(name, help=help_text, parents=[common])

    pipeline = add_parser(
        "pipeline", "run N days end to end and print the dashboard")
    pipeline.add_argument("--days", type=int, default=3)
    pipeline.add_argument("--growth", type=int, default=50,
                          help="extra users per day (default 50)")
    pipeline.add_argument("--scribe", action="store_true",
                          help="deliver through the Scribe path")

    count = add_parser(
        "count", "count events matching a pattern, both query paths")
    count.add_argument("--pattern", required=True,
                       help="e.g. '*:profile_click' or 'web:home:*'")
    count.add_argument("--sessions", action="store_true",
                       help="count sessions containing the event instead")
    count.add_argument("--backend", default="serial",
                       choices=("serial", "threads", "processes"),
                       help="MapReduce execution backend (default serial)")
    count.add_argument("--workers", type=int, default=None,
                       help="worker count for parallel backends "
                            "(default: min(8, cpu count))")

    funnel = add_parser("funnel", "run the signup funnel")
    funnel.add_argument("--client", default="web",
                        choices=("web", "iphone", "android", "ipad"))
    funnel.add_argument("--users-only", action="store_true",
                        help="count unique users instead of sessions")

    catalog = add_parser("catalog", "browse the event catalog")
    catalog.add_argument("--browse", nargs="*", default=None,
                         metavar="COMPONENT",
                         help="prefix components, e.g. --browse web home")
    catalog.add_argument("--search", default=None,
                         help="pattern, e.g. '*:impression'")

    trend = add_parser("trend", "metric time series across days")
    trend.add_argument("--pattern", required=True,
                       help="event pattern to track")
    trend.add_argument("--days", type=int, default=5)
    trend.add_argument("--growth", type=int, default=40,
                       help="extra users per day (default 40)")
    trend.add_argument("--sessions", action="store_true",
                       help="track sessions containing the event")

    script = add_parser("script", "run a Pig Latin script file")
    script.add_argument("--file", required=True,
                        help="path to the .pig script")
    script.add_argument("--param", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="parameter substitution, repeatable; DATE "
                             "defaults to the simulated day")

    obs = add_parser(
        "obs", "run the pipeline through Scribe with tracing on and "
               "print the observability snapshot")
    obs.add_argument("--days", type=int, default=1)
    obs.add_argument("--json", action="store_true",
                     help="print the JSON snapshot instead of the "
                          "Prometheus-style exposition")

    index = add_parser(
        "index", "build/inspect/query Elephant Twin index partitions")
    index.add_argument("action", choices=("build", "status", "query"),
                       help="build partitions, report freshness, or run "
                            "a selective query against them")
    index.add_argument("--pattern", default="*:signup:*:*:*:*",
                       help="event pattern for 'query' (default "
                            "'*:signup:*:*:*:*')")
    index.add_argument("--user", type=int, default=None,
                       help="query one user's events instead of a pattern")
    index.add_argument("--backend", default="serial",
                       choices=("serial", "threads", "processes"),
                       help="MapReduce execution backend (default serial)")
    index.add_argument("--workers", type=int, default=None,
                       help="worker count for parallel backends")

    chaos = sub.add_parser(
        "chaos", help="fault-injection soak asserting zero-loss/"
                      "zero-duplicate delivery through the Scribe path")
    chaos.add_argument("--seed", type=int, default=0,
                       help="storm seed (default 0); identical seeds "
                            "inject identical faults")
    chaos.add_argument("--hours", type=int, default=2,
                       help="simulated hours of traffic (default 2)")
    chaos.add_argument("--monitor", action="store_true",
                       help="attach the pipeline monitor and audit that "
                            "every injected outage fires (and resolves) "
                            "its alert")
    chaos.add_argument("--no-faults", action="store_true",
                       help="run the same traffic without the fault "
                            "storm (with --monitor: assert zero false-"
                            "positive alerts)")
    chaos.add_argument("--streaming", action="store_true",
                       help="land via streaming micro-batches instead "
                            "of hourly moves: arms mid-batch and mid-"
                            "seal crashes plus a held-datacenter replay, "
                            "and asserts sealing and the late re-open")
    chaos.add_argument("--partition", action="store_true",
                       help="sharded-warehouse overload soak: a "
                            "datacenter partition (known-down cool-"
                            "down), a staging outage driving aggregator "
                            "backpressure and bulk-tier QoS shedding, "
                            "and a warehouse shard loss spanning an "
                            "hour boundary")

    mover = sub.add_parser(
        "mover", help="drive the staging-to-warehouse landing pipeline "
                      "over clean traffic and summarize what landed")
    mover.add_argument("--stream", action="store_true",
                       help="use the streaming micro-batch mover with "
                            "event-time watermarks instead of hourly "
                            "boundary moves")
    mover.add_argument("--hours", type=int, default=2,
                       help="simulated hours of traffic (default 2)")
    mover.add_argument("--seed", type=int, default=0,
                       help="traffic seed (default 0)")

    monitor = sub.add_parser(
        "monitor", help="replay a simulated day through the pipeline "
                        "monitor and render series, per-hour verdicts, "
                        "and the alert log")
    monitor.add_argument("--seed", type=int, default=0,
                         help="traffic/storm seed (default 0)")
    monitor.add_argument("--hours", type=int, default=24,
                         help="simulated hours to replay (default 24)")
    monitor.add_argument("--faults", action="store_true",
                         help="inject the chaos fault storm (default: "
                              "clean traffic)")
    monitor.add_argument("--quiet-hour", type=int, action="append",
                         default=[], metavar="H",
                         help="suppress traffic during absolute hour H "
                              "(repeatable); with >= 24h of history the "
                              "seasonal baseline rule flags it")

    add_parser("report", "one-day pipeline summary (quick look)")
    return parser


def _one_day(args) -> WarehouseSimulation:
    simulation = WarehouseSimulation(num_users=args.users, seed=args.seed,
                                     start=args.date)
    simulation.run_days(1)
    return simulation


def cmd_pipeline(args) -> int:
    """``pipeline``: run N days end to end and print the dashboard."""
    simulation = WarehouseSimulation(
        num_users=args.users, seed=args.seed, start=args.date,
        users_growth_per_day=args.growth, through_scribe=args.scribe)
    simulation.run_days(args.days)
    print(f"{args.days} day(s) simulated"
          + (" (through Scribe delivery)" if args.scribe else ""))
    print(f"{'date':12s} {'sessions':>8s} {'events':>8s} {'users':>6s} "
          f"{'compress':>9s}")
    for date in simulation.dates():
        day = simulation.days[date]
        print(f"{day.summary.date_str:12s} {day.summary.sessions:8d} "
              f"{day.summary.events:8d} {day.summary.distinct_users:6d} "
              f"{day.build.compression_factor:8.1f}x")
    growth = simulation.board.growth_rate()
    if growth is not None:
        print(f"sessions growth over the window: {growth:+.1%}")
    return 0


def cmd_count(args) -> int:
    """``count``: answer a counting query via both query paths."""
    simulation = _one_day(args)
    date = simulation.dates()[0]
    dictionary = simulation.dictionary(date)
    mode = "sessions" if args.sessions else "sum"
    t_seq, t_raw = JobTracker(), JobTracker()
    n_seq = count_events_sequences(simulation.warehouse, date,
                                   args.pattern, dictionary,
                                   tracker=t_seq, mode=mode,
                                   backend=args.backend,
                                   max_workers=args.workers)
    n_raw = count_events_raw(simulation.warehouse, date, args.pattern,
                             tracker=t_raw, mode=mode,
                             backend=args.backend,
                             max_workers=args.workers)
    unit = "sessions containing" if args.sessions else "occurrences of"
    print(f"{n_seq} {unit} {args.pattern!r}")
    print(f"  sequences path: {t_seq.total_map_tasks()} mappers, "
          f"{sum(r.input_bytes for r in t_seq.runs):,} bytes")
    print(f"  raw-logs path:  {t_raw.total_map_tasks()} mappers, "
          f"{sum(r.input_bytes for r in t_raw.runs):,} bytes "
          f"(answers agree: {n_seq == n_raw})")
    return 0


def cmd_funnel(args) -> int:
    """``funnel``: run the signup funnel and print its rows."""
    simulation = _one_day(args)
    date = simulation.dates()[0]
    stages = signup_funnel_stages(args.client)
    report = run_funnel(simulation.warehouse, date, stages,
                        simulation.dictionary(date),
                        unique_users=args.users_only)
    kind = "users" if args.users_only else "sessions"
    print(f"signup funnel on {args.client} ({kind}):")
    for stage, count in report.rows():
        print(f"  ({stage}, {count})")
    print("abandonment:", " ".join(f"{a:.0%}" for a in report.abandonment()))
    return 0


def cmd_catalog(args) -> int:
    """``catalog``: browse or search the event catalog."""
    simulation = _one_day(args)
    date = simulation.dates()[0]
    catalog = ClientEventCatalog(simulation.builder.load_histogram(*date),
                                 simulation.builder.load_samples(*date))
    if args.search:
        hits = catalog.search(args.search)
        print(f"{len(hits)} event type(s) match {args.search!r}:")
        for entry in hits[:15]:
            print(f"  {entry.count:7d}  {entry.name}")
        return 0
    prefix = args.browse or []
    listing = catalog.browse(*prefix)
    label = ":".join(prefix) if prefix else "<clients>"
    print(f"catalog under {label}:")
    for component, count in sorted(listing.items(),
                                   key=lambda kv: -kv[1]):
        print(f"  {component or '(empty)':20s} {count:7d} events")
    return 0


def cmd_trend(args) -> int:
    """``trend``: print a metric's day-by-day series."""
    from repro.analytics.timeseries import (
        event_count_series,
        sessions_with_event_series,
    )

    simulation = WarehouseSimulation(
        num_users=args.users, seed=args.seed, start=args.date,
        users_growth_per_day=args.growth)
    simulation.run_days(args.days)
    if args.sessions:
        series = sessions_with_event_series(simulation, args.pattern)
    else:
        series = event_count_series(simulation, args.pattern)
    print(f"{series.name} over {args.days} day(s):")
    peak = max(series.values()) or 1.0
    for (year, month, day), value in series.points:
        bar = "#" * int(value / peak * 40)
        print(f"  {year:04d}-{month:02d}-{day:02d} {value:10.0f} {bar}")
    change = series.change()
    if change is not None:
        print(f"change over the window: {change:+.1%}")
    return 0


def cmd_script(args) -> int:
    """``script``: execute a Pig Latin file against a fresh day."""
    from repro.pig.latin import PigLatinInterpreter, standard_bindings
    from repro.pig.relation import PigServer

    simulation = _one_day(args)
    date = simulation.dates()[0]
    variables = {"DATE": f"{date[0]:04d}/{date[1]:02d}/{date[2]:02d}"}
    for item in args.param:
        name, _, value = item.partition("=")
        if not name or not value:
            print(f"bad --param {item!r}: expected NAME=VALUE")
            return 2
        variables[name] = value
    with open(args.file) as handle:
        text = handle.read()
    interp = PigLatinInterpreter(
        PigServer(), variables=variables,
        **standard_bindings(simulation.warehouse,
                            simulation.dictionary(date)))
    result = interp.run(text)
    for i, rows in enumerate(result.dumps):
        label = f"dump #{i + 1}" if len(result.dumps) > 1 else "dump"
        print(f"{label}: {len(rows)} row(s)")
        for row in rows[:20]:
            print("  ", row)
        if len(rows) > 20:
            print(f"   ... {len(rows) - 20} more")
    return 0


def cmd_obs(args) -> int:
    """``obs``: run the Scribe path end to end, print the metrics snapshot.

    Installs a fresh registry and an enabled tracer so the snapshot
    reflects exactly this invocation's pipeline run, then prints the
    pipeline-health panel followed by the full exposition.
    """
    import json

    from repro.analytics.dashboard import (
        format_pipeline_health,
        pipeline_health,
    )
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        set_default_registry,
        set_default_tracer,
    )

    registry = MetricsRegistry()
    set_default_registry(registry)
    set_default_tracer(Tracer(enabled=True))
    simulation = WarehouseSimulation(num_users=args.users, seed=args.seed,
                                     start=args.date, through_scribe=True)
    simulation.run_days(args.days)
    print(format_pipeline_health(pipeline_health(registry)))
    print()
    if args.json:
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    else:
        print(registry.expose(), end="")
    return 0


def cmd_chaos(args) -> int:
    """``chaos``: run the delivery-guarantee soak; exit 1 on violations.

    A fresh registry isolates the run's metrics (faults injected, retry
    attempts, duplicates skipped) from anything else in the process.
    """
    from repro.faults.chaos import run_chaos, run_partition_chaos
    from repro.obs import MetricsRegistry, set_default_registry

    set_default_registry(MetricsRegistry())
    if args.partition:
        if args.monitor or args.streaming or args.no_faults:
            print("--partition cannot be combined with --monitor, "
                  "--streaming, or --no-faults")
            return 2
        report = run_partition_chaos(args.seed, hours=args.hours)
        print(report.summary())
        return 0 if report.ok else 1
    report = run_chaos(args.seed, hours=args.hours, monitor=args.monitor,
                       faults=not args.no_faults,
                       streaming=args.streaming)
    print(report.summary())
    if report.monitor is not None:
        from repro.obs.monitor import format_alerts, format_audits

        print()
        print(format_audits(report.monitor.audits))
        print()
        print(format_alerts(report.monitor.engine))
    return 0 if report.ok else 1


def cmd_mover(args) -> int:
    """``mover``: land clean traffic hourly or via ``--stream``.

    Reuses the chaos harness's two-datacenter deployment with the fault
    storm disabled, so the numbers it prints are the landing pipeline's
    own behavior -- in stream mode that includes micro-batch counts,
    sealed hours, and the closing watermark lag.
    """
    from repro.faults.chaos import run_chaos
    from repro.obs import MetricsRegistry, set_default_registry
    from repro.obs import names as obs_names

    registry = MetricsRegistry()
    set_default_registry(registry)
    report = run_chaos(args.seed, hours=args.hours, faults=False,
                       streaming=args.stream)
    mode = "streaming micro-batch" if args.stream else "hourly"
    print(f"log mover ({mode}): hours={args.hours} "
          f"accepted={report.accepted} landed={report.landed} "
          f"dropped={report.dropped} quarantined={report.quarantined}")
    if args.stream:
        lag = registry.total(obs_names.STREAMING_WATERMARK_LAG)
        print(f"  batches_landed={report.batches_landed} "
              f"hours_sealed={report.hours_sealed} "
              f"late_reopens={report.late_reopens} "
              f"closing_watermark_lag_ms={int(lag)}")
    for violation in report.violations:
        print(f"  VIOLATION: {violation}")
    return 0 if report.ok else 1


def cmd_monitor(args) -> int:
    """``monitor``: replay a simulated day under continuous monitoring.

    Runs the chaos harness traffic (with or without the fault storm)
    with a :class:`PipelineMonitor` attached, then renders the health
    panel, sparkline series, per-hour verdicts, and the alert log.
    """
    from repro.analytics.dashboard import (
        format_pipeline_health,
        pipeline_health,
    )
    from repro.faults.chaos import run_chaos
    from repro.obs import MetricsRegistry, set_default_registry

    registry = MetricsRegistry()
    set_default_registry(registry)
    report = run_chaos(args.seed, hours=args.hours, monitor=True,
                       faults=args.faults,
                       quiet_hours=set(args.quiet_hour))
    print(report.summary())
    print()
    print(format_pipeline_health(pipeline_health(registry)))
    print()
    print(report.monitor.render())
    return 0 if report.ok else 1


def cmd_index(args) -> int:
    """``index``: build, inspect, or query Elephant Twin partitions.

    ``build`` runs the per-hour MapReduce index jobs; ``status`` reports
    each hour partition's freshness; ``query`` runs a selective query
    through the index and cross-checks its rows against the full scan.
    """
    from repro.analytics.counting import count_events_raw
    from repro.elephanttwin.buildjob import build_day_indexes, index_status
    from repro.pig.loaders import ClientEventsLoader
    from repro.pig.relation import PigServer
    from repro.pig.udf import UserEventsFilter

    simulation = _one_day(args)
    date = simulation.dates()[0]
    warehouse = simulation.warehouse

    if args.action == "status":
        rows = index_status(warehouse, *date)
        print(f"index partitions for {date[0]:04d}-{date[1]:02d}"
              f"-{date[2]:02d}:")
        for directory, status in rows:
            print(f"  {status:8s} {directory}")
        return 0

    report = build_day_indexes(warehouse, *date, backend=args.backend,
                               max_workers=args.workers)
    print(f"built {report.hours_built} hour partition(s), "
          f"{report.splits_indexed} split(s) indexed, "
          f"{report.wall_time_s * 1000:.0f} ms")
    if args.action == "build":
        return 0

    pig = PigServer(backend=args.backend, max_workers=args.workers)
    loader = ClientEventsLoader(warehouse, *date)
    if args.user is not None:
        relation = pig.load(loader).filter(
            UserEventsFilter(args.user), description=f"user[{args.user}]")
        label = f"user {args.user}"
    else:
        relation = pig.load(loader).filter_events(args.pattern)
        label = f"pattern {args.pattern!r}"
    rows = relation.dump()

    fmt = loader.indexed_input_format(
        str(args.user) if args.user is not None else args.pattern,
        field="user" if args.user is not None else "event")
    scanned = len(fmt.splits()) if fmt is not None else 0
    skipped = fmt.skipped_splits if fmt is not None else 0
    unindexed = fmt.unindexed_splits if fmt is not None else 0
    print(f"{len(rows)} event(s) for {label}")
    print(f"  splits: {scanned} scanned, {skipped} pruned, "
          f"{unindexed} unindexed (must-scan)")
    if args.user is None:
        full = count_events_raw(warehouse, date, args.pattern)
        print(f"  unindexed plan agrees: {len(rows) == full}")
    return 0


def cmd_report(args) -> int:
    """``report``: one-day pipeline summary."""
    simulation = _one_day(args)
    date = simulation.dates()[0]
    day = simulation.days[date]
    print(f"day {day.summary.date_str} | users={args.users} "
          f"seed={args.seed}")
    print(f"  events {day.summary.events} | sessions "
          f"{day.summary.sessions} | distinct users "
          f"{day.summary.distinct_users}")
    print(f"  event types {day.build.distinct_events} | compression "
          f"{day.build.compression_factor:.1f}x")
    print(f"  by client: "
          f"{dict(sorted(day.summary.sessions_by_client.items()))}")
    return 0


_COMMANDS = {
    "pipeline": cmd_pipeline,
    "trend": cmd_trend,
    "count": cmd_count,
    "funnel": cmd_funnel,
    "catalog": cmd_catalog,
    "script": cmd_script,
    "obs": cmd_obs,
    "index": cmd_index,
    "chaos": cmd_chaos,
    "mover": cmd_mover,
    "monitor": cmd_monitor,
    "report": cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
