"""Execution traces for audit (§3).

"Oink preserves execution traces for audit purposes: when a job began,
how long it lasted, whether it completed successfully, etc."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class ExecutionTrace:
    """Audit record of one job instance."""

    job_name: str
    period_start: int          # logical ms of the period this run covers
    scheduled_at: int          # when Oink decided to run it
    started_at: Optional[int] = None
    finished_at: Optional[int] = None
    success: Optional[bool] = None
    error: Optional[str] = None

    @property
    def duration_ms(self) -> Optional[int]:
        """Run duration in logical ms, or None if unfinished."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def completed(self) -> bool:
        """True once the run finished (success or failure)."""
        return self.finished_at is not None


class TraceLog:
    """Append-only log of execution traces with simple queries."""

    def __init__(self) -> None:
        self._traces: List[ExecutionTrace] = []

    def append(self, trace: ExecutionTrace) -> None:
        """Append one trace to the log."""
        self._traces.append(trace)

    def all(self) -> List[ExecutionTrace]:
        """Every trace, in append order."""
        return list(self._traces)

    def for_job(self, job_name: str) -> List[ExecutionTrace]:
        """Traces of one job, in append order."""
        return [t for t in self._traces if t.job_name == job_name]

    def successes(self, job_name: str) -> List[ExecutionTrace]:
        """Successful traces of one job."""
        return [t for t in self.for_job(job_name) if t.success]

    def failures(self, job_name: str) -> List[ExecutionTrace]:
        """Failed traces of one job."""
        return [t for t in self.for_job(job_name) if t.success is False]

    def succeeded(self, job_name: str, period_start: int) -> bool:
        """Did the job complete successfully for a given period?"""
        return any(t.period_start == period_start and t.success
                   for t in self.for_job(job_name))

    def __len__(self) -> int:
        return len(self._traces)
