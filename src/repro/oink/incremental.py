"""Incremental sessionization and continuously-updated rollups.

The paper's §3.2 rollups and §4.2 session reconstruction are daily batch
jobs: nothing is aggregated until "all logs for one day have been
successfully imported". With the streaming mover landing minute-level
micro-batches and **sealing** hours as its watermark passes
(:mod:`repro.logmover.streaming`), both jobs can instead run
*incrementally*, keyed off seals and late re-opens:

* :class:`IncrementalSessionizer` maintains per-``(user id, session id)``
  open-session state **across hour (and day) boundaries**. A session
  closes only once the watermark passes its inactivity horizon
  (``last event + gap``), and each closed session is attributed to
  exactly one day -- the day of its first event -- which makes the
  daily-batch bug of double-counting midnight-spanning sessions
  structurally impossible. When a sealed hour re-opens with late data,
  any already-closed session the late events touch (extend, backfill, or
  bridge) is *re-opened*: its emission is retracted, the key is re-split
  from scratch, and corrected sessions close again as the watermark
  allows.
* :class:`IncrementalRollup` folds each sealed hour's event *delta* into
  the day's five rollup tables and re-materializes the day -- via the
  same ``<day>.tmp`` atomic-rename discipline as the batch job, sharing
  :func:`repro.oink.rollups.materialize_rollups` so the artifacts are
  byte-identical to a from-scratch daily rebuild over the same events.
  A re-seal applies a signed correction delta (retraction for counts
  that vanished, addition for late arrivals).

:class:`IncrementalPipeline` bundles both behind one
:meth:`~IncrementalPipeline.observe_poll` hook that consumes
:class:`~repro.logmover.streaming.PollResult` rows -- the integration
point for ``register_standard_pipeline`` and the chaos soak. The parity
invariant both consumers audit: after a final :meth:`finish`, the
incremental sessions and materialized rollups equal a from-scratch batch
rebuild over the warehouse's final contents, no matter how many crashes
and late re-opens happened along the way.
"""

from __future__ import annotations

import logging
from collections import Counter
from dataclasses import dataclass, field
from datetime import timedelta
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.clock import MILLIS_PER_HOUR
from repro.core.event import CLIENT_EVENTS_CATEGORY, ClientEvent
from repro.core.sessionizer import DEFAULT_INACTIVITY_GAP_MS, Session
from repro.hdfs.layout import EPOCH, LOGS_ROOT, LogHour, data_files, \
    millis_for_hour
from repro.hdfs.namenode import HDFS
from repro.obs import names as obs_names
from repro.obs.metrics import get_default_registry
from repro.oink.rollups import (
    ROLLUPS_ROOT,
    RollupResult,
    materialize_rollups,
    rollup_tables,
)
from repro.scribe.aggregator import decode_messages

logger = logging.getLogger(__name__)

Date = Tuple[int, int, int]
SessionKey = Tuple[int, str]

#: Sentinel watermark that closes every open session (shutdown/audits).
CLOSE_ALL_WATERMARK = float("inf")


def date_of_millis(millis: int) -> Date:
    """The calendar day a timestamp falls on."""
    when = EPOCH + timedelta(milliseconds=millis)
    return (when.year, when.month, when.day)


@dataclass(frozen=True)
class ClosedSession:
    """One incrementally-closed session with its single-day attribution."""

    session: Session
    #: The day the session is attributed to: the day of its *first*
    #: event. Exactly one day per closed session, by construction.
    date: Date

    @property
    def key(self) -> SessionKey:
        """The session's ``(user id, session id)`` grouping key."""
        return (self.session.user_id, self.session.session_id)


def session_signature(events: Sequence[ClientEvent]) -> Tuple[bytes, ...]:
    """Order-sensitive identity of one session's event run."""
    return tuple(event.to_bytes() for event in events)


@dataclass
class _KeyState:
    """Everything known about one ``(user id, session id)`` group."""

    #: Every event ever observed for the key, kept timestamp-sorted.
    events: List[ClientEvent] = field(default_factory=list)
    #: Payload identities, to drop exact duplicates on ingest.
    seen: Set[bytes] = field(default_factory=set)
    #: Signatures of the runs already emitted as closed, in run order.
    emitted: List[Tuple[bytes, ...]] = field(default_factory=list)
    #: Total runs in the last split (for the opened counter).
    runs: int = 0


class IncrementalSessionizer:
    """Sessionization as a watermark-driven incremental computation.

    Feed events with :meth:`ingest` (any order; duplicates by encoded
    bytes are dropped) and move time forward with :meth:`advance`. The
    class never discards an event: late data re-splits its whole key, so
    a correction is always exact, not approximated.
    """

    def __init__(self,
                 inactivity_gap_ms: int = DEFAULT_INACTIVITY_GAP_MS,
                 category: str = CLIENT_EVENTS_CATEGORY) -> None:
        if inactivity_gap_ms <= 0:
            raise ValueError("inactivity gap must be positive")
        self.inactivity_gap_ms = inactivity_gap_ms
        self._category = category
        self._keys: Dict[SessionKey, _KeyState] = {}
        #: Keys touched since the last reconcile pass.
        self._dirty: Set[SessionKey] = set()
        #: Keys with at least one not-yet-emitted run.
        self._open_keys: Set[SessionKey] = set()
        self._closed: List[ClosedSession] = []
        self._closed_by_day: Dict[Date, List[ClosedSession]] = {}
        self.opened_total = 0
        self.closed_total = 0
        self.reopened_total = 0

    # -- feeding ---------------------------------------------------------
    def ingest(self, events: Iterable[ClientEvent]) -> int:
        """Add events to their keys; returns how many were new."""
        new = 0
        for event in events:
            key = (event.user_id, event.session_id)
            state = self._keys.setdefault(key, _KeyState())
            identity = event.to_bytes()
            if identity in state.seen:
                continue
            state.seen.add(identity)
            state.events.append(event)
            self._dirty.add(key)
            new += 1
        return new

    def advance(self, watermark_ms: float) -> List[ClosedSession]:
        """Reconcile and close sessions the watermark has passed.

        Dirty keys are re-split (retracting any emitted run the new
        events changed); every key with open runs is then checked for
        closure against the watermark. Returns the sessions closed by
        this call, in close order.
        """
        registry = get_default_registry()
        closed_now: List[ClosedSession] = []
        for key in sorted(self._dirty | self._open_keys):
            closed_now.extend(self._reconcile(key, watermark_ms))
        self._dirty.clear()
        registry.gauge(obs_names.INCREMENTAL_OPEN_SESSIONS,
                       category=self._category).set(self.open_count())
        return closed_now

    def finish(self) -> List[ClosedSession]:
        """Close every remaining open session (end-of-stream)."""
        return self.advance(CLOSE_ALL_WATERMARK)

    # -- queries ---------------------------------------------------------
    def open_count(self) -> int:
        """Number of runs not yet emitted as closed sessions."""
        return sum(self._keys[key].runs - len(self._keys[key].emitted)
                   for key in self._open_keys)

    def closed_sessions(self) -> List[ClosedSession]:
        """Every closed session still standing, in close order."""
        return list(self._closed)

    def closed_by_day(self) -> Dict[Date, List[ClosedSession]]:
        """Closed sessions bucketed by their one attributed day."""
        return {date: list(rows)
                for date, rows in sorted(self._closed_by_day.items())}

    # -- internals -------------------------------------------------------
    def _split_runs(self, state: _KeyState) -> List[List[ClientEvent]]:
        state.events.sort(key=lambda e: e.timestamp)
        runs: List[List[ClientEvent]] = []
        current: List[ClientEvent] = []
        for event in state.events:
            if current and (event.timestamp - current[-1].timestamp
                            > self.inactivity_gap_ms):
                runs.append(current)
                current = []
            current.append(event)
        if current:
            runs.append(current)
        return runs

    def _reconcile(self, key: SessionKey,
                   watermark_ms: float) -> List[ClosedSession]:
        registry = get_default_registry()
        state = self._keys[key]
        runs = self._split_runs(state)
        if len(runs) > state.runs:
            self.opened_total += len(runs) - state.runs
            registry.counter(obs_names.INCREMENTAL_SESSIONS_OPEN,
                             category=self._category).inc(
                                 len(runs) - state.runs)
        state.runs = len(runs)

        # Longest prefix of runs that matches what was already emitted:
        # anything beyond it was changed by late data and must be
        # retracted (a session re-open).
        matching = 0
        for emitted_sig, run in zip(state.emitted, runs):
            if session_signature(run) != emitted_sig:
                break
            matching += 1
        if matching < len(state.emitted):
            reopened = len(state.emitted) - matching
            self._retract(key, matching)
            self.reopened_total += reopened
            registry.counter(obs_names.INCREMENTAL_SESSIONS_REOPENED,
                             category=self._category).inc(reopened)

        # Close runs the watermark has passed, strictly in order.
        closed_now: List[ClosedSession] = []
        for run in runs[len(state.emitted):]:
            if run[-1].timestamp + self.inactivity_gap_ms > watermark_ms:
                break
            session = Session(user_id=key[0], session_id=key[1],
                              events=list(run))
            closed = ClosedSession(
                session=session, date=date_of_millis(session.start))
            state.emitted.append(session_signature(run))
            self._closed.append(closed)
            self._closed_by_day.setdefault(closed.date, []).append(closed)
            closed_now.append(closed)
            self.closed_total += 1
            registry.counter(obs_names.INCREMENTAL_SESSIONS_CLOSED,
                             category=self._category).inc()
        if len(state.emitted) < state.runs:
            self._open_keys.add(key)
        else:
            self._open_keys.discard(key)
        return closed_now

    def _retract(self, key: SessionKey, keep: int) -> None:
        """Withdraw the key's emitted runs beyond index ``keep``."""
        state = self._keys[key]
        retracted_sigs = set(state.emitted[keep:])
        state.emitted = state.emitted[:keep]

        def stands(closed: ClosedSession) -> bool:
            return not (closed.key == key
                        and session_signature(closed.session.events)
                        in retracted_sigs)

        self._closed = [c for c in self._closed if stands(c)]
        for date in list(self._closed_by_day):
            kept = [c for c in self._closed_by_day[date] if stands(c)]
            if kept:
                self._closed_by_day[date] = kept
            else:
                del self._closed_by_day[date]


@dataclass
class RollupDelta:
    """Accounting of one sealed hour folded into its day's tables."""

    hour: LogHour
    date: Date
    #: True when the hour had been folded before (a re-seal correction).
    correction: bool
    #: Rollup-key entries whose count changed, across all levels.
    changed_keys: int


class IncrementalRollup:
    """Continuously-updated §3.2 rollup tables driven by hour seals.

    Each sealed hour contributes its five-level tables; the fold applies
    only the *delta* against the hour's previous contribution, so a
    re-seal after late data issues an exact signed correction. Every
    fold re-materializes the affected day atomically.
    """

    def __init__(self, warehouse: HDFS,
                 category: str = CLIENT_EVENTS_CATEGORY,
                 root: str = ROLLUPS_ROOT,
                 materialize: bool = True) -> None:
        self._warehouse = warehouse
        self._category = category
        self._root = root
        self._materialize = materialize
        self._hour_contrib: Dict[LogHour, Dict[int, Counter]] = {}
        self._day_tables: Dict[Date, Dict[int, Counter]] = {}
        self._results: Dict[Date, RollupResult] = {}
        self.deltas_applied = 0
        self.corrections = 0

    def fold_hour(self, hour: LogHour, events: Sequence[ClientEvent],
                  now_ms: int) -> Optional[RollupDelta]:
        """Fold one sealed hour's *current full contents* into its day.

        Pass everything currently readable in the hour; the fold diffs
        against the hour's previous contribution internally. Returns
        None when nothing changed (an idempotent re-fold).
        """
        registry = get_default_registry()
        new_tables = rollup_tables(events)
        old_tables = self._hour_contrib.get(hour)
        date = (hour.year, hour.month, hour.day)
        day = self._day_tables.setdefault(
            date, {level: Counter() for level in new_tables})

        changed = 0
        for level, new_table in new_tables.items():
            old_table = old_tables[level] if old_tables else {}
            table = day[level]
            for key in set(new_table) | set(old_table):
                delta = new_table.get(key, 0) - (old_table.get(key, 0)
                                                 if old_tables else 0)
                if delta == 0:
                    continue
                changed += 1
                table[key] += delta
                if table[key] <= 0:
                    del table[key]
        correction = old_tables is not None
        self._hour_contrib[hour] = new_tables
        if changed == 0:
            return None

        self.deltas_applied += 1
        registry.counter(obs_names.ROLLUP_DELTAS_APPLIED,
                         category=self._category).inc()
        if correction:
            self.corrections += 1
            # How stale the published day was when the correction
            # landed, measured from the corrected hour's close.
            lag = max(0, now_ms - (millis_for_hour(hour)
                                   + MILLIS_PER_HOUR))
            registry.histogram(obs_names.ROLLUP_CORRECTION_LAG,
                               category=self._category).observe(lag)
        result = RollupResult(date=date, tables=day)
        self._results[date] = result
        if self._materialize:
            materialize_rollups(self._warehouse, result, root=self._root)
        return RollupDelta(hour=hour, date=date, correction=correction,
                           changed_keys=changed)

    # -- queries ---------------------------------------------------------
    def days(self) -> List[Date]:
        """Every day with at least one folded hour, sorted."""
        return sorted(self._results)

    def result_for_day(self, date: Date) -> Optional[RollupResult]:
        """The day's live tables (also materialized on HDFS)."""
        return self._results.get(date)


class IncrementalPipeline:
    """Seal-driven incremental sessionization + rollups over a warehouse.

    Call :meth:`observe_poll` with every
    :class:`~repro.logmover.streaming.PollResult`: each hour the poll
    sealed (or re-sealed after a late re-open) is read back from the
    warehouse, its *new* events feed the sessionizer, its full contents
    diff into the rollup fold, and the poll's watermark then closes
    every session whose inactivity horizon it passed.
    """

    def __init__(self, warehouse: HDFS,
                 category: str = CLIENT_EVENTS_CATEGORY,
                 inactivity_gap_ms: int = DEFAULT_INACTIVITY_GAP_MS,
                 rollup_root: str = ROLLUPS_ROOT) -> None:
        self._warehouse = warehouse
        self._category = category
        self.sessionizer = IncrementalSessionizer(
            inactivity_gap_ms=inactivity_gap_ms, category=category)
        self.rollup = IncrementalRollup(warehouse, category=category,
                                        root=rollup_root)
        self._seen: Dict[LogHour, Set[bytes]] = {}
        self.hours_processed = 0
        self.deltas: List[RollupDelta] = []

    def observe_poll(self, poll) -> List[RollupDelta]:
        """Process one poll's seals, then advance the watermark."""
        new_deltas: List[RollupDelta] = []
        for hour in poll.sealed:
            delta = self.process_hour(hour, now_ms=poll.now_ms)
            if delta is not None:
                new_deltas.append(delta)
        self.sessionizer.advance(poll.watermark_ms)
        self.deltas.extend(new_deltas)
        return new_deltas

    def process_hour(self, hour: LogHour,
                     now_ms: int) -> Optional[RollupDelta]:
        """Read one sealed hour back and fold it into both consumers."""
        payloads = self._read_hour(hour)
        if payloads is None:
            return None
        try:
            decoded = [(p, ClientEvent.from_bytes(p)) for p in payloads]
        except Exception as exc:
            logger.warning("incremental fold skipped for %s: "
                           "undecodable client event (%s)", hour, exc)
            return None
        seen = self._seen.setdefault(hour, set())
        self.sessionizer.ingest(event for payload, event in decoded
                                if payload not in seen)
        seen.update(payload for payload, __ in decoded)
        self.hours_processed += 1
        # The fold sees the hour's *full multiset* (duplicates included)
        # so its tables match a batch rebuild over the same files.
        return self.rollup.fold_hour(
            hour, [event for __, event in decoded], now_ms)

    def finish(self) -> List[ClosedSession]:
        """Close every open session (shutdown / parity audits)."""
        return self.sessionizer.finish()

    def _read_hour(self, hour: LogHour) -> Optional[List[bytes]]:
        directory = hour.path(root=LOGS_ROOT)
        if not self._warehouse.is_dir(directory):
            return None
        payloads: List[bytes] = []
        for path in sorted(data_files(self._warehouse, directory)):
            payloads.extend(
                decode_messages(self._warehouse.open_bytes(path)))
        return payloads
