"""Oink: workflow scheduling, execution traces, automatic rollups."""

from repro.oink.scheduler import (
    CycleError,
    Oink,
    OinkError,
    OinkJob,
    UnknownDependencyError,
)
from repro.oink.traces import ExecutionTrace, TraceLog
from repro.oink.pipelines import (
    PipelineState,
    register_standard_pipeline,
)
from repro.oink.rollups import (
    ROLLUP_LEVELS,
    ROLLUPS_ROOT,
    RollupJob,
    RollupResult,
    rollup_keys,
)

__all__ = [
    "CycleError",
    "Oink",
    "OinkError",
    "OinkJob",
    "UnknownDependencyError",
    "ExecutionTrace",
    "TraceLog",
    "PipelineState",
    "register_standard_pipeline",
    "ROLLUP_LEVELS",
    "ROLLUPS_ROOT",
    "RollupJob",
    "RollupResult",
    "rollup_keys",
]
