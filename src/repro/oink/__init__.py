"""Oink: workflow scheduling, execution traces, automatic rollups."""

from repro.oink.scheduler import (
    CycleError,
    Oink,
    OinkError,
    OinkJob,
    UnknownDependencyError,
)
from repro.oink.traces import ExecutionTrace, TraceLog
from repro.oink.pipelines import (
    PipelineState,
    register_standard_pipeline,
)
from repro.oink.rollups import (
    ROLLUP_LEVELS,
    ROLLUPS_ROOT,
    MissingRollupError,
    RollupJob,
    RollupResult,
    load_rollups,
    materialize_rollups,
    rollup_keys,
    rollup_tables,
)
from repro.oink.incremental import (
    ClosedSession,
    IncrementalPipeline,
    IncrementalRollup,
    IncrementalSessionizer,
    RollupDelta,
)

__all__ = [
    "CycleError",
    "Oink",
    "OinkError",
    "OinkJob",
    "UnknownDependencyError",
    "ExecutionTrace",
    "TraceLog",
    "PipelineState",
    "register_standard_pipeline",
    "ROLLUP_LEVELS",
    "ROLLUPS_ROOT",
    "MissingRollupError",
    "RollupJob",
    "RollupResult",
    "load_rollups",
    "materialize_rollups",
    "rollup_keys",
    "rollup_tables",
    "ClosedSession",
    "IncrementalPipeline",
    "IncrementalRollup",
    "IncrementalSessionizer",
    "RollupDelta",
]
